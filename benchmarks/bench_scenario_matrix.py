"""Scenario × reduction ablation matrix — ``BENCH_scenarios.json``.

Renders every named scenario (the paper-fig2 calibration, each workload
archetype, the mixed cohort fleet, and the regime-shift stress trace)
through the full predict+resize pipeline and records the ticket
reduction the ATM achieves on each.  The matrix answers the robustness
question the single calibrated profile cannot: does the sizing win
survive workloads the predictor was not tuned for?

Expectations pinned here are deliberately loose — archetypes exist to
*stress* the pipeline, not to reproduce paper numbers: every scenario
must run end to end, yield finite accuracy, and the paper-fig2 row must
match the plain generator bit-for-bit (same fleet, same reductions).

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_scenario_matrix.py
        [--boxes 12] [--out BENCH_scenarios.json]
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.benchhelpers import bench_jobs, print_table
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace import FleetConfig, NAMED_SCENARIOS, render_fleet
from repro.trace.model import Resource

pytestmark = pytest.mark.slow

BENCH_SCHEMA = "repro.bench_scenarios/v1"
#: Same seed family as the shared benchmark fleets (EXPERIMENTS.md).
SEED = 20160630
DAYS = 6  # 5 training days + 1 evaluation day


def _atm_config() -> AtmConfig:
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )


def _scenario_row(name: str, n_boxes: int, jobs) -> dict:
    spec = NAMED_SCENARIOS[name]
    cfg = FleetConfig(n_boxes=n_boxes, days=DAYS, seed=SEED)
    fleet = render_fleet(spec, cfg)
    t0 = time.perf_counter()
    result = run_fleet_atm(fleet, _atm_config(), jobs=jobs)
    run_s = time.perf_counter() - t0
    return {
        "scenario": name,
        "fingerprint": spec.fingerprint(),
        "archetypes": sorted({c.archetype for c in spec.cohorts}),
        "regime_shift": any(c.shift is not None for c in spec.cohorts),
        "boxes": n_boxes,
        "boxes_evaluated": len(result.accuracies),
        "mean_ape": round(result.mean_ape(), 3),
        "reduction_cpu": round(
            result.mean_reduction(Resource.CPU, ResizingAlgorithm.ATM), 3
        ),
        "reduction_ram": round(
            result.mean_reduction(Resource.RAM, ResizingAlgorithm.ATM), 3
        ),
        "run_s": round(run_s, 3),
    }


def sweep(n_boxes: int = 12, jobs=None) -> dict:
    jobs = jobs if jobs is not None else bench_jobs()
    rows = [_scenario_row(name, n_boxes, jobs) for name in NAMED_SCENARIOS]
    return {
        "schema": BENCH_SCHEMA,
        "seed": SEED,
        "days": DAYS,
        "jobs": jobs,
        "scenarios": rows,
    }


def _print_report(report: dict) -> None:
    print_table(
        f"Scenario ablation matrix — ATM reduction per workload "
        f"(boxes={report['scenarios'][0]['boxes']}, jobs={report['jobs']})",
        ["scenario", "shift", "APE", "red CPU %", "red RAM %", "run s"],
        [
            [
                row["scenario"],
                "yes" if row["regime_shift"] else "",
                row["mean_ape"],
                row["reduction_cpu"],
                row["reduction_ram"],
                row["run_s"],
            ]
            for row in report["scenarios"]
        ],
    )


def _check_matrix(report: dict) -> None:
    rows = {row["scenario"]: row for row in report["scenarios"]}
    assert set(rows) == set(NAMED_SCENARIOS), (
        f"matrix is missing scenarios: {set(NAMED_SCENARIOS) - set(rows)}"
    )
    assert any(row["regime_shift"] for row in rows.values())
    for name, row in rows.items():
        assert row["boxes_evaluated"] == row["boxes"], (
            f"{name}: only {row['boxes_evaluated']}/{row['boxes']} boxes "
            "survived the pipeline"
        )
        assert row["mean_ape"] == row["mean_ape"], f"{name}: NaN accuracy"
    fps = [row["fingerprint"] for row in report["scenarios"]]
    assert len(set(fps)) == len(fps), "scenario fingerprints collide"


# --------------------------------------------------------------------- pytest
def test_scenario_matrix(tmp_path):
    report = sweep()
    (tmp_path / "BENCH_scenarios.json").write_text(json.dumps(report, indent=1))
    _print_report(report)
    _check_matrix(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--boxes", type=int, default=12)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_scenarios.json")
    )
    args = parser.parse_args(argv)
    report = sweep(args.boxes, args.jobs)
    _print_report(report)
    _check_matrix(report)
    args.out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
