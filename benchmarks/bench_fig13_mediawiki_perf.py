"""Figure 13 — MediaWiki application performance, original vs resized.

Paper: wiki-one's mean response time improves ~20% (582 -> 454 ms) at flat
throughput; wiki-two's throughput improves >20% (14 -> 17 req/s) at a small
response-time cost (+7%, 915 -> 979 ms) because the servers finally serve
the full offered load.
"""

from repro.benchhelpers import print_table
from repro.testbed import run_testbed_experiment
from repro.testbed.experiment import TestbedConfig

PAPER = {
    "wiki-one": {"rt": (582.0, 454.0), "tput": (None, None)},
    "wiki-two": {"rt": (915.0, 979.0), "tput": (14.0, 17.0)},
}


def _compute():
    cfg = TestbedConfig()
    original = run_testbed_experiment(resizing=False, config=cfg)
    resized = run_testbed_experiment(resizing=True, config=cfg)
    return original, resized


def test_fig13_testbed_performance(benchmark):
    original, resized = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for wiki in ("wiki-one", "wiki-two"):
        rt_o = 1000.0 * original.mean_response_time(wiki)
        rt_r = 1000.0 * resized.mean_response_time(wiki)
        tp_o = original.mean_throughput(wiki)
        tp_r = resized.mean_throughput(wiki)
        paper_rt = PAPER[wiki]["rt"]
        paper_tp = PAPER[wiki]["tput"]
        rows.append(
            [
                wiki,
                rt_o,
                rt_r,
                f"{paper_rt[0]:.0f}->{paper_rt[1]:.0f}",
                tp_o,
                tp_r,
                "flat" if paper_tp[0] is None else f"{paper_tp[0]:.0f}->{paper_tp[1]:.0f}",
            ]
        )
    print_table(
        "Fig. 13 — RT (ms) and throughput (req/s), original vs resized",
        ["wiki", "RT orig", "RT resz", "paper RT", "TP orig", "TP resz", "paper TP"],
        rows,
    )

    # wiki-one: latency improves materially, throughput stays flat.
    rt1_o = original.mean_response_time("wiki-one")
    rt1_r = resized.mean_response_time("wiki-one")
    assert rt1_r < 0.9 * rt1_o, "wiki-one response time should drop"
    tp1_o = original.mean_throughput("wiki-one")
    tp1_r = resized.mean_throughput("wiki-one")
    assert abs(tp1_r - tp1_o) / tp1_o < 0.05, "wiki-one throughput stays flat"

    # wiki-two: throughput rises (the offered load is finally served).
    tp2_o = original.mean_throughput("wiki-two")
    tp2_r = resized.mean_throughput("wiki-two")
    assert tp2_r > 1.08 * tp2_o, "wiki-two throughput should rise appreciably"
    rt2_o = original.mean_response_time("wiki-two")
    rt2_r = resized.mean_response_time("wiki-two")
    assert abs(rt2_r - rt2_o) / rt2_o < 0.25, "wiki-two RT moves only moderately"
