"""Artifact store — warm-vs-cold wall clock for ablation sweeps.

The staged pipeline materializes signature searches, forecasts and box
results in the content-addressed store (``REPRO_STORE``).  This bench
measures what that buys the workflows the store was built for:

* an ε/horizon ablation sweep over one fleet, run cold (empty store)
  and warm (second invocation against the populated store, in-process
  memory tiers cleared so only the disk tier serves); the warm sweep
  must be ≥ 2x faster;
* a parallel (jobs=N) fleet run repeated against the same store: the
  second run must perform **zero** signature searches — pool workers
  persist their results instead of losing them with the pool.

Aggregates of every warm run are digest-checked against the cold run:
the store may only change wall clock, never results.

Results land in ``BENCH_store.json``.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_artifact_store.py [--quick]
        [--boxes N] [--output PATH]
"""

import argparse
import hashlib
import json
import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro import obs
from repro.benchhelpers import print_table
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.combined import SpatialTemporalConfig
from repro.prediction.spatial.signatures import SignatureSearchConfig
from repro.store import STORE_ENV_VAR, clear_memory_tiers
from repro.trace.generator import FleetConfig, generate_fleet

pytestmark = pytest.mark.slow

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

EPSILONS = (2.5, 5.0, 10.0)
HORIZONS = (48, 96)
TARGET_SPEEDUP = 2.0


def _fleet(n_boxes: int):
    return generate_fleet(
        FleetConfig(n_boxes=n_boxes, days=6, seed=20160630), name="bench-store"
    )


def _config(temporal_model: str) -> AtmConfig:
    return AtmConfig(
        prediction=SpatialTemporalConfig(
            search=SignatureSearchConfig(),
            temporal_model=temporal_model,
        )
    )


def _digest(results) -> str:
    """Order-preserving digest of a sweep's aggregates (repr keeps bits)."""
    payload = repr(
        [
            (
                r.accuracies,
                [
                    (x.box_id, x.resource, x.algorithm, x.tickets_before, x.tickets_after)
                    for x in r.reduction.results
                ],
            )
            for r in results
        ]
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def _run_sweep(fleet, config: AtmConfig):
    """One ε + horizon ablation sweep; returns its fleet results."""
    results = []
    for epsilon in EPSILONS:
        results.append(run_fleet_atm(fleet, replace(config, epsilon_pct=epsilon)))
    for horizon in HORIZONS:
        results.append(run_fleet_atm(fleet, replace(config, horizon_windows=horizon)))
    return results


def _timed_sweep(fleet, config):
    clear_memory_tiers()
    obs.reset_metrics()
    start = time.perf_counter()
    results = _run_sweep(fleet, config)
    seconds = time.perf_counter() - start
    counters = obs.metrics_snapshot()["counters"]
    return {
        "seconds": seconds,
        "digest": _digest(results),
        "signature_searches": int(counters.get("spatial.search.computed", 0)),
        "fits": int(counters.get("predict.fits", 0)),
        "forecast_hits": int(counters.get("stages.forecast.hits", 0)),
    }


def _parallel_zero_search_check(fleet, config, jobs: int = 2):
    clear_memory_tiers()
    obs.reset_metrics()
    first = run_fleet_atm(fleet, config, jobs=jobs, chunksize=1)
    first_searches = int(
        obs.metrics_snapshot()["counters"].get("spatial.search.computed", 0)
    )
    clear_memory_tiers()
    obs.reset_metrics()
    second = run_fleet_atm(fleet, config, jobs=jobs, chunksize=1)
    second_searches = int(
        obs.metrics_snapshot()["counters"].get("spatial.search.computed", 0)
    )
    assert _digest([first]) == _digest([second]), "parallel store run changed results"
    return {"jobs": jobs, "first_run": first_searches, "second_run": second_searches}


def _store_stats(root: Path):
    files = [p for p in root.rglob("*.npz")]
    return {
        "artifacts": len(files),
        "bytes": int(sum(p.stat().st_size for p in files)),
    }


def run_bench(n_boxes: int, temporal_model: str, enforce: bool) -> dict:
    fleet = _fleet(n_boxes)
    config = _config(temporal_model)
    previous = os.environ.get(STORE_ENV_VAR)
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        os.environ[STORE_ENV_VAR] = root
        try:
            cold = _timed_sweep(fleet, config)
            warm = _timed_sweep(fleet, config)
            parallel = _parallel_zero_search_check(fleet, config)
            stats = _store_stats(Path(root))
        finally:
            if previous is None:
                os.environ.pop(STORE_ENV_VAR, None)
            else:
                os.environ[STORE_ENV_VAR] = previous
            clear_memory_tiers()

    speedup = cold["seconds"] / warm["seconds"] if warm["seconds"] > 0 else float("inf")
    report = {
        "bench": "artifact_store",
        "fleet": f"bench-store-{n_boxes} (seed 20160630)",
        "temporal_model": temporal_model,
        "sweep": {
            "epsilons_pct": list(EPSILONS),
            "horizons": list(HORIZONS),
            "cold": cold,
            "warm": warm,
            "warm_speedup": speedup,
            "results_identical": cold["digest"] == warm["digest"],
        },
        "parallel_signature_searches": parallel,
        "store": stats,
    }

    assert report["sweep"]["results_identical"], "warm sweep changed results"
    assert warm["signature_searches"] == 0, "warm sweep recomputed searches"
    # Every (ε, horizon) combination was materialized by the cold sweep, so
    # the warm sweep serves all forecasts from disk and refits nothing.
    assert warm["fits"] == 0, "warm sweep recomputed temporal fits"
    assert parallel["second_run"] == 0, "second jobs=N run recomputed searches"
    if enforce:
        assert speedup >= TARGET_SPEEDUP, (
            f"expected warm sweep >= {TARGET_SPEEDUP}x faster, "
            f"measured {speedup:.2f}x"
        )
    return report


def _print_report(report: dict) -> None:
    sweep = report["sweep"]
    print_table(
        f"Artifact store — ε{sweep['epsilons_pct']} + horizon{sweep['horizons']} "
        f"sweep ({report['fleet']}, {report['temporal_model']})",
        ["run", "seconds", "searches", "fits", "forecast hits"],
        [
            [
                name,
                sweep[name]["seconds"],
                sweep[name]["signature_searches"],
                sweep[name]["fits"],
                sweep[name]["forecast_hits"],
            ]
            for name in ("cold", "warm")
        ],
    )
    parallel = report["parallel_signature_searches"]
    print_table(
        "Signature searches computed per parallel run",
        ["run", "searches"],
        [["first (jobs=%d)" % parallel["jobs"], parallel["first_run"]],
         ["second (jobs=%d)" % parallel["jobs"], parallel["second_run"]]],
    )
    print(
        f"warm speedup: {sweep['warm_speedup']:.2f}x, "
        f"store: {report['store']['artifacts']} artifacts "
        f"({report['store']['bytes']} bytes)"
    )


def test_artifact_store_speedup(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench(n_boxes=8, temporal_model="neural", enforce=True),
        rounds=1,
        iterations=1,
    )
    _print_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small-fleet smoke run with a cheap temporal model (seconds); "
        "checks correctness, skips the speedup floor and the JSON artifact",
    )
    parser.add_argument("--boxes", type=int, default=None, help="fleet size")
    parser.add_argument(
        "--output", type=str, default=str(RESULTS_PATH),
        help="result JSON path (full mode only)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        report = run_bench(
            n_boxes=args.boxes or 4, temporal_model="seasonal_mean", enforce=False
        )
        _print_report(report)
        print("quick mode: correctness checks passed (speedup floor not enforced)")
        return 0
    report = run_bench(
        n_boxes=args.boxes or 12, temporal_model="neural", enforce=True
    )
    _print_report(report)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
