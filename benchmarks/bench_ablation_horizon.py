"""Prediction-horizon ablation (Section IV's conservatism argument).

The paper sets the resizing window to one day and notes that "the accuracy
of prediction decreases as the prediction horizon increases", making the
one-day choice conservative.  This ablation quantifies that: APE of the
full spatial-temporal pipeline at horizons of 2 hours, 6 hours, 12 hours
and a full day, each evaluated on the window immediately after training.
"""

import numpy as np
import pytest

from repro.benchhelpers import bench_jobs, pipeline_fleet, print_table
from repro.core.executor import FleetExecutor
from repro.prediction import SpatialTemporalConfig, SpatialTemporalPredictor
from repro.prediction.spatial.signatures import ClusteringMethod, SignatureSearchConfig
from repro.timeseries.metrics import mean_absolute_percentage_error

pytestmark = pytest.mark.slow

TRAIN_WINDOWS = 5 * 96
HORIZONS = (8, 24, 48, 96)  # 2h, 6h, 12h, 24h


def _box_horizon_apes(box, config):
    """Per-box APE at each horizon (module-level: runs inside pool workers)."""
    demands = box.demand_matrix()
    predictor = SpatialTemporalPredictor(config).fit(demands[:, :TRAIN_WINDOWS])
    prediction = predictor.predict(max(HORIZONS))
    out = {}
    for horizon in HORIZONS:
        actual = demands[:, TRAIN_WINDOWS : TRAIN_WINDOWS + horizon]
        apes = [
            mean_absolute_percentage_error(actual[i], prediction.predictions[i, :horizon])
            for i in range(actual.shape[0])
        ]
        apes = [a for a in apes if np.isfinite(a)]
        out[horizon] = float(np.mean(apes)) if apes else None
    return out


def _compute():
    fleet = pipeline_fleet(40)
    config = SpatialTemporalConfig(
        search=SignatureSearchConfig(method=ClusteringMethod.CBC),
        temporal_model="neural",
    )
    per_box = FleetExecutor(jobs=bench_jobs()).map(
        _box_horizon_apes, fleet.boxes[:15], config
    )
    out = {h: [] for h in HORIZONS}
    for box_apes in per_box:
        for horizon in HORIZONS:
            if box_apes[horizon] is not None:
                out[horizon].append(box_apes[horizon])
    return {h: float(np.mean(v)) for h, v in out.items()}


def test_horizon_ablation(benchmark):
    apes = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print_table(
        "Horizon ablation — mean APE (%) of the full ATM prediction",
        ["horizon (windows)", "hours", "APE %"],
        [[h, h / 4.0, apes[h]] for h in HORIZONS],
    )
    # Short horizons must not be (meaningfully) worse than the full day —
    # the paper's "accuracy decreases with horizon" claim, allowing noise.
    assert apes[8] <= apes[96] + 3.0
    assert apes[24] <= apes[96] + 3.0
    # The full-day APE stays in the regime the resizing study relies on.
    assert apes[96] < 55.0
