"""Paper-scale fleet engine — peak RSS and wall-clock vs fleet size.

Sweeps the full predict+resize pipeline (``run_fleet_atm`` over a shard
store, seasonal-mean + CBC) at 100 → 1,000 → 6,000 boxes — the last being
the paper's actual fleet size — and records wall-clock plus peak RSS into
``BENCH_scale.json``.  The headline assertion: **peak RSS grows
sublinearly in fleet size**.  Shard generation streams box by box,
workers map per-box ``.npy`` slices, and streaming aggregation folds
results as chunks land, so a 60× larger fleet must not cost 60× the
memory; only the disk store and the wall-clock scale with the fleet.

Each scale runs in its own subprocess: ``ru_maxrss`` is a process
*lifetime* high-water mark, so measuring scales in one process would let
the largest run hide behind the earlier ones.  The child re-execs this
file with ``--child``, runs one scale with ``REPRO_FORBID_FLEET_GENERATION``
set during the pipeline phase (materializing the fleet would abort the
run, not just inflate it), and reports its measurements as JSON.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py [--boxes 100,1000,6000]
        [--jobs N] [--out BENCH_scale.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

BENCH_SCHEMA = "repro.bench_scale/v1"
DEFAULT_SCALES = (100, 1000, 6000)
DAYS = 6  # 5 training days + 1 evaluation day, the Fig. 9/10 setup

#: Sublinearity bar: across the default sweep the fleet grows 60x; the
#: run's peak RSS may not even double.  (Measured headroom is large — the
#: resident set is the interpreter + one box's pages + O(fleet) scalar
#: aggregates — but the bar is what the memory contract promises.)
MAX_RSS_GROWTH = 2.0


def _run_one_scale(n_boxes: int, jobs, seed: int = 20160628) -> dict:
    """Child body: shard-generate, run predict+resize, report measurements."""
    from repro import obs
    from repro.core import AtmConfig, run_fleet_atm
    from repro.core.executor import resolve_jobs
    from repro.prediction.spatial.signatures import ClusteringMethod
    from repro.store.shards import ShardedFleet, generate_fleet_shards
    from repro.trace.generator import FleetConfig
    from repro.trace.model import FORBID_GENERATION_ENV_VAR

    obs.reset_metrics()
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
        t0 = time.perf_counter()
        manifest = generate_fleet_shards(
            FleetConfig(n_boxes=n_boxes, days=DAYS, seed=seed), tmp, jobs=jobs
        )
        shard_s = time.perf_counter() - t0

        # From here on, materializing the whole fleet is a bug, not a cost.
        os.environ[FORBID_GENERATION_ENV_VAR] = "1"
        config = AtmConfig.with_clustering(
            ClusteringMethod.CBC, temporal_model="seasonal_mean"
        )
        t0 = time.perf_counter()
        result = run_fleet_atm(ShardedFleet(tmp), config, jobs=jobs)
        run_s = time.perf_counter() - t0

        obs.record_peak_rss()
        snap = obs.metrics_snapshot()
        return {
            "scenario": "paper-fig2",
            "boxes": n_boxes,
            "vms": manifest.n_vms,
            "store_bytes": manifest.total_bytes,
            "jobs": resolve_jobs(jobs),
            "shard_s": round(shard_s, 3),
            "run_s": round(run_s, 3),
            "boxes_per_s": round(n_boxes / max(1e-9, run_s), 2),
            "boxes_evaluated": len(result.accuracies),
            "reductions": len(result.reduction.results),
            # Max across this process and every pool worker (merged gauges).
            "peak_rss_bytes": int(snap["gauges"]["proc.peak_rss_bytes"]),
            "bytes_mapped": int(snap["counters"].get("shards.bytes_mapped", 0)),
        }


def _spawn_scale(n_boxes: int, jobs) -> dict:
    """Run one scale in a fresh subprocess and return its measurements."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    try:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [sys.executable, str(Path(__file__).resolve()), "--child",
               str(n_boxes), "--out", out_path]
        if jobs is not None:
            cmd += ["--jobs", str(jobs)]
        subprocess.run(cmd, check=True, env=env)
        with open(out_path, encoding="utf-8") as fh:
            return json.load(fh)
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


def sweep(scales, jobs=None, parallel_jobs=2) -> dict:
    """Run every scale in subprocess isolation and assemble the report.

    ``parallel_jobs`` adds one extra row re-running the smallest scale at
    that worker count (skipped when it matches the sweep's own ``jobs``),
    so the report always carries a jobs>1 throughput data point; the
    sublinearity ratios are computed over the same-``jobs`` rows only.
    """
    rows = [_spawn_scale(n, jobs) for n in scales]
    report = {
        "schema": BENCH_SCHEMA,
        "jobs": jobs if jobs is not None else int(os.environ.get("REPRO_JOBS", 1) or 1),
        "days": DAYS,
        "scales": rows,
    }
    if len(rows) >= 2:
        size_ratio = rows[-1]["boxes"] / rows[0]["boxes"]
        rss_ratio = rows[-1]["peak_rss_bytes"] / rows[0]["peak_rss_bytes"]
        report["size_ratio"] = round(size_ratio, 2)
        report["rss_ratio"] = round(rss_ratio, 3)
        report["sublinear"] = rss_ratio < min(MAX_RSS_GROWTH, size_ratio)
    if parallel_jobs and parallel_jobs > 1 and parallel_jobs != report["jobs"]:
        report["scales"].append(_spawn_scale(scales[0], parallel_jobs))
    return report


def _print_report(report: dict) -> None:
    from repro.benchhelpers import print_table

    print_table(
        f"Fleet-scale sweep — predict+resize over shard stores (jobs={report['jobs']})",
        ["boxes", "VMs", "jobs", "shard s", "run s", "boxes/s", "peak RSS MB",
         "mapped MB"],
        [
            [
                row["boxes"],
                row["vms"],
                row.get("jobs", report["jobs"]),
                row["shard_s"],
                row["run_s"],
                row.get("boxes_per_s", ""),
                round(row["peak_rss_bytes"] / 1e6, 1),
                round(row["bytes_mapped"] / 1e6, 1),
            ]
            for row in report["scales"]
        ],
    )
    if "rss_ratio" in report:
        print(
            f"fleet grew {report['size_ratio']}x, peak RSS grew "
            f"{report['rss_ratio']}x -> sublinear: {report['sublinear']}"
        )


def _check_sublinear(report: dict) -> None:
    assert report["sublinear"], (
        f"peak RSS grew {report['rss_ratio']}x over a "
        f"{report['size_ratio']}x fleet — the shard tier is not bounding "
        f"memory (rows: {report['scales']})"
    )


# --------------------------------------------------------------------- pytest
def test_fleet_scale_sublinear_rss(tmp_path):
    """The full 100 -> 1k -> 6k sweep; minutes of wall-clock (slow suite)."""
    report = sweep(DEFAULT_SCALES)
    (tmp_path / "BENCH_scale.json").write_text(json.dumps(report, indent=1))
    _print_report(report)
    for row in report["scales"]:
        assert row["boxes_evaluated"] == row["boxes"]
    _check_sublinear(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--boxes", type=str, default=",".join(str(n) for n in DEFAULT_SCALES),
        help="comma-separated fleet sizes to sweep (one size = smoke mode, "
        "no sublinearity assertion)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes per run (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_scale.json",
        help="write the JSON report here",
    )
    parser.add_argument("--child", type=int, default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child is not None:
        payload = _run_one_scale(args.child, args.jobs)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return 0

    scales = tuple(int(n) for n in args.boxes.split(","))
    report = sweep(scales, jobs=args.jobs)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    _print_report(report)
    print(f"wrote {args.out}")
    if "sublinear" in report:
        _check_sublinear(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
