"""Benchmark-suite configuration.

Every benchmark regenerates one figure/table of the paper and prints the
measured rows next to the published values, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report generator.
"""

import sys
from pathlib import Path

# Allow running the benches from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:  # pragma: no cover
    sys.path.insert(0, str(_SRC))
