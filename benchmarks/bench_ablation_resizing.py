"""Section IV ablations — ε discretization and greedy optimality.

Two design choices DESIGN.md calls out:

1. **ε discretization** trades problem size for a safety margin.  The bench
   sweeps ε over {0, 2, 5, 10, 20}% and reports the MCKP variable count and
   the achieved ticket reduction (oracle demands).
2. **Greedy vs exact.**  The greedy MTRV algorithm is compared against the
   exact DP solver box by box; the paper relies on the greedy being "near
   optimal", which the measured gap quantifies.
"""

import numpy as np

from repro.benchhelpers import characterization_fleet, print_table
from repro.resizing.exact import solve_dp
from repro.resizing.greedy import solve_greedy
from repro.resizing.mckp import build_mckp
from repro.resizing.problem import ResizingProblem, tickets_for_allocation
from repro.tickets.policy import TicketPolicy
from repro.trace.model import Resource

EPSILONS = (0.0, 2.0, 5.0, 10.0, 20.0)


def _problems():
    fleet = characterization_fleet(60)
    policy = TicketPolicy(60.0)
    problems = []
    for box in fleet:
        demands = box.demand_matrix(Resource.CPU)[:, :96]
        current = box.allocations(Resource.CPU)
        problems.append(
            (
                ResizingProblem(
                    demands=demands,
                    capacity=box.cpu_capacity,
                    alpha=policy.alpha,
                    lower_bounds=np.minimum(demands.max(axis=1), box.cpu_capacity),
                    upper_bounds=np.full(box.n_vms, box.cpu_capacity),
                ),
                current,
            )
        )
    return problems


def _epsilon_sweep(problems):
    rows = []
    for eps_pct in EPSILONS:
        variables = 0
        tickets = 0
        for problem, current in problems:
            instance = build_mckp(problem, epsilon=eps_pct / 100.0 * current)
            variables += instance.n_variables
            solution = solve_greedy(instance)
            alloc = solution.allocations if solution.feasible else current
            tickets += tickets_for_allocation(problem, alloc)
        rows.append([eps_pct, variables, tickets])
    return rows


def _greedy_gap(problems):
    gaps = []
    for problem, current in problems:
        instance = build_mckp(problem)
        greedy = solve_greedy(instance)
        exact = solve_dp(instance, grid_points=1024)
        if greedy.feasible and exact.feasible:
            gaps.append(greedy.tickets - exact.tickets)
    return gaps


def test_resizing_ablation(benchmark):
    problems = _problems()
    rows = benchmark.pedantic(lambda: _epsilon_sweep(problems), rounds=1, iterations=1)
    print_table(
        "ε ablation — MCKP size vs achieved tickets (oracle demands, CPU)",
        ["eps %", "variables", "tickets after"],
        rows,
    )
    gaps = _greedy_gap(problems)
    print_table(
        "Greedy vs exact DP — per-box ticket gap",
        ["boxes", "mean gap", "max gap", "optimal share %"],
        [
            [
                len(gaps),
                float(np.mean(gaps)),
                int(np.max(gaps)),
                100.0 * float(np.mean(np.asarray(gaps) <= 0)),
            ]
        ],
    )

    # ε shrinks the instance monotonically.
    variables = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(variables, variables[1:])), (
        "larger ε must not grow the MCKP"
    )
    # The greedy is near-optimal: small mean gap, mostly exactly optimal.
    # (MCKP greedies are not optimal in general — a rare box can pay a few
    # tickets; what matters is that the typical box pays none.)
    assert float(np.mean(gaps)) <= 2.5
    assert float(np.mean(np.asarray(gaps) <= 0)) > 0.8
