"""Batched temporal training — per-box fit speedup over serial MLP fits.

For every box of the shared pipeline fleet the ATM fit trains one MLP per
signature series.  This bench times that inner loop both ways — per-series
``NeuralNetPredictor.fit`` versus the batched tensor kernel
(``fit_neural_batch``) — on the exact signature histories the fig09/fig10
pipeline trains on, asserts the results are bit-identical, and requires a
≥3× aggregate speedup (single-process vectorization: no extra cores
needed).

It also re-times the fig09/fig10 pipeline compute at ``jobs=1`` and writes
``BENCH_temporal.json`` next to the repo root — per-box fit seconds plus
the fig-level wall-clock against the pre-batching baseline recorded in
``bench_output_verbose.txt`` — so later PRs can track perf regressions.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_temporal_batch.py [--quick]
        [--boxes N] [--no-figs]
"""

import argparse
import hashlib
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.benchhelpers import pipeline_fleet, print_table
from repro.benchhelpers.scaling import fingerprint_result
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.cache import SIGNATURE_CACHE
from repro.prediction.spatial.signatures import ClusteringMethod, search_signature_set
from repro.prediction.temporal.batched import fit_neural_batch
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor

pytestmark = pytest.mark.slow

TARGET_SPEEDUP = 3.0
REPEATS = 5
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_temporal.json"

#: fig09/fig10 wall-clock (ms, jobs=1) before the batched kernel, as
#: recorded in bench_output_verbose.txt — the regression reference.
BASELINE_MS = {"fig09": 25_924.9502, "fig10": 26_702.5730}


def _signature_histories(box, config):
    """The signature series a fig09/fig10 fit trains temporal models on."""
    windows = min(config.training_windows, box.n_windows)
    demands = box.demand_matrix()[:, :windows]  # stacked CPU+RAM
    spatial = search_signature_set(demands, config.prediction.search)
    return [demands[idx] for idx in spatial.signature_indices]


def _time_best(fn, repeats=REPEATS):
    """Best-of-N wall clock — the low-noise estimator on a busy machine."""
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def per_box_speedup(n_boxes=8, config=None):
    """Serial-vs-batched fit timings over the shared bench fleet's boxes.

    Returns ``(rows, totals)``: one ``[box, K, serial_s, batched_s,
    speedup]`` row per multi-signature box, and the aggregate seconds.
    Bit-identical forecasts are asserted along the way.
    """
    cfg = config or AtmConfig.with_clustering(ClusteringMethod.CBC)
    mlp = MlpConfig(period=cfg.prediction.period)
    fleet = pipeline_fleet(40)
    rows = []
    total_serial = total_batched = 0.0
    for box in fleet.boxes[:n_boxes]:
        histories = _signature_histories(box, cfg)
        if len(histories) < 2:
            continue  # K=1 routes to the serial path by design
        serial_s, serial = _time_best(
            lambda: [NeuralNetPredictor(mlp).fit(h) for h in histories]
        )
        batched_s, batched = _time_best(lambda: fit_neural_batch(histories, mlp))
        for s, b in zip(serial, batched):
            np.testing.assert_array_equal(s.predict(96), b.predict(96))
        rows.append(
            [box.box_id, len(histories), serial_s, batched_s, serial_s / batched_s]
        )
        total_serial += serial_s
        total_batched += batched_s
    totals = {
        "serial_seconds": total_serial,
        "batched_seconds": total_batched,
        "speedup": total_serial / total_batched,
    }
    return rows, totals


def fig_wallclock():
    """Re-time the fig09/fig10 pipeline compute (jobs=1, batched kernel).

    Both figures run the same two ``run_fleet_atm`` sweeps (DTW + CBC) and
    report different aggregates, so each gets its own timed sweep with a
    cold signature cache, mirroring a fresh bench process.
    """
    fleet = pipeline_fleet(40)
    timings = {}
    for fig in ("fig09", "fig10"):
        SIGNATURE_CACHE.clear()
        start = time.perf_counter()
        results = {
            method: run_fleet_atm(fleet, AtmConfig.with_clustering(method), jobs=1)
            for method in (ClusteringMethod.DTW, ClusteringMethod.CBC)
        }
        elapsed_ms = 1000.0 * (time.perf_counter() - start)
        baseline = BASELINE_MS[fig]
        timings[fig] = {
            "baseline_ms": baseline,
            "measured_ms": elapsed_ms,
            "reduction_pct": 100.0 * (1.0 - elapsed_ms / baseline),
            "fingerprint_digest": hashlib.sha256(
                repr(tuple(fingerprint_result(r) for r in results.values())).encode()
            ).hexdigest()[:16],
        }
    SIGNATURE_CACHE.clear()
    return timings


def write_report(rows, totals, figs):
    report = {
        "bench": "temporal_batch",
        "fleet": "pipeline-40 (seed 20160629)",
        "repeats": REPEATS,
        "per_box": [
            {
                "box_id": box_id,
                "n_signatures": k,
                "serial_seconds": serial_s,
                "batched_seconds": batched_s,
                "speedup": speedup,
            }
            for box_id, k, serial_s, batched_s, speedup in rows
        ],
        "totals": totals,
        "fig_wallclock": figs,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_rows(rows, totals):
    print_table(
        "Batched temporal training — per-box fit time (s)",
        ["box", "K", "serial", "batched", "speedup"],
        rows,
    )
    print(
        f"aggregate: serial {totals['serial_seconds']:.2f}s, "
        f"batched {totals['batched_seconds']:.2f}s, "
        f"speedup {totals['speedup']:.2f}x"
    )


def test_temporal_batch_speedup(benchmark):
    (rows, totals), figs = benchmark.pedantic(
        lambda: (per_box_speedup(), fig_wallclock()), rounds=1, iterations=1
    )
    _print_rows(rows, totals)
    for fig, timing in figs.items():
        print(
            f"{fig}: {timing['measured_ms']:.0f}ms vs baseline "
            f"{timing['baseline_ms']:.0f}ms ({timing['reduction_pct']:.0f}% faster)"
        )
    write_report(rows, totals, figs)

    assert rows, "bench fleet must contain multi-signature boxes"
    assert totals["speedup"] >= TARGET_SPEEDUP, (
        f"expected >= {TARGET_SPEEDUP}x batched speedup, "
        f"measured {totals['speedup']:.2f}x"
    )
    for fig, timing in figs.items():
        assert timing["reduction_pct"] >= 40.0, (
            f"{fig} wall-clock must drop >= 40% vs bench_output_verbose.txt, "
            f"measured {timing['reduction_pct']:.1f}%"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="two-box smoke run, no fig re-timing, no JSON (seconds)",
    )
    parser.add_argument("--boxes", type=int, default=8, help="boxes to time")
    parser.add_argument(
        "--no-figs", action="store_true", help="skip the fig09/fig10 re-timing"
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows, totals = per_box_speedup(n_boxes=2)
        _print_rows(rows, totals)
        print("quick smoke: equivalence OK (no JSON written)")
        return 0
    rows, totals = per_box_speedup(n_boxes=args.boxes)
    _print_rows(rows, totals)
    figs = {} if args.no_figs else fig_wallclock()
    for fig, timing in figs.items():
        print(
            f"{fig}: {timing['measured_ms']:.0f}ms vs baseline "
            f"{timing['baseline_ms']:.0f}ms ({timing['reduction_pct']:.0f}% faster)"
        )
    report = write_report(rows, totals, figs)
    print(f"wrote {RESULTS_PATH.name}: speedup {report['totals']['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
