"""Ticket-operations fleet loop — serial vs parallel wall-clock and digests.

Benchmarks :func:`repro.tickets.ops.run_fleet_ops` (PR: the
monitor → incidents → route → resolve loop) over a sharded fleet:

* **serial** — ``jobs=1``: one process walks every box ref.
* **parallel** — ``jobs=N``: the fleet executor fans box refs out to
  workers, which memory-map their shards; results stream back through
  the constant-memory fold.

Correctness is the headline, not the speedup: scoring, assignment and
the SLA-clock schedule are pure functions of one box's trace and the
``OpsConfig``, and the fleet folds per-box digests in fleet box order —
so the assignment and evidence digests must match **bit-identically**
between the legs, and the benchmark fails loudly if they drift.  The
timing ratio is recorded for the report but only sanity-checked (the
per-box work is light, so parallel wins are host-dependent).

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_ticket_ops.py [--boxes 2000]
        [--jobs 4] [--quick] [--out BENCH_ticket_ops.json]
"""

import argparse
import json
import os
import tempfile
import time

import pytest

pytestmark = pytest.mark.slow

BENCH_SCHEMA = "repro.bench_ticket_ops/v1"
DEFAULT_BOXES = 2000
DEFAULT_JOBS = 4
QUICK_BOXES = 24
DAYS = 1


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_leg(root: str, jobs: int) -> dict:
    from repro import obs
    from repro.store.shards import ShardedFleet
    from repro.tickets.ops import run_fleet_ops

    obs.reset_metrics()
    t0 = time.perf_counter()
    result = run_fleet_ops(ShardedFleet(root), jobs=jobs)
    elapsed = time.perf_counter() - t0
    obs.record_peak_rss()
    snap = obs.metrics_snapshot()
    return {
        "jobs": jobs,
        "run_s": round(elapsed, 3),
        "boxes": result.boxes,
        "tickets": result.tickets,
        "incidents": result.incidents,
        "breached_incidents": result.breached_incidents,
        "assignment_digest": result.assignment_digest,
        "evidence_digest": result.evidence_digest,
        "peak_rss_bytes": int(snap["gauges"]["proc.peak_rss_bytes"]),
    }


def run_bench(n_boxes: int, jobs: int, seed: int = 20160628) -> dict:
    from repro.store.shards import generate_fleet_shards
    from repro.trace.generator import FleetConfig

    with tempfile.TemporaryDirectory(prefix="bench-ticket-ops-") as tmp:
        generate_fleet_shards(
            FleetConfig(n_boxes=n_boxes, days=DAYS, seed=seed), tmp
        )
        serial = _run_leg(tmp, jobs=1)
        parallel = _run_leg(tmp, jobs=jobs)

    if serial["assignment_digest"] != parallel["assignment_digest"]:
        raise AssertionError(
            "assignment digests drifted between serial and parallel: "
            f"{serial['assignment_digest']} != {parallel['assignment_digest']}"
        )
    if serial["evidence_digest"] != parallel["evidence_digest"]:
        raise AssertionError(
            "evidence digests drifted between serial and parallel: "
            f"{serial['evidence_digest']} != {parallel['evidence_digest']}"
        )
    return {
        "schema": BENCH_SCHEMA,
        "boxes": n_boxes,
        "effective_cpus": _effective_cpus(),
        "serial": serial,
        "parallel": parallel,
        "speedup": round(serial["run_s"] / max(parallel["run_s"], 1e-9), 2),
        "digests_identical": True,
    }


def test_ticket_ops_parallel_digests():
    report = run_bench(n_boxes=QUICK_BOXES, jobs=2)
    assert report["digests_identical"]
    assert report["serial"]["incidents"] == report["parallel"]["incidents"]
    assert report["serial"]["incidents"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--boxes", type=int, default=DEFAULT_BOXES)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small fleet ({QUICK_BOXES} boxes) for smoke runs",
    )
    parser.add_argument("--out", type=str, default=None, help="write JSON report")
    args = parser.parse_args(argv)

    n_boxes = QUICK_BOXES if args.quick else args.boxes
    report = run_bench(n_boxes=n_boxes, jobs=args.jobs)
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
