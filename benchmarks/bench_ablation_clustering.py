"""Clustering-method ablation: DTW vs CBC vs FEATURE (step 1 of ATM).

The paper evaluates DTW and CBC; its related work points at feature
extraction [11] as the third standard option, implemented here in
`repro.prediction.spatial.features`.  This ablation compares all three on
signature-set reduction, spatial-fit accuracy, and search wall time — the
trade-off a deployment must choose on.
"""

import time

import numpy as np
import pytest

from repro.benchhelpers import bench_jobs, pipeline_fleet, print_table
from repro.core.executor import FleetExecutor
from repro.prediction.spatial.cache import SIGNATURE_CACHE
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)
from repro.timeseries.metrics import mean_absolute_percentage_error

pytestmark = pytest.mark.slow

TRAIN_WINDOWS = 5 * 96


def _box_signature_eval(box, config):
    """Per-box search + in-sample fit APE (module-level: pool-worker safe)."""
    data = box.demand_matrix()[:, :TRAIN_WINDOWS]
    model = search_signature_set(data, config)
    fitted = model.fitted(data)
    box_apes = [
        mean_absolute_percentage_error(data[i], fitted[i])
        for i in model.dependent_indices
    ]
    box_apes = [a for a in box_apes if np.isfinite(a)]
    ape = float(np.mean(box_apes)) if box_apes else None
    return 100.0 * model.signature_ratio, ape


def _evaluate(method: ClusteringMethod):
    fleet = pipeline_fleet(40)
    config = SignatureSearchConfig(method=method, dtw_window=12, period=96)
    # The timing column measures the search itself, not memoized replays.
    SIGNATURE_CACHE.clear()
    start = time.perf_counter()
    per_box = FleetExecutor(jobs=bench_jobs()).map(_box_signature_eval, fleet.boxes, config)
    elapsed = time.perf_counter() - start
    ratios = [ratio for ratio, _ in per_box]
    apes = [ape for _, ape in per_box if ape is not None]
    return float(np.mean(ratios)), float(np.mean(apes)), elapsed


def test_clustering_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {m: _evaluate(m) for m in ClusteringMethod}, rounds=1, iterations=1
    )
    print_table(
        "Clustering ablation — signature ratio %, fit APE %, search seconds",
        ["method", "ratio", "APE", "seconds"],
        [[m.value, r, a, s] for m, (r, a, s) in results.items()],
    )

    dtw_ratio, dtw_ape, dtw_time = results[ClusteringMethod.DTW]
    cbc_ratio, cbc_ape, _cbc_time = results[ClusteringMethod.CBC]
    feat_ratio, feat_ape, feat_time = results[ClusteringMethod.FEATURE]

    # The documented trade-off triangle:
    assert dtw_ratio < cbc_ratio, "DTW reduces the most"
    assert cbc_ape < dtw_ape, "CBC fits dependents best"
    assert feat_time < dtw_time, "features are the cheapest search"
    # Features land between the extremes on reduction.
    assert dtw_ratio - 10.0 < feat_ratio < cbc_ratio + 20.0
