"""Clustering-method ablation: DTW vs CBC vs FEATURE (step 1 of ATM).

The paper evaluates DTW and CBC; its related work points at feature
extraction [11] as the third standard option, implemented here in
`repro.prediction.spatial.features`.  This ablation compares all three on
signature-set reduction, spatial-fit accuracy, and search wall time — the
trade-off a deployment must choose on.
"""

import time

import numpy as np

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)
from repro.timeseries.metrics import mean_absolute_percentage_error

TRAIN_WINDOWS = 5 * 96


def _evaluate(method: ClusteringMethod):
    fleet = pipeline_fleet(40)
    config = SignatureSearchConfig(method=method, dtw_window=12, period=96)
    ratios, apes = [], []
    start = time.perf_counter()
    for box in fleet:
        data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        model = search_signature_set(data, config)
        ratios.append(100.0 * model.signature_ratio)
        fitted = model.fitted(data)
        box_apes = [
            mean_absolute_percentage_error(data[i], fitted[i])
            for i in model.dependent_indices
        ]
        box_apes = [a for a in box_apes if np.isfinite(a)]
        if box_apes:
            apes.append(float(np.mean(box_apes)))
    elapsed = time.perf_counter() - start
    return float(np.mean(ratios)), float(np.mean(apes)), elapsed


def test_clustering_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {m: _evaluate(m) for m in ClusteringMethod}, rounds=1, iterations=1
    )
    print_table(
        "Clustering ablation — signature ratio %, fit APE %, search seconds",
        ["method", "ratio", "APE", "seconds"],
        [[m.value, r, a, s] for m, (r, a, s) in results.items()],
    )

    dtw_ratio, dtw_ape, dtw_time = results[ClusteringMethod.DTW]
    cbc_ratio, cbc_ape, _cbc_time = results[ClusteringMethod.CBC]
    feat_ratio, feat_ape, feat_time = results[ClusteringMethod.FEATURE]

    # The documented trade-off triangle:
    assert dtw_ratio < cbc_ratio, "DTW reduces the most"
    assert cbc_ape < dtw_ape, "CBC fits dependents best"
    assert feat_time < dtw_time, "features are the cheapest search"
    # Features land between the extremes on reduction.
    assert dtw_ratio - 10.0 < feat_ratio < cbc_ratio + 20.0
