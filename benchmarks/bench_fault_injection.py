"""Fault-injection smoke: the degraded fleet completes, the healthy part
is bit-identical, and the metrics pipeline stays cheap.

Three checks, each an acceptance criterion of the hardening work:

1. **Graceful degradation** — with seeded faults killing at least one
   box's primary fit, ``run_fleet_atm`` and ``run_online_fleet`` still
   complete and report the degraded boxes in their structured reports.
2. **Isolation** — every box the faults spared produces results
   bit-identical to a no-faults run (hash-keyed decisions consume no
   shared RNG stream).
3. **Observability overhead** — the :mod:`repro.obs` counters/spans add
   ≤2% wall-clock to the serial fig10-style pipeline (``REPRO_METRICS=0``
   vs the default).

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fault_injection.py [--quick]
        [--boxes N]
"""

import argparse
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.benchhelpers import print_table
from repro.core import AtmConfig, run_fleet_atm, run_online_fleet
from repro.core.faults import FaultPlan, FaultRule, _hash_unit, fault_plan
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.trace.generator import FleetConfig, generate_fleet

pytestmark = pytest.mark.slow

OVERHEAD_BUDGET_PCT = 2.0


def _config():
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )


def _selective_plan(kinds, keys, seed=5):
    """A plan firing ``kinds`` for exactly the lowest-hash box of ``keys``."""
    probability = None
    victims = set()
    for kind in kinds:
        units = sorted((_hash_unit(seed, kind, k), k) for k in keys)
        victims.add(units[0][1])
        cut = (units[0][0] + units[1][0]) / 2.0
        probability = cut if probability is None else min(probability, cut)
    rules = tuple(FaultRule(kind, probability) for kind in kinds)
    return FaultPlan(rules=rules, seed=seed), victims


def run_degradation_smoke(n_boxes: int = 6):
    """Faulted fleet runs complete; healthy boxes are bit-identical."""
    config = _config()
    fleet = generate_fleet(FleetConfig(n_boxes=n_boxes, days=7, seed=29), name="faults")
    keys = [box.box_id for box in fleet]
    plan, victims = _selective_plan(("fit_error",), keys)

    clean = run_fleet_atm(fleet, config)
    clean_online = run_online_fleet(fleet, config)
    with fault_plan(plan):
        faulted = run_fleet_atm(fleet, config)
        faulted_online = run_online_fleet(fleet, config)

    degraded = set(faulted.report.degraded_boxes)
    assert degraded, "seeded faults degraded no box"
    assert degraded <= victims | set(keys)

    clean_by_id = {a.box_id: a for a in clean.accuracies}
    identical = 0
    for acc in faulted.accuracies:
        if acc.box_id in degraded:
            continue
        np.testing.assert_array_equal(acc.ape, clean_by_id[acc.box_id].ape)
        np.testing.assert_array_equal(acc.peak_ape, clean_by_id[acc.box_id].peak_ape)
        identical += 1
    assert identical == len(keys) - len(degraded)

    online_degraded = set(faulted_online.report.degraded_boxes)
    assert online_degraded
    for box_id in set(faulted_online) - online_degraded:
        for a, b in zip(clean_online[box_id].steps, faulted_online[box_id].steps):
            np.testing.assert_array_equal(a.allocation, b.allocation)
            assert a.tickets_atm == b.tickets_atm

    return [
        ["boxes", len(keys)],
        ["degraded (fig10)", len(degraded)],
        ["degraded (online)", len(online_degraded)],
        ["healthy bit-identical", identical],
    ]


def measure_metrics_overhead(n_boxes: int = 8, repeats: int = 3):
    """Serial fig10 pipeline wall-clock, metrics on vs off (best-of-N)."""
    config = _config()
    fleet = generate_fleet(FleetConfig(n_boxes=n_boxes, days=6, seed=31), name="obs-bench")

    def timed():
        obs.reset_metrics()
        start = time.perf_counter()
        run_fleet_atm(fleet, config, jobs=1)
        return time.perf_counter() - start

    run_fleet_atm(fleet, config, jobs=1)  # warm the signature cache
    previous = os.environ.get(obs.METRICS_ENV_VAR)
    try:
        os.environ[obs.METRICS_ENV_VAR] = "0"
        off = min(timed() for _ in range(repeats))
        os.environ.pop(obs.METRICS_ENV_VAR)
        if previous is not None:
            os.environ[obs.METRICS_ENV_VAR] = previous
        on = min(timed() for _ in range(repeats))
    finally:
        if previous is None:
            os.environ.pop(obs.METRICS_ENV_VAR, None)
        else:
            os.environ[obs.METRICS_ENV_VAR] = previous
    overhead_pct = 100.0 * (on - off) / off if off > 0 else 0.0
    return on, off, overhead_pct


def test_fault_injection_smoke():
    rows = run_degradation_smoke(n_boxes=6)
    print_table("Fault-injection smoke (fig10 + online)", ["check", "value"], rows)


def test_metrics_overhead_budget():
    on, off, overhead_pct = measure_metrics_overhead()
    print_table(
        "Metrics overhead — serial fig10 pipeline",
        ["run", "seconds"],
        [["metrics on", on], ["metrics off", off], ["overhead %", overhead_pct]],
    )
    # Timing noise can dominate a sub-second run; allow the budget with a
    # floor of 20 ms absolute difference before failing.
    assert overhead_pct <= OVERHEAD_BUDGET_PCT or (on - off) <= 0.02, (
        f"metrics overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT}% budget"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small-fleet smoke run (seconds); used by the CI fault gate",
    )
    parser.add_argument("--boxes", type=int, default=8, help="fleet size")
    args = parser.parse_args(argv)

    n_boxes = 4 if args.quick else args.boxes
    rows = run_degradation_smoke(n_boxes=n_boxes)
    print_table("Fault-injection smoke (fig10 + online)", ["check", "value"], rows)

    if not args.quick:
        on, off, overhead_pct = measure_metrics_overhead(n_boxes=n_boxes)
        print_table(
            "Metrics overhead — serial fig10 pipeline",
            ["run", "seconds"],
            [["metrics on", on], ["metrics off", off], ["overhead %", overhead_pct]],
        )
    print("fault-injection smoke: OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
