"""Online control plane — incremental vs cold-refit step cost.

The rolling controller's step cost is dominated by refreshing the
predictor.  The incremental machinery replaces the per-step signature
search + cold MLP training with a drift check plus a warm-started
temporal refit, so this bench measures exactly that substitution:

* a **cold** run (``REPRO_WARM_REFIT=0``, ``REPRO_DRIFT_GATE=0``,
  ``refit_every_steps=1``): every step re-runs the full search + cold
  fit — per-step cost read from the ``online.fit`` span;
* an **incremental** run (gates on, cadence cap out of reach): one
  initial fit, then drift-checked warm temporal refits — per-step cost
  read from the ``online.refit_temporal`` + ``online.drift_check``
  spans.

The incremental step must be ≥ 5x cheaper (≥ 2x in ``--quick``), the
ticket-reduction percentage must stay within tolerance of the cold
run's, no step may degrade below the primary rung, and a ``jobs=2``
incremental run must be bit-identical to the serial one (steps and
degradation events).

Results land in ``BENCH_online.json``.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_online_incremental.py [--quick]
        [--boxes N] [--days D] [--output PATH]
"""

import argparse
import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.benchhelpers import print_table
from repro.core.config import AtmConfig
from repro.core.online import run_online_fleet
from repro.core.runtime import DRIFT_GATE_ENV_VAR, WARM_REFIT_ENV_VAR
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.trace.generator import FleetConfig, generate_fleet

pytestmark = pytest.mark.slow

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_online.json"

TARGET_STEP_SPEEDUP = 5.0
QUICK_STEP_SPEEDUP = 2.0
REDUCTION_TOLERANCE_PP = 5.0
NEVER = 10**6  # cadence cap far beyond any bench trace


def _fleet(n_boxes: int, days: int):
    return generate_fleet(
        FleetConfig(n_boxes=n_boxes, days=days, seed=41), name="bench-online"
    )


def _config() -> AtmConfig:
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="neural")


def _digest(result) -> str:
    """Byte-exact digest of a fleet run: every step plus every event."""
    payload = repr(
        (
            [
                (
                    box_id,
                    [
                        (
                            s.day_index,
                            s.resource.value,
                            s.ape,
                            s.tickets_static,
                            s.tickets_atm,
                            s.allocation.tobytes(),
                            s.predicted_mean,
                            s.rung,
                        )
                        for s in r.steps
                    ],
                )
                for box_id, r in sorted(result.items())
            ],
            [(e.box_id, e.stage, e.rung, e.reason, e.step) for e in result.report.events],
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def _with_gates(warm: bool, drift: bool):
    os.environ[WARM_REFIT_ENV_VAR] = "1" if warm else "0"
    os.environ[DRIFT_GATE_ENV_VAR] = "1" if drift else "0"


def _timed_run(fleet, config, refit_every: int) -> dict:
    obs.reset_metrics()
    start = time.perf_counter()
    result = run_online_fleet(fleet, config, refit_every_steps=refit_every, jobs=1)
    seconds = time.perf_counter() - start
    snap = obs.metrics_snapshot()
    spans, counters = snap["spans"], snap["counters"]
    fit = spans.get("online.fit", {"count": 0, "total_s": 0.0})
    refit_temporal = spans.get("online.refit_temporal", {"count": 0, "total_s": 0.0})
    drift_check = spans.get("online.drift_check", {"count": 0, "total_s": 0.0})
    return {
        "seconds": seconds,
        "digest": _digest(result),
        "reduction_percent": result.reduction_percent(),
        "tickets_static": result.total_tickets(static=True),
        "tickets_atm": result.total_tickets(),
        "degradation_events": len(result.report.events),
        "full_fits": int(fit["count"]),
        "full_fit_seconds": fit["total_s"],
        "incremental_steps": int(refit_temporal["count"]),
        "incremental_seconds": refit_temporal["total_s"] + drift_check["total_s"],
        "drift_skips": int(counters.get("online.drift_skips", 0)),
        "drift_refits": int(counters.get("online.refit.drift", 0)),
        "cap_refits": int(counters.get("online.refit.cap", 0)),
        "warm_models": int(counters.get("warm.models_warm", 0)),
        "guard_cold_refits": int(counters.get("warm.guard_cold_refits", 0)),
    }


def run_bench(n_boxes: int, days: int, enforce: bool, quick: bool = False) -> dict:
    fleet = _fleet(n_boxes, days)
    config = _config()
    saved = {
        name: os.environ.get(name)
        for name in (WARM_REFIT_ENV_VAR, DRIFT_GATE_ENV_VAR)
    }
    try:
        _with_gates(warm=False, drift=False)
        cold = _timed_run(fleet, config, refit_every=1)

        _with_gates(warm=True, drift=True)
        incremental = _timed_run(fleet, config, refit_every=NEVER)

        obs.reset_metrics()
        parallel_digest = _digest(
            run_online_fleet(fleet, config, refit_every_steps=NEVER, jobs=2)
        )
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        obs.reset_metrics()

    # Per-step predictor-refresh cost: the full search+fit of a cold step
    # vs the drift check + warm temporal refit of an incremental step.
    cold_step = cold["full_fit_seconds"] / max(1, cold["full_fits"])
    incr_step = incremental["incremental_seconds"] / max(
        1, incremental["incremental_steps"]
    )
    speedup = cold_step / incr_step if incr_step > 0 else float("inf")
    checked = (
        incremental["drift_skips"]
        + incremental["drift_refits"]
        + incremental["cap_refits"]
    )
    report = {
        "bench": "online_incremental",
        "fleet": f"bench-online-{n_boxes}x{days}d (seed 41)",
        "temporal_model": "neural",
        "cold": cold,
        "incremental": incremental,
        "per_step": {
            "cold_fit_seconds": cold_step,
            "incremental_seconds": incr_step,
            "speedup": speedup,
        },
        "drift_gate": {
            "skip_rate": incremental["drift_skips"] / checked if checked else 0.0,
            "skips": incremental["drift_skips"],
            "early_refits": incremental["drift_refits"],
            "cap_refits": incremental["cap_refits"],
        },
        "reduction_delta_pp": abs(
            cold["reduction_percent"] - incremental["reduction_percent"]
        ),
        "parallel_identical": incremental["digest"] == parallel_digest,
    }

    assert report["parallel_identical"], "jobs=2 incremental run changed results"
    assert cold["degradation_events"] == 0, "cold run degraded"
    assert incremental["degradation_events"] == 0, "incremental run degraded"
    assert incremental["warm_models"] > 0, "warm chain never engaged"
    assert cold["tickets_static"] > 0, "trace produced no tickets to reduce"
    assert report["reduction_delta_pp"] <= REDUCTION_TOLERANCE_PP, (
        f"reduction drifted {report['reduction_delta_pp']:.2f}pp "
        f"(tolerance {REDUCTION_TOLERANCE_PP}pp)"
    )
    floor = QUICK_STEP_SPEEDUP if quick else TARGET_STEP_SPEEDUP
    if enforce:
        assert speedup >= floor, (
            f"expected incremental step >= {floor}x cheaper, "
            f"measured {speedup:.2f}x"
        )
    return report


def _print_report(report: dict) -> None:
    print_table(
        f"Online steps — cold vs incremental ({report['fleet']}, "
        f"{report['temporal_model']})",
        ["run", "wall s", "full fits", "incr steps", "reduction %", "degraded"],
        [
            [
                name,
                report[name]["seconds"],
                report[name]["full_fits"],
                report[name]["incremental_steps"],
                report[name]["reduction_percent"],
                report[name]["degradation_events"],
            ]
            for name in ("cold", "incremental")
        ],
    )
    per_step = report["per_step"]
    gate = report["drift_gate"]
    print(
        f"per-step refresh: cold {per_step['cold_fit_seconds']*1e3:.1f}ms vs "
        f"incremental {per_step['incremental_seconds']*1e3:.1f}ms "
        f"({per_step['speedup']:.1f}x), "
        f"drift-gate skip rate {gate['skip_rate']:.0%} "
        f"({gate['early_refits']} early, {gate['cap_refits']} cap refits), "
        f"reduction delta {report['reduction_delta_pp']:.2f}pp, "
        f"parallel identical: {report['parallel_identical']}"
    )


def test_online_incremental_speedup(benchmark):
    report = benchmark.pedantic(
        lambda: run_bench(n_boxes=1, days=8, enforce=True, quick=True),
        rounds=1,
        iterations=1,
    )
    _print_report(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single-box smoke run (seconds); enforces a 2x per-step floor "
        "and all parity checks, skips the JSON artifact",
    )
    parser.add_argument("--boxes", type=int, default=None, help="fleet size")
    parser.add_argument("--days", type=int, default=None, help="trace length")
    parser.add_argument(
        "--output", type=str, default=str(RESULTS_PATH),
        help="result JSON path (full mode only)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        report = run_bench(
            n_boxes=args.boxes or 1, days=args.days or 8, enforce=True, quick=True
        )
        _print_report(report)
        print("quick mode: parity checks passed (2x floor enforced)")
        return 0
    report = run_bench(
        n_boxes=args.boxes or 3, days=args.days or 10, enforce=True
    )
    _print_report(report)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
