"""Figure 5 — distribution of cluster counts under DTW and CBC.

For every box, cluster the 5-day training demand series (CPU+RAM stacked)
with DTW-hierarchical clustering and with CBC, and histogram the resulting
number of clusters across boxes.  Paper: with DTW ~70% of boxes land at
2-3 clusters; CBC is "less aggressive" (more clusters), and most CBC
signature series are CPU.
"""

import numpy as np

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction.spatial.cbc import correlation_based_clusters
from repro.prediction.spatial.dtw_cluster import dtw_clusters
from repro.timeseries.ecdf import histogram_shares

TRAIN_WINDOWS = 5 * 96
BINS = [2, 4, 6, 8, 10, 16, 32, 65]


def _compute():
    fleet = pipeline_fleet(40)
    dtw_counts, cbc_counts = [], []
    cbc_cpu_signatures = cbc_total_signatures = 0
    for box in fleet:
        data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        dtw_counts.append(dtw_clusters(data, window=12).n_clusters)
        cbc = correlation_based_clusters(data)
        cbc_counts.append(cbc.n_clusters)
        cbc_total_signatures += len(cbc.signatures)
        cbc_cpu_signatures += sum(1 for s in cbc.signatures if s < box.n_vms)
    return dtw_counts, cbc_counts, cbc_cpu_signatures / cbc_total_signatures


def test_fig05_cluster_count_distribution(benchmark):
    dtw_counts, cbc_counts, cbc_cpu_share = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )
    dtw_hist = histogram_shares(dtw_counts, BINS)
    cbc_hist = histogram_shares(cbc_counts, BINS)
    print_table(
        "Fig. 5 — % of boxes per cluster count (paper: DTW ~70% at 2-3)",
        ["clusters", "DTW %", "CBC %"],
        [
            [label, 100 * d, 100 * c]
            for (label, d), (_, c) in zip(dtw_hist, cbc_hist)
        ],
    )
    print(f"CBC signature series that are CPU: {100 * cbc_cpu_share:.1f}% "
          f"(paper: 'most signature series are CPU')")

    # Shape: DTW concentrates at small cluster counts; CBC uses more.
    assert np.mean(np.asarray(dtw_counts) <= 3) > 0.5, "DTW should mostly find 2-3 clusters"
    assert np.mean(cbc_counts) > np.mean(dtw_counts), "CBC is less aggressive than DTW"
    assert cbc_cpu_share > 0.5, "most CBC signatures should be CPU series"
