"""Figure 9 — full-ATM prediction accuracy CDFs.

Runs the complete spatial-temporal pipeline (5 training days, neural
signature models, 1-day horizon) with both clustering variants and prints
the CDFs of per-box mean APE — over all windows and over peak windows
(actual usage above the 60% threshold).

Paper: mean APE 31% (DTW) / 23% (CBC); peak-only 20% / 17%.
"""

import numpy as np
import pytest

from repro.benchhelpers import bench_jobs, pipeline_fleet, print_series, print_table
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod

pytestmark = pytest.mark.slow

PAPER = {
    (ClusteringMethod.DTW, False): 31.0,
    (ClusteringMethod.DTW, True): 20.0,
    (ClusteringMethod.CBC, False): 23.0,
    (ClusteringMethod.CBC, True): 17.0,
}


def _compute():
    fleet = pipeline_fleet(40)
    return {
        method: run_fleet_atm(fleet, AtmConfig.with_clustering(method), jobs=bench_jobs())
        for method in (ClusteringMethod.DTW, ClusteringMethod.CBC)
    }


def test_fig09_prediction_accuracy(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for method, result in results.items():
        for peak in (False, True):
            rows.append(
                [
                    f"ATM w/ {method.value.upper()}",
                    "peak" if peak else "all",
                    result.mean_ape(peak=peak),
                    PAPER[(method, peak)],
                    100.0 * result.mean_signature_ratio(),
                ]
            )
    print_table(
        "Fig. 9 — mean APE (%) of the full ATM prediction",
        ["variant", "windows", "APE", "paper", "sig%"],
        rows,
    )
    grid = np.arange(0.0, 101.0, 10.0)
    for method, result in results.items():
        for peak in (False, True):
            cdf = result.ape_cdf(peak=peak)
            if cdf is not None:
                label = f"ATM w/ {method.value.upper()} - {'Peak' if peak else 'All'}"
                print_series(f"Fig. 9 CDF — {label}", cdf.evaluate(grid), "APE%", "F")

    dtw, cbc = results[ClusteringMethod.DTW], results[ClusteringMethod.CBC]
    assert cbc.mean_ape() < dtw.mean_ape(), "CBC predicts better than DTW"
    for result in results.values():
        assert result.mean_ape(peak=True) < result.mean_ape(), (
            "peak windows are predicted more accurately than the average window"
        )
        assert result.mean_ape() < 55.0, "overall APE should stay in the paper's regime"
    assert dtw.mean_signature_ratio() < cbc.mean_signature_ratio(), (
        "DTW uses far fewer signature series"
    )
