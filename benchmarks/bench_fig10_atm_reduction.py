"""Figure 10 — ticket reduction driven by *predicted* demands (full ATM).

The complete system: spatial-temporal prediction feeds the resizing
algorithms; tickets are counted against the actual evaluation-day demands.

Paper: both ATM variants reach ~60% (CPU) / ~70% (RAM) reduction; RAM
beats CPU ("due to higher RAM provisioning"); max-min fairness degrades
badly (large std, can *increase* tickets on a subset of boxes).
"""

import pytest

from repro.benchhelpers import bench_jobs, pipeline_fleet, print_table
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace.model import Resource

pytestmark = pytest.mark.slow

PAPER = {
    (ResizingAlgorithm.ATM, Resource.CPU): 60.0,
    (ResizingAlgorithm.ATM, Resource.RAM): 70.0,
}


def _compute():
    fleet = pipeline_fleet(40)
    return {
        method: run_fleet_atm(fleet, AtmConfig.with_clustering(method), jobs=bench_jobs())
        for method in (ClusteringMethod.DTW, ClusteringMethod.CBC)
    }


def test_fig10_prediction_driven_reduction(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for method, result in results.items():
        for algorithm in ResizingAlgorithm:
            for resource in (Resource.CPU, Resource.RAM):
                paper = PAPER.get((algorithm, resource), float("nan"))
                rows.append(
                    [
                        method.value,
                        algorithm.value,
                        resource.value,
                        result.mean_reduction(resource, algorithm),
                        paper,
                        result.std_reduction(resource, algorithm),
                    ]
                )
    print_table(
        "Fig. 10 — ticket reduction (%) with predicted demands",
        ["cluster", "algorithm", "res", "mean", "paper", "std"],
        rows,
    )

    for method, result in results.items():
        for resource in (Resource.CPU, Resource.RAM):
            atm = result.mean_reduction(resource, ResizingAlgorithm.ATM)
            no_disc = result.mean_reduction(
                resource, ResizingAlgorithm.ATM_NO_DISCRETIZATION
            )
            maxmin = result.mean_reduction(resource, ResizingAlgorithm.MAX_MIN_FAIRNESS)
            stingy = result.mean_reduction(resource, ResizingAlgorithm.STINGY)
            assert atm > 40.0, f"{method}: ATM should still reduce {resource.value} tickets a lot"
            assert atm >= no_disc - 2.0, "ε discretization's safety margin pays off"
            assert atm > stingy, "ATM beats stingy"
            assert atm >= maxmin - 3.0, "ATM at least matches max-min"
        # RAM reductions beat CPU (the paper's higher-RAM-provisioning effect).
        assert result.mean_reduction(
            Resource.RAM, ResizingAlgorithm.ATM
        ) > result.mean_reduction(Resource.CPU, ResizingAlgorithm.ATM)
        # Max-min's reliability problem: enormous variance across boxes.
        assert max(
            result.std_reduction(Resource.CPU, ResizingAlgorithm.MAX_MIN_FAIRNESS),
            result.std_reduction(Resource.RAM, ResizingAlgorithm.MAX_MIN_FAIRNESS),
        ) > 15.0
