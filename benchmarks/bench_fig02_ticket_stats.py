"""Figure 2 — characterization of usage tickets per box.

Regenerates the three panels: (a) percentage of boxes with at least one
ticket, (b) mean/std tickets per box, (c) culprit VMs covering 80% of a
box's tickets — for CPU and RAM at the 60/70/80% thresholds.

Paper values (Fig. 2): CPU %boxes 57/./40, mean tickets 39/33/29;
RAM %boxes 38/./10, mean tickets 15/11/9; culprits ~1-2 everywhere.
"""

from repro.benchhelpers import characterization_fleet, print_table
from repro.tickets import DEFAULT_THRESHOLDS, fleet_ticket_summary
from repro.trace.model import Resource

PAPER = {
    (Resource.CPU, 60.0): (57.0, 39.0, 1.5),
    (Resource.CPU, 70.0): (48.0, 33.0, 1.5),
    (Resource.CPU, 80.0): (40.0, 29.0, 1.5),
    (Resource.RAM, 60.0): (38.0, 15.0, 1.5),
    (Resource.RAM, 70.0): (20.0, 11.0, 1.5),
    (Resource.RAM, 80.0): (10.0, 9.0, 1.5),
}


def _compute():
    fleet = characterization_fleet()
    return fleet_ticket_summary(fleet, DEFAULT_THRESHOLDS, first_windows=96)


def test_fig02_ticket_characterization(benchmark):
    summary = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for resource in (Resource.CPU, Resource.RAM):
        for threshold in DEFAULT_THRESHOLDS:
            row = summary.row(resource, threshold)
            paper_pct, paper_mean, paper_culprits = PAPER[(resource, threshold)]
            rows.append(
                [
                    resource.value,
                    int(threshold),
                    row["pct_boxes"],
                    paper_pct,
                    row["mean_tickets"],
                    paper_mean,
                    row["std_tickets"],
                    row["mean_culprits"],
                    paper_culprits,
                ]
            )
    print_table(
        "Fig. 2 — usage-ticket characterization (measured vs paper)",
        [
            "res",
            "thr%",
            "%boxes",
            "paper",
            "tickets",
            "paper",
            "std",
            "culprits",
            "paper",
        ],
        rows,
    )

    # Shape assertions: the qualitative claims of Section II-A.
    s60 = summary.row(Resource.CPU, 60.0)
    s80 = summary.row(Resource.CPU, 80.0)
    assert s60["pct_boxes"] > summary.row(Resource.RAM, 60.0)["pct_boxes"], (
        "CPU tickets should touch more boxes than RAM tickets"
    )
    assert s60["mean_tickets"] > s80["mean_tickets"] > 0.5 * s60["mean_tickets"], (
        "ticket counts should decay slowly with the threshold"
    )
    for resource in (Resource.CPU, Resource.RAM):
        for threshold in DEFAULT_THRESHOLDS:
            culprits = summary.row(resource, threshold)["mean_culprits"]
            assert 1.0 <= culprits <= 2.5, "one to two culprit VMs per box"
