"""Figure 3 — CDFs of per-box median spatial correlations.

Regenerates the four CDFs (intra-CPU, intra-RAM, inter-all, inter-pair) of
the per-box median Pearson coefficients.  Paper means: 0.26, 0.24, 0.30,
0.62 — with inter-pair far above the rest (the spatial signal ATM exploits).
"""

import numpy as np

from repro.benchhelpers import characterization_fleet, print_series, print_table
from repro.tickets import correlation_cdfs

PAPER_MEANS = {
    "intra_cpu": 0.26,
    "intra_ram": 0.24,
    "inter_all": 0.30,
    "inter_pair": 0.62,
}


def _compute():
    fleet = characterization_fleet()
    return correlation_cdfs(fleet, first_windows=96)


def test_fig03_correlation_cdfs(benchmark):
    cdfs = benchmark.pedantic(_compute, rounds=1, iterations=1)
    means = cdfs.means()
    print_table(
        "Fig. 3 — mean of per-box median correlations (measured vs paper)",
        ["measure", "measured", "paper"],
        [[k, means[k], PAPER_MEANS[k]] for k in PAPER_MEANS],
    )
    grid = np.arange(0.0, 1.01, 0.1)
    for name, ecdf in (
        ("intra-CPU", cdfs.intra_cpu),
        ("intra-RAM", cdfs.intra_ram),
        ("inter-all", cdfs.inter_all),
        ("inter-pair", cdfs.inter_pair),
    ):
        print_series(f"Fig. 3 CDF — {name}", ecdf.evaluate(grid), "rho", "F(rho)")

    # Shape: inter-pair dominates everything; all means within loose bands.
    assert means["inter_pair"] > means["inter_all"] >= 0.15
    assert means["inter_pair"] > 2 * means["intra_ram"]
    for key, paper in PAPER_MEANS.items():
        assert abs(means[key] - paper) < 0.15, (key, means[key], paper)
