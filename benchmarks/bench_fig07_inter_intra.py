"""Figure 7 — inter- versus intra-resource spatial models.

Compares the inter-resource model (CPU and RAM series pooled in one
signature search) against intra-CPU and intra-RAM models (each resource
clustered alone), on both signature-set reduction and spatial-fit APE.

Paper (mean APE %, mean signature ratio %):
  CBC:  inter 20 / 66,  intra-CPU 21 / 81,  intra-RAM 23 / 90
  DTW:  inter 28 / 26,  intra-CPU 26 / 41,  intra-RAM 31 / 45
Headline: the inter model wins on both axes — cross-resource correlation
is exploitable structure.
"""

import numpy as np

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.trace.model import Resource

TRAIN_WINDOWS = 5 * 96

PAPER = {
    ("cbc", "inter"): (66.0, 20.0),
    ("cbc", "intra-cpu"): (81.0, 21.0),
    ("cbc", "intra-ram"): (90.0, 23.0),
    ("dtw", "inter"): (26.0, 28.0),
    ("dtw", "intra-cpu"): (41.0, 26.0),
    ("dtw", "intra-ram"): (45.0, 31.0),
}


def _evaluate(method: ClusteringMethod, variant: str):
    fleet = pipeline_fleet(40)
    config = SignatureSearchConfig(method=method, dtw_window=12)
    ratios, apes = [], []
    for box in fleet:
        if variant == "inter":
            data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        elif variant == "intra-cpu":
            data = box.demand_matrix(Resource.CPU)[:, :TRAIN_WINDOWS]
        else:
            data = box.demand_matrix(Resource.RAM)[:, :TRAIN_WINDOWS]
        model = search_signature_set(data, config)
        ratios.append(100.0 * model.signature_ratio)
        fitted = model.fitted(data)
        box_apes = [
            mean_absolute_percentage_error(data[i], fitted[i])
            for i in model.dependent_indices
        ]
        box_apes = [a for a in box_apes if np.isfinite(a)]
        if box_apes:
            apes.append(float(np.mean(box_apes)))
    return float(np.mean(ratios)), float(np.mean(apes))


def _compute():
    out = {}
    for method in (ClusteringMethod.CBC, ClusteringMethod.DTW):
        for variant in ("inter", "intra-cpu", "intra-ram"):
            out[(method.value, variant)] = _evaluate(method, variant)
    return out


def test_fig07_inter_vs_intra(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key, (ratio, ape) in results.items():
        paper_ratio, paper_ape = PAPER[key]
        rows.append([key[0], key[1], ratio, paper_ratio, ape, paper_ape])
    print_table(
        "Fig. 7 — inter vs intra models (signature ratio %, APE %)",
        ["method", "variant", "ratio", "paper", "APE", "paper"],
        rows,
    )

    for method in ("cbc", "dtw"):
        inter_ratio, inter_ape = results[(method, "inter")]
        cpu_ratio, cpu_ape = results[(method, "intra-cpu")]
        ram_ratio, ram_ape = results[(method, "intra-ram")]
        assert inter_ratio < min(cpu_ratio, ram_ratio), (
            f"{method}: the inter model should reduce the set more than either intra"
        )
        # Accuracy: the inter model must clearly beat intra-CPU and stay in
        # the same band as intra-RAM (our smooth synthetic RAM fits itself
        # slightly better than the paper's; see EXPERIMENTS.md).
        assert inter_ape < cpu_ape + 2.0, (
            f"{method}: inter should be at least as accurate as intra-CPU"
        )
        assert inter_ape <= ram_ape + 8.0, (
            f"{method}: inter accuracy should stay near intra-RAM"
        )
