"""Figure 8 — ticket reduction with *actual* demands (the oracle study).

Resizing algorithms are fed the true evaluation-day demands (no prediction),
isolating allocator quality: ATM's greedy (with and without ε
discretization), max-min fairness, and the stingy peak-demand allocator.

Paper (mean reduction %): ATM 95 (CPU) / 96 (RAM); max-min ~70/70 with a
large std; stingy 54/15 — worst, and much worse on over-provisioned RAM.
Our substrate reproduces the ordering and the RAM < CPU stingy gap; see
EXPERIMENTS.md for the documented deviations (stingy's absolute level).
"""

from repro.benchhelpers import characterization_fleet, print_table
from repro.resizing import evaluate_fleet_resizing
from repro.resizing.evaluate import ResizingAlgorithm
from repro.tickets.policy import TicketPolicy
from repro.trace.model import Resource

PAPER = {
    (ResizingAlgorithm.ATM, Resource.CPU): 95.0,
    (ResizingAlgorithm.ATM, Resource.RAM): 96.0,
    (ResizingAlgorithm.ATM_NO_DISCRETIZATION, Resource.CPU): 95.0,
    (ResizingAlgorithm.ATM_NO_DISCRETIZATION, Resource.RAM): 96.0,
    (ResizingAlgorithm.MAX_MIN_FAIRNESS, Resource.CPU): 70.0,
    (ResizingAlgorithm.MAX_MIN_FAIRNESS, Resource.RAM): 70.0,
    (ResizingAlgorithm.STINGY, Resource.CPU): 54.0,
    (ResizingAlgorithm.STINGY, Resource.RAM): 15.0,
}


def _compute():
    fleet = characterization_fleet()
    return evaluate_fleet_resizing(
        fleet, TicketPolicy(60.0), tuple(ResizingAlgorithm), eval_windows=96
    )


def test_fig08_oracle_resizing(benchmark):
    reduction = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for algorithm in ResizingAlgorithm:
        for resource in (Resource.CPU, Resource.RAM):
            rows.append(
                [
                    algorithm.value,
                    resource.value,
                    reduction.mean_reduction(resource, algorithm),
                    PAPER[(algorithm, resource)],
                    reduction.std_reduction(resource, algorithm),
                ]
            )
    print_table(
        "Fig. 8 — ticket reduction (%) on actual demands",
        ["algorithm", "res", "mean", "paper", "std"],
        rows,
    )

    for resource in (Resource.CPU, Resource.RAM):
        atm = reduction.mean_reduction(resource, ResizingAlgorithm.ATM)
        maxmin = reduction.mean_reduction(resource, ResizingAlgorithm.MAX_MIN_FAIRNESS)
        stingy = reduction.mean_reduction(resource, ResizingAlgorithm.STINGY)
        assert atm > 80.0, f"ATM should nearly eliminate {resource.value} tickets"
        assert atm >= maxmin - 3.0, "ATM at least matches max-min"
        assert stingy < maxmin, "stingy is the worst allocator"
    assert reduction.mean_reduction(
        Resource.CPU, ResizingAlgorithm.STINGY
    ) > reduction.mean_reduction(Resource.RAM, ResizingAlgorithm.STINGY), (
        "stingy hurts over-provisioned RAM more than CPU"
    )
