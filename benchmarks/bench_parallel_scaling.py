"""Parallel fleet execution — wall-clock speedup vs worker count.

Runs the full ATM pipeline (``run_fleet_atm``) on one fig09/fig10-scale
fleet at several worker counts and reports seconds and speedup relative
to the serial baseline, verifying along the way that every worker count
produces numerically identical aggregates (the engine's contract).

The signature cache is cleared before each timed run, so the speedup
column isolates the process fan-out from the memoization layer.

Speedup obviously requires cores: the ≥3x-at-4-workers target applies to
a ≥4-core machine.  On fewer cores the bench still validates equivalence
and reports the (≈1x, or slightly worse) measured ratios; the hard
speedup assertion is skipped.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]
        [--boxes N] [--jobs 1,2,4]
"""

import argparse
import os

import pytest

from repro.benchhelpers import print_table, quick_scaling_report, scaling_report
from repro.benchhelpers.fleetcache import pipeline_fleet
from repro.core import AtmConfig
from repro.prediction.spatial.signatures import ClusteringMethod

pytestmark = pytest.mark.slow

JOBS = (1, 2, 4)
TARGET_SPEEDUP = 3.0


def _compute(n_boxes: int = 40, jobs_list=JOBS):
    fleet = pipeline_fleet(n_boxes)
    config = AtmConfig.with_clustering(ClusteringMethod.CBC)
    return scaling_report(fleet, jobs_list=jobs_list, config=config)


def _print_rows(rows, title: str) -> None:
    print_table(title, ["jobs", "seconds", "speedup"], rows)


def test_parallel_scaling(benchmark):
    rows, _results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    _print_rows(rows, "Parallel scaling — full ATM pipeline (CBC, 40 boxes)")

    # Equivalence across worker counts is asserted inside scaling_report.
    by_jobs = {int(row[0]): row for row in rows}
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert by_jobs[4][2] >= TARGET_SPEEDUP, (
            f"expected >= {TARGET_SPEEDUP}x at 4 workers on a {cores}-core "
            f"machine, measured {by_jobs[4][2]:.2f}x"
        )
    # Even without cores to scale on, the fan-out must not collapse: pool
    # overhead stays bounded.
    assert by_jobs[max(JOBS)][2] > 0.5, "parallel overhead exceeds 2x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small-fleet smoke run with a cheap temporal model (seconds)",
    )
    parser.add_argument("--boxes", type=int, default=40, help="fleet size")
    parser.add_argument(
        "--jobs", type=str, default=",".join(str(j) for j in JOBS),
        help="comma-separated worker counts to sweep",
    )
    args = parser.parse_args(argv)
    jobs_list = tuple(int(j) for j in args.jobs.split(","))
    if args.quick:
        rows, _ = quick_scaling_report(n_boxes=6, jobs_list=jobs_list)
        _print_rows(rows, "Parallel scaling — quick smoke (6 boxes, seasonal_mean)")
    else:
        rows, _ = _compute(n_boxes=args.boxes, jobs_list=jobs_list)
        _print_rows(rows, f"Parallel scaling — full ATM pipeline ({args.boxes} boxes)")
    print(f"aggregates identical across jobs={list(jobs_list)}: OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
