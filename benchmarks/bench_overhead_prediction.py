"""Section III/V claim — spatial models cost almost nothing.

The paper's scalability argument: temporal (neural-network) models are
accurate but expensive, so ATM trains them only for the signature series
and predicts everything else through linear spatial models whose cost is
"negligible".

This bench times, on one box: (a) fitting+predicting the neural model for
every series (the brute-force alternative), (b) the full ATM path
(signature search + neural models on signatures only + spatial
reconstruction), and (c) the spatial reconstruction alone.
"""

import time

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction import (
    SpatialTemporalConfig,
    SpatialTemporalPredictor,
)
from repro.prediction.registry import make_temporal_model
from repro.prediction.spatial.signatures import ClusteringMethod, SignatureSearchConfig

TRAIN_WINDOWS = 5 * 96
HORIZON = 96


def _box_matrix():
    fleet = pipeline_fleet(40)
    box = max(fleet.boxes, key=lambda b: b.n_vms)
    return box.demand_matrix()[:, :TRAIN_WINDOWS]


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_prediction_overhead(benchmark):
    data = _box_matrix()

    def all_temporal():
        for row in data:
            make_temporal_model("neural").fit(row).predict(HORIZON)

    def atm_path():
        predictor = SpatialTemporalPredictor(
            SpatialTemporalConfig(
                search=SignatureSearchConfig(method=ClusteringMethod.DTW, dtw_window=12)
            )
        )
        predictor.fit_predict(data, HORIZON)
        return predictor

    t_all = _time(all_temporal)
    predictor = benchmark.pedantic(atm_path, rounds=1, iterations=1)
    t_atm = _time(atm_path)
    t_spatial = _time(lambda: predictor.predict(HORIZON))

    n_sig = len(predictor.spatial_model.signature_indices)
    print_table(
        "Prediction overhead on one box (seconds)",
        ["approach", "seconds", "series modeled"],
        [
            ["temporal model on every series", t_all, data.shape[0]],
            ["ATM (search + signatures + spatial)", t_atm, n_sig],
            ["spatial reconstruction only", t_spatial, 0],
        ],
    )
    assert t_atm < t_all, "ATM must be cheaper than modelling every series"
    assert t_spatial < 0.25 * t_all, "spatial prediction is near-free"
