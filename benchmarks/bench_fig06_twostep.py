"""Figure 6 — effectiveness of the two-step signature search.

For DTW and CBC, compares the signature-set ratio and the spatial-fit APE
after step 1 (clustering only) and after step 2 (clustering + VIF/stepwise).

Paper: DTW 26% -> 26% of series with ~28% APE (stepwise barely moves it);
CBC 82% -> 66% with ~20% APE and <= 1% accuracy cost for stepwise.
"""

import numpy as np

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)
from repro.timeseries.ecdf import BoxplotSummary
from repro.timeseries.metrics import mean_absolute_percentage_error

TRAIN_WINDOWS = 5 * 96

PAPER = {
    (ClusteringMethod.DTW, False): (26.0, 28.0),
    (ClusteringMethod.DTW, True): (26.0, 28.0),
    (ClusteringMethod.CBC, False): (82.0, 20.0),
    (ClusteringMethod.CBC, True): (66.0, 21.0),
}


def _evaluate(method, stepwise):
    fleet = pipeline_fleet(40)
    ratios, apes = [], []
    for box in fleet:
        data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        model = search_signature_set(
            data,
            SignatureSearchConfig(method=method, apply_stepwise=stepwise, dtw_window=12),
        )
        ratios.append(100.0 * model.signature_ratio)
        fitted = model.fitted(data)
        box_apes = [
            mean_absolute_percentage_error(data[i], fitted[i])
            for i in model.dependent_indices
        ]
        box_apes = [a for a in box_apes if np.isfinite(a)]
        if box_apes:
            apes.append(float(np.mean(box_apes)))
    return ratios, apes


def _compute():
    out = {}
    for method in (ClusteringMethod.DTW, ClusteringMethod.CBC):
        for stepwise in (False, True):
            out[(method, stepwise)] = _evaluate(method, stepwise)
    return out


def test_fig06_two_step_effectiveness(benchmark):
    results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for (method, stepwise), (ratios, apes) in results.items():
        ratio_box = BoxplotSummary.from_samples(ratios)
        ape_box = BoxplotSummary.from_samples(apes)
        paper_ratio, paper_ape = PAPER[(method, stepwise)]
        rows.append(
            [
                method.value,
                "stepwise" if stepwise else "clustering",
                ratio_box.mean,
                paper_ratio,
                ratio_box.median,
                ape_box.mean,
                paper_ape,
                ape_box.median,
            ]
        )
    print_table(
        "Fig. 6 — signature ratio (%) and spatial-fit APE (%) per step",
        ["method", "step", "ratio", "paper", "med", "APE", "paper", "med"],
        rows,
    )

    dtw_ratio = np.mean(results[(ClusteringMethod.DTW, True)][0])
    cbc_step1 = np.mean(results[(ClusteringMethod.CBC, False)][0])
    cbc_step2 = np.mean(results[(ClusteringMethod.CBC, True)][0])
    dtw_ape = np.mean(results[(ClusteringMethod.DTW, True)][1])
    cbc_ape = np.mean(results[(ClusteringMethod.CBC, True)][1])
    cbc_ape_step1 = np.mean(results[(ClusteringMethod.CBC, False)][1])

    assert dtw_ratio < cbc_step2 < cbc_step1, "DTW < CBC+stepwise < CBC alone"
    assert cbc_step1 - cbc_step2 > 3.0, "stepwise should meaningfully shrink the CBC set"
    assert cbc_ape < dtw_ape, "CBC should fit dependents better than DTW"
    assert abs(cbc_ape - cbc_ape_step1) < 5.0, "stepwise costs little accuracy"
