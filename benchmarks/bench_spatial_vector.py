"""Vectorized spatial-search engine — reference-vs-vectorized speedup proof.

Times the full per-box signature search (clustering + silhouette sweep +
VIF stepwise + dependent OLS fits) over the shared pipeline bench fleet
with the vectorized linear-algebra engine on (``REPRO_VECTOR_SPATIAL=1``,
the default) and off (the retained reference paths), asserting along the
way that both produce the *same decisions*: identical signature /
dependent / initial index sets, identical cluster labels, and dependent
model coefficients equal to tight tolerances.  The DTW-path search must
come out >= 2x faster.

It then re-times the spatial-stage benches (fig05, fig06, fig07 and the
clustering ablation) under both gates and checks every deterministic
table value against the baselines recorded in ``bench_output_verbose.txt``
— the engine must change wall-clock only.  Results land in
``BENCH_spatial.json``.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_spatial_vector.py [--quick]
        [--boxes N] [--no-figs]
"""

import argparse
import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.benchhelpers import pipeline_fleet, print_table
from repro.prediction.spatial.cache import SIGNATURE_CACHE
from repro.prediction.spatial.cbc import correlation_based_clusters
from repro.prediction.spatial.dtw_cluster import dtw_clusters
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)
from repro.timeseries.ecdf import histogram_shares
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.timeseries.vector import VECTOR_ENV_VAR
from repro.trace.model import Resource

pytestmark = pytest.mark.slow

TARGET_SPEEDUP = 2.0  # DTW-path search, reference vs vectorized
REPEATS = 5
TRAIN_WINDOWS = 5 * 96
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_spatial.json"
FIG05_BINS = [2, 4, 6, 8, 10, 16, 32, 65]

#: Spatial-stage bench wall-clock (ms) before the vectorized engine, as
#: recorded in bench_output_verbose.txt — the regression reference.
BASELINE_MS = {
    "fig05": 1_965.0624,
    "fig06": 4_336.9080,
    "fig07": 4_245.7678,
    "clustering_ablation": 3_769.0467,
}

#: Deterministic table values from bench_output_verbose.txt, rounded as
#: printed (2 decimals).  The vectorized engine must reproduce every one.
EXPECTED_TABLES = {
    "fig05": {
        "dtw_shares": [77.50, 12.50, 5.00, 2.50, 2.50, 0.00, 0.00],
        "cbc_shares": [0.00, 5.00, 17.50, 20.00, 55.00, 2.50, 0.00],
        "cbc_cpu_share": 54.1,  # printed with 1 decimal
    },
    "fig06": {
        ("dtw", "clustering"): (18.57, 35.52),
        ("dtw", "stepwise"): (18.46, 35.52),
        ("cbc", "clustering"): (60.90, 25.43),
        ("cbc", "stepwise"): (54.75, 27.42),
    },
    "fig07": {
        ("cbc", "inter"): (54.75, 27.42),
        ("cbc", "intra-cpu"): (70.73, 36.28),
        ("cbc", "intra-ram"): (79.26, 23.29),
        ("dtw", "inter"): (18.46, 35.52),
        ("dtw", "intra-cpu"): (28.68, 46.28),
        ("dtw", "intra-ram"): (30.16, 29.66),
    },
    "clustering_ablation": {
        "dtw": (18.46, 35.52),
        "cbc": (54.75, 27.42),
        "feature": (15.65, 42.86),
    },
}


def _set_gate(raw):
    if raw is None:
        os.environ.pop(VECTOR_ENV_VAR, None)
    else:
        os.environ[VECTOR_ENV_VAR] = raw


def _time_best(fn, repeats=REPEATS):
    """Best-of-N wall clock — the low-noise estimator on a busy machine."""
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _search_pass(matrices, config):
    """One cold full-fleet search pass (the timed unit)."""
    SIGNATURE_CACHE.clear()
    return [search_signature_set(m, config) for m in matrices]


def _assert_equivalent(reference, vectorized):
    """Reference and vectorized searches must make the same decisions."""
    for ref, vec in zip(reference, vectorized):
        assert vec.signature_indices == ref.signature_indices
        assert vec.dependent_indices == ref.dependent_indices
        assert vec.initial_signature_indices == ref.initial_signature_indices
        assert vec.cluster_labels == ref.cluster_labels
        for idx in ref.dependent_indices:
            np.testing.assert_allclose(
                vec.models[idx].coefficients,
                ref.models[idx].coefficients,
                rtol=1e-8,
                atol=1e-10,
            )
            np.testing.assert_allclose(
                vec.models[idx].intercept,
                ref.models[idx].intercept,
                rtol=1e-8,
                atol=1e-10,
            )


def _decisions_digest(models):
    decisions = tuple(
        (m.signature_indices, m.dependent_indices, m.cluster_labels) for m in models
    )
    return hashlib.sha256(repr(decisions).encode()).hexdigest()[:16]


def search_speedup(n_boxes=40):
    """Reference-vs-vectorized timings of the full signature search.

    Returns one ``[method, boxes, reference_s, vectorized_s, speedup,
    digest]`` row per clustering method; decision equivalence is asserted
    for every box along the way.
    """
    fleet = pipeline_fleet(40)
    matrices = [box.demand_matrix()[:, :TRAIN_WINDOWS] for box in fleet.boxes[:n_boxes]]
    rows = []
    saved = os.environ.get(VECTOR_ENV_VAR)
    try:
        for method in (ClusteringMethod.DTW, ClusteringMethod.CBC):
            config = SignatureSearchConfig(method=method, dtw_window=12)
            _set_gate("0")
            ref_s, reference = _time_best(lambda: _search_pass(matrices, config))
            _set_gate("1")
            vec_s, vectorized = _time_best(lambda: _search_pass(matrices, config))
            _assert_equivalent(reference, vectorized)
            rows.append(
                [
                    method.value,
                    len(matrices),
                    ref_s,
                    vec_s,
                    ref_s / vec_s,
                    _decisions_digest(vectorized),
                ]
            )
    finally:
        _set_gate(saved)
        SIGNATURE_CACHE.clear()
    return rows


def _fig05_values(fleet):
    dtw_counts, cbc_counts = [], []
    cbc_cpu = cbc_total = 0
    for box in fleet:
        data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        dtw_counts.append(dtw_clusters(data, window=12).n_clusters)
        cbc = correlation_based_clusters(data)
        cbc_counts.append(cbc.n_clusters)
        cbc_total += len(cbc.signatures)
        cbc_cpu += sum(1 for s in cbc.signatures if s < box.n_vms)
    return {
        "dtw_shares": [
            round(100 * share, 2) for _, share in histogram_shares(dtw_counts, FIG05_BINS)
        ],
        "cbc_shares": [
            round(100 * share, 2) for _, share in histogram_shares(cbc_counts, FIG05_BINS)
        ],
        "cbc_cpu_share": round(100 * cbc_cpu / cbc_total, 1),
    }


def _sweep(fleet, config, variant="inter"):
    """Mean signature ratio %, mean dependent-fit APE % over the fleet."""
    ratios, apes = [], []
    for box in fleet:
        if variant == "inter":
            data = box.demand_matrix()[:, :TRAIN_WINDOWS]
        elif variant == "intra-cpu":
            data = box.demand_matrix(Resource.CPU)[:, :TRAIN_WINDOWS]
        else:
            data = box.demand_matrix(Resource.RAM)[:, :TRAIN_WINDOWS]
        model = search_signature_set(data, config)
        ratios.append(100.0 * model.signature_ratio)
        fitted = model.fitted(data)
        box_apes = [
            mean_absolute_percentage_error(data[i], fitted[i])
            for i in model.dependent_indices
        ]
        box_apes = [a for a in box_apes if np.isfinite(a)]
        if box_apes:
            apes.append(float(np.mean(box_apes)))
    return round(float(np.mean(ratios)), 2), round(float(np.mean(apes)), 2)


def _fig06_values(fleet):
    out = {}
    for method in (ClusteringMethod.DTW, ClusteringMethod.CBC):
        for stepwise in (False, True):
            config = SignatureSearchConfig(
                method=method, apply_stepwise=stepwise, dtw_window=12
            )
            key = (method.value, "stepwise" if stepwise else "clustering")
            out[key] = _sweep(fleet, config)
    return out


def _fig07_values(fleet):
    out = {}
    for method in (ClusteringMethod.CBC, ClusteringMethod.DTW):
        config = SignatureSearchConfig(method=method, dtw_window=12)
        for variant in ("inter", "intra-cpu", "intra-ram"):
            out[(method.value, variant)] = _sweep(fleet, config, variant)
    return out


def _ablation_values(fleet):
    return {
        method.value: _sweep(
            fleet, SignatureSearchConfig(method=method, dtw_window=12, period=96)
        )
        for method in ClusteringMethod
    }


def fig_tables():
    """Re-run the spatial-stage benches under both gates.

    Each fig's deterministic table values must agree between the reference
    and vectorized engines AND match the baselines pinned from
    ``bench_output_verbose.txt``; the vectorized wall-clock is reported
    against the recorded pre-engine baseline.
    """
    fleet = pipeline_fleet(40)
    compute = {
        "fig05": _fig05_values,
        "fig06": _fig06_values,
        "fig07": _fig07_values,
        "clustering_ablation": _ablation_values,
    }
    timings = {}
    saved = os.environ.get(VECTOR_ENV_VAR)
    try:
        for fig, fn in compute.items():
            per_gate = {}
            for raw in ("0", "1"):
                _set_gate(raw)
                SIGNATURE_CACHE.clear()
                start = time.perf_counter()
                per_gate[raw] = (fn(fleet), 1000.0 * (time.perf_counter() - start))
            values, measured_ms = per_gate["1"]
            ref_values, ref_ms = per_gate["0"]
            assert values == ref_values, (
                f"{fig}: vectorized table diverges from reference: "
                f"{values} != {ref_values}"
            )
            assert values == EXPECTED_TABLES[fig], (
                f"{fig}: table diverges from bench_output_verbose.txt: "
                f"{values} != {EXPECTED_TABLES[fig]}"
            )
            timings[fig] = {
                "baseline_ms": BASELINE_MS[fig],
                "reference_ms": ref_ms,
                "measured_ms": measured_ms,
                "reduction_pct": 100.0 * (1.0 - measured_ms / BASELINE_MS[fig]),
                "tables_match_baseline": True,
            }
    finally:
        _set_gate(saved)
        SIGNATURE_CACHE.clear()
    return timings


def write_report(rows, figs):
    report = {
        "bench": "spatial_vector",
        "fleet": "pipeline-40 (seed 20160629)",
        "repeats": REPEATS,
        "gate": VECTOR_ENV_VAR,
        "search": [
            {
                "method": method,
                "boxes": boxes,
                "reference_seconds": ref_s,
                "vectorized_seconds": vec_s,
                "speedup": speedup,
                "decisions_digest": digest,
            }
            for method, boxes, ref_s, vec_s, speedup, digest in rows
        ],
        "fig_wallclock": figs,
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _print_rows(rows):
    print_table(
        "Vectorized spatial search — full-fleet search seconds",
        ["method", "boxes", "reference", "vectorized", "speedup", "digest"],
        rows,
    )


def _print_figs(figs):
    for fig, timing in figs.items():
        print(
            f"{fig}: {timing['measured_ms']:.0f}ms vs baseline "
            f"{timing['baseline_ms']:.0f}ms ({timing['reduction_pct']:.0f}% faster); "
            f"tables identical to bench_output_verbose.txt"
        )


def _dtw_speedup(rows):
    return next(row[4] for row in rows if row[0] == "dtw")


def test_spatial_vector_speedup(benchmark):
    rows, figs = benchmark.pedantic(
        lambda: (search_speedup(), fig_tables()), rounds=1, iterations=1
    )
    _print_rows(rows)
    _print_figs(figs)
    write_report(rows, figs)

    assert _dtw_speedup(rows) >= TARGET_SPEEDUP, (
        f"expected >= {TARGET_SPEEDUP}x vectorized DTW-path speedup, "
        f"measured {_dtw_speedup(rows):.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="few-box equivalence smoke, no fig re-timing, no JSON (seconds)",
    )
    parser.add_argument("--boxes", type=int, default=40, help="boxes to time")
    parser.add_argument(
        "--no-figs", action="store_true", help="skip the fig05-07/ablation re-timing"
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows = search_speedup(n_boxes=6)
        _print_rows(rows)
        print("quick smoke: reference/vectorized decisions identical (no JSON written)")
        return 0
    rows = search_speedup(n_boxes=args.boxes)
    _print_rows(rows)
    figs = {} if args.no_figs else fig_tables()
    _print_figs(figs)
    report = write_report(rows, figs)
    print(
        f"wrote {RESULTS_PATH.name}: DTW-path speedup "
        f"{_dtw_speedup(rows):.2f}x (target >= {TARGET_SPEEDUP}x)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
