"""Figure 12 — MediaWiki CPU usage with and without ATM resizing.

Runs the simulated testbed twice under identical offered load and prints
each VM's CPU usage summary plus the total ticket counts.

Paper: resizing keeps every VM below the 60% threshold; tickets drop from
49 to 1.
"""

from repro.benchhelpers import print_table
from repro.testbed import run_testbed_experiment
from repro.testbed.experiment import TestbedConfig


def _compute():
    cfg = TestbedConfig()
    original = run_testbed_experiment(resizing=False, config=cfg)
    resized = run_testbed_experiment(resizing=True, config=cfg)
    return original, resized


def test_fig12_testbed_usage(benchmark):
    original, resized = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for vm_id in sorted(original.usage_pct):
        rows.append(
            [
                vm_id,
                original.usage_pct[vm_id].max(),
                resized.usage_pct[vm_id].max(),
                original.tickets(vm_id),
                resized.tickets(vm_id),
                resized.limits[vm_id][-1],
            ]
        )
    print_table(
        "Fig. 12 — per-VM CPU usage and tickets (original vs ATM-resized)",
        ["vm", "max% orig", "max% resz", "tk orig", "tk resz", "limit GHz"],
        rows,
    )
    print(
        f"total tickets: original {original.tickets()} -> resized {resized.tickets()} "
        f"(paper: 49 -> 1)"
    )

    assert original.tickets() >= 30, "the original configuration tickets heavily"
    assert resized.tickets() <= 3, "resizing should all but eliminate tickets"
    # Every apache VM crosses the threshold originally; almost none after.
    apaches = [vm for vm in original.usage_pct if "apache" in vm]
    assert all(original.usage_pct[vm].max() > 60.0 for vm in apaches)
    over_after = sum(resized.usage_pct[vm].max() > 61.0 for vm in resized.usage_pct)
    assert over_after <= 1, "at most one marginal VM remains above the threshold"
