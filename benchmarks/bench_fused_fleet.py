"""Cross-box fused training plane — end-to-end shard+run wall-clock.

Benchmarks the fleet-level fused temporal training plane (PR: fused
mega-batches + parallel shard generation) against the strictly per-box
baseline it replaces:

* **baseline** — ``REPRO_FUSED_FLEET=0``, serial shard generation,
  ``jobs=1`` pipeline: the previous per-box execution model.
* **fused** — fused plane on, ``repro shard --jobs N`` parallel
  generation, ``jobs=N`` pipeline: chunk workers gather all their boxes'
  signature series into cross-box ``(ΣK, P)`` mega-batches and train them
  in single fused passes.

Both legs run the neural temporal model (the paper's signature
predictor, and the model the fused kernel accelerates) over a shard
store, and both fold their per-box accuracies and reductions into a
result digest — the fused fits are **bit-identical** to per-box fits, so
the digests must match exactly; the benchmark fails loudly if they
drift.

The speedup bar adapts to the host honestly: with two or more effective
CPUs the fused leg must be ≥ ``TARGET_SPEEDUP``× (2×) faster end-to-end;
on a single-core host (where parallel fan-out cannot help) the fused
kernel and the vectorized shard generator alone must still clear
``SINGLE_CORE_FLOOR``×, and the report records the core count so the
recorded ratio is never mistaken for a parallel measurement.

Also runnable as a script::

    PYTHONPATH=src python benchmarks/bench_fused_fleet.py [--boxes 6000]
        [--jobs 4] [--quick] [--out BENCH_fused.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

BENCH_SCHEMA = "repro.bench_fused/v1"
DEFAULT_BOXES = 6000
DEFAULT_JOBS = 4
QUICK_BOXES = 32
DAYS = 6  # 5 training days + 1 evaluation day, the Fig. 9/10 setup

#: End-to-end bar when the host grants >= 2 effective CPUs: fused plane +
#: parallel generation must at least halve the shard+run wall-clock.
TARGET_SPEEDUP = 2.0
#: Floor on a single-core host: no parallelism to harvest, but the fused
#: mega-batch kernel and the vectorized AR(1) generator must still win.
SINGLE_CORE_FLOOR = 1.05


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _result_digest(result) -> str:
    """Digest of every per-box outcome, exact to the last float bit.

    Folds each box's accuracy triple (downstream of every fused weight)
    and every ticket reduction, using ``float.hex`` so equal digests mean
    bit-equal results, not round-tripped approximations.
    """
    import hashlib

    h = hashlib.blake2b()
    for acc in result.accuracies:
        h.update(acc.box_id.encode())
        for value in (acc.ape, acc.peak_ape, acc.signature_ratio):
            h.update(float(value).hex().encode())
    for red in result.reduction.results:
        h.update(
            f"{red.box_id}:{red.resource.value}:{red.algorithm.value}:"
            f"{red.tickets_before}:{red.tickets_after}:{red.feasible}".encode()
        )
    return h.hexdigest()


def _run_leg(mode: str, n_boxes: int, jobs: int, seed: int = 20160628) -> dict:
    """Child body: one end-to-end leg (shard generation + fleet run)."""
    from repro import obs
    from repro.core import AtmConfig, run_fleet_atm
    from repro.prediction.spatial.signatures import ClusteringMethod
    from repro.store.shards import ShardedFleet, generate_fleet_shards
    from repro.trace.generator import FleetConfig
    from repro.trace.model import FORBID_GENERATION_ENV_VAR

    fused = mode == "fused"
    os.environ["REPRO_FUSED_FLEET"] = "1" if fused else "0"
    leg_jobs = jobs if fused else 1

    obs.reset_metrics()
    with tempfile.TemporaryDirectory(prefix=f"bench-fused-{mode}-") as tmp:
        t0 = time.perf_counter()
        manifest = generate_fleet_shards(
            FleetConfig(n_boxes=n_boxes, days=DAYS, seed=seed), tmp, jobs=leg_jobs
        )
        shard_s = time.perf_counter() - t0

        # From here on, materializing the whole fleet is a bug, not a cost.
        os.environ[FORBID_GENERATION_ENV_VAR] = "1"
        config = AtmConfig.with_clustering(
            ClusteringMethod.CBC, temporal_model="neural"
        )
        t0 = time.perf_counter()
        result = run_fleet_atm(ShardedFleet(tmp), config, jobs=leg_jobs)
        run_s = time.perf_counter() - t0

        obs.record_peak_rss()
        snap = obs.metrics_snapshot()
        return {
            "mode": mode,
            "scenario": "paper-fig2",
            "jobs": leg_jobs,
            "boxes": n_boxes,
            "vms": manifest.n_vms,
            "shard_s": round(shard_s, 3),
            "run_s": round(run_s, 3),
            "total_s": round(shard_s + run_s, 3),
            "boxes_evaluated": len(result.accuracies),
            "digest": _result_digest(result),
            "peak_rss_bytes": int(snap["gauges"]["proc.peak_rss_bytes"]),
            "fused_groups": int(snap["counters"].get("fused.groups", 0)),
            "fused_models_per_pass": int(
                snap["gauges"].get("fused.models_per_pass", 0)
            ),
            "fused_fallback_boxes": int(
                snap["counters"].get("fused.fallback_boxes", 0)
            ),
        }


def _spawn_leg(mode: str, n_boxes: int, jobs: int) -> dict:
    """Run one leg in a fresh subprocess (clean RSS + clean env) and collect it."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    try:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable, str(Path(__file__).resolve()),
            "--child", mode, "--boxes", str(n_boxes), "--jobs", str(jobs),
            "--out", out_path,
        ]
        subprocess.run(cmd, check=True, env=env)
        with open(out_path, encoding="utf-8") as fh:
            return json.load(fh)
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


def compare(n_boxes: int, jobs: int) -> dict:
    """Run both legs in subprocess isolation and assemble the report."""
    cpus = _effective_cpus()
    effective_jobs = max(1, min(jobs, cpus))
    baseline = _spawn_leg("baseline", n_boxes, 1)
    fused = _spawn_leg("fused", n_boxes, effective_jobs)
    speedup = baseline["total_s"] / max(1e-9, fused["total_s"])
    bar = TARGET_SPEEDUP if cpus >= 2 else SINGLE_CORE_FLOOR
    return {
        "schema": BENCH_SCHEMA,
        "boxes": n_boxes,
        "days": DAYS,
        "requested_jobs": jobs,
        "effective_jobs": effective_jobs,
        "host_cpus": cpus,
        "legs": [baseline, fused],
        "speedup": round(speedup, 3),
        "speedup_bar": bar,
        "bit_identical": baseline["digest"] == fused["digest"],
        "note": (
            "parallel measurement"
            if cpus >= 2
            else "single-core host: fan-out cannot help; ratio reflects the "
            "fused kernel + vectorized generation alone"
        ),
    }


def _print_report(report: dict) -> None:
    from repro.benchhelpers import print_table

    print_table(
        f"Fused fleet plane — {report['boxes']} boxes, "
        f"jobs={report['effective_jobs']} ({report['host_cpus']} CPUs)",
        ["leg", "jobs", "shard s", "run s", "total s", "groups", "fallbacks"],
        [
            [
                row["mode"],
                row["jobs"],
                row["shard_s"],
                row["run_s"],
                row["total_s"],
                row["fused_groups"],
                row["fused_fallback_boxes"],
            ]
            for row in report["legs"]
        ],
    )
    print(
        f"end-to-end speedup: {report['speedup']}x (bar {report['speedup_bar']}x) "
        f"— bit-identical: {report['bit_identical']} — {report['note']}"
    )


def _check(report: dict, require_speedup: bool = True) -> None:
    baseline, fused = report["legs"]
    assert report["bit_identical"], (
        f"fused results diverged from the per-box baseline: "
        f"{baseline['digest']} != {fused['digest']}"
    )
    assert fused["boxes_evaluated"] == report["boxes"]
    assert fused["fused_fallback_boxes"] == 0, (
        f"{fused['fused_fallback_boxes']} boxes fell back to the per-box "
        "path on a clean run — fusion is not covering the fleet"
    )
    assert fused["fused_groups"] > 0, "fused plane never engaged"
    if require_speedup:
        assert report["speedup"] >= report["speedup_bar"], (
            f"fused end-to-end speedup {report['speedup']}x is below the "
            f"{report['speedup_bar']}x bar for this host "
            f"({report['host_cpus']} CPUs; rows: {report['legs']})"
        )


# --------------------------------------------------------------------- pytest
def test_fused_fleet_speedup(tmp_path):
    """Reduced-scale compare; the full sweep is the script's default."""
    report = compare(200, DEFAULT_JOBS)
    (tmp_path / "BENCH_fused.json").write_text(json.dumps(report, indent=1))
    _print_report(report)
    _check(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--boxes", type=int, default=DEFAULT_BOXES,
        help="fleet size for both legs (paper scale = 6000)",
    )
    parser.add_argument(
        "--jobs", type=int, default=DEFAULT_JOBS,
        help="worker processes for the fused leg (capped at host CPUs; "
        "the baseline leg is always serial)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"{QUICK_BOXES}-box smoke: asserts bit-identity and fused "
        "coverage but not the speedup bar (timing noise dominates)",
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_fused.json",
        help="write the JSON report here",
    )
    parser.add_argument("--child", type=str, default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child is not None:
        payload = _run_leg(args.child, args.boxes, args.jobs)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return 0

    boxes = QUICK_BOXES if args.quick else args.boxes
    report = compare(boxes, args.jobs)
    if args.quick:
        report["quick"] = True
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    _print_report(report)
    print(f"wrote {args.out}")
    _check(report, require_speedup=not args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
