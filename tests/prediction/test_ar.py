"""Tests for the autoregressive predictor (repro.prediction.temporal.ar)."""

import numpy as np
import pytest

from repro.prediction.temporal.ar import AutoRegressivePredictor


class TestFit:
    def test_recovers_ar1_coefficient(self, rng):
        phi = 0.7
        x = np.empty(3000)
        x[0] = 0.0
        eps = rng.normal(0, 0.5, size=3000)
        for t in range(1, 3000):
            x[t] = phi * x[t - 1] + eps[t]
        model = AutoRegressivePredictor(order=1, seasonal_lags=(), period=10)
        model.fit(x)
        assert model._coef[0] == pytest.approx(phi, abs=0.05)

    def test_perfect_on_linear_recurrence(self):
        # x_t = 0.5 x_{t-1} + 1 converges; the fit should be exact.
        x = [10.0]
        for _ in range(60):
            x.append(0.5 * x[-1] + 1.0)
        model = AutoRegressivePredictor(order=1, seasonal_lags=(), period=10).fit(x)
        forecast = model.predict(3)
        expected = [0.5 * x[-1] + 1.0]
        expected.append(0.5 * expected[-1] + 1.0)
        expected.append(0.5 * expected[-1] + 1.0)
        assert forecast == pytest.approx(expected, abs=1e-6)

    def test_seasonal_lag_captures_periodicity(self):
        pattern = np.array([1.0, 5.0, 2.0, 8.0])
        history = np.tile(pattern, 8)
        model = AutoRegressivePredictor(order=0, seasonal_lags=(1,), period=4).fit(history)
        forecast = model.predict(4)
        assert forecast == pytest.approx(pattern, abs=1e-6)

    def test_short_history_degrades_to_mean(self):
        model = AutoRegressivePredictor(order=2, seasonal_lags=(1,), period=96)
        model.fit([3.0, 5.0])
        # History shorter than order+1 rows still yields a usable forecast.
        forecast = model.predict(2)
        assert np.isfinite(forecast).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoRegressivePredictor(order=-1)
        with pytest.raises(ValueError):
            AutoRegressivePredictor(order=0, seasonal_lags=())
        with pytest.raises(ValueError):
            AutoRegressivePredictor(seasonal_lags=(0,))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            AutoRegressivePredictor().predict(1)


class TestForecastShape:
    def test_horizon_length(self, rng):
        model = AutoRegressivePredictor(order=3, seasonal_lags=(), period=10)
        forecast = model.fit(rng.normal(size=100)).predict(17)
        assert forecast.shape == (17,)

    def test_forecast_finite_on_noise(self, rng):
        model = AutoRegressivePredictor().fit(rng.normal(50, 5, size=400))
        forecast = model.predict(96)
        assert np.isfinite(forecast).all()
