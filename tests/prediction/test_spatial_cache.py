"""Tests for the signature-search cache (repro.prediction.spatial.cache)."""

import numpy as np
import pytest

from repro.prediction.spatial.cache import (
    CACHE_ENV_VAR,
    SIGNATURE_CACHE,
    SignatureSearchCache,
    cache_enabled,
    data_fingerprint,
)
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    SIGNATURE_CACHE.clear()
    yield
    SIGNATURE_CACHE.clear()


def _matrix(seed=0, n=6, t=200):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=t)
    return np.vstack([base * (i % 3 + 1) + rng.normal(scale=0.3, size=t) for i in range(n)])


class TestFingerprint:
    def test_deterministic(self):
        data = _matrix()
        assert data_fingerprint(data) == data_fingerprint(data.copy())

    def test_content_sensitive(self):
        data = _matrix()
        other = data.copy()
        other[0, 0] += 1e-9
        assert data_fingerprint(data) != data_fingerprint(other)

    def test_shape_sensitive(self):
        flat = np.zeros(12)
        assert data_fingerprint(flat.reshape(3, 4)) != data_fingerprint(
            flat.reshape(4, 3)
        )


class TestLru:
    def test_put_get_and_stats(self):
        cache = SignatureSearchCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_order(self):
        cache = SignatureSearchCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_clear_resets(self):
        cache = SignatureSearchCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            SignatureSearchCache(maxsize=0)


class TestSearchMemoization:
    def test_second_search_hits(self):
        data = _matrix()
        config = SignatureSearchConfig(method=ClusteringMethod.DTW, max_clusters=3)
        first = search_signature_set(data, config)
        second = search_signature_set(data.copy(), config)
        assert second is first  # memoized model object
        assert SIGNATURE_CACHE.stats.hits == 1

    def test_different_config_misses(self):
        data = _matrix()
        a = search_signature_set(data, SignatureSearchConfig(method=ClusteringMethod.CBC))
        b = search_signature_set(
            data, SignatureSearchConfig(method=ClusteringMethod.CBC, vif_threshold=10.0)
        )
        assert a is not b
        assert SIGNATURE_CACHE.stats.hits == 0

    def test_different_data_misses(self):
        config = SignatureSearchConfig(method=ClusteringMethod.CBC)
        a = search_signature_set(_matrix(seed=1), config)
        b = search_signature_set(_matrix(seed=2), config)
        assert a is not b

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "0")
        assert not cache_enabled()
        data = _matrix()
        config = SignatureSearchConfig(method=ClusteringMethod.CBC)
        first = search_signature_set(data, config)
        second = search_signature_set(data, config)
        assert first is not second
        assert len(SIGNATURE_CACHE) == 0

    def test_cached_model_equivalent(self):
        """A hit returns the same numbers a fresh search would compute."""
        data = _matrix()
        config = SignatureSearchConfig(method=ClusteringMethod.DTW, max_clusters=3)
        cached = search_signature_set(data, config)
        SIGNATURE_CACHE.clear()
        fresh = search_signature_set(data, config)
        assert fresh.signature_indices == cached.signature_indices
        assert fresh.dependent_indices == cached.dependent_indices
        np.testing.assert_array_equal(fresh.fitted(data), cached.fitted(data))
