"""Tests for the vectorized seasonal pipeline (repro.prediction.temporal.seasonal).

The bincount / fancy-indexing implementations replaced per-timestep Python
loops; each test compares against a straightforward loop reference and
asserts *exact* equality (the accumulation order is unchanged, so the
results are bit-identical, which the batched MLP trainer relies on).
"""

import numpy as np
import pytest

from repro.prediction.temporal.naive import SeasonalMeanPredictor
from repro.prediction.temporal.seasonal import (
    phase_aligned_slot_means,
    phase_aligned_slot_means_batch,
    seasonal_feature_matrix,
    seasonal_feature_matrix_batch,
)


def reference_slot_means(arr, period):
    """The original per-timestep accumulation loop."""
    sums = np.zeros(period)
    counts = np.zeros(period)
    offset = arr.size % period
    for t in range(arr.size):
        slot = (t - offset) % period
        sums[slot] += arr[t]
        counts[slot] += 1
    counts[counts == 0] = 1.0
    return sums / counts


def reference_feature_rows(arr, t_indices, depth, period, slot_means):
    """The original per-row feature constructor."""
    size = arr.size
    offset = size % period
    rows = []
    for t in t_indices:
        slot = (t - offset) % period
        feats = []
        for k in range(1, depth + 1):
            lag = t - k * period
            feats.append(arr[lag] if 0 <= lag < size else slot_means[slot])
        angle = 2.0 * np.pi * slot / period
        feats.extend([slot_means[slot], np.sin(angle), np.cos(angle)])
        rows.append(feats)
    return np.asarray(rows)


# Lengths deliberately include non-multiples of the period: phase alignment
# only matters (and only ever broke) when a partial day leads the history.
@pytest.mark.parametrize("size", [24, 48, 25, 47, 100, 7])
def test_slot_means_match_loop(size):
    arr = np.random.default_rng(size).uniform(0, 50, size)
    np.testing.assert_array_equal(
        phase_aligned_slot_means(arr, 24), reference_slot_means(arr, 24)
    )


@pytest.mark.parametrize("size", [48, 50, 95])
def test_slot_means_batch_matches_single(size):
    matrix = np.random.default_rng(size).uniform(0, 50, (5, size))
    batch = phase_aligned_slot_means_batch(matrix, 24)
    for i, row in enumerate(matrix):
        np.testing.assert_array_equal(batch[i], phase_aligned_slot_means(row, 24))


def test_empty_slots_yield_zero():
    # Histories shorter than the period leave slots unobserved; the count
    # floor keeps them at 0 instead of 0/0.
    means = phase_aligned_slot_means(np.ones(5), 24)
    assert np.isfinite(means).all()
    assert (means == 0.0).sum() == 24 - 5


@pytest.mark.parametrize("size,depth", [(96, 2), (100, 3), (48, 1)])
def test_feature_matrix_matches_loop(size, depth):
    period = 24
    arr = np.random.default_rng(size + depth).uniform(0, 50, size)
    slot_means = phase_aligned_slot_means(arr, period)
    # Training rows and forecast rows (indices past the end of the history).
    t_indices = np.arange(depth * period, size + period)
    np.testing.assert_array_equal(
        seasonal_feature_matrix(arr, t_indices, depth, period, slot_means),
        reference_feature_rows(arr, t_indices, depth, period, slot_means),
    )


def test_feature_matrix_batch_matches_single():
    period, depth = 24, 2
    matrix = np.random.default_rng(3).uniform(0, 50, (4, 100))
    slot_means = phase_aligned_slot_means_batch(matrix, period)
    t_indices = np.arange(depth * period, 100 + period)
    batch = seasonal_feature_matrix_batch(matrix, t_indices, depth, period, slot_means)
    for i in range(matrix.shape[0]):
        np.testing.assert_array_equal(
            batch[i],
            seasonal_feature_matrix(matrix[i], t_indices, depth, period, slot_means[i]),
        )


@pytest.mark.parametrize("size", [48, 31, 50])
def test_seasonal_mean_predictor_uses_shared_pipeline(size):
    # The baseline predictor delegates to the same vectorized slot means;
    # equality on non-multiple-of-period histories pins the phase handling.
    arr = np.random.default_rng(size).uniform(0, 50, size)
    model = SeasonalMeanPredictor(period=24).fit(arr)
    np.testing.assert_array_equal(model._slot_means, reference_slot_means(arr, 24))
    np.testing.assert_array_equal(model.predict(24), reference_slot_means(arr, 24))
