"""Tests for the combined predictor (repro.prediction.combined)."""

import numpy as np
import pytest

from repro.prediction.combined import (
    BoxPrediction,
    SpatialTemporalConfig,
    SpatialTemporalPredictor,
)
from repro.prediction.spatial.signatures import ClusteringMethod, SignatureSearchConfig
from repro.timeseries.metrics import mean_absolute_percentage_error


def periodic_matrix(rng, n_series=6, days=5, period=24):
    t = np.arange(days * period)
    base = 30 + 20 * np.sin(2 * np.pi * t / period)
    rows = []
    for k in range(n_series):
        scale = rng.uniform(0.5, 2.0)
        rows.append(scale * base + rng.normal(0, 1.0, size=t.size))
    return np.vstack(rows)


@pytest.fixture()
def config():
    return SpatialTemporalConfig(
        search=SignatureSearchConfig(method=ClusteringMethod.CBC),
        temporal_model="seasonal_mean",
        period=24,
    )


class TestFitPredict:
    def test_prediction_shape(self, rng, config):
        data = periodic_matrix(rng)
        prediction = SpatialTemporalPredictor(config).fit_predict(data, 24)
        assert prediction.predictions.shape == (6, 24)
        assert prediction.horizon == 24
        assert prediction.n_series == 6

    def test_accurate_on_periodic_data(self, rng, config):
        data = periodic_matrix(rng, days=6)
        train, actual = data[:, :120], data[:, 120:144]
        prediction = SpatialTemporalPredictor(config).fit_predict(train, 24)
        for i in range(6):
            ape = mean_absolute_percentage_error(actual[i], prediction.predictions[i])
            assert ape < 25.0

    def test_signature_reduction_happens(self, rng, config):
        data = periodic_matrix(rng)
        prediction = SpatialTemporalPredictor(config).fit_predict(data, 24)
        assert prediction.signature_ratio < 1.0

    def test_clipping_at_zero(self, config, rng):
        data = np.abs(periodic_matrix(rng)) * 0.01  # tiny demands
        prediction = SpatialTemporalPredictor(config).fit_predict(data, 24)
        assert prediction.predictions.min() >= 0.0

    def test_clip_max(self, rng):
        config = SpatialTemporalConfig(temporal_model="seasonal_mean", period=24, clip_max=10.0)
        data = periodic_matrix(rng)
        prediction = SpatialTemporalPredictor(config).fit_predict(data, 24)
        assert prediction.predictions.max() <= 10.0

    def test_unfitted_predict_raises(self, config):
        with pytest.raises(RuntimeError):
            SpatialTemporalPredictor(config).predict(5)

    def test_bad_horizon(self, rng, config):
        predictor = SpatialTemporalPredictor(config).fit(periodic_matrix(rng))
        with pytest.raises(ValueError):
            predictor.predict(0)

    def test_bad_input_shape(self, config):
        with pytest.raises(ValueError):
            SpatialTemporalPredictor(config).fit(np.ones(10))

    def test_spatial_model_accessor(self, rng, config):
        predictor = SpatialTemporalPredictor(config)
        with pytest.raises(RuntimeError):
            _ = predictor.spatial_model
        predictor.fit(periodic_matrix(rng))
        assert predictor.spatial_model.n_series == 6

    def test_neural_default_model(self, rng):
        config = SpatialTemporalConfig(period=24)
        data = periodic_matrix(rng)
        prediction = SpatialTemporalPredictor(config).fit_predict(data, 24)
        assert prediction.temporal_model == "neural"
        assert np.isfinite(prediction.predictions).all()


class TestSplitFit:
    """``begin_fit``/``finish_fit`` — the fused plane's two-phase fit."""

    @staticmethod
    def _external_fits(config, histories):
        from repro.prediction.registry import make_temporal_model

        return [
            make_temporal_model(config.temporal_model, period=config.period).fit(h)
            for h in histories
        ]

    def test_split_fit_equals_inline_fit(self, rng, config):
        data = periodic_matrix(rng)
        inline = SpatialTemporalPredictor(config).fit(data)
        split = SpatialTemporalPredictor(config)
        histories = split.begin_fit(data)
        split.finish_fit(self._external_fits(config, histories))
        np.testing.assert_array_equal(
            split.predict(24).predictions, inline.predict(24).predictions
        )
        assert split.spatial_model.signature_ratio == (
            inline.spatial_model.signature_ratio
        )
        assert split.baseline_reconstruction_error == (
            inline.baseline_reconstruction_error
        )

    def test_histories_are_signature_rows(self, rng, config):
        data = periodic_matrix(rng)
        predictor = SpatialTemporalPredictor(config)
        histories = predictor.begin_fit(data)
        indices = predictor.spatial_model.signature_indices
        assert len(histories) == len(indices)
        for idx, history in zip(indices, histories):
            np.testing.assert_array_equal(history, data[idx])

    def test_finish_without_begin_raises(self, config):
        with pytest.raises(RuntimeError, match="begin_fit"):
            SpatialTemporalPredictor(config).finish_fit([])

    def test_wrong_model_count_raises(self, rng, config):
        predictor = SpatialTemporalPredictor(config)
        predictor.begin_fit(periodic_matrix(rng))
        with pytest.raises(ValueError, match="fitted temporal models"):
            predictor.finish_fit([])

    def test_predict_before_finish_raises(self, rng, config):
        predictor = SpatialTemporalPredictor(config)
        predictor.begin_fit(periodic_matrix(rng))
        with pytest.raises(Exception):
            predictor.predict(24)

    def test_refit_temporal_after_split_fit(self, rng, config):
        data = periodic_matrix(rng, days=6)
        predictor = SpatialTemporalPredictor(config)
        histories = predictor.begin_fit(data[:, :96])
        predictor.finish_fit(self._external_fits(config, histories))
        predictor.refit_temporal(data[:, :120])
        assert predictor.predict(24).predictions.shape == (6, 24)
