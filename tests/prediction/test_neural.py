"""Tests for the NumPy MLP predictor (repro.prediction.temporal.neural)."""

import numpy as np
import pytest

from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor, _Mlp


class TestMlpCore:
    def test_forward_shapes(self, rng):
        net = _Mlp([3, 8, 1], rng)
        out = net.predict(rng.normal(size=(5, 3)))
        assert out.shape == (5, 1)

    def test_training_reduces_loss(self, rng):
        net = _Mlp([2, 16, 1], rng)
        x = rng.normal(size=(256, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)
        first = net.train_batch(x, y, lr=1e-2, l2=0.0)
        for _ in range(300):
            last = net.train_batch(x, y, lr=1e-2, l2=0.0)
        assert last < 0.1 * first

    def test_snapshot_restore(self, rng):
        net = _Mlp([2, 4, 1], rng)
        state = net.snapshot()
        x = rng.normal(size=(32, 2))
        before = net.predict(x)
        net.train_batch(x, np.ones((32, 1)), lr=0.1, l2=0.0)
        assert not np.allclose(net.predict(x), before)
        net.restore(state)
        assert np.allclose(net.predict(x), before)


class TestConfig:
    def test_defaults_valid(self):
        MlpConfig()

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            MlpConfig(hidden_layers=(0,))

    def test_invalid_validation_fraction(self):
        with pytest.raises(ValueError):
            MlpConfig(validation_fraction=0.9)


class TestNeuralNetPredictor:
    def test_learns_seasonal_pattern(self):
        period = 8
        pattern = np.array([5.0, 8.0, 20.0, 45.0, 60.0, 40.0, 15.0, 6.0])
        history = np.tile(pattern, 10)
        config = MlpConfig(period=period, max_epochs=120, seed=0)
        forecast = NeuralNetPredictor(config).fit(history).predict(period)
        # Within ~20% of the clean pattern.
        assert np.abs(forecast - pattern).mean() < 0.25 * pattern.mean()

    def test_deterministic_given_seed(self):
        history = np.tile([1.0, 5.0, 9.0, 4.0], 12)
        config = MlpConfig(period=4, seed=3, max_epochs=30)
        a = NeuralNetPredictor(config).fit(history).predict(4)
        b = NeuralNetPredictor(config).fit(history).predict(4)
        assert a == pytest.approx(b)

    def test_horizon_beyond_period(self):
        history = np.tile([1.0, 2.0], 30)
        config = MlpConfig(period=2, max_epochs=20)
        forecast = NeuralNetPredictor(config).fit(history).predict(7)
        assert forecast.shape == (7,)
        assert np.isfinite(forecast).all()

    def test_short_history_rejected(self):
        with pytest.raises(ValueError):
            NeuralNetPredictor(MlpConfig(period=96)).fit(np.ones(10))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NeuralNetPredictor().predict(1)

    def test_beats_last_value_on_diurnal(self, sample_box):
        """On a realistic diurnal series, the MLP must beat the naive floor."""
        series = sample_box.vms[0].cpu_usage
        train, actual = series[:480], series[480:576]
        config = MlpConfig(period=96, seed=1)
        mlp = NeuralNetPredictor(config).fit(train).predict(96)
        naive = np.full(96, train[-1])
        mlp_err = np.abs(mlp - actual).mean()
        naive_err = np.abs(naive - actual).mean()
        assert mlp_err < naive_err * 1.2  # at worst marginally behind, usually ahead
