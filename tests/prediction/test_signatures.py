"""Tests for the two-step signature search (repro.prediction.spatial.signatures)."""

import numpy as np
import pytest

from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)


def structured_matrix(rng, t=300):
    """Six series: two independent drivers, four linear combinations."""
    a = rng.normal(size=t)
    b = rng.normal(size=t)
    rows = [
        a,
        b,
        2.0 * a + 0.01 * rng.normal(size=t),
        -1.0 * b + 0.01 * rng.normal(size=t),
        0.5 * a + 0.02 * rng.normal(size=t),
        3.0 + 1.5 * b + 0.02 * rng.normal(size=t),
    ]
    return np.vstack(rows)


class TestSearch:
    def test_partition_complete(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data, SignatureSearchConfig(method=ClusteringMethod.CBC))
        all_indices = sorted(model.signature_indices + model.dependent_indices)
        assert all_indices == list(range(6))

    def test_cbc_reduces_structured_set(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data, SignatureSearchConfig(method=ClusteringMethod.CBC))
        assert len(model.signature_indices) <= 3  # two drivers (+ slack)

    def test_dependents_well_fit(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data, SignatureSearchConfig(method=ClusteringMethod.CBC))
        fitted = model.fitted(data)
        for idx in model.dependent_indices:
            residual = np.abs(fitted[idx] - data[idx]).mean()
            assert residual < 0.1 * (np.abs(data[idx]).mean() + 1e-9)

    def test_stepwise_removes_multicollinear_signature(self, rng):
        t = 400
        a, b, d = rng.normal(size=t), rng.normal(size=t), rng.normal(size=t)
        # The classical pitfall: e looks like its own cluster (pairwise rho
        # with each driver is only ~0.58 < 0.7) yet is a perfect linear
        # combination of the other clusters' signatures.
        e = (a + b + d) / np.sqrt(3.0) + 0.01 * rng.normal(size=t)
        data = np.vstack(
            [
                a, a + 0.01 * rng.normal(size=t),
                b, b + 0.01 * rng.normal(size=t),
                d, d + 0.01 * rng.normal(size=t),
                e, e + 0.01 * rng.normal(size=t),
            ]
        )
        without = search_signature_set(
            data, SignatureSearchConfig(method=ClusteringMethod.CBC, apply_stepwise=False)
        )
        with_step = search_signature_set(
            data, SignatureSearchConfig(method=ClusteringMethod.CBC, apply_stepwise=True)
        )
        assert len(with_step.signature_indices) < len(without.signature_indices)

    def test_dtw_method_runs(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data, SignatureSearchConfig(method=ClusteringMethod.DTW))
        assert 1 <= len(model.signature_indices) <= 6

    def test_signature_ratio(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data)
        assert model.signature_ratio == pytest.approx(
            len(model.signature_indices) / 6.0
        )

    def test_single_series(self, rng):
        data = rng.normal(size=(1, 50))
        model = search_signature_set(data)
        assert model.signature_indices == (0,)
        assert model.dependent_indices == ()


class TestReconstruct:
    def test_signature_rows_pass_through(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data)
        recon = model.fitted(data)
        for idx in model.signature_indices:
            assert recon[idx] == pytest.approx(data[idx])

    def test_reconstruct_shape(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data)
        future = rng.normal(size=(len(model.signature_indices), 10))
        out = model.reconstruct(future)
        assert out.shape == (6, 10)

    def test_reconstruct_wrong_rows_rejected(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data)
        with pytest.raises(ValueError):
            model.reconstruct(rng.normal(size=(len(model.signature_indices) + 1, 10)))

    def test_fitted_wrong_shape_rejected(self, rng):
        data = structured_matrix(rng)
        model = search_signature_set(data)
        with pytest.raises(ValueError):
            model.fitted(data[:-1])
