"""Fleet-fused cross-box training: bit-identity, slabs, failure isolation.

The fleet fitter (:func:`repro.prediction.temporal.batched.fit_neural_fused`)
claims each group's models are *bit-identical* to handing that group to
:func:`fit_neural_batch` on its own — regardless of which other boxes ride
in the same mega-batch, how ragged the group sizes are, or where the slab
boundaries fall.  These tests pin that claim, the ``max_models`` slab
splitting, per-group failure isolation, and the fused observability
counters.
"""

import numpy as np
import pytest

from repro import obs
from repro.prediction.registry import (
    fit_temporal_batch,
    fit_temporal_fleet_batch,
    has_fleet_fitter,
)
from repro.prediction.temporal.batched import (
    FUSED_SLAB_MODELS,
    fit_equal_length_state,
    fit_neural_batch,
    fit_neural_fused,
)
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor

# Small config keeps every fit fast; bit-equivalence is config-agnostic.
FAST = MlpConfig(hidden_layers=(8, 4), period=24, max_epochs=40, patience=5)


def make_histories(k, size, seed, period=24):
    """K diurnal series with heterogeneous noise (so convergence differs)."""
    rng = np.random.default_rng(seed)
    t = np.arange(size)
    out = []
    for _ in range(k):
        base = 40 + 25 * np.sin(2 * np.pi * t / period + rng.uniform(0, 2 * np.pi))
        trend = rng.uniform(-0.02, 0.02) * t
        noise = rng.normal(0, rng.uniform(0.5, 4.0), size)
        out.append(np.maximum(base + trend + noise, 0.0))
    return out


def assert_group_equivalent(per_box, fused, horizon=24):
    assert len(per_box) == len(fused)
    for s, f in zip(per_box, fused):
        assert s._fit_epochs == f._fit_epochs
        np.testing.assert_array_equal(s.predict(horizon), f.predict(horizon))


class TestFusedEquivalence:
    def test_ragged_groups_bit_identical(self):
        """Groups of different widths and lengths: fused == per-box batch."""
        groups = [
            make_histories(3, 24 * 4, seed=0),
            make_histories(1, 24 * 4, seed=1),  # K=1 group joins the batch
            make_histories(4, 24 * 5, seed=2),  # different length bucket
            make_histories(2, 24 * 4, seed=3),
        ]
        fused = fit_neural_fused(groups, FAST)
        for group, fused_models in zip(groups, fused):
            assert fused_models is not None
            per_box = fit_neural_batch(group, FAST)
            assert_group_equivalent(per_box, fused_models)

    def test_slab_boundary_straddle(self):
        """A mega-batch split into tiny slabs equals the unbounded stack.

        With max_models=3 and 8 total series, slab boundaries fall inside
        groups — the split must not perturb any model's float stream.
        """
        groups = [
            make_histories(2, 24 * 4, seed=10),
            make_histories(4, 24 * 4, seed=11),
            make_histories(2, 24 * 4, seed=12),
        ]
        unbounded = fit_neural_fused(groups, FAST, max_models=1_000_000)
        slabbed = fit_neural_fused(groups, FAST, max_models=3)
        for wide, narrow in zip(unbounded, slabbed):
            assert_group_equivalent(wide, narrow)

    def test_single_series_fleet(self):
        """One group with one series: the degenerate serial route."""
        histories = make_histories(1, 24 * 4, seed=20)
        (fused_models,) = fit_neural_fused([histories], FAST)
        serial = NeuralNetPredictor(FAST).fit(histories[0])
        assert_group_equivalent([serial], fused_models)

    def test_equal_length_state_slab_identity(self):
        """The kernel-level knob: max_models slabs == one unbounded stack."""
        matrix = np.stack(make_histories(7, 24 * 4, seed=30))
        wide_models, wide_state = fit_equal_length_state(matrix, FAST)
        slab_models, slab_state = fit_equal_length_state(matrix, FAST, max_models=3)
        assert_group_equivalent(wide_models, slab_models)
        np.testing.assert_array_equal(wide_state.params, slab_state.params)
        np.testing.assert_array_equal(wide_state.epochs, slab_state.epochs)

    def test_max_models_must_be_positive(self):
        matrix = np.stack(make_histories(2, 24 * 4, seed=31))
        with pytest.raises(ValueError, match="max_models"):
            fit_equal_length_state(matrix, FAST, max_models=0)

    def test_width_one_slabs_identical(self):
        """max_models=1 degenerates to per-model fits — still bit-identical.

        The strongest width-stability pin: every reduction in the kernel
        is per-row flat, so even a (1, n) slab stays in the same float
        family as the unbounded wide stack.
        """
        matrix = np.stack(make_histories(3, 24 * 4, seed=33))
        wide_models, wide_state = fit_equal_length_state(matrix, FAST)
        slab_models, slab_state = fit_equal_length_state(matrix, FAST, max_models=1)
        assert_group_equivalent(wide_models, slab_models)
        np.testing.assert_array_equal(wide_state.params, slab_state.params)


class TestFailureIsolation:
    def test_bad_group_yields_none_others_fit(self):
        """A group with an invalid history gets None; neighbors still fit."""
        good = make_histories(2, 24 * 4, seed=40)
        bad = [np.full(24 * 4, np.nan)]  # non-finite -> validation failure
        short = [np.arange(5.0)]  # too short for period+2
        fused = fit_neural_fused([good, bad, short], FAST)
        assert fused[1] is None
        assert fused[2] is None
        assert_group_equivalent(fit_neural_batch(good, FAST), fused[0])

    def test_all_groups_bad(self):
        fused = fit_neural_fused([[np.full(10, np.nan)]], FAST)
        assert fused == [None]


class TestRegistry:
    def test_neural_has_fleet_fitter(self):
        assert has_fleet_fitter("neural")
        assert not has_fleet_fitter("seasonal_mean")

    def test_unsupported_model_returns_none(self):
        assert fit_temporal_fleet_batch("seasonal_mean", [[np.arange(48.0)]]) is None

    def test_fleet_batch_matches_per_group_batch(self):
        groups = [
            make_histories(2, 24 * 5, seed=50, period=24),
            make_histories(3, 24 * 5, seed=51, period=24),
        ]
        # Registry entry points use the default MlpConfig at this period.
        fused = fit_temporal_fleet_batch("neural", groups, period=24)
        assert fused is not None
        for group, fused_models in zip(groups, fused):
            per_box = fit_temporal_batch("neural", group, period=24)
            assert_group_equivalent(per_box, fused_models, horizon=24)


class TestObservability:
    def test_counters_and_gauge(self):
        obs.reset_metrics()
        groups = [
            make_histories(2, 24 * 4, seed=60),
            make_histories(3, 24 * 4, seed=61),  # same length bucket: fused
            make_histories(2, 24 * 5, seed=62),  # second length bucket
        ]
        fit_neural_fused(groups, FAST)
        snap = obs.metrics_snapshot()
        assert snap["counters"]["fused.groups"] == 2  # one per length bucket
        assert snap["gauges"]["fused.models_per_pass"] == 5.0

    def test_models_per_pass_capped_by_slab(self):
        obs.reset_metrics()
        fit_neural_fused([make_histories(5, 24 * 4, seed=63)], FAST, max_models=2)
        snap = obs.metrics_snapshot()
        assert snap["gauges"]["fused.models_per_pass"] == 2.0

    def test_default_slab_width_is_bounded(self):
        # The RSS contract: mega-batches train as bounded slabs, never the
        # whole fleet at once.
        assert 1 <= FUSED_SLAB_MODELS <= 256
