"""Tests for naive/seasonal baselines (repro.prediction.temporal.naive)."""

import numpy as np
import pytest

from repro.prediction.temporal.naive import (
    LastValuePredictor,
    MovingAveragePredictor,
    SeasonalMeanPredictor,
    SeasonalNaivePredictor,
)


class TestLastValue:
    def test_repeats_last(self):
        forecast = LastValuePredictor().fit([1.0, 2.0, 7.0]).predict(3)
        assert forecast == pytest.approx([7.0, 7.0, 7.0])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LastValuePredictor().predict(1)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            LastValuePredictor().fit([1.0]).predict(0)


class TestMovingAverage:
    def test_mean_of_tail(self):
        forecast = MovingAveragePredictor(window=2).fit([0.0, 2.0, 4.0]).predict(2)
        assert forecast == pytest.approx([3.0, 3.0])

    def test_window_longer_than_history(self):
        forecast = MovingAveragePredictor(window=10).fit([2.0, 4.0]).predict(1)
        assert forecast == pytest.approx([3.0])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        history = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0]
        forecast = SeasonalNaivePredictor(period=3).fit(history).predict(5)
        assert forecast == pytest.approx([10.0, 20.0, 30.0, 10.0, 20.0])

    def test_perfect_on_exactly_periodic(self):
        pattern = np.array([5.0, 1.0, 2.0, 8.0])
        history = np.tile(pattern, 4)
        forecast = SeasonalNaivePredictor(period=4).fit(history).predict(4)
        assert forecast == pytest.approx(pattern)

    def test_needs_full_period(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(period=5).fit([1.0, 2.0])


class TestSeasonalMean:
    def test_averages_slots(self):
        history = [1.0, 10.0, 3.0, 20.0]  # slots: (1,3) and (10,20)
        forecast = SeasonalMeanPredictor(period=2).fit(history).predict(2)
        assert forecast == pytest.approx([2.0, 15.0])

    def test_phase_alignment_with_partial_day(self):
        # 2.5 periods: forecasts must continue from the correct phase.
        history = [1.0, 10.0, 1.0, 10.0, 1.0]
        forecast = SeasonalMeanPredictor(period=2).fit(history).predict(2)
        assert forecast == pytest.approx([10.0, 1.0])

    def test_robust_to_single_burst(self):
        pattern = np.tile([5.0, 50.0], 10)
        noisy = pattern.copy()
        noisy[6] = 500.0  # one burst
        forecast = SeasonalMeanPredictor(period=2).fit(noisy).predict(2)
        naive = SeasonalNaivePredictor(period=2).fit(noisy).predict(2)
        assert abs(forecast[0] - 5.0) < 50  # slot mean absorbs the burst
        assert forecast[1] < 150.0

    def test_horizon_beyond_period_tiles(self):
        history = [1.0, 2.0]
        forecast = SeasonalMeanPredictor(period=2).fit(history).predict(5)
        assert forecast == pytest.approx([1.0, 2.0, 1.0, 2.0, 1.0])
