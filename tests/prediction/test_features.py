"""Tests for feature-based clustering (repro.prediction.spatial.features)."""

import numpy as np
import pytest

from repro.prediction.spatial.features import FeatureClusterResult, feature_clusters
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    search_signature_set,
)


class TestFeatureClusters:
    def test_separates_shape_families(self):
        rng = np.random.default_rng(7)  # local: result must not depend on test order
        period = 24
        t = np.arange(5 * period)
        diurnal = 30 + 25 * np.sin(2 * np.pi * t / period)
        flat = np.full(t.size, 8.0)
        series = [diurnal + rng.normal(0, 1, t.size) for _ in range(3)]
        series += [flat + rng.normal(0, 0.5, t.size) for _ in range(3)]
        result = feature_clusters(series, period=period)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_signature_is_most_central(self, rng):
        series = rng.normal(10, 2, size=(6, 100))
        result = feature_clusters(series, period=24)
        for cluster, signature in enumerate(result.signatures):
            assert result.labels[signature] == cluster

    def test_single_series(self, rng):
        result = feature_clusters([rng.normal(size=50)], period=10)
        assert result.labels == (0,)
        assert result.n_clusters == 1

    def test_features_standardized(self, rng):
        series = rng.uniform(1, 100, size=(8, 200))
        result = feature_clusters(series, period=24)
        # Non-degenerate columns have ~zero mean after standardization.
        assert np.abs(result.features.mean(axis=0)).max() < 1e-8

    def test_max_clusters(self, rng):
        series = rng.normal(size=(10, 60))
        result = feature_clusters(series, period=10, max_clusters=2)
        assert result.n_clusters == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            feature_clusters(np.zeros((0, 10)))
        with pytest.raises(ValueError):
            feature_clusters(rng.normal(size=20))


class TestFeatureMethodInSearch:
    def test_signature_search_with_features(self, rng):
        t = 240
        base = 20 + 10 * np.sin(2 * np.pi * np.arange(t) / 24)
        data = np.vstack(
            [base * rng.uniform(0.5, 2.0) + rng.normal(0, 0.5, t) for _ in range(6)]
        )
        model = search_signature_set(
            data,
            SignatureSearchConfig(method=ClusteringMethod.FEATURE, period=24),
        )
        assert 1 <= len(model.signature_indices) <= 6
        recon = model.fitted(data)
        assert recon.shape == data.shape

    def test_feature_method_cheaper_than_dtw_on_long_series(self, rng):
        import time

        data = rng.normal(20, 5, size=(12, 480))
        start = time.perf_counter()
        search_signature_set(
            data, SignatureSearchConfig(method=ClusteringMethod.FEATURE, period=96)
        )
        feature_time = time.perf_counter() - start
        start = time.perf_counter()
        search_signature_set(
            data, SignatureSearchConfig(method=ClusteringMethod.DTW, dtw_window=12)
        )
        dtw_time = time.perf_counter() - start
        assert feature_time < dtw_time
