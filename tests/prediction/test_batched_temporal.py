"""Batched-vs-serial equivalence for the MLP training kernel.

The batched trainer (:mod:`repro.prediction.temporal.batched`) claims
*bit-identical* results to per-series ``NeuralNetPredictor.fit`` — not a
tolerance, equality.  These tests pin that claim across seeds, box shapes,
history lengths and the early-stopping edge cases, plus the integration
through the combined predictor and the ``REPRO_BATCHED_TEMPORAL`` gate.
"""

import numpy as np
import pytest

from repro.prediction.combined import SpatialTemporalConfig, SpatialTemporalPredictor
from repro.prediction.registry import fit_temporal_batch, has_batch_fitter
from repro.prediction.spatial.signatures import ClusteringMethod, SignatureSearchConfig
from repro.prediction.temporal.batched import (
    BATCHED_ENV_VAR,
    _fit_equal_length,
    batched_temporal_enabled,
    fit_neural_batch,
)
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor

# A small config keeps every fit fast; bit-equivalence is config-agnostic.
FAST = MlpConfig(hidden_layers=(8, 4), period=24, max_epochs=40, patience=5)


def make_histories(k, size, seed, period=24):
    """K diurnal series with heterogeneous noise (so convergence differs)."""
    rng = np.random.default_rng(seed)
    t = np.arange(size)
    out = []
    for _ in range(k):
        base = 40 + 25 * np.sin(2 * np.pi * t / period + rng.uniform(0, 2 * np.pi))
        trend = rng.uniform(-0.02, 0.02) * t
        noise = rng.normal(0, rng.uniform(0.5, 4.0), size)
        out.append(np.maximum(base + trend + noise, 0.0))
    return out


def serial_fits(histories, cfg=FAST):
    return [NeuralNetPredictor(cfg).fit(h) for h in histories]


def assert_equivalent(serial, batched, horizon=24):
    assert len(serial) == len(batched)
    for s, b in zip(serial, batched):
        assert s._fit_epochs == b._fit_epochs
        np.testing.assert_array_equal(s.predict(horizon), b.predict(horizon))


class TestEquivalence:
    @pytest.mark.parametrize(
        "k,size,seed",
        [
            (2, 24 * 4, 0),
            (3, 24 * 5, 1),
            (5, 24 * 6, 2),
            (8, 24 * 4 + 7, 3),  # length not a multiple of the period
            (4, 24 * 3, 4),
        ],
    )
    def test_bit_identical_forecasts(self, k, size, seed):
        histories = make_histories(k, size, seed)
        batched = fit_neural_batch(histories, FAST)
        assert_equivalent(serial_fits(histories), batched)

    def test_models_stop_at_different_epochs(self):
        # The per-model convergence mask is only exercised when models
        # actually stop at different epochs — pin a case where they do.
        histories = make_histories(6, 24 * 6, seed=11)
        serial = serial_fits(histories)
        epochs = {m._fit_epochs for m in serial}
        assert len(epochs) > 1, "fixture must trigger divergent early stopping"
        assert_equivalent(serial, fit_neural_batch(histories, FAST))

    def test_k1_routes_to_serial(self):
        (history,) = make_histories(1, 24 * 5, seed=5)
        (batched,) = fit_neural_batch([history], FAST)
        (serial,) = serial_fits([history])
        assert_equivalent([serial], [batched])

    def test_k1_degenerate_batch_kernel(self):
        # Call the tensor kernel directly with a width-1 stack: the 3-D ops
        # must agree with serial even without the K=1 routing shortcut.
        (history,) = make_histories(1, 24 * 5, seed=6)
        (batched,) = _fit_equal_length(history[None, :], FAST)
        (serial,) = serial_fits([history])
        assert_equivalent([serial], [batched])

    def test_mixed_history_lengths_grouped(self):
        short = make_histories(2, 24 * 4, seed=7)
        long = make_histories(3, 24 * 6, seed=8)
        histories = [short[0], long[0], short[1], long[1], long[2]]
        batched = fit_neural_batch(histories, FAST)
        assert_equivalent(serial_fits(histories), batched)

    def test_default_config(self):
        # The exact production config (period=96, deeper net).
        cfg = MlpConfig(max_epochs=12)
        histories = make_histories(3, 96 * 3, seed=9, period=96)
        serial = [NeuralNetPredictor(cfg).fit(h) for h in histories]
        batched = fit_neural_batch(histories, cfg)
        assert_equivalent(serial, batched, horizon=96)


class TestGate:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(BATCHED_ENV_VAR, raising=False)
        assert batched_temporal_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "FALSE"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(BATCHED_ENV_VAR, value)
        assert not batched_temporal_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", ""])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(BATCHED_ENV_VAR, value)
        assert batched_temporal_enabled()


class TestRegistry:
    def test_neural_has_batch_fitter(self):
        assert has_batch_fitter("neural")
        assert not has_batch_fitter("seasonal_mean")

    def test_unsupported_model_returns_none(self):
        assert fit_temporal_batch("seasonal_mean", [np.ones(48)], period=24) is None

    def test_batch_fitter_order_and_type(self):
        histories = make_histories(3, 24 * 4, seed=10)
        fitted = fit_temporal_batch("neural", histories, period=24)
        assert fitted is not None and len(fitted) == 3
        assert all(isinstance(m, NeuralNetPredictor) for m in fitted)


class TestCombinedIntegration:
    def _matrix(self, seed=21, n_series=6, days=5, period=24):
        rng = np.random.default_rng(seed)
        t = np.arange(days * period)
        base = 30 + 20 * np.sin(2 * np.pi * t / period)
        return np.vstack(
            [
                rng.uniform(0.5, 2.0) * base + rng.normal(0, 1.0, size=t.size)
                for _ in range(n_series)
            ]
        )

    def test_batched_matches_serial_pipeline(self, monkeypatch):
        config = SpatialTemporalConfig(
            search=SignatureSearchConfig(method=ClusteringMethod.CBC),
            temporal_model="neural",
            period=24,
        )
        data = self._matrix()
        monkeypatch.setenv(BATCHED_ENV_VAR, "0")
        serial = SpatialTemporalPredictor(config).fit_predict(data, 24)
        monkeypatch.setenv(BATCHED_ENV_VAR, "1")
        batched = SpatialTemporalPredictor(config).fit_predict(data, 24)
        np.testing.assert_array_equal(serial.predictions, batched.predictions)
