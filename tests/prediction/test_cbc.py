"""Tests for correlation-based clustering (repro.prediction.spatial.cbc)."""

import numpy as np
import pytest

from repro.prediction.spatial.cbc import CbcResult, correlation_based_clusters


def correlated_group(rng, base, n, noise=0.05):
    return [base + noise * rng.normal(size=base.size) for _ in range(n)]


class TestCbc:
    def test_groups_correlated_series(self, rng):
        t = 200
        base_a = rng.normal(size=t)
        base_b = rng.normal(size=t)
        series = correlated_group(rng, base_a, 3) + correlated_group(rng, base_b, 2)
        result = correlation_based_clusters(series)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_uncorrelated_series_are_singletons(self, rng):
        series = [rng.normal(size=300) for _ in range(4)]
        result = correlation_based_clusters(series)
        assert result.n_clusters == 4

    def test_signature_is_best_connected(self, rng):
        t = 300
        hub = rng.normal(size=t)
        # Two spokes correlate with the hub but less with each other.
        spoke1 = 0.75 * hub + 0.66 * rng.normal(size=t)
        spoke2 = 0.75 * hub + 0.66 * rng.normal(size=t)
        result = correlation_based_clusters([spoke1, hub, spoke2], rho_threshold=0.6)
        assert 1 in result.signatures  # the hub leads its cluster

    def test_every_series_labeled(self, rng):
        series = rng.normal(size=(7, 100))
        result = correlation_based_clusters(series)
        assert all(label >= 0 for label in result.labels)
        assert set(result.labels) == set(range(result.n_clusters))

    def test_signatures_aligned_with_labels(self, rng):
        series = rng.normal(size=(6, 150))
        result = correlation_based_clusters(series)
        for cluster, signature in enumerate(result.signatures):
            assert result.labels[signature] == cluster

    def test_threshold_controls_aggressiveness(self, rng):
        t = 250
        base = rng.normal(size=t)
        series = [base + 0.6 * rng.normal(size=t) for _ in range(6)]
        loose = correlation_based_clusters(series, rho_threshold=0.4)
        strict = correlation_based_clusters(series, rho_threshold=0.95)
        assert loose.n_clusters <= strict.n_clusters

    def test_single_series(self, rng):
        result = correlation_based_clusters([rng.normal(size=50)])
        assert result == CbcResult(labels=(0,), signatures=(0,))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            correlation_based_clusters(np.zeros((0, 5)))
        with pytest.raises(ValueError):
            correlation_based_clusters(rng.normal(size=(2, 10)), rho_threshold=0.0)
        with pytest.raises(ValueError):
            correlation_based_clusters(rng.normal(size=10))

    def test_deterministic(self, rng):
        series = rng.normal(size=(8, 120))
        a = correlation_based_clusters(series)
        b = correlation_based_clusters(series)
        assert a == b
