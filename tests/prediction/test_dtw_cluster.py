"""Tests for DTW-based clustering (repro.prediction.spatial.dtw_cluster)."""

import numpy as np
import pytest

from repro.prediction.spatial.dtw_cluster import DtwClusterResult, dtw_clusters


class TestDtwClusters:
    def test_two_shape_families(self, rng):
        t = np.arange(60)
        rising = [t * (1 + 0.05 * rng.normal(size=60)) for _ in range(3)]
        falling = [(60 - t) * (1 + 0.05 * rng.normal(size=60)) for _ in range(3)]
        result = dtw_clusters(rising + falling, zscore=False)
        labels = result.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_zscore_groups_scaled_copies(self, rng):
        base = np.sin(np.linspace(0, 6, 50)) + 0.02 * rng.normal(size=50)
        series = [base, 100 * base + 5, -base]
        result = dtw_clusters(series, zscore=True)
        assert result.labels[0] == result.labels[1]
        assert result.labels[0] != result.labels[2]

    def test_signature_in_own_cluster(self, rng):
        series = rng.normal(size=(8, 40))
        result = dtw_clusters(series)
        for cluster, signature in enumerate(result.signatures):
            assert result.labels[signature] == cluster

    def test_cluster_count_within_sweep(self, rng):
        series = rng.normal(size=(10, 30))
        result = dtw_clusters(series)
        assert 2 <= result.n_clusters <= 5  # sweep is 2..n//2

    def test_max_clusters_respected(self, rng):
        series = rng.normal(size=(10, 30))
        result = dtw_clusters(series, max_clusters=2)
        assert result.n_clusters == 2

    def test_single_series(self, rng):
        result = dtw_clusters([rng.normal(size=20)])
        assert result == DtwClusterResult(
            labels=(0,), signatures=(0,), n_clusters=1, silhouette=0.0
        )

    def test_silhouette_reported(self, rng):
        base = rng.normal(size=50)
        series = [base + 0.01 * rng.normal(size=50) for _ in range(3)] + [
            10 + 5 * rng.normal(size=50) for _ in range(3)
        ]
        result = dtw_clusters(series, zscore=False)
        assert -1.0 <= result.silhouette <= 1.0
        assert result.silhouette > 0.4  # clear structure

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            dtw_clusters(np.zeros((0, 5)))
        with pytest.raises(ValueError):
            dtw_clusters(rng.normal(size=10))

    def test_banded_close_to_unbanded(self, rng):
        """A reasonable band should not change the chosen structure much."""
        base_a, base_b = rng.normal(size=40), rng.normal(size=40)
        series = [base_a + 0.1 * rng.normal(size=40) for _ in range(3)]
        series += [base_b + 0.1 * rng.normal(size=40) for _ in range(3)]
        unbanded = dtw_clusters(series, window=None)
        banded = dtw_clusters(series, window=8)
        assert unbanded.labels == banded.labels


class TestSilhouetteSweepRegression:
    """The incremental-cut sweep must choose the same k as a scratch sweep."""

    def test_chosen_k_unchanged(self, rng):
        # Three shape families + noise: a non-trivial silhouette landscape.
        t = np.linspace(0, 6, 80)
        series = []
        for family in (np.sin(t), np.cos(t), t / 6.0):
            for _ in range(4):
                series.append(family + 0.05 * rng.normal(size=t.size))
        data = np.asarray(series)

        result = dtw_clusters(data, window=8, zscore=True)

        # Reference: the pre-incremental algorithm — an independent cut per k.
        from repro.timeseries.clustering import HierarchicalClustering
        from repro.timeseries.dtw import dtw_distance_matrix
        from repro.timeseries.silhouette import mean_silhouette

        distances = dtw_distance_matrix(data, window=8, zscore=True)
        best = None
        for k in range(2, data.shape[0] // 2 + 1):
            labels = HierarchicalClustering(distances).cut(k)
            score = mean_silhouette(distances, labels)
            if best is None or score > best[0] + 1e-12:
                best = (score, k, labels)

        assert result.n_clusters == best[1]
        assert result.silhouette == pytest.approx(best[0])
        assert list(result.labels) == best[2]
