"""Tests for Holt-Winters smoothing (repro.prediction.temporal.holtwinters)."""

import numpy as np
import pytest

from repro.prediction.temporal.holtwinters import HoltWintersPredictor


class TestHoltWinters:
    def test_pure_seasonal_pattern(self):
        pattern = np.array([10.0, 20.0, 30.0, 20.0])
        history = np.tile(pattern, 10)
        forecast = HoltWintersPredictor(period=4).fit(history).predict(4)
        assert forecast == pytest.approx(pattern, abs=1.5)

    def test_constant_series(self):
        forecast = HoltWintersPredictor(period=4).fit(np.full(40, 5.0)).predict(8)
        assert forecast == pytest.approx(np.full(8, 5.0), abs=0.1)

    def test_seasonal_plus_noise(self, rng):
        pattern = np.array([10.0, 50.0] * 4)
        history = np.tile(pattern, 12) + rng.normal(0, 1, size=96)
        forecast = HoltWintersPredictor(period=8).fit(history).predict(8)
        assert forecast == pytest.approx(pattern, abs=5.0)

    def test_damped_trend_bounded(self):
        history = np.arange(48.0)  # strong upward trend
        forecast = HoltWintersPredictor(period=4, damp_trend=0.5).fit(history).predict(100)
        # A damped trend must not run away linearly for 100 steps.
        assert forecast[-1] < history[-1] + 30.0

    def test_phase_alignment_partial_period(self):
        pattern = [1.0, 9.0]
        history = np.tile(pattern, 10)[:-1]  # ends mid-period
        forecast = HoltWintersPredictor(period=2).fit(history).predict(2)
        assert forecast[0] == pytest.approx(9.0, abs=2.0)
        assert forecast[1] == pytest.approx(1.0, abs=2.0)

    def test_fixed_parameters_respected(self):
        model = HoltWintersPredictor(period=4, alpha=0.3, beta=0.1, gamma=0.2)
        model.fit(np.tile([1.0, 2.0, 3.0, 4.0], 5))
        assert model._alpha_ == 0.3
        assert model._beta_ == 0.1
        assert model._gamma_ == 0.2

    def test_grid_search_picks_lower_sse(self, rng):
        history = np.tile([5.0, 25.0, 10.0, 40.0], 15) + rng.normal(0, 0.5, size=60)
        searched = HoltWintersPredictor(period=4).fit(history)
        assert searched._alpha_ in (0.05, 0.2, 0.5, 0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersPredictor(period=1)
        with pytest.raises(ValueError):
            HoltWintersPredictor(alpha=1.5)
        with pytest.raises(ValueError):
            HoltWintersPredictor(damp_trend=-0.1)

    def test_needs_period_plus_one(self):
        with pytest.raises(ValueError):
            HoltWintersPredictor(period=8).fit(np.ones(8))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HoltWintersPredictor().predict(1)
