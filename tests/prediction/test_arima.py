"""Tests for the ARIMA predictor (repro.prediction.temporal.arima)."""

import numpy as np
import pytest

from repro.prediction.temporal.arima import ArimaPredictor


class TestArima:
    def test_constant_series(self):
        forecast = ArimaPredictor(p=1, d=0, q=0).fit(np.full(50, 7.0)).predict(5)
        assert forecast == pytest.approx(np.full(5, 7.0), abs=0.5)

    def test_linear_trend_with_differencing(self):
        history = np.arange(100.0)
        forecast = ArimaPredictor(p=1, d=1, q=0).fit(history).predict(5)
        assert forecast == pytest.approx([100, 101, 102, 103, 104], abs=1.0)

    def test_ar1_process(self, rng):
        phi = 0.8
        x = np.zeros(2000)
        eps = rng.normal(0, 1, size=2000)
        for t in range(1, 2000):
            x[t] = phi * x[t - 1] + eps[t]
        model = ArimaPredictor(p=1, d=0, q=0).fit(x)
        one_step = model.predict(1)[0]
        assert one_step == pytest.approx(phi * x[-1], abs=1.0)

    def test_forecast_decays_to_mean(self, rng):
        x = 10.0 + np.random.default_rng(0).normal(0, 1, size=500)
        forecast = ArimaPredictor(p=2, d=0, q=1).fit(x).predict(50)
        assert forecast[-1] == pytest.approx(10.0, abs=1.5)

    def test_horizon_shape(self, rng):
        forecast = ArimaPredictor().fit(rng.normal(size=200)).predict(96)
        assert forecast.shape == (96,)
        assert np.isfinite(forecast).all()

    def test_short_history_mean_fallback(self):
        model = ArimaPredictor(p=2, d=0, q=2, long_ar_order=4)
        model.fit(np.array([1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]))
        assert np.isfinite(model.predict(3)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            ArimaPredictor(p=0, d=0, q=0)
        with pytest.raises(ValueError):
            ArimaPredictor(p=-1)

    def test_too_short_history_rejected(self):
        with pytest.raises(ValueError):
            ArimaPredictor(p=2, d=1, q=1).fit([1.0, 2.0])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ArimaPredictor().predict(1)

    def test_d2_integration(self):
        # Quadratic series: second difference is constant.
        t = np.arange(60.0)
        history = 0.5 * t * t
        forecast = ArimaPredictor(p=1, d=2, q=0).fit(history).predict(3)
        expected = 0.5 * np.array([60.0, 61.0, 62.0]) ** 2
        assert forecast == pytest.approx(expected, rel=0.05)
