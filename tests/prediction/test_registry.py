"""Tests for the temporal-model registry (repro.prediction.registry)."""

import numpy as np
import pytest

from repro.prediction.base import TemporalPredictor, fit_predict
from repro.prediction.registry import available_temporal_models, make_temporal_model


class TestRegistry:
    def test_expected_models_present(self):
        names = available_temporal_models()
        for expected in (
            "ar",
            "arima",
            "holt_winters",
            "last_value",
            "moving_average",
            "neural",
            "seasonal_mean",
            "seasonal_naive",
        ):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown temporal model"):
            make_temporal_model("nope")

    def test_instances_are_fresh(self):
        a = make_temporal_model("seasonal_naive")
        b = make_temporal_model("seasonal_naive")
        assert a is not b

    @pytest.mark.parametrize("name", ["last_value", "moving_average", "seasonal_naive",
                                      "seasonal_mean", "ar", "arima", "holt_winters"])
    def test_every_model_fits_and_predicts(self, name, rng):
        history = 30 + 10 * np.sin(2 * np.pi * np.arange(288) / 96) + rng.normal(0, 1, 288)
        model = make_temporal_model(name, period=96)
        assert isinstance(model, TemporalPredictor)
        forecast = fit_predict(model, history, 96)
        assert forecast.shape == (96,)
        assert np.isfinite(forecast).all()
        # Forecasts should stay in a sane band around the signal.
        assert forecast.mean() == pytest.approx(30.0, abs=15.0)

    def test_neural_model_smoke(self, rng):
        history = 30 + 10 * np.sin(2 * np.pi * np.arange(288) / 96) + rng.normal(0, 1, 288)
        forecast = fit_predict(make_temporal_model("neural", period=96), history, 96)
        assert forecast.shape == (96,)

    def test_period_forwarded(self):
        model = make_temporal_model("seasonal_naive", period=48)
        assert model.period == 48
