"""Tests for the predictor base module (repro.prediction.base)."""

import numpy as np
import pytest

from repro.prediction.base import (
    TemporalPredictor,
    fit_predict,
    validate_history,
    validate_horizon,
)
from repro.prediction.temporal.naive import LastValuePredictor


class TestValidators:
    def test_history_coerced(self):
        arr = validate_history([1, 2, 3])
        assert arr.dtype == float
        assert arr.shape == (3,)

    def test_history_minimum(self):
        with pytest.raises(ValueError, match="at least 5"):
            validate_history([1.0, 2.0], minimum=5)

    def test_history_shape(self):
        with pytest.raises(ValueError):
            validate_history(np.ones((2, 2)))

    def test_history_finite(self):
        with pytest.raises(ValueError):
            validate_history([1.0, np.inf])

    def test_horizon(self):
        assert validate_horizon(5) == 5
        with pytest.raises(ValueError):
            validate_horizon(0)


class TestBaseBehaviour:
    def test_fit_returns_self_for_chaining(self):
        model = LastValuePredictor()
        assert model.fit([1.0]) is model

    def test_is_fitted_flag(self):
        model = LastValuePredictor()
        assert not model.is_fitted
        model.fit([1.0])
        assert model.is_fitted

    def test_fit_predict_helper(self):
        forecast = fit_predict(LastValuePredictor(), [3.0, 9.0], 2)
        assert forecast.tolist() == [9.0, 9.0]

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            TemporalPredictor()
