"""Warm-started batched refits: equivalence, guard, persistence.

The warm kernel's contract (see ``repro.prediction.temporal.warm``):

* with no initializer it is the cold kernel, bit-identical to
  ``fit_neural_batch``;
* a warm-started refit converges in far fewer epochs than a cold fit;
* the validation-loss guard cold-refits any model whose warm fit lands
  materially worse than its previous best — deterministically forced here
  with a garbage initializer, after which the result must be bit-identical
  to an all-cold fit;
* every fit persists its state to the store's disk tier, and a replayed
  identical fit is served with zero training.
"""

import numpy as np
import pytest

from repro import obs
from repro.prediction.temporal.batched import (
    BatchFitState,
    fit_equal_length_state,
    fit_neural_batch,
)
from repro.prediction.temporal.neural import MlpConfig
from repro.prediction.temporal.warm import (
    WARM_PATIENCE,
    fit_neural_batch_warm,
    warm_state_key,
)
from repro.store import clear_memory_tiers

CFG = MlpConfig(period=24, max_epochs=60, seed=7)
HORIZON = 24


def _histories(k=3, periods=6, seed=0, offset=0):
    """K correlated daily-seasonal series; ``offset`` slides the window."""
    rng = np.random.default_rng(seed)
    n = CFG.period * periods
    t = np.arange(offset, offset + n)
    base = np.sin(t * 2 * np.pi / CFG.period) + 2.0
    return [
        base * rng.uniform(0.8, 1.2) + rng.normal(0.0, 0.05, size=n)
        for _ in range(k)
    ]


def _predictions(models):
    return np.stack([m.predict(HORIZON) for m in models])


@pytest.fixture
def counters():
    obs.reset_metrics()
    yield lambda: obs.metrics_snapshot()["counters"]
    obs.reset_metrics()


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    clear_memory_tiers()
    yield tmp_path
    clear_memory_tiers()


class TestColdEquivalence:
    def test_no_initializer_matches_plain_batch_kernel(self):
        histories = _histories()
        warm_models, state = fit_neural_batch_warm(histories, CFG)
        plain = fit_neural_batch(histories, CFG)
        assert state is not None
        np.testing.assert_array_equal(_predictions(warm_models), _predictions(plain))

    def test_single_history_matches_serial_fit(self):
        histories = _histories(k=1)
        warm_models, state = fit_neural_batch_warm(histories, CFG)
        plain = fit_neural_batch(histories, CFG)  # K==1 delegates to serial fit
        assert state is not None and state.params.shape[0] == 1
        np.testing.assert_array_equal(_predictions(warm_models), _predictions(plain))

    def test_mixed_lengths_fall_back_without_state(self):
        histories = _histories(k=2) + _histories(k=1, periods=8, seed=5)
        models, state = fit_neural_batch_warm(histories, CFG)
        assert state is None
        np.testing.assert_array_equal(
            _predictions(models), _predictions(fit_neural_batch(histories, CFG))
        )


class TestWarmChain:
    def test_warm_refit_converges_in_fewer_epochs(self, counters):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        warm_models, warm_state = fit_neural_batch_warm(
            _histories(offset=CFG.period), CFG, warm=cold_state
        )
        assert warm_state is not None
        assert warm_state.epochs.mean() < cold_state.epochs.mean()
        assert np.isfinite(_predictions(warm_models)).all()
        c = counters()
        assert c["warm.models_warm"] == len(warm_models)
        assert c.get("warm.guard_cold_refits", 0) == 0

    def test_warm_never_worse_on_validation_than_initializer(self):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        histories = _histories(offset=CFG.period)
        stack = np.stack([np.asarray(h, dtype=float) for h in histories])
        _, warm_state = fit_neural_batch_warm(histories, CFG, warm=cold_state)
        # The initializer's own val loss on the new window seeds best_val,
        # so further training can only improve on it: a zero-patience fit
        # (stops at the first non-improving epoch, i.e. essentially the
        # initializer's own loss) bounds the chained state from above.
        _, floor_state = fit_equal_length_state(
            stack, CFG, init_params=cold_state.params, patience=0
        )
        assert np.isfinite(warm_state.best_val).all()
        assert np.all(warm_state.best_val <= floor_state.best_val + 1e-12)

    def test_shape_mismatched_initializer_is_ignored(self):
        _, small_state = fit_neural_batch_warm(_histories(k=2), CFG)
        histories = _histories(k=3)
        models, state = fit_neural_batch_warm(histories, CFG, warm=small_state)
        assert state is not None and state.params.shape[0] == 3
        np.testing.assert_array_equal(
            _predictions(models), _predictions(fit_neural_batch(histories, CFG))
        )


class TestValidationGuard:
    def test_garbage_initializer_forces_cold_refit(self, counters):
        histories = _histories()
        stack = np.stack([np.asarray(h, dtype=float) for h in histories])
        _, honest = fit_neural_batch_warm(histories, CFG)
        garbage = BatchFitState(
            params=np.full_like(honest.params, 50.0),
            # A sub-float-noise previous best: any refit outcome exceeds
            # guard_ratio x this, so the guard must fire for every model.
            best_val=np.full(len(histories), 1e-12),
            epochs=np.zeros(len(histories), dtype=int),
        )
        models, state = fit_neural_batch_warm(histories, CFG, warm=garbage)
        c = counters()
        assert c["warm.guard_cold_refits"] == len(histories)
        assert c.get("warm.models_warm", 0) == 0
        cold_models, cold_state = fit_equal_length_state(stack, CFG)
        np.testing.assert_array_equal(_predictions(models), _predictions(cold_models))
        np.testing.assert_array_equal(state.params, cold_state.params)
        np.testing.assert_array_equal(state.best_val, cold_state.best_val)

    def test_healthy_initializer_keeps_guard_quiet(self, counters):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        fit_neural_batch_warm(_histories(offset=CFG.period), CFG, warm=cold_state)
        assert counters().get("warm.guard_cold_refits", 0) == 0


class TestPersistence:
    def test_identical_refit_is_served_from_store(self, store_env, counters):
        histories = _histories()
        models, state = fit_neural_batch_warm(histories, CFG)
        served, served_state = fit_neural_batch_warm(histories, CFG)
        c = counters()
        assert c["warm.resume_hits"] == 1
        assert c["warm.cold_batches"] == 1  # only the first call trained
        np.testing.assert_array_equal(_predictions(served), _predictions(models))
        np.testing.assert_array_equal(served_state.params, state.params)
        np.testing.assert_array_equal(served_state.best_val, state.best_val)

    def test_warm_chain_replay_is_served_from_store(self, store_env, counters):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        advanced = _histories(offset=CFG.period)
        models, _ = fit_neural_batch_warm(advanced, CFG, warm=cold_state)
        replayed, _ = fit_neural_batch_warm(advanced, CFG, warm=cold_state)
        assert counters()["warm.resume_hits"] == 1
        np.testing.assert_array_equal(_predictions(replayed), _predictions(models))

    def test_different_initializer_chains_never_collide(self, store_env):
        histories = _histories()
        _, state_a = fit_neural_batch_warm(_histories(seed=11), CFG)
        _, state_b = fit_neural_batch_warm(_histories(seed=12), CFG)
        stack = np.stack([np.asarray(h, dtype=float) for h in histories])
        key_a = warm_state_key(stack, CFG, state_a, 4.0)
        key_b = warm_state_key(stack, CFG, state_b, 4.0)
        key_cold = warm_state_key(stack, CFG, None, 4.0)
        assert len({key_a, key_b, key_cold}) == 3

    def test_no_store_means_no_persistence_but_working_chain(self, counters):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        models, state = fit_neural_batch_warm(
            _histories(offset=CFG.period), CFG, warm=cold_state
        )
        assert state is not None
        assert counters().get("warm.resume_hits", 0) == 0
        assert np.isfinite(_predictions(models)).all()


class TestWarmPatience:
    def test_warm_fits_use_finetune_patience(self):
        _, cold_state = fit_neural_batch_warm(_histories(), CFG)
        _, warm_state = fit_neural_batch_warm(
            _histories(offset=CFG.period), CFG, warm=cold_state
        )
        # Epochs are bounded by the fine-tune schedule, not the cold one:
        # a model that never improves on its initializer stops after
        # exactly WARM_PATIENCE epochs.
        assert warm_state.epochs.min() >= WARM_PATIENCE
        assert warm_state.epochs.max() <= CFG.max_epochs
