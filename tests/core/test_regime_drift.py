"""Drift gate under regime-shift scenarios.

The online controller's drift gate exists precisely for traces whose
statistics change mid-stream. A scenario that switches a box from
web-diurnal to spiky mid-trace must trip the reconstruction-error gate
and force a full re-search within a bounded number of steps; the
stationary paper-fig2 trace must not.
"""

import pytest

from repro import obs
from repro.core.config import AtmConfig
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.core.online import OnlineAtmController
from repro.store import clear_memory_tiers
from repro.trace import (
    CohortSpec,
    FleetConfig,
    RegimeShift,
    ScenarioSpec,
    generate_box,
    render_box,
)

CFG = FleetConfig(days=10, seed=41)
BOX_INDEX = 2
REFIT_EVERY = 100

SHIFT_SPEC = ScenarioSpec(
    "drift-stress",
    cohorts=(
        CohortSpec("web-diurnal", shift=RegimeShift("spiky", at_fraction=0.55)),
    ),
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_WARM_REFIT", raising=False)
    monkeypatch.delenv("REPRO_DRIFT_GATE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_STORE", raising=False)
    clear_memory_tiers()
    obs.reset_metrics()
    yield
    clear_memory_tiers()
    obs.reset_metrics()


def _neural_config():
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="neural"
    )


def _counters():
    return obs.metrics_snapshot()["counters"]


def _run(box):
    controller = OnlineAtmController(
        box, _neural_config(), refit_every_steps=REFIT_EVERY
    )
    result = controller.run()
    return result.steps, _counters()


class TestRegimeShiftDrift:
    def test_mid_trace_archetype_switch_trips_drift_gate(self):
        box = render_box(BOX_INDEX, SHIFT_SPEC, CFG)
        steps, counters = _run(box)
        # The gate must fire at least once, within the bounded run —
        # i.e. strictly before the temporal-cadence refits alone would
        # account for every refit.
        assert counters.get("online.refit.drift", 0) >= 1
        assert counters["online.refit"] == 1 + counters["online.refit.drift"]
        assert counters.get("online.degradations", 0) == 0
        assert len(steps) > 0

    def test_stationary_paper_trace_does_not_trip_gate(self):
        box = generate_box(BOX_INDEX, CFG)
        steps, counters = _run(box)
        assert counters.get("online.refit.drift", 0) == 0
        assert counters["online.refit"] == 1
        # One OnlineStep per (control step, resource); the gate is
        # evaluated once per control step after the initial fit.
        assert counters["online.drift_skips"] == len(steps) // 2 - 1
