"""Tests for the parallel fleet execution engine (repro.core.executor).

The headline guarantee: ``jobs=N`` produces results numerically identical
to the serial ``jobs=1`` path, in the same (box) order, without workers
ever regenerating fleets.
"""

import os

import numpy as np
import pytest

from repro.benchhelpers.scaling import fingerprint_result
from repro.core.config import AtmConfig
from repro.core.executor import (
    JOBS_ENV_VAR,
    FleetExecutor,
    default_chunksize,
    resolve_jobs,
)
from repro.core.pipeline import run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import evaluate_fleet_resizing
from repro.tickets.policy import TicketPolicy
from repro.trace.generator import (
    FORBID_GENERATION_ENV_VAR,
    FleetConfig,
    generate_fleet,
)


def _square(x):
    """Module-level so pool workers can unpickle it."""
    return x * x


def _scale(x, factor):
    return x * factor


def _maybe_fail(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


def _poison_or_sleep(item, out_dir):
    """First item raises immediately; the rest sleep, then leave a marker."""
    import time as _time

    if item == 0:
        raise RuntimeError("poisoned box")
    _time.sleep(0.5)
    with open(os.path.join(out_dir, f"done-{item}"), "w") as fh:
        fh.write("1")
    return item


def _fail_until_marked(item, out_dir):
    """Item 2 fails on its first attempt, then succeeds (file-based state
    so the transient failure is visible across pool worker processes)."""
    marker = os.path.join(out_dir, f"tried-{item}")
    if item == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        raise RuntimeError("transient glitch")
    return item * 10


def _inject_box_error(item):
    from repro.core import faults as _faults

    _faults.inject_fault("box_error", f"item-{item}")
    return item


def _sleep_item(item):
    import time as _time

    _time.sleep(3.0)
    return item


@pytest.fixture()
def atm_config():
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="seasonal_mean")


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(n_boxes=5, days=6, seed=21), name="exec-test")


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_nonpositive_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs(None)

    def test_default_chunksize(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(100, 4) == 7  # ~4 chunks per worker
        assert default_chunksize(3, 8) == 1


class TestFleetExecutorMap:
    def test_serial_matches_comprehension(self):
        items = list(range(10))
        assert FleetExecutor(jobs=1).map(_square, items) == [x * x for x in items]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(23))
        serial = FleetExecutor(jobs=1).map(_square, items)
        parallel = FleetExecutor(jobs=2).map(_square, items)
        assert parallel == serial

    def test_common_args_are_forwarded(self):
        assert FleetExecutor(jobs=2).map(_scale, [1, 2, 3], 10) == [10, 20, 30]

    def test_explicit_chunksize(self):
        result = FleetExecutor(jobs=2, chunksize=1).map(_square, list(range(7)))
        assert result == [x * x for x in range(7)]

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError, match="chunksize"):
            FleetExecutor(jobs=2, chunksize=0)

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            FleetExecutor(jobs=2).map(_maybe_fail, list(range(6)))

    def test_worker_exception_cancels_pending_chunks(self, tmp_path):
        # Fail fast: a poisoned first item must not let every other chunk
        # run to completion.  One-chunk items + 2 workers: the poisoned
        # chunk fails immediately while at most one other chunk is already
        # running; the rest are still queued and must be cancelled.
        items = list(range(10))
        with pytest.raises(RuntimeError, match="poisoned box"):
            FleetExecutor(jobs=2, chunksize=1).map(
                _poison_or_sleep, items, str(tmp_path)
            )
        completed = len(list(tmp_path.glob("done-*")))
        assert completed < len(items) - 1

    def test_single_item_stays_in_process(self):
        # len(items) <= 1 short-circuits to the serial path even with jobs>1.
        assert FleetExecutor(jobs=4).map(_square, [5]) == [25]


class TestFleetExecutorImap:
    """The streaming dispatch `map` is built on: ordered, windowed, lazy."""

    def test_parallel_order_preserved(self):
        items = list(range(23))
        streamed = list(FleetExecutor(jobs=3, chunksize=2).imap(_square, items))
        assert streamed == [x * x for x in items]

    def test_matches_map(self):
        items = list(range(17))
        executor = FleetExecutor(jobs=2, chunksize=4)
        assert list(executor.imap(_square, items)) == executor.map(_square, items)

    def test_serial_consumption_is_lazy(self):
        # jobs=1 runs in-process (no pickling), so a closure can observe
        # that items are computed one `next()` at a time, not up front.
        calls = []

        def record(x):
            calls.append(x)
            return x

        iterator = FleetExecutor(jobs=1).imap(record, range(5))
        assert next(iterator) == 0
        assert calls == [0]
        assert list(iterator) == [1, 2, 3, 4]

    def test_exception_fails_fast(self, tmp_path):
        iterator = FleetExecutor(jobs=2, chunksize=1).imap(
            _poison_or_sleep, list(range(10)), str(tmp_path)
        )
        with pytest.raises(RuntimeError, match="poisoned box"):
            list(iterator)
        assert len(list(tmp_path.glob("done-*"))) < 9

    def test_timeout_applies(self):
        executor = FleetExecutor(jobs=2, chunksize=1, timeout=0.3)
        with pytest.raises(TimeoutError, match="timed out"):
            list(executor.imap(_sleep_item, [1, 2]))

    def test_abandoned_iterator_releases_pool(self):
        # Closing mid-stream must cancel queued chunks and shut the pool
        # down (promptly — queued work is dropped, not drained).
        iterator = FleetExecutor(jobs=2, chunksize=1).imap(_square, list(range(12)))
        assert next(iterator) == 0
        iterator.close()


class TestRetries:
    def test_serial_retry_recovers_transient_failure(self, tmp_path):
        from repro import obs

        obs.reset_metrics()
        result = FleetExecutor(jobs=1, retries=1).map(
            _fail_until_marked, list(range(4)), str(tmp_path)
        )
        assert result == [0, 10, 20, 30]
        assert obs.metrics_snapshot()["counters"]["executor.retries"] == 1

    def test_no_retries_keeps_fail_fast_contract(self, tmp_path):
        with pytest.raises(RuntimeError, match="transient glitch"):
            FleetExecutor(jobs=1, retries=0).map(
                _fail_until_marked, list(range(4)), str(tmp_path)
            )

    def test_parallel_retry_recovers_transient_failure(self, tmp_path):
        result = FleetExecutor(jobs=2, chunksize=1, retries=1).map(
            _fail_until_marked, list(range(4)), str(tmp_path)
        )
        assert result == [0, 10, 20, 30]

    def test_sticky_failure_exhausts_retries(self, tmp_path):
        # Item 2's marker pre-exists being absent only helps once; a fresh
        # failure every attempt must still propagate after the budget.
        with pytest.raises(RuntimeError, match="boom"):
            FleetExecutor(jobs=1, retries=3).map(_maybe_fail, list(range(6)))

    def test_once_fault_clears_on_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "box_error:once")
        assert FleetExecutor(jobs=1, retries=1).map(
            _inject_box_error, list(range(3))
        ) == [0, 1, 2]

    def test_once_fault_without_retries_fails(self, monkeypatch):
        from repro.core.faults import InjectedFault

        monkeypatch.setenv("REPRO_FAULTS", "box_error:once")
        with pytest.raises(InjectedFault):
            FleetExecutor(jobs=1, retries=0).map(_inject_box_error, list(range(3)))

    def test_once_fault_clears_in_pool_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "box_error:once")
        assert FleetExecutor(jobs=2, chunksize=1, retries=1).map(
            _inject_box_error, list(range(3))
        ) == [0, 1, 2]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            FleetExecutor(jobs=1, retries=-1)


class TestTimeout:
    def test_parallel_map_times_out(self):
        with pytest.raises(TimeoutError, match="timed out"):
            FleetExecutor(jobs=2, chunksize=1, timeout=0.3).map(
                _sleep_item, list(range(2))
            )

    def test_generous_timeout_is_harmless(self):
        result = FleetExecutor(jobs=2, timeout=120.0).map(_square, list(range(6)))
        assert result == [x * x for x in range(6)]

    def test_serial_path_ignores_timeout(self):
        # Nothing to cancel in-process: the bound applies to pool waits only.
        assert FleetExecutor(jobs=1, timeout=0.001).map(_square, [1, 2]) == [1, 4]

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            FleetExecutor(jobs=1, timeout=0.0)


class TestParallelSerialEquivalence:
    """Satellite: same fleet, jobs=1 vs jobs>1, identical everything."""

    def test_run_fleet_atm_identical(self, fleet, atm_config):
        serial = run_fleet_atm(fleet, atm_config, jobs=1)
        parallel = run_fleet_atm(fleet, atm_config, jobs=4, chunksize=1)

        # Box ordering and per-box accuracies.  Dataclass equality would
        # choke on legitimately-nan metrics, so compare the nan-aware
        # fingerprint (covers accuracies, reductions, and fleet means).
        assert [a.box_id for a in parallel.accuracies] == [
            a.box_id for a in serial.accuracies
        ]
        assert fingerprint_result(parallel) == fingerprint_result(serial)

        # Per-box reduction records, in order.
        assert parallel.reduction.results == serial.reduction.results

        # Fleet-level aggregates.
        for peak in (False, True):
            s, p = serial.mean_ape(peak=peak), parallel.mean_ape(peak=peak)
            assert (s == p) or (np.isnan(s) and np.isnan(p))
        assert parallel.mean_signature_ratio() == serial.mean_signature_ratio()
        from repro.resizing.evaluate import ResizingAlgorithm
        from repro.trace.model import Resource

        for resource in (Resource.CPU, Resource.RAM):
            for algorithm in ResizingAlgorithm:
                s = serial.mean_reduction(resource, algorithm)
                p = parallel.mean_reduction(resource, algorithm)
                assert (s == p) or (np.isnan(s) and np.isnan(p))

    def test_evaluate_fleet_resizing_identical(self, fleet):
        policy = TicketPolicy(60.0)
        serial = evaluate_fleet_resizing(fleet, policy, eval_windows=96, jobs=1)
        parallel = evaluate_fleet_resizing(fleet, policy, eval_windows=96, jobs=3)
        assert parallel.results == serial.results

    def test_jobs_env_var_drives_pipeline(self, fleet, atm_config, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        parallel = run_fleet_atm(fleet, atm_config)  # jobs=None -> env
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        serial = run_fleet_atm(fleet, atm_config)
        assert fingerprint_result(parallel) == fingerprint_result(serial)


class TestWorkersNeverGenerateFleets:
    """Satellite: workers receive pickled boxes, never rebuild fleets."""

    def test_guard_raises_when_set(self, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            generate_fleet(FleetConfig(n_boxes=1, days=1, seed=1))

    def test_guard_off_for_zero(self, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "0")
        fleet = generate_fleet(FleetConfig(n_boxes=1, days=1, seed=1))
        assert fleet.n_boxes == 1

    def test_parallel_run_with_generation_forbidden(self, fleet, atm_config, monkeypatch):
        # Workers inherit the environment (fork); if any of them tried to
        # regenerate a fleet, the guard would raise inside the pool and the
        # run would fail.
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        result = run_fleet_atm(fleet, atm_config, jobs=2)
        assert len(result.accuracies) == fleet.n_boxes


def _square_chunk(items):
    """Chunk-granular twin of _square (module-level for pool pickling)."""
    return [x * x for x in items]


def _scale_chunk(items, factor):
    return [x * factor for x in items]


def _drop_last_chunk(items):
    return [x * x for x in items][:-1]  # one result short: a contract bug


def _chunk_fail_until_marked(items, out_dir):
    """The whole chunk fails on its first attempt, then succeeds."""
    marker = os.path.join(out_dir, f"chunk-tried-{items[0]}")
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        raise RuntimeError("chunk glitch")
    return [x * 10 for x in items]


def _inject_chunk_box_error(items):
    from repro.core import faults as _faults

    for item in items:
        _faults.inject_fault("box_error", f"item-{item}")
    return list(items)


class TestChunkFn:
    """Chunk-granular execution: ``chunk_fn`` replaces the per-item loop."""

    def test_serial_map_matches_item_path(self):
        items = list(range(11))
        chunked = FleetExecutor(jobs=1, chunksize=3).map(
            _square, items, chunk_fn=_square_chunk
        )
        assert chunked == FleetExecutor(jobs=1).map(_square, items)

    def test_serial_imap_streams_in_order(self):
        items = list(range(10))
        streamed = list(
            FleetExecutor(jobs=1, chunksize=4).imap(
                _square, items, chunk_fn=_square_chunk
            )
        )
        assert streamed == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(17))
        serial = FleetExecutor(jobs=1, chunksize=4).map(
            _square, items, chunk_fn=_square_chunk
        )
        parallel = FleetExecutor(jobs=2, chunksize=4).map(
            _square, items, chunk_fn=_square_chunk
        )
        assert parallel == serial == [x * x for x in items]

    def test_common_args_forwarded(self):
        result = FleetExecutor(jobs=1, chunksize=2).map(
            _scale, [1, 2, 3], 10, chunk_fn=_scale_chunk
        )
        assert result == [10, 20, 30]

    def test_result_count_contract_enforced(self):
        with pytest.raises(RuntimeError, match="chunk function returned"):
            FleetExecutor(jobs=1, chunksize=4).map(
                _square, list(range(8)), chunk_fn=_drop_last_chunk
            )

    def test_chunk_granular_retry_recovers(self, tmp_path):
        from repro import obs

        obs.reset_metrics()
        result = FleetExecutor(jobs=1, chunksize=2, retries=1).map(
            _fail_until_marked,
            list(range(4)),
            str(tmp_path),
            chunk_fn=_chunk_fail_until_marked,
        )
        assert result == [0, 10, 20, 30]
        # Both chunks failed once; each retried as a whole chunk.
        assert obs.metrics_snapshot()["counters"]["executor.retries"] == 2

    def test_once_fault_clears_on_chunk_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "box_error:once")
        assert FleetExecutor(jobs=1, chunksize=2, retries=1).map(
            _inject_box_error, list(range(4)), chunk_fn=_inject_chunk_box_error
        ) == [0, 1, 2, 3]

    def test_once_fault_clears_in_pool_chunks(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "box_error:once")
        assert FleetExecutor(jobs=2, chunksize=2, retries=1).map(
            _inject_box_error, list(range(4)), chunk_fn=_inject_chunk_box_error
        ) == [0, 1, 2, 3]
