"""Tests for the online rolling controller (repro.core.online)."""

import numpy as np
import pytest

from repro.core.config import AtmConfig
from repro.core.online import OnlineAtmController, run_online_fleet
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.trace.generator import FleetConfig, generate_box, generate_fleet
from repro.trace.model import Resource


@pytest.fixture(scope="module")
def config():
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="seasonal_mean")


@pytest.fixture(scope="module")
def week_box():
    return generate_box(2, FleetConfig(days=7, seed=41))


class TestController:
    def test_step_count(self, week_box, config):
        controller = OnlineAtmController(week_box, config)
        assert controller.n_steps == 2  # 7 days - 5 training = 2 horizons

    def test_run_produces_all_steps(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        assert len(result.steps) == 2 * 2  # steps x resources
        days = {s.day_index for s in result.steps}
        assert days == {0, 1}

    def test_allocations_respect_budget(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        for step in result.steps:
            capacity = week_box.capacity(step.resource)
            assert step.allocation.sum() <= capacity + 1e-6

    def test_ape_finite(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        assert np.isfinite(result.mean_ape())

    def test_reduction_accounting(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        before = result.total_tickets(static=True)
        after = result.total_tickets()
        assert before == sum(s.tickets_static for s in result.steps)
        assert after == sum(s.tickets_atm for s in result.steps)
        if before > 0:
            assert np.isfinite(result.reduction_percent())

    def test_atm_helps_on_ticketed_boxes(self, config):
        """Aggregated over several boxes, the rolling controller wins."""
        total_before = total_after = 0
        for b in range(5):
            box = generate_box(b, FleetConfig(days=7, seed=55))
            result = OnlineAtmController(box, config).run()
            total_before += result.total_tickets(static=True)
            total_after += result.total_tickets()
        assert total_before > 0
        assert total_after < total_before

    def test_refit_cadence(self, week_box, config):
        eager = OnlineAtmController(week_box, config, refit_every_steps=1)
        lazy = OnlineAtmController(week_box, config, refit_every_steps=10)
        eager_result = eager.run()
        lazy_result = lazy.run()
        # Both run to completion; the lazy one reuses its first fit.
        assert len(eager_result.steps) == len(lazy_result.steps)

    def test_too_short_box_rejected(self, config):
        box = generate_box(0, FleetConfig(days=5, seed=1))
        with pytest.raises(ValueError, match="too short"):
            OnlineAtmController(box, config).run()

    def test_bad_refit_cadence(self, week_box, config):
        with pytest.raises(ValueError):
            OnlineAtmController(week_box, config, refit_every_steps=0)

    def test_steps_for_resource(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        cpu_steps = result.steps_for(Resource.CPU)
        assert len(cpu_steps) == 2
        assert all(s.resource is Resource.CPU for s in cpu_steps)


class TestFleetRunner:
    def test_runs_eligible_boxes(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        results = run_online_fleet(fleet, config)
        assert len(results) == 3

    def test_no_eligible_boxes_rejected(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=3))
        with pytest.raises(ValueError):
            run_online_fleet(fleet, config)
