"""Tests for the online rolling controller (repro.core.online)."""

import numpy as np
import pytest

from repro.core.config import AtmConfig
from repro.core.online import OnlineAtmController, run_online_fleet
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.trace.generator import FleetConfig, generate_box, generate_fleet
from repro.trace.model import Resource


@pytest.fixture(scope="module")
def config():
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="seasonal_mean")


@pytest.fixture(scope="module")
def week_box():
    return generate_box(2, FleetConfig(days=7, seed=41))


class TestController:
    def test_step_count(self, week_box, config):
        controller = OnlineAtmController(week_box, config)
        assert controller.n_steps == 2  # 7 days - 5 training = 2 horizons

    def test_run_produces_all_steps(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        assert len(result.steps) == 2 * 2  # steps x resources
        days = {s.day_index for s in result.steps}
        assert days == {0, 1}

    def test_allocations_respect_budget(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        for step in result.steps:
            capacity = week_box.capacity(step.resource)
            assert step.allocation.sum() <= capacity + 1e-6

    def test_ape_finite(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        assert np.isfinite(result.mean_ape())

    def test_reduction_accounting(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        before = result.total_tickets(static=True)
        after = result.total_tickets()
        assert before == sum(s.tickets_static for s in result.steps)
        assert after == sum(s.tickets_atm for s in result.steps)
        if before > 0:
            assert np.isfinite(result.reduction_percent())

    def test_atm_helps_on_ticketed_boxes(self, config):
        """Aggregated over several boxes, the rolling controller wins."""
        total_before = total_after = 0
        for b in range(5):
            box = generate_box(b, FleetConfig(days=7, seed=55))
            result = OnlineAtmController(box, config).run()
            total_before += result.total_tickets(static=True)
            total_after += result.total_tickets()
        assert total_before > 0
        assert total_after < total_before

    def test_refit_cadence(self, week_box, config):
        eager = OnlineAtmController(week_box, config, refit_every_steps=1)
        lazy = OnlineAtmController(week_box, config, refit_every_steps=10)
        eager_result = eager.run()
        lazy_result = lazy.run()
        # Both run to completion; the lazy one reuses its first fit.
        assert len(eager_result.steps) == len(lazy_result.steps)

    def test_too_short_box_rejected(self, config):
        box = generate_box(0, FleetConfig(days=5, seed=1))
        with pytest.raises(ValueError, match="too short"):
            OnlineAtmController(box, config).run()

    def test_bad_refit_cadence(self, week_box, config):
        with pytest.raises(ValueError):
            OnlineAtmController(week_box, config, refit_every_steps=0)

    def test_steps_for_resource(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        cpu_steps = result.steps_for(Resource.CPU)
        assert len(cpu_steps) == 2
        assert all(s.resource is Resource.CPU for s in cpu_steps)


class TestRefitCadenceAdvancesContext:
    """Regression: non-refit steps must track the advancing training window.

    Before the fix, ``refit_every_steps > 1`` kept the entire predictor
    frozen between refits, so every intermediate step replayed the last
    refit's forecast verbatim — day 2 was "predicted" with day 1's output.
    Now the spatial model is reused but the temporal models re-anchor on
    the advanced window, which the per-step ``predicted_mean`` exposes.
    """

    def test_non_refit_step_prediction_advances(self, week_box, config):
        lazy = OnlineAtmController(week_box, config, refit_every_steps=10).run()
        for resource in (Resource.CPU, Resource.RAM):
            steps = lazy.steps_for(resource)
            assert len(steps) == 2
            # Step 1 never re-ran the signature search, yet its forecast
            # differs from step 0's because the training window moved.
            assert steps[0].predicted_mean != steps[1].predicted_mean

    def test_refit_temporal_requires_fit(self, week_box, config):
        from repro.prediction.combined import SpatialTemporalPredictor

        predictor = SpatialTemporalPredictor(config.prediction)
        with pytest.raises(RuntimeError, match="not been fitted"):
            predictor.refit_temporal(week_box.demand_matrix()[:, :480])

    def test_refit_temporal_rejects_series_mismatch(self, week_box, config):
        from repro.prediction.combined import SpatialTemporalPredictor

        train = week_box.demand_matrix()[:, :480]
        predictor = SpatialTemporalPredictor(config.prediction).fit(train)
        with pytest.raises(ValueError, match="series"):
            predictor.refit_temporal(train[:-1])


class TestShortTrainingWindow:
    """Regression: a training window shorter than one day used to crash.

    With ``training_windows < windows_per_day`` the first step's lookback
    slice ``demands[:, start - windows_per_day : start]`` had a negative
    start, which numpy wraps to the array's tail: an empty slice whose
    ``max(axis=1)`` raised. The lookback is now clamped at the trace start.
    """

    def test_sub_day_training_window_runs(self, week_box):
        config = AtmConfig.with_clustering(
            ClusteringMethod.CBC,
            temporal_model="seasonal_mean",
            training_windows=48,  # half a 96-window day
        )
        result = OnlineAtmController(week_box, config).run()
        assert len(result.steps) == 2 * 6  # (672 - 48) // 96 steps x 2 resources
        for step in result.steps:
            capacity = week_box.capacity(step.resource)
            assert step.allocation.sum() <= capacity + 1e-6


class TestStepImmutability:
    """Regression: a frozen OnlineStep stored the caller's mutable array."""

    def test_allocation_is_defensively_copied(self):
        from repro.core.online import OnlineStep

        allocation = np.array([1.0, 2.0, 3.0])
        step = OnlineStep(
            day_index=0,
            resource=Resource.CPU,
            ape=1.0,
            tickets_static=2,
            tickets_atm=1,
            allocation=allocation,
        )
        allocation[:] = -1.0
        assert np.array_equal(step.allocation, [1.0, 2.0, 3.0])


class TestFleetRunner:
    def test_runs_eligible_boxes(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        results = run_online_fleet(fleet, config)
        assert len(results) == 3

    def test_fleet_result_is_a_mapping(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        results = run_online_fleet(fleet, config)
        assert set(results) == {box.box_id for box in fleet}
        assert sorted(results.items())[0][0] == sorted(results)[0]
        for box_id, result in results.items():
            assert results[box_id] is result
        assert results.report.ok  # healthy run -> empty report

    def test_no_eligible_boxes_degrades_to_empty_result(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=3))
        result = run_online_fleet(fleet, config)
        assert len(result) == 0
        assert not result.report.ok
        (event,) = result.report.events
        assert event.rung == "failed"
        assert event.stage == "fleet"
        assert "supports an online run" in event.reason
        assert np.isnan(result.reduction_percent())

    def test_no_eligible_boxes_rejected_when_fail_fast(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=3))
        with pytest.raises(ValueError):
            run_online_fleet(fleet, config, degrade=False)
