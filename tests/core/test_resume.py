"""Resume-equivalence tests: interrupted fleet runs restart bit-identically.

The scenario the artifact store exists for: a fleet run dies partway (here
via an injected transient fit error with ``degrade=False``), leaving the
completed boxes' result artifacts on disk.  A resumed run must serve those
boxes from the store, compute only the remainder, and produce aggregates
bit-identical to a run that was never interrupted.
"""

from dataclasses import replace

import pytest

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.faults import FaultPlan, FaultRule, InjectedFault, fault_plan
from repro.core.online import OnlineAtmController
from repro.core.pipeline import run_fleet_atm
from repro.prediction.combined import SpatialTemporalConfig
from repro.resizing.evaluate import ResizingAlgorithm, evaluate_fleet_resizing
from repro.store import clear_memory_tiers
from repro.tickets.policy import TicketPolicy
from repro.trace.model import FleetTrace


def _config(**overrides):
    base = AtmConfig(prediction=SpatialTemporalConfig(temporal_model="seasonal_mean"))
    return replace(base, **overrides) if overrides else base


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    clear_memory_tiers()
    yield tmp_path
    clear_memory_tiers()


def _aggregates(result):
    return (
        repr(result.accuracies),
        repr(
            [
                (r.box_id, r.resource, r.algorithm, r.tickets_before, r.tickets_after)
                for r in result.reduction.results
            ]
        ),
        repr([e.to_dict() for e in result.report.events]),
    )


def _counters():
    return obs.metrics_snapshot()["counters"]


def _single_victim_plan(fleet, min_index=2):
    """A transient fit-error plan that fires for exactly one box.

    Scans seeds until the box with the smallest hash draw sits at
    ``min_index`` or later, then sets the probability between the smallest
    and second-smallest draw so precisely that box fires.
    """
    box_ids = [box.box_id for box in fleet]
    for seed in range(500):
        units = [faults._hash_unit(seed, "fit_error", b) for b in box_ids]
        order = sorted(range(len(units)), key=units.__getitem__)
        victim, runner_up = order[0], order[1]
        if victim >= min_index and units[runner_up] - units[victim] > 1e-6:
            probability = (units[victim] + units[runner_up]) / 2.0
            rule = FaultRule(kind="fit_error", probability=probability, once=True)
            return FaultPlan(rules=(rule,), seed=seed), victim
    raise AssertionError("no suitable fault seed found")


class TestPipelineResume:
    def test_interrupted_run_resumes_bit_identically(
        self, pipeline_fleet_6d, store_env
    ):
        cfg = _config()
        plan, victim = _single_victim_plan(pipeline_fleet_6d)

        # The never-interrupted reference (no faults in force).
        reference = run_fleet_atm(pipeline_fleet_6d, cfg, degrade=False)

        # Interrupted run: the transient fault kills the victim box
        # fail-fast, after the boxes before it materialized artifacts.
        with fault_plan(plan):
            with pytest.raises(InjectedFault):
                run_fleet_atm(pipeline_fleet_6d, cfg, degrade=False)
            written = list(store_env.glob("box_result/**/*.npz"))
            # Clean-reference artifacts (different key: no fault plan) plus
            # the interrupted prefix.
            assert len(written) == pipeline_fleet_6d.n_boxes + victim

            # Resume under the same plan: the prefix is served from the
            # store; the retry budget clears the `once` fault on the victim.
            clear_memory_tiers()
            obs.reset_metrics()
            resumed = run_fleet_atm(
                pipeline_fleet_6d, cfg, degrade=False, resume=True, retries=1
            )
        counters = _counters()
        assert counters.get("pipeline.resume.hits") == victim
        assert counters.get("executor.retries") == 1
        assert _aggregates(resumed) == _aggregates(reference)

    def test_resume_without_prior_run_computes_everything(
        self, pipeline_fleet_6d, store_env
    ):
        cfg = _config()
        obs.reset_metrics()
        result = run_fleet_atm(pipeline_fleet_6d, cfg, resume=True)
        counters = _counters()
        assert counters.get("pipeline.resume.hits", 0) == 0
        assert len(result.accuracies) == pipeline_fleet_6d.n_boxes

    def test_corrupted_artifact_falls_back_to_recompute(
        self, pipeline_fleet_6d, store_env
    ):
        cfg = _config()
        cold = run_fleet_atm(pipeline_fleet_6d, cfg)
        artifact = sorted(store_env.glob("box_result/**/*.npz"))[0]
        artifact.write_bytes(b"truncated garbage")
        clear_memory_tiers()
        obs.reset_metrics()
        resumed = run_fleet_atm(pipeline_fleet_6d, cfg, resume=True)
        counters = _counters()
        assert counters.get("pipeline.resume.hits") == pipeline_fleet_6d.n_boxes - 1
        assert counters.get("store.box_result.corrupt") == 1
        assert _aggregates(resumed) == _aggregates(cold)

    def test_degraded_boxes_resume_with_their_events(
        self, pipeline_fleet_6d, store_env
    ):
        """A fallback-rung box's events are part of its artifact."""
        cfg = _config()
        plan, victim = _single_victim_plan(pipeline_fleet_6d, min_index=1)
        rule = replace(plan.rules[0], once=False)  # persistent: ladder engages
        plan = FaultPlan(rules=(rule,), seed=plan.seed)
        with fault_plan(plan):
            degraded = run_fleet_atm(pipeline_fleet_6d, cfg)  # degrade ladder
            assert not degraded.report.ok
            clear_memory_tiers()
            obs.reset_metrics()
            resumed = run_fleet_atm(pipeline_fleet_6d, cfg, resume=True)
        assert _counters().get("pipeline.resume.hits") == pipeline_fleet_6d.n_boxes
        assert _aggregates(resumed) == _aggregates(degraded)


class TestParallelStoreSharing:
    def test_second_parallel_run_computes_zero_searches(
        self, pipeline_fleet_6d, store_env
    ):
        """Pool workers persist search results; a second run recomputes none.

        Before the store, worker-local cache entries died with the pool —
        this pins the fix: the second jobs=N run performs zero signature
        searches (and zero fits: forecasts are artifacts too).
        """
        cfg = _config()
        obs.reset_metrics()
        first = run_fleet_atm(pipeline_fleet_6d, cfg, jobs=2, chunksize=1)
        counters = _counters()
        assert counters.get("spatial.search.computed") == pipeline_fleet_6d.n_boxes

        clear_memory_tiers()
        obs.reset_metrics()
        second = run_fleet_atm(pipeline_fleet_6d, cfg, jobs=2, chunksize=1)
        counters = _counters()
        assert counters.get("spatial.search.computed", 0) == 0
        assert counters.get("predict.fits", 0) == 0
        assert _aggregates(second) == _aggregates(first)


class TestOnlineWarmStart:
    def test_offline_artifacts_warm_start_the_online_step(
        self, sample_box, store_env
    ):
        """The online step-0 slice equals the offline training matrix, so
        an offline run's spatial artifact is served from disk."""
        cfg = _config()
        run_fleet_atm(FleetTrace(name="one-box", boxes=[sample_box]), cfg)
        clear_memory_tiers()
        obs.reset_metrics()
        controller = OnlineAtmController(sample_box, cfg)
        controller.run()
        counters = _counters()
        # Step 0's search is a disk hit; later steps (advanced windows) compute.
        assert counters.get("store.spatial.hit_disk", 0) >= 1
        assert (
            counters.get("spatial.search.computed", 0)
            < controller.n_steps
        )


class TestResizeResume:
    def test_resize_sweep_resumes_from_store(self, small_fleet, store_env):
        policy = TicketPolicy()
        algorithms = (ResizingAlgorithm.ATM, ResizingAlgorithm.STINGY)
        first = evaluate_fleet_resizing(
            small_fleet, policy, algorithms, eval_windows=96
        )
        clear_memory_tiers()
        obs.reset_metrics()
        second = evaluate_fleet_resizing(
            small_fleet, policy, algorithms, eval_windows=96, resume=True
        )
        counters = _counters()
        assert counters.get("resize.resume.hits") == small_fleet.n_boxes
        assert repr(
            [(r.box_id, r.resource, r.algorithm, r.tickets_before, r.tickets_after)
             for r in first.results]
        ) == repr(
            [(r.box_id, r.resource, r.algorithm, r.tickets_before, r.tickets_after)
             for r in second.results]
        )

    def test_resize_key_separates_configurations(self, small_fleet, store_env):
        policy = TicketPolicy()
        evaluate_fleet_resizing(
            small_fleet, policy, (ResizingAlgorithm.ATM,), eval_windows=96
        )
        clear_memory_tiers()
        obs.reset_metrics()
        evaluate_fleet_resizing(
            small_fleet,
            policy,
            (ResizingAlgorithm.ATM,),
            eval_windows=96,
            epsilon_pct=10.0,
            resume=True,
        )
        assert _counters().get("resize.resume.hits", 0) == 0
