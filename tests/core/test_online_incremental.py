"""Incremental online control plane: warm refits, drift gate, parallel fleets.

Pins the three invariants of the incremental step machinery:

* **Legacy bit-identity** — with ``refit_every_steps=1`` the cadence cap
  is always due, so the gates change nothing; and with both gates off the
  cold per-step path is exactly the pre-incremental controller.
* **Drift-gate behavior** — on a stable workload the gate skips the
  signature search between cadence refits (regression-pinned counters);
  a sufficiently low threshold makes it fire early.
* **Serial/parallel/sharded bit-identity** — ``run_online_fleet`` folds
  to the same digests for any worker count, for memory-mapped shards, and
  under injected faults/degradations.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.online import OnlineAtmController, run_online_fleet
from repro.core.runtime import DRIFT_GATE_ENV_VAR, WARM_REFIT_ENV_VAR
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.store import clear_memory_tiers
from repro.store.shards import load_fleet_shards, write_fleet_shards
from repro.trace.generator import FleetConfig, generate_box, generate_fleet


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in (
        WARM_REFIT_ENV_VAR,
        DRIFT_GATE_ENV_VAR,
        "REPRO_JOBS",
        "REPRO_STORE",
        faults.FAULTS_ENV_VAR,
        faults.FAULTS_SEED_ENV_VAR,
    ):
        monkeypatch.delenv(name, raising=False)
    clear_memory_tiers()
    obs.reset_metrics()
    yield
    clear_memory_tiers()
    obs.reset_metrics()


def _gates_off(monkeypatch):
    monkeypatch.setenv(WARM_REFIT_ENV_VAR, "0")
    monkeypatch.setenv(DRIFT_GATE_ENV_VAR, "0")


def _neural_config():
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="neural")


def _seasonal_config():
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )


def _run_digest(result):
    """Byte-exact digest of one box's rolling run."""
    return tuple(
        (
            s.day_index,
            s.resource.value,
            s.ape,
            s.tickets_static,
            s.tickets_atm,
            s.allocation.tobytes(),
            s.predicted_mean,
            s.rung,
            s.reason,
        )
        for s in result.steps
    )


def _fleet_digest(fleet_result):
    boxes = {box_id: _run_digest(r) for box_id, r in fleet_result.items()}
    events = tuple(
        (e.box_id, e.stage, e.rung, e.reason, e.step)
        for e in fleet_result.report.events
    )
    return boxes, events


def _counters():
    return obs.metrics_snapshot()["counters"]


class TestLegacyBitIdentity:
    def test_gates_change_nothing_at_cadence_one(self, monkeypatch):
        """refit_every_steps=1: every step cold-fits either way."""
        box = generate_box(2, FleetConfig(days=7, seed=41))
        config = _neural_config()
        with_gates = OnlineAtmController(box, config, refit_every_steps=1).run()
        _gates_off(monkeypatch)
        without = OnlineAtmController(box, config, refit_every_steps=1).run()
        assert _run_digest(with_gates) == _run_digest(without)
        assert not with_gates.degradations and not without.degradations


class TestDriftGate:
    def test_stable_workload_skips_re_search(self):
        """Regression pin: a huge cap + default threshold = one search."""
        box = generate_box(2, FleetConfig(days=8, seed=41))
        controller = OnlineAtmController(box, _neural_config(), refit_every_steps=100)
        n_steps = controller.n_steps
        assert n_steps >= 2
        result = controller.run()
        assert not result.degradations
        c = _counters()
        assert c["online.refit"] == 1  # only the initial fit searched
        assert c["online.drift_skips"] == n_steps - 1
        assert c.get("online.refit.drift", 0) == 0
        assert c.get("online.refit.cap", 0) == 0
        assert c["online.refit_temporal"] == n_steps - 1

    def test_low_threshold_fires_early_re_search(self):
        """The same workload re-searches when the threshold undercuts its
        natural window-to-window drift (~0.03 on this trace)."""
        box = generate_box(2, FleetConfig(days=8, seed=41))
        result = OnlineAtmController(
            box, _neural_config(), refit_every_steps=100, drift_threshold=0.0
        ).run()
        assert not result.degradations
        c = _counters()
        assert c["online.refit.drift"] >= 1
        assert c["online.refit"] == 1 + c["online.refit.drift"]
        assert c.get("online.drift_skips", 0) == 0

    def test_cadence_cap_still_fires_with_gate_on(self):
        box = generate_box(2, FleetConfig(days=8, seed=41))
        OnlineAtmController(box, _neural_config(), refit_every_steps=1).run()
        c = _counters()
        assert c.get("online.drift_skips", 0) == 0  # cap preempts the check
        assert c.get("online.refit.drift", 0) == 0

    def test_gate_off_restores_pure_cadence(self, monkeypatch):
        monkeypatch.setenv(DRIFT_GATE_ENV_VAR, "0")
        box = generate_box(2, FleetConfig(days=8, seed=41))
        OnlineAtmController(box, _neural_config(), refit_every_steps=100).run()
        c = _counters()
        assert c["online.refit"] == 1
        assert c.get("online.drift_skips", 0) == 0  # never even scored
        assert c.get("online.refit.drift", 0) == 0

    def test_bad_threshold_rejected(self):
        box = generate_box(2, FleetConfig(days=7, seed=41))
        with pytest.raises(ValueError, match="drift_threshold"):
            OnlineAtmController(box, _neural_config(), drift_threshold=-0.1)


class TestWarmColdParity:
    def test_incremental_run_matches_cold_reduction(self, monkeypatch):
        """The win condition: incremental steps preserve the control
        decisions' quality — ticket reduction within tolerance of the
        every-step cold-refit run, with zero degradations."""
        box = generate_box(2, FleetConfig(days=10, seed=41))
        config = _neural_config()
        incremental = OnlineAtmController(box, config, refit_every_steps=100).run()
        assert not incremental.degradations
        warm_epoch_counters = _counters()
        assert warm_epoch_counters.get("warm.models_warm", 0) > 0

        obs.reset_metrics()
        _gates_off(monkeypatch)
        cold = OnlineAtmController(box, config, refit_every_steps=1).run()
        assert not cold.degradations

        assert len(incremental.steps) == len(cold.steps)
        assert cold.total_tickets(static=True) > 0
        assert abs(incremental.reduction_percent() - cold.reduction_percent()) < 5.0


class TestParallelFleet:
    def test_serial_and_parallel_fleets_bit_identical(self):
        fleet = generate_fleet(FleetConfig(n_boxes=4, days=7, seed=62))
        config = _seasonal_config()
        serial = run_online_fleet(fleet, config, jobs=1)
        parallel = run_online_fleet(fleet, config, jobs=2)
        assert len(serial) == 4
        assert _fleet_digest(serial) == _fleet_digest(parallel)

    def test_faulted_fleets_bit_identical(self, monkeypatch):
        """Degradations and whole-box failures fold identically too."""
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "fit_error:p=0.6;box_error:p=0.3")
        monkeypatch.setenv(faults.FAULTS_SEED_ENV_VAR, "3")
        fleet = generate_fleet(FleetConfig(n_boxes=5, days=7, seed=62))
        config = _seasonal_config()
        serial = run_online_fleet(fleet, config, jobs=1)
        parallel = run_online_fleet(fleet, config, jobs=2)
        assert not serial.report.ok  # the spec above must actually bite
        assert _fleet_digest(serial) == _fleet_digest(parallel)

    def test_sharded_fleet_matches_in_ram(self, tmp_path):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        config = _seasonal_config()
        write_fleet_shards(fleet, tmp_path)
        sharded = load_fleet_shards(tmp_path)
        in_ram = run_online_fleet(fleet, config, jobs=1)
        from_shards = run_online_fleet(sharded, config, jobs=2)
        assert _fleet_digest(in_ram) == _fleet_digest(from_shards)

    def test_sharded_eligibility_from_manifest(self, tmp_path):
        # 1-day boxes are manifest-ineligible; the fleet degrades to the
        # empty result without opening a single shard.
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=3))
        write_fleet_shards(fleet, tmp_path)
        sharded = load_fleet_shards(tmp_path)
        result = run_online_fleet(sharded, _seasonal_config())
        assert len(result) == 0
        assert not result.report.ok

    def test_fleet_aggregates_sum_per_box(self):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        result = run_online_fleet(fleet, _seasonal_config())
        assert result.total_tickets(static=True) == sum(
            r.total_tickets(static=True) for r in result.values()
        )
        assert result.total_tickets() == sum(
            r.total_tickets() for r in result.values()
        )
        if result.total_tickets(static=True) > 0:
            assert np.isfinite(result.reduction_percent())


class TestInterruptedResume:
    def test_replayed_run_serves_refits_from_store(self, tmp_path, monkeypatch):
        """An interrupted online run resumes bit-identically: the replay
        hits every persisted warm state and trains nothing."""
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        clear_memory_tiers()
        box = generate_box(2, FleetConfig(days=8, seed=41))
        config = _neural_config()
        first = OnlineAtmController(box, config, refit_every_steps=100).run()
        obs.reset_metrics()
        replay = OnlineAtmController(box, config, refit_every_steps=100).run()
        c = _counters()
        assert c.get("warm.resume_hits", 0) >= 1
        assert _run_digest(first) == _run_digest(replay)
