"""Tests for ATM configuration (repro.core.config)."""

import pytest

from repro.core.config import AtmConfig
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm


class TestAtmConfig:
    def test_defaults_match_paper(self):
        config = AtmConfig()
        assert config.training_windows == 480  # 5 days
        assert config.horizon_windows == 96    # 1 day
        assert config.policy.threshold_pct == 60.0
        assert config.epsilon_pct == 5.0
        assert config.prediction.temporal_model == "neural"

    def test_with_clustering(self):
        config = AtmConfig.with_clustering(ClusteringMethod.DTW)
        assert config.prediction.search.method is ClusteringMethod.DTW

    def test_with_clustering_forwards_kwargs(self):
        config = AtmConfig.with_clustering(
            ClusteringMethod.CBC, temporal_model="seasonal_mean", epsilon_pct=2.0
        )
        assert config.prediction.temporal_model == "seasonal_mean"
        assert config.epsilon_pct == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AtmConfig(training_windows=1)
        with pytest.raises(ValueError):
            AtmConfig(horizon_windows=0)
        with pytest.raises(ValueError):
            AtmConfig(epsilon_pct=-1.0)
        with pytest.raises(ValueError):
            AtmConfig(algorithms=())

    def test_frozen(self):
        with pytest.raises(Exception):
            AtmConfig().epsilon_pct = 1.0

    def test_all_algorithms_by_default(self):
        assert set(AtmConfig().algorithms) == set(ResizingAlgorithm)
