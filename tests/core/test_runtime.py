"""Tests of the consolidated ``REPRO_*`` environment gates."""

import pytest

from repro.core import executor, faults, runtime
from repro import obs
from repro.prediction.spatial import cache
from repro.store import STORE_ENV_VAR


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in (
        runtime.JOBS_ENV_VAR,
        runtime.VECTOR_ENV_VAR,
        runtime.BATCHED_ENV_VAR,
        runtime.SIGNATURE_CACHE_ENV_VAR,
        runtime.METRICS_ENV_VAR,
        runtime.FAULTS_ENV_VAR,
        runtime.FAULTS_SEED_ENV_VAR,
        runtime.STORE_ENV_VAR,
        runtime.WARM_REFIT_ENV_VAR,
        runtime.DRIFT_GATE_ENV_VAR,
        runtime.FUSED_FLEET_ENV_VAR,
        runtime.ROUTE_QUEUES_ENV_VAR,
        runtime.SLA_ACK_ENV_VAR,
        runtime.SLA_RESOLVE_ENV_VAR,
    ):
        monkeypatch.delenv(name, raising=False)


class TestFlags:
    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "No", " 0 "])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(runtime.VECTOR_ENV_VAR, raw)
        assert not runtime.vector_spatial_enabled()

    @pytest.mark.parametrize("raw", ["1", "on", "yes", "anything-else"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(runtime.VECTOR_ENV_VAR, raw)
        assert runtime.vector_spatial_enabled()

    def test_unset_means_default_on(self):
        assert runtime.vector_spatial_enabled()
        assert runtime.batched_temporal_enabled()
        assert runtime.signature_cache_enabled()
        assert runtime.metrics_enabled()
        assert runtime.warm_refit_enabled()
        assert runtime.drift_gate_enabled()
        assert runtime.fused_fleet_enabled()

    def test_fused_fleet_gate_disables(self, monkeypatch):
        monkeypatch.setenv(runtime.FUSED_FLEET_ENV_VAR, "0")
        assert not runtime.fused_fleet_enabled()
        assert not runtime.settings().fused_fleet

    def test_online_gates_disable(self, monkeypatch):
        monkeypatch.setenv(runtime.WARM_REFIT_ENV_VAR, "0")
        monkeypatch.setenv(runtime.DRIFT_GATE_ENV_VAR, "off")
        assert not runtime.warm_refit_enabled()
        assert not runtime.drift_gate_enabled()

    def test_gates_parse_independently(self, monkeypatch):
        # A broken jobs value must not take down unrelated gates.
        monkeypatch.setenv(runtime.JOBS_ENV_VAR, "not-a-number")
        assert runtime.metrics_enabled()
        assert runtime.signature_cache_enabled()
        with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
            runtime.env_jobs()


class TestIntegers:
    def test_env_jobs_unset(self):
        assert runtime.env_jobs() is None

    def test_env_jobs_value(self, monkeypatch):
        monkeypatch.setenv(runtime.JOBS_ENV_VAR, " 4 ")
        assert runtime.env_jobs() == 4

    def test_faults_seed_default(self):
        assert runtime.faults_seed() == 0

    def test_faults_seed_invalid(self, monkeypatch):
        monkeypatch.setenv(runtime.FAULTS_SEED_ENV_VAR, "7.5")
        with pytest.raises(ValueError, match="REPRO_FAULTS_SEED must be an integer"):
            runtime.faults_seed()

    def test_ops_knob_defaults(self):
        assert runtime.route_queues() == 2
        assert runtime.sla_ack_windows() == 1
        assert runtime.sla_resolve_windows() == 4

    def test_ops_knob_values(self, monkeypatch):
        monkeypatch.setenv(runtime.ROUTE_QUEUES_ENV_VAR, " 5 ")
        monkeypatch.setenv(runtime.SLA_ACK_ENV_VAR, "0")
        monkeypatch.setenv(runtime.SLA_RESOLVE_ENV_VAR, "12")
        assert runtime.route_queues() == 5
        assert runtime.sla_ack_windows() == 0
        assert runtime.sla_resolve_windows() == 12

    def test_ops_knob_minimums_enforced(self, monkeypatch):
        monkeypatch.setenv(runtime.ROUTE_QUEUES_ENV_VAR, "0")
        with pytest.raises(ValueError, match="REPRO_ROUTE_QUEUES must be >= 1"):
            runtime.route_queues()
        monkeypatch.setenv(runtime.SLA_ACK_ENV_VAR, "-1")
        with pytest.raises(ValueError, match="REPRO_SLA_ACK_WINDOWS must be >= 0"):
            runtime.sla_ack_windows()

    def test_ops_knob_invalid_integer(self, monkeypatch):
        monkeypatch.setenv(runtime.SLA_RESOLVE_ENV_VAR, "soon")
        with pytest.raises(
            ValueError, match="REPRO_SLA_RESOLVE_WINDOWS must be an integer"
        ):
            runtime.sla_resolve_windows()


class TestStrings:
    def test_store_dir_unset(self):
        assert runtime.store_dir() is None

    def test_store_dir_value(self, monkeypatch):
        monkeypatch.setenv(runtime.STORE_ENV_VAR, "/tmp/artifacts")
        assert runtime.store_dir() == "/tmp/artifacts"

    def test_faults_spec_default_empty(self):
        assert runtime.faults_spec() == ""


class TestSettings:
    def test_snapshot(self, monkeypatch):
        monkeypatch.setenv(runtime.JOBS_ENV_VAR, "2")
        monkeypatch.setenv(runtime.BATCHED_ENV_VAR, "0")
        monkeypatch.setenv(runtime.FAULTS_ENV_VAR, "slow:p=1.0")
        monkeypatch.setenv(runtime.STORE_ENV_VAR, "/tmp/s")
        monkeypatch.setenv(runtime.WARM_REFIT_ENV_VAR, "0")
        s = runtime.settings()
        assert s.jobs == 2
        assert s.vector_spatial and not s.batched_temporal
        assert s.faults_spec == "slow:p=1.0" and s.faults_seed == 0
        assert s.store_dir == "/tmp/s"
        assert not s.warm_refit and s.drift_gate
        assert s.route_queues == 2
        assert s.sla_ack_windows == 1 and s.sla_resolve_windows == 4


class TestLegacyConstantsAgree:
    """The owning modules re-export the same variable names they always had."""

    def test_constants(self):
        assert executor.JOBS_ENV_VAR == runtime.JOBS_ENV_VAR == "REPRO_JOBS"
        assert faults.FAULTS_ENV_VAR == runtime.FAULTS_ENV_VAR == "REPRO_FAULTS"
        assert faults.FAULTS_SEED_ENV_VAR == runtime.FAULTS_SEED_ENV_VAR
        assert cache.CACHE_ENV_VAR == runtime.SIGNATURE_CACHE_ENV_VAR
        assert obs.METRICS_ENV_VAR == runtime.METRICS_ENV_VAR == "REPRO_METRICS"
        assert STORE_ENV_VAR == runtime.STORE_ENV_VAR == "REPRO_STORE"

    def test_gate_functions_delegate(self, monkeypatch):
        monkeypatch.setenv(runtime.SIGNATURE_CACHE_ENV_VAR, "0")
        assert not cache.cache_enabled()
        monkeypatch.setenv(runtime.METRICS_ENV_VAR, "off")
        assert not obs.metrics_enabled()
