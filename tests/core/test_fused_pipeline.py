"""Fleet-fused training plane through ``run_fleet_atm``: equivalence pins.

The fused chunk worker (:func:`repro.core.pipeline._run_box_atm_fused_chunk`)
claims to be observable only as wall-clock: same per-box results, same
degradation events, same store artifacts under the same keys as the
strictly per-box path.  These tests pin that across the gate, worker
counts, fault injection, and cross-path resume.
"""

import os

import pytest

from repro import obs
from repro.benchhelpers.scaling import fingerprint_result
from repro.core.config import AtmConfig
from repro.core.faults import FaultPlan, FaultRule, fault_plan
from repro.core.pipeline import FUSED_CHUNK_BOXES, run_fleet_atm
from repro.core.runtime import FUSED_FLEET_ENV_VAR
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.store import clear_memory_tiers
from repro.trace.generator import FleetConfig, generate_fleet

NEURAL = AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="neural")


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetConfig(n_boxes=4, days=6, seed=7))


def run(fleet, fused, **kwargs):
    """One fleet run with the fused gate pinned, counters isolated."""
    previous = os.environ.get(FUSED_FLEET_ENV_VAR)
    os.environ[FUSED_FLEET_ENV_VAR] = "1" if fused else "0"
    obs.reset_metrics()
    try:
        result = run_fleet_atm(fleet, NEURAL, **kwargs)
    finally:
        if previous is None:
            os.environ.pop(FUSED_FLEET_ENV_VAR, None)
        else:
            os.environ[FUSED_FLEET_ENV_VAR] = previous
    return result, obs.metrics_snapshot()["counters"]


class TestEquivalence:
    def test_fused_matches_per_box(self, fleet):
        baseline, base_counters = run(fleet, fused=False)
        fused, counters = run(fleet, fused=True)
        assert fingerprint_result(fused) == fingerprint_result(baseline)
        # The per-box leg must not have engaged the fused plane...
        assert "fused.groups" not in base_counters
        # ...and the fused leg must have, with zero per-box fallbacks.
        assert counters["fused.groups"] > 0
        assert counters.get("fused.fallback_boxes", 0) == 0

    def test_parallel_fused_matches_serial(self, fleet):
        serial, _ = run(fleet, fused=True)
        parallel, _ = run(fleet, fused=True, jobs=2)
        assert fingerprint_result(parallel) == fingerprint_result(serial)

    def test_events_empty_on_clean_run(self, fleet):
        fused, _ = run(fleet, fused=True)
        assert fused.report.events == []


class TestChunkPolicy:
    def test_serial_fused_chunksize_takes_full_cap(self, fleet, monkeypatch):
        """jobs=1 fused runs use the whole chunk cap (fuller mega-batches)."""
        from repro.core import pipeline

        seen = {}
        original = pipeline._run_box_atm_fused_chunk

        def spy(items, *common):
            seen["chunk"] = max(seen.get("chunk", 0), len(items))
            return original(items, *common)

        monkeypatch.setattr(pipeline, "_run_box_atm_fused_chunk", spy)
        monkeypatch.setenv(FUSED_FLEET_ENV_VAR, "1")
        run_fleet_atm(fleet, NEURAL)
        # 4 boxes < the 64-box cap: one chunk holds the whole fleet.
        assert seen["chunk"] == min(fleet.n_boxes, FUSED_CHUNK_BOXES)


class TestFaultParity:
    def test_degradation_events_match_per_box_path(self, fleet):
        """Injected fit errors degrade identically down both paths."""
        plan = FaultPlan(
            rules=(FaultRule(kind="fit_error", probability=1.0, once=True),)
        )
        with fault_plan(plan):
            baseline, _ = run(fleet, fused=False)
        with fault_plan(plan):
            fused, counters = run(fleet, fused=True)
        assert fingerprint_result(fused) == fingerprint_result(baseline)
        assert [e.to_dict() for e in fused.report.events] == [
            e.to_dict() for e in baseline.report.events
        ]
        # Every box fell back to the per-box ladder, none silently lost.
        assert counters["fused.fallback_boxes"] == fleet.n_boxes
        assert len(fused.accuracies) == fleet.n_boxes

    def test_fail_fast_parity(self, fleet):
        plan = FaultPlan(
            rules=(FaultRule(kind="fit_error", probability=1.0, once=True),)
        )
        from repro.core.faults import InjectedFault

        with fault_plan(plan):
            with pytest.raises(InjectedFault):
                run(fleet, fused=True, degrade=False)


class TestStoreStability:
    @pytest.fixture()
    def store_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        clear_memory_tiers()
        yield tmp_path
        clear_memory_tiers()

    @staticmethod
    def _files(root):
        return {
            os.path.relpath(os.path.join(base, f), root)
            for base, _, names in os.walk(root)
            for f in names
        }

    def test_fused_artifacts_resume_on_per_box_path(self, fleet, store_env):
        """Cross-path resume: fused writes, per-box serves from the store."""
        fused, _ = run(fleet, fused=True)
        clear_memory_tiers()
        resumed, counters = run(fleet, fused=False, resume=True)
        assert counters["pipeline.resume.hits"] == fleet.n_boxes
        assert fingerprint_result(resumed) == fingerprint_result(fused)

    def test_per_box_artifacts_resume_on_fused_path(self, fleet, store_env):
        baseline, _ = run(fleet, fused=False)
        clear_memory_tiers()
        resumed, counters = run(fleet, fused=True, resume=True)
        assert counters["pipeline.resume.hits"] == fleet.n_boxes
        # Everything served from the store: the fused fit never ran.
        assert "fused.groups" not in counters
        assert fingerprint_result(resumed) == fingerprint_result(baseline)

    def test_store_keys_identical_across_paths(self, fleet, store_env):
        """A per-box rerun over a fused-built store adds zero files."""
        run(fleet, fused=True)
        after_fused = self._files(store_env)
        assert after_fused  # the run did materialize artifacts
        clear_memory_tiers()
        run(fleet, fused=False)
        assert self._files(store_env) == after_fused
