"""Tests for the fleet pipeline (repro.core.pipeline) and results."""

import numpy as np
import pytest

from repro.core.config import AtmConfig
from repro.core.pipeline import run_fleet_atm
from repro.core.results import PredictionAccuracy, accuracy_for_box, ape_cdf
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace.generator import FleetConfig, generate_fleet
from repro.trace.model import Resource


@pytest.fixture(scope="module")
def result(pipeline_fleet_6d_module):
    config = AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )
    return run_fleet_atm(pipeline_fleet_6d_module, config, keep_box_results=True)


@pytest.fixture(scope="module")
def pipeline_fleet_6d_module():
    return generate_fleet(FleetConfig(n_boxes=5, days=6, seed=13))


class TestRunFleet:
    def test_every_box_evaluated(self, result, pipeline_fleet_6d_module):
        assert len(result.accuracies) == pipeline_fleet_6d_module.n_boxes
        assert len(result.box_results) == pipeline_fleet_6d_module.n_boxes

    def test_accuracy_aggregates(self, result):
        assert np.isfinite(result.mean_ape())
        assert result.mean_ape() > 0.0
        assert 0.0 < result.mean_signature_ratio() <= 1.0

    def test_cdf_accessors(self, result):
        cdf = result.ape_cdf()
        assert cdf is not None
        assert cdf(0.0) <= cdf(100.0)

    def test_reductions_present(self, result):
        for resource in (Resource.CPU, Resource.RAM):
            value = result.mean_reduction(resource, ResizingAlgorithm.ATM)
            assert np.isfinite(value)

    def test_short_boxes_skipped(self):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=3))
        with pytest.raises(ValueError, match="windows"):
            run_fleet_atm(fleet, AtmConfig())


class TestAccuracyForBox:
    def test_basic(self):
        actual = np.array([[10.0, 20.0], [5.0, 5.0]])
        predicted = np.array([[11.0, 18.0], [5.0, 5.0]])
        accuracy = accuracy_for_box(
            "b", actual, predicted, peak_thresholds=np.array([15.0, 100.0]),
            signature_ratio=0.5,
        )
        assert accuracy.box_id == "b"
        # Series 1: APEs 10% and 10% -> 10; series 2: 0 -> mean 5.
        assert accuracy.ape == pytest.approx(5.0)
        # Only window (0,1) is a peak: APE 10%.
        assert accuracy.peak_ape == pytest.approx(10.0)

    def test_no_peaks_nan(self):
        actual = np.ones((1, 3))
        accuracy = accuracy_for_box(
            "b", actual, actual, peak_thresholds=np.array([10.0]), signature_ratio=1.0
        )
        assert np.isnan(accuracy.peak_ape)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_for_box("b", np.ones((2, 2)), np.ones((2, 3)), np.ones(2), 1.0)

    def test_ape_cdf_filters_nan(self):
        accs = [
            PredictionAccuracy("a", 10.0, float("nan"), 0.5),
            PredictionAccuracy("b", 20.0, 5.0, 0.5),
        ]
        assert ape_cdf(accs).values.tolist() == [10.0, 20.0]
        assert ape_cdf(accs, peak=True).values.tolist() == [5.0]
        assert ape_cdf([PredictionAccuracy("c", float("nan"), float("nan"), 1.0)]) is None


class TestNanNormalization:
    """Fleet aggregates drop non-finite per-box metrics uniformly."""

    @staticmethod
    def _result_with(accuracies):
        from repro.core.pipeline import FleetAtmResult

        result = FleetAtmResult(config=AtmConfig())
        result.accuracies.extend(accuracies)
        return result

    def test_all_nan_box_ignored_everywhere(self):
        nan = float("nan")
        healthy = PredictionAccuracy("a", 10.0, 20.0, 0.5)
        degenerate = PredictionAccuracy("b", nan, nan, nan)
        result = self._result_with([healthy, degenerate])
        assert result.mean_ape() == pytest.approx(10.0)
        assert result.mean_ape(peak=True) == pytest.approx(20.0)
        assert result.mean_signature_ratio() == pytest.approx(0.5)
        assert result.ape_cdf().values.tolist() == [10.0]

    def test_fleet_of_only_nan_boxes(self):
        nan = float("nan")
        result = self._result_with([PredictionAccuracy("a", nan, nan, nan)])
        assert np.isnan(result.mean_ape())
        assert np.isnan(result.mean_ape(peak=True))
        assert np.isnan(result.mean_signature_ratio())
        assert result.ape_cdf() is None

    def test_signature_ratio_matches_ape_filtering(self):
        # The historical bug: mean_ape filtered non-finite values but
        # mean_signature_ratio averaged nan straight in, poisoning the mean.
        nan = float("nan")
        result = self._result_with(
            [
                PredictionAccuracy("a", 10.0, 10.0, 0.4),
                PredictionAccuracy("b", nan, nan, nan),
                PredictionAccuracy("c", 30.0, 30.0, 0.8),
            ]
        )
        assert np.isfinite(result.mean_signature_ratio())
        assert result.mean_signature_ratio() == pytest.approx(0.6)
