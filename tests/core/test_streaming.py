"""Streaming aggregation: bit-identity with the list path, shard dispatch.

The acceptance bar for the streaming engine: with ``REPRO_STREAM_AGG`` on
(default) versus off (the materialized legacy path), every downstream
number — per-box accuracies, ticket counts, fleet means, degradation
reports — is bit-identical, including on fleets where injected faults
drive boxes down the degradation ladder.  And a shard-backed fleet must
reproduce the in-RAM fleet's results exactly while workers receive only
descriptors.
"""

import math

import pytest

from repro.benchhelpers.scaling import fingerprint_result
from repro.core.config import AtmConfig
from repro.core.pipeline import run_fleet_atm
from repro.core.runtime import STREAM_AGG_ENV_VAR, stream_agg_enabled
from repro.core.streaming import TicketHistogram
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import evaluate_fleet_resizing
from repro.store.shards import write_fleet_shards, load_fleet_shards
from repro.tickets.policy import TicketPolicy
from repro.trace import model
from repro.trace.model import FORBID_GENERATION_ENV_VAR


@pytest.fixture(autouse=True)
def _fresh_shard_tier():
    model._SHARD_TIER_ACTIVE = False
    yield
    model._SHARD_TIER_ACTIVE = False


@pytest.fixture()
def atm_config():
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )


class TestGate:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(STREAM_AGG_ENV_VAR, raising=False)
        assert stream_agg_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "0")
        assert not stream_agg_enabled()

    def test_settings_snapshot_carries_gate(self, monkeypatch):
        from repro.core.runtime import settings

        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "off")
        assert settings().stream_agg is False


class TestStreamingEquivalence:
    """Streaming fold == materialized fold, bit for bit."""

    def test_atm_identical_on_degraded_fleet(
        self, pipeline_fleet_6d, atm_config, monkeypatch
    ):
        # Inject primary-fit faults so boxes actually climb the ladder:
        # equivalence must hold for reports too, not just happy paths.
        monkeypatch.setenv("REPRO_FAULTS", "fit_error:p=0.5")
        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "1")
        streamed = run_fleet_atm(pipeline_fleet_6d, atm_config, jobs=2, chunksize=1)
        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "0")
        listed = run_fleet_atm(pipeline_fleet_6d, atm_config, jobs=2, chunksize=1)
        assert fingerprint_result(streamed) == fingerprint_result(listed)
        assert streamed.report == listed.report
        assert not streamed.report.ok  # the faults really fired

    def test_resize_identical_on_faulty_fleet(self, small_fleet, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "box_error:p=0.4")
        policy = TicketPolicy(60.0)
        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "1")
        streamed = evaluate_fleet_resizing(
            small_fleet, policy, eval_windows=96, jobs=2
        )
        monkeypatch.setenv(STREAM_AGG_ENV_VAR, "0")
        listed = evaluate_fleet_resizing(small_fleet, policy, eval_windows=96, jobs=2)
        assert streamed.results == listed.results
        assert streamed.report == listed.report
        assert not streamed.report.ok
        assert streamed.histogram.as_dict() == listed.histogram.as_dict()

    def test_serial_streaming_matches_parallel(self, pipeline_fleet_6d, atm_config):
        serial = run_fleet_atm(pipeline_fleet_6d, atm_config, jobs=1)
        parallel = run_fleet_atm(pipeline_fleet_6d, atm_config, jobs=3, chunksize=1)
        assert fingerprint_result(serial) == fingerprint_result(parallel)


class TestShardedDispatch:
    """Shard-backed fleets: descriptor dispatch, identical numbers."""

    def test_atm_sharded_matches_in_ram(
        self, tmp_path, pipeline_fleet_6d, atm_config
    ):
        write_fleet_shards(pipeline_fleet_6d, tmp_path)
        sharded = load_fleet_shards(tmp_path)
        reference = run_fleet_atm(pipeline_fleet_6d, atm_config, jobs=1)
        via_shards = run_fleet_atm(sharded, atm_config, jobs=1)
        assert fingerprint_result(via_shards) == fingerprint_result(reference)

    def test_resize_sharded_matches_in_ram(self, tmp_path, small_fleet):
        write_fleet_shards(small_fleet, tmp_path)
        sharded = load_fleet_shards(tmp_path)
        policy = TicketPolicy(60.0)
        reference = evaluate_fleet_resizing(small_fleet, policy, eval_windows=96)
        via_shards = evaluate_fleet_resizing(sharded, policy, eval_windows=96)
        assert via_shards.results == reference.results

    def test_parallel_sharded_run_with_materialization_forbidden(
        self, tmp_path, pipeline_fleet_6d, atm_config, monkeypatch
    ):
        # The regression the guard satellite pins down: with the shard tier
        # active and the guard set, a parallel run must complete — workers
        # map per-box views and never build a FleetTrace.  (Forked workers
        # inherit both the env var and the active-tier flag.)
        write_fleet_shards(pipeline_fleet_6d, tmp_path)
        sharded = load_fleet_shards(tmp_path)
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        result = run_fleet_atm(sharded, atm_config, jobs=2, chunksize=1)
        assert len(result.accuracies) == pipeline_fleet_6d.n_boxes
        # The *parent* never opened a shard (only workers did), so its own
        # tier flag is still clear; materialize() marks it before loading
        # and therefore trips the guard.
        assert not model.shard_tier_active()
        with pytest.raises(RuntimeError, match="materialization is forbidden"):
            sharded.materialize()

    def test_eligibility_from_manifest(self, tmp_path, small_fleet, atm_config):
        # A one-day fleet is too short for the 6-day ATM setup; the sharded
        # path must reject it from the manifest alone, like the in-RAM path.
        write_fleet_shards(small_fleet, tmp_path)
        with pytest.raises(ValueError, match="windows required"):
            run_fleet_atm(load_fleet_shards(tmp_path), atm_config)


class TestTicketHistogram:
    def test_counts_and_mean(self):
        hist = TicketHistogram(width=5.0)
        values = (-100.0, -1.0, 0.0, 4.999, 5.0, 100.0)
        for value in values:
            hist.add(value)
        assert hist.total == 6
        assert hist.nan_count == 0
        assert sum(hist.counts) == 6
        assert hist.counts[0] == 1          # -100 lands in the first bin
        assert hist.counts[-1] == 1         # 100 clamps into the last bin
        assert hist.mean() == pytest.approx(sum(values) / 6)

    def test_nan_tallied_separately(self):
        hist = TicketHistogram()
        hist.add(float("nan"))
        hist.add(50.0)
        assert hist.total == 2
        assert hist.nan_count == 1
        assert hist.finite_count == 1
        assert hist.mean() == 50.0

    def test_empty_mean_is_nan(self):
        assert math.isnan(TicketHistogram().mean())

    def test_as_dict_shape(self):
        hist = TicketHistogram(width=10.0)
        hist.add(-5.0)
        data = hist.as_dict()
        assert len(data["edges"]) == len(data["counts"]) + 1
        assert data["edges"][0] == -100.0
        assert data["edges"][-1] == 100.0
        assert data["total"] == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            TicketHistogram(width=0.0)

    def test_fleet_reduction_folds_histogram(self, small_fleet):
        policy = TicketPolicy(60.0)
        summary = evaluate_fleet_resizing(small_fleet, policy, eval_windows=96)
        assert summary.histogram.total == len(summary.results)
