"""Tests of the typed stage graph, its artifact keys, and warm-run reuse."""

from dataclasses import replace

import numpy as np
import pytest

from repro import obs
from repro.core import faults, stages
from repro.core.config import AtmConfig
from repro.core.pipeline import run_fleet_atm
from repro.prediction.combined import SpatialTemporalConfig, SpatialTemporalPredictor
from repro.store import clear_memory_tiers, get_codec
from repro.trace.generator import FleetConfig, generate_box


def _config(**overrides):
    base = AtmConfig(prediction=SpatialTemporalConfig(temporal_model="seasonal_mean"))
    return replace(base, **overrides) if overrides else base


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    clear_memory_tiers()
    yield tmp_path
    clear_memory_tiers()


def _aggregates(result):
    """A bit-faithful digest of a fleet run (repr preserves float bits)."""
    return (
        repr(result.accuracies),
        repr(
            [
                (r.box_id, r.resource, r.algorithm, r.tickets_before, r.tickets_after)
                for r in result.reduction.results
            ]
        ),
        repr([e.to_dict() for e in result.report.events]),
    )


def _counters():
    return obs.metrics_snapshot()["counters"]


class TestGraph:
    def test_topological_order(self):
        seen = set()
        for stage in stages.STAGES:
            assert all(dep in seen for dep in stage.consumes), stage.name
            seen.add(stage.name)
        assert len(seen) == len(stages.STAGES) == 5

    def test_artifact_stages_have_codecs(self):
        for stage in stages.STAGES:
            if stage.artifact:
                assert get_codec(stage.artifact) is not None, stage.artifact


class TestKeys:
    def test_box_fingerprint_deterministic_and_content_addressed(self):
        box_a = generate_box(0, FleetConfig(days=6, seed=5))
        box_a2 = generate_box(0, FleetConfig(days=6, seed=5))
        box_b = generate_box(1, FleetConfig(days=6, seed=5))
        assert stages.box_fingerprint(box_a) == stages.box_fingerprint(box_a2)
        assert stages.box_fingerprint(box_a) != stages.box_fingerprint(box_b)

    def test_forecast_key_ignores_sizing_side_config(self):
        demands = np.random.default_rng(0).random((6, 480))
        base = stages.forecast_key(demands, _config())
        assert base == stages.forecast_key(demands, _config(epsilon_pct=10.0))
        assert base == stages.forecast_key(
            demands, _config(algorithms=_config().algorithms[:1])
        )

    def test_forecast_key_sensitive_to_prediction_side(self):
        demands = np.random.default_rng(0).random((6, 480))
        base = stages.forecast_key(demands, _config())
        assert base != stages.forecast_key(demands, _config(horizon_windows=48))
        other_model = _config(
            prediction=SpatialTemporalConfig(temporal_model="seasonal_naive")
        )
        assert base != stages.forecast_key(demands, other_model)
        assert base != stages.forecast_key(demands + 1e-9, _config())

    def test_box_result_key_folds_fault_plan(self, sample_box):
        clean = stages.box_result_key(sample_box, _config())
        plan = faults.parse_fault_spec("slow:p=0.5", seed=3)
        with faults.fault_plan(plan):
            faulted = stages.box_result_key(sample_box, _config())
        assert clean != faulted
        assert clean == stages.box_result_key(sample_box, _config())
        assert clean != stages.box_result_key(sample_box, _config(), degrade=False)


class TestWarmRuns:
    def test_warm_run_bit_identical_with_zero_fits(
        self, pipeline_fleet_6d, store_env
    ):
        cfg = _config()
        cold = run_fleet_atm(pipeline_fleet_6d, cfg)
        clear_memory_tiers()
        obs.reset_metrics()
        warm = run_fleet_atm(pipeline_fleet_6d, cfg)
        counters = _counters()
        assert counters.get("predict.fits", 0) == 0
        assert counters.get("spatial.search.computed", 0) == 0
        assert counters.get("stages.forecast.hits") == pipeline_fleet_6d.n_boxes
        assert _aggregates(warm) == _aggregates(cold)

    def test_epsilon_sweep_reuses_forecasts(self, pipeline_fleet_6d, store_env):
        run_fleet_atm(pipeline_fleet_6d, _config())
        clear_memory_tiers()
        obs.reset_metrics()
        run_fleet_atm(pipeline_fleet_6d, _config(epsilon_pct=10.0))
        counters = _counters()
        assert counters.get("predict.fits", 0) == 0
        assert counters.get("spatial.search.computed", 0) == 0

    def test_horizon_sweep_reuses_spatial_only(self, pipeline_fleet_6d, store_env):
        run_fleet_atm(pipeline_fleet_6d, _config())
        clear_memory_tiers()
        obs.reset_metrics()
        run_fleet_atm(pipeline_fleet_6d, _config(horizon_windows=48))
        counters = _counters()
        # New horizon -> new forecasts (temporal fits rerun) ...
        assert counters.get("predict.fits") == pipeline_fleet_6d.n_boxes
        # ... but the signature searches are served from the disk tier.
        assert counters.get("spatial.search.computed", 0) == 0

    def test_no_store_runs_stay_identical(self, pipeline_fleet_6d, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        cfg = _config()
        clear_memory_tiers()
        first = run_fleet_atm(pipeline_fleet_6d, cfg)
        clear_memory_tiers()
        second = run_fleet_atm(pipeline_fleet_6d, cfg)
        assert _aggregates(first) == _aggregates(second)


class TestWarmStartFit:
    def test_fit_from_spatial_matches_full_fit(self, sample_box):
        train = sample_box.demand_matrix()[:, :480]
        cfg = SpatialTemporalConfig(temporal_model="seasonal_mean")
        full = SpatialTemporalPredictor(cfg).fit(train)
        warm = SpatialTemporalPredictor(cfg).fit_from_spatial(
            full.spatial_model, train
        )
        a = full.predict(96).predictions
        b = warm.predict(96).predictions
        assert repr(a.tolist()) == repr(b.tolist())

    def test_fit_from_spatial_validates_shape(self, sample_box):
        train = sample_box.demand_matrix()[:, :480]
        cfg = SpatialTemporalConfig(temporal_model="seasonal_mean")
        full = SpatialTemporalPredictor(cfg).fit(train)
        with pytest.raises(ValueError, match="series"):
            SpatialTemporalPredictor(cfg).fit_from_spatial(
                full.spatial_model, train[:-1]
            )
