"""Tests for seeded fault injection and the graceful-degradation ladder."""

import numpy as np
import pytest

from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.degrade import (
    RUNG_FAILED,
    RUNG_HOLD,
    RUNG_PRIMARY,
    RUNG_SEASONAL,
    sanitize_demands,
)
from repro.core.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_plan,
    parse_fault_spec,
)
from repro.core.online import OnlineAtmController, run_online_fleet
from repro.core.pipeline import run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm, evaluate_fleet_resizing
from repro.tickets.policy import TicketPolicy
from repro.trace.generator import FleetConfig, generate_box, generate_fleet


@pytest.fixture(scope="module")
def config():
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="seasonal_mean")


@pytest.fixture(scope="module")
def week_box():
    return generate_box(2, FleetConfig(days=7, seed=41))


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.set_fault_plan(None)


def _plan(*rules, seed=0):
    return FaultPlan(rules=tuple(rules), seed=seed)


def _selective_probability(kind, keys, seed=0):
    """Probability that fires ``kind`` for exactly one of ``keys``.

    Returns ``(victim_key, probability)`` using the same hash the plan
    consults, so the test controls which box faults without ever touching
    the others.
    """
    units = sorted((faults._hash_unit(seed, kind, k), k) for k in keys)
    lowest, second = units[0][0], units[1][0]
    return units[0][1], (lowest + second) / 2.0


class TestSpecParsing:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "fit_error:p=1.0;slow:p=0.5,seconds=0.01;nan_train:p=0.3,fraction=0.2,once",
            seed=7,
        )
        assert plan.seed == 7
        assert plan.rule("fit_error").probability == 1.0
        assert plan.rule("slow").seconds == 0.01
        rule = plan.rule("nan_train")
        assert rule.fraction == 0.2 and rule.once
        assert plan.rule("box_error") is None

    def test_probability_defaults_to_one(self):
        assert parse_fault_spec("fit_error").rule("fit_error").probability == 1.0

    def test_empty_chunks_ignored(self):
        assert parse_fault_spec(";fit_error;;").rules == (
            FaultRule(kind="fit_error", probability=1.0),
        )

    @pytest.mark.parametrize(
        "spec",
        ["bogus_kind:p=1.0", "fit_error:p=2.0", "fit_error:frobnicate=1", "slow:p"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "fit_error:p=1.0")
        monkeypatch.setenv(faults.FAULTS_SEED_ENV_VAR, "3")
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 3
        assert plan.should_inject("fit_error", "any-box")

    def test_env_bad_seed(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "fit_error")
        monkeypatch.setenv(faults.FAULTS_SEED_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError, match="integer"):
            faults.active_plan()

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        assert faults.active_plan() is None


class TestDecisions:
    def test_hash_decision_is_deterministic(self):
        plan = _plan(FaultRule("fit_error", 0.5), seed=11)
        first = [plan.should_inject("fit_error", f"box-{i:03d}") for i in range(40)]
        again = [plan.should_inject("fit_error", f"box-{i:03d}") for i in range(40)]
        assert first == again
        assert any(first) and not all(first)  # p=0.5 splits the fleet

    def test_decisions_are_per_kind(self):
        plan = _plan(FaultRule("fit_error", 0.5), FaultRule("slow", 0.5), seed=11)
        fit = [plan.should_inject("fit_error", f"b{i}") for i in range(40)]
        slow = [plan.should_inject("slow", f"b{i}") for i in range(40)]
        assert fit != slow  # independent hashes per fault kind

    def test_once_clears_on_retry(self):
        plan = _plan(FaultRule("fit_error", 1.0, once=True))
        assert plan.should_inject("fit_error", "b", attempt=0)
        assert not plan.should_inject("fit_error", "b", attempt=1)

    def test_attempt_context_scopes_once_rules(self):
        with fault_plan(_plan(FaultRule("fit_error", 1.0, once=True))):
            with pytest.raises(InjectedFault):
                faults.inject_fault("fit_error", "b")
            with faults.attempt_context(1):
                faults.inject_fault("fit_error", "b")  # does not raise
            assert faults.current_attempt() == 0

    def test_inject_noop_without_plan(self):
        faults.set_fault_plan(None)
        faults.inject_fault("fit_error", "b")
        faults.inject_slow("b")


class TestPoisoning:
    def test_poison_is_deterministic_copy(self):
        matrix = np.arange(24.0).reshape(4, 6)
        with fault_plan(_plan(FaultRule("nan_train", 1.0, fraction=0.25), seed=5)):
            first = faults.poison_training("b", matrix)
            second = faults.poison_training("b", matrix)
        assert np.all(np.isfinite(matrix))  # input untouched
        assert np.isnan(first).sum() == round(0.25 * matrix.size)
        assert np.array_equal(np.isnan(first), np.isnan(second))

    def test_no_fire_returns_input(self):
        matrix = np.ones((2, 3))
        with fault_plan(_plan(FaultRule("nan_train", 0.0))):
            assert faults.poison_training("b", matrix) is matrix

    def test_sanitize_repairs_poison(self):
        matrix = np.array([[1.0, np.nan, 3.0], [np.nan, np.nan, np.nan]])
        clean = sanitize_demands(matrix)
        assert np.all(np.isfinite(clean))
        assert clean[0, 1] == 2.0  # finite mean of the row
        assert np.all(clean[1] == 0.0)  # no finite samples -> zeros


class TestOnlineLadder:
    def test_fit_error_degrades_to_seasonal(self, week_box, config):
        with fault_plan(_plan(FaultRule("fit_error", 1.0))):
            result = OnlineAtmController(week_box, config).run()
        assert len(result.steps) == 4
        assert all(s.rung == RUNG_SEASONAL for s in result.steps)
        assert all("fit_error" in (s.reason or "") for s in result.steps)
        assert result.degraded
        assert {e.rung for e in result.degradations} == {RUNG_SEASONAL}
        assert np.isfinite(result.mean_ape())  # fallback still scores

    def test_double_fault_degrades_to_hold(self, week_box, config):
        plan = _plan(FaultRule("fit_error", 1.0), FaultRule("fallback_error", 1.0))
        with fault_plan(plan):
            result = OnlineAtmController(week_box, config).run()
        assert all(s.rung == RUNG_HOLD for s in result.steps)
        for step in result.steps:
            current = week_box.allocations(step.resource)
            assert np.array_equal(step.allocation, current)  # held, not resized
            assert step.tickets_atm == step.tickets_static
            assert np.isnan(step.ape)
        assert {e.rung for e in result.degradations} == {RUNG_SEASONAL, RUNG_HOLD}

    def test_nan_poison_survived_by_fallback(self, week_box, config):
        with fault_plan(_plan(FaultRule("nan_train", 1.0, fraction=0.3))):
            result = OnlineAtmController(week_box, config).run()
        # The primary fit rejects the poisoned slice; the sanitizing
        # seasonal fallback serves every step with finite predictions.
        assert all(s.rung == RUNG_SEASONAL for s in result.steps)
        assert np.isfinite(result.mean_ape())

    def test_no_faults_keeps_primary_rung(self, week_box, config):
        result = OnlineAtmController(week_box, config).run()
        assert all(s.rung == RUNG_PRIMARY for s in result.steps)
        assert not result.degraded


class TestOnlineFleet:
    def test_partial_results_on_box_error(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=7, seed=62))
        keys = [box.box_id for box in fleet]
        victim, probability = _selective_probability("box_error", keys, seed=9)

        clean = run_online_fleet(fleet, config)
        with fault_plan(_plan(FaultRule("box_error", probability), seed=9)):
            faulted = run_online_fleet(fleet, config)

        assert clean.report.ok and len(clean) == 3
        assert victim not in faulted
        assert faulted.report.failed_boxes == [victim]
        event = faulted.report.events_for(victim)[0]
        assert event.rung == RUNG_FAILED and "box_error" in event.reason

        # Healthy boxes are bit-identical to the no-faults run.
        assert set(faulted) == set(keys) - {victim}
        for box_id in faulted:
            before, after = clean[box_id].steps, faulted[box_id].steps
            assert len(before) == len(after)
            for a, b in zip(before, after):
                assert np.array_equal(a.allocation, b.allocation)
                assert (a.tickets_static, a.tickets_atm) == (b.tickets_static, b.tickets_atm)
                assert a.ape == b.ape or (np.isnan(a.ape) and np.isnan(b.ape))

    def test_degrade_false_restores_fail_fast(self, config):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=7, seed=62))
        with fault_plan(_plan(FaultRule("box_error", 1.0))):
            with pytest.raises(InjectedFault):
                run_online_fleet(fleet, config, degrade=False)


class TestPipelineLadder:
    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(n_boxes=3, days=6, seed=17))

    def test_fit_error_falls_back_to_seasonal(self, fleet, config):
        with fault_plan(_plan(FaultRule("fit_error", 1.0))):
            result = run_fleet_atm(fleet, config)
        # Every box degraded but still produced a full accuracy record.
        assert len(result.accuracies) == 3
        assert len(result.report.degraded_boxes) == 3
        assert not result.report.failed_boxes
        assert {e.rung for e in result.report.events} == {RUNG_SEASONAL}

    def test_double_fault_reports_failed_boxes(self, fleet, config):
        plan = _plan(FaultRule("fit_error", 1.0), FaultRule("fallback_error", 1.0))
        with fault_plan(plan):
            result = run_fleet_atm(fleet, config)
        assert result.accuracies == []
        assert len(result.report.failed_boxes) == 3

    def test_partial_failure_keeps_healthy_boxes_identical(self, fleet, config):
        # Seed 5 makes the same box the lowest hash for both fault kinds,
        # so one probability kills its whole ladder while sparing the rest.
        keys = [box.box_id for box in fleet]
        victim, _ = _selective_probability("fit_error", keys, seed=5)
        assert victim == _selective_probability("fallback_error", keys, seed=5)[0]
        probability = max(
            faults._hash_unit(5, kind, victim)
            for kind in ("fit_error", "fallback_error")
        ) + 1e-9
        plan = _plan(
            FaultRule("fit_error", probability),
            FaultRule("fallback_error", probability),
            seed=5,
        )
        clean = run_fleet_atm(fleet, config)
        with fault_plan(plan):
            faulted = run_fleet_atm(fleet, config)
        assert faulted.report.failed_boxes == [victim]
        healthy_clean = [a for a in clean.accuracies if a.box_id != victim]
        assert len(faulted.accuracies) == 2
        for a, b in zip(healthy_clean, faulted.accuracies):
            assert a.box_id == b.box_id
            np.testing.assert_array_equal(a.ape, b.ape)  # NaN-aware exact
            np.testing.assert_array_equal(a.peak_ape, b.peak_ape)

    def test_degrade_false_restores_fail_fast(self, fleet, config):
        with fault_plan(_plan(FaultRule("fit_error", 1.0))):
            with pytest.raises(InjectedFault):
                run_fleet_atm(fleet, config, degrade=False)


class TestResizingSweep:
    def test_partial_results_on_box_error(self):
        fleet = generate_fleet(FleetConfig(n_boxes=3, days=1, seed=23))
        keys = [box.box_id for box in fleet]
        victim, probability = _selective_probability("box_error", keys, seed=2)
        policy = TicketPolicy(threshold_pct=60.0)

        clean = evaluate_fleet_resizing(fleet, policy, (ResizingAlgorithm.ATM,))
        with fault_plan(_plan(FaultRule("box_error", probability), seed=2)):
            faulted = evaluate_fleet_resizing(fleet, policy, (ResizingAlgorithm.ATM,))

        assert clean.report.ok
        assert faulted.report.failed_boxes == [victim]
        healthy_clean = [r for r in clean.results if r.box_id != victim]
        assert [r.box_id for r in faulted.results] == [r.box_id for r in healthy_clean]
        for a, b in zip(healthy_clean, faulted.results):
            assert (a.tickets_before, a.tickets_after) == (b.tickets_before, b.tickets_after)

    def test_degrade_false_restores_fail_fast(self):
        fleet = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=23))
        policy = TicketPolicy(threshold_pct=60.0)
        with fault_plan(_plan(FaultRule("box_error", 1.0))):
            with pytest.raises(InjectedFault):
                evaluate_fleet_resizing(
                    fleet, policy, (ResizingAlgorithm.ATM,), degrade=False
                )


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("nonsense", 1.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("fit_error", 1.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultRule("nan_train", 1.0, fraction=0.0)

    def test_negative_seconds(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultRule("slow", 1.0, seconds=-1.0)
