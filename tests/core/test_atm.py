"""Tests for the per-box ATM controller (repro.core.atm)."""

import numpy as np
import pytest

from repro.core.atm import AtmController
from repro.core.config import AtmConfig
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace.generator import FleetConfig, generate_box
from repro.trace.model import Resource


@pytest.fixture(scope="module")
def fast_config():
    """Cheap temporal model so controller tests stay quick."""
    return AtmConfig.with_clustering(ClusteringMethod.CBC, temporal_model="seasonal_mean")


@pytest.fixture(scope="module")
def box():
    return generate_box(1, FleetConfig(days=6, seed=21))


class TestLifecycle:
    def test_fit_then_predict(self, box, fast_config):
        controller = AtmController(box, fast_config).fit()
        assert controller.is_fitted
        prediction = controller.predict()
        assert prediction.predictions.shape == (2 * box.n_vms, 96)

    def test_predict_before_fit_raises(self, box, fast_config):
        with pytest.raises(RuntimeError):
            AtmController(box, fast_config).predict()

    def test_signature_ratio_before_fit_raises(self, box, fast_config):
        with pytest.raises(RuntimeError):
            _ = AtmController(box, fast_config).signature_ratio

    def test_split_prediction(self, box, fast_config):
        controller = AtmController(box, fast_config).fit()
        split = controller.split_prediction(controller.predict())
        assert split[Resource.CPU].shape == (box.n_vms, 96)
        assert split[Resource.RAM].shape == (box.n_vms, 96)

    def test_resize_respects_budget(self, box, fast_config):
        controller = AtmController(box, fast_config).fit()
        allocations = controller.resize(controller.split_prediction(controller.predict()))
        for resource in (Resource.CPU, Resource.RAM):
            alloc = allocations[resource]
            assert alloc.shape == (box.n_vms,)
            assert alloc.sum() <= box.capacity(resource) + 1e-6
            assert np.all(alloc > 0)


class TestRun:
    def test_run_produces_complete_result(self, box, fast_config):
        result = AtmController(box, fast_config).run()
        assert result.box_id == box.box_id
        assert np.isfinite(result.accuracy.ape)
        assert 0.0 < result.accuracy.signature_ratio <= 1.0
        for resource in (Resource.CPU, Resource.RAM):
            for algorithm in fast_config.algorithms:
                assert (resource, algorithm) in result.reductions

    def test_atm_not_worse_than_status_quo_often(self, fast_config):
        """Across several boxes, ATM's median per-box reduction is positive."""
        reductions = []
        for b in range(6):
            box = generate_box(b, FleetConfig(days=6, seed=31))
            result = AtmController(box, fast_config).run()
            red = result.reductions[(Resource.CPU, ResizingAlgorithm.ATM)]
            if red.tickets_before > 0:
                reductions.append(red.reduction)
        assert reductions, "expected at least one ticketed box"
        assert np.median(reductions) > 0.0

    def test_too_short_box_rejected(self, fast_config):
        box = generate_box(0, FleetConfig(days=1, seed=4))
        with pytest.raises(ValueError, match="windows"):
            AtmController(box, fast_config).run()

    def test_default_lower_bounds_from_last_training_day(self, box, fast_config):
        controller = AtmController(box, fast_config).fit()
        lb = controller._default_lower_bounds(Resource.CPU)
        demands = box.demand_matrix(Resource.CPU)
        expected = demands[:, 480 - 96 : 480].max(axis=1)
        assert lb == pytest.approx(expected)
