"""Tests for the benchmark harness helpers (repro.benchhelpers)."""

import pytest

from repro.benchhelpers.fleetcache import characterization_fleet, pipeline_fleet
from repro.benchhelpers.tables import format_row, print_series, print_table


class TestTables:
    def test_format_row_alignment(self):
        row = format_row(["abc", 1.5, 7], [5, 8, 4])
        assert row == "  abc      1.50     7"

    def test_print_table(self, capsys):
        print_table("Title", ["a", "b"], [[1, 2.0], ["x", 3.5]])
        out = capsys.readouterr().out
        assert "== Title" in out
        assert "3.50" in out
        assert "--------" in out

    def test_print_series(self, capsys):
        print_series("CDF", [(0.0, 0.1), (1.0, 0.9)], "x", "F")
        out = capsys.readouterr().out
        assert "== CDF" in out
        assert "0.900" in out


class TestFleetCache:
    def test_characterization_fleet_cached(self):
        a = characterization_fleet(10)
        b = characterization_fleet(10)
        assert a is b  # lru_cache identity
        assert a.n_boxes == 10
        assert a.boxes[0].n_windows == 96  # one day

    def test_pipeline_fleet_six_days(self):
        fleet = pipeline_fleet(3)
        assert fleet.boxes[0].n_windows == 6 * 96

    def test_different_scales_different_fleets(self):
        assert characterization_fleet(10) is not characterization_fleet(11)
