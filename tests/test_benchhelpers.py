"""Tests for the benchmark harness helpers (repro.benchhelpers)."""

import pytest

from repro.benchhelpers.fleetcache import characterization_fleet, pipeline_fleet
from repro.benchhelpers.tables import format_row, print_series, print_table


class TestTables:
    def test_format_row_alignment(self):
        row = format_row(["abc", 1.5, 7], [5, 8, 4])
        assert row == "  abc      1.50     7"

    def test_print_table(self, capsys):
        print_table("Title", ["a", "b"], [[1, 2.0], ["x", 3.5]])
        out = capsys.readouterr().out
        assert "== Title" in out
        assert "3.50" in out
        assert "--------" in out

    def test_print_series(self, capsys):
        print_series("CDF", [(0.0, 0.1), (1.0, 0.9)], "x", "F")
        out = capsys.readouterr().out
        assert "== CDF" in out
        assert "0.900" in out


class TestFleetCache:
    def test_characterization_fleet_cached(self):
        a = characterization_fleet(10)
        b = characterization_fleet(10)
        assert a is b  # lru_cache identity
        assert a.n_boxes == 10
        assert a.boxes[0].n_windows == 96  # one day

    def test_pipeline_fleet_six_days(self):
        fleet = pipeline_fleet(3)
        assert fleet.boxes[0].n_windows == 6 * 96

    def test_different_scales_different_fleets(self):
        assert characterization_fleet(10) is not characterization_fleet(11)


class TestScalingHelpers:
    def test_bench_jobs_follows_env(self, monkeypatch):
        from repro.benchhelpers import bench_jobs

        monkeypatch.setenv("REPRO_JOBS", "2")
        assert bench_jobs() == 2
        monkeypatch.delenv("REPRO_JOBS")
        assert bench_jobs() == 1

    def test_quick_scaling_report_smoke(self):
        # The --quick mode of benchmarks/bench_parallel_scaling.py, wired in
        # here so the fast suite exercises the full scaling harness end to
        # end (timing, speedup math, and the equivalence assertion).
        from repro.benchhelpers import quick_scaling_report

        rows, results = quick_scaling_report(n_boxes=4, jobs_list=(1, 2))
        assert [int(row[0]) for row in rows] == [1, 2]
        assert all(row[1] > 0 for row in rows)
        assert rows[0][2] == 1.0  # baseline speedup is exactly 1x
        assert len(results) == 2

    def test_fingerprint_nan_safe(self):
        from repro.benchhelpers.scaling import _nan_safe

        assert _nan_safe(float("nan")) == "nan"
        assert _nan_safe(1.5) == 1.5
