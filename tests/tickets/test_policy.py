"""Tests for ticket policies (repro.tickets.policy)."""

import pytest

from repro.tickets.policy import DEFAULT_POLICY, DEFAULT_THRESHOLDS, TicketPolicy


class TestTicketPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.threshold_pct == 60.0
        assert DEFAULT_POLICY.window_minutes == 15
        assert DEFAULT_POLICY.alpha == pytest.approx(0.6)

    def test_thresholds_constant(self):
        assert DEFAULT_THRESHOLDS == (60.0, 70.0, 80.0)

    def test_violates_usage_strict(self):
        policy = TicketPolicy(60.0)
        assert not policy.violates_usage(60.0)
        assert policy.violates_usage(60.01)

    def test_violates_demand(self):
        policy = TicketPolicy(60.0)
        assert policy.violates_demand(demand=6.1, capacity=10.0)
        assert not policy.violates_demand(demand=6.0, capacity=10.0)

    def test_violates_demand_bad_capacity(self):
        with pytest.raises(ValueError):
            TicketPolicy(60.0).violates_demand(1.0, 0.0)

    def test_with_threshold(self):
        policy = TicketPolicy(60.0, window_minutes=30)
        other = policy.with_threshold(80.0)
        assert other.threshold_pct == 80.0
        assert other.window_minutes == 30

    @pytest.mark.parametrize("bad", [0.0, 100.0, -5.0, 150.0])
    def test_invalid_threshold(self, bad):
        with pytest.raises(ValueError):
            TicketPolicy(bad)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TicketPolicy(60.0, window_minutes=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_POLICY.threshold_pct = 70.0
