"""Tests for the Section II characterization (repro.tickets.characterization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tickets.characterization import (
    box_ticket_stats,
    correlation_cdfs,
    culprit_vm_count,
    fleet_ticket_summary,
)
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, FleetTrace, Resource, VMTrace


class TestCulpritCount:
    def test_no_tickets_zero_culprits(self):
        assert culprit_vm_count([0, 0, 0]) == 0

    def test_single_dominant_vm(self):
        assert culprit_vm_count([100, 1, 1]) == 1

    def test_even_spread_needs_most_vms(self):
        assert culprit_vm_count([10, 10, 10, 10, 10]) == 4  # 80% of 50 = 40

    def test_exact_boundary(self):
        # 80% of 10 = 8; top VM has exactly 8.
        assert culprit_vm_count([8, 1, 1]) == 1

    def test_two_culprits(self):
        assert culprit_vm_count([50, 45, 3, 2]) == 2

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=12))
    def test_bounds(self, counts):
        culprits = culprit_vm_count(counts)
        if sum(counts) == 0:
            assert culprits == 0
        else:
            assert 1 <= culprits <= len(counts)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=2, max_size=10))
    def test_greedy_coverage_is_sufficient(self, counts):
        if sum(counts) == 0:
            return
        k = culprit_vm_count(counts)
        top = sorted(counts, reverse=True)[:k]
        assert sum(top) >= 0.8 * sum(counts) - 1e-9


def _constant_box(box_id, cpu_levels, n=8):
    vms = [
        VMTrace(
            f"{box_id}-vm{i}", 2.0, 4.0,
            cpu_usage=np.full(n, level),
            ram_usage=np.full(n, 20.0),
        )
        for i, level in enumerate(cpu_levels)
    ]
    return BoxTrace(box_id, 10.0, 20.0, vms)


class TestBoxStats:
    def test_counts_and_culprits(self):
        box = _constant_box("b", [70.0, 10.0, 10.0])
        stats = box_ticket_stats(box, Resource.CPU, TicketPolicy(60.0))
        assert stats.total_tickets == 8
        assert stats.per_vm == (8, 0, 0)
        assert stats.culprits == 1
        assert stats.has_tickets

    def test_first_windows_scoping(self):
        box = _constant_box("b", [70.0], n=8)
        stats = box_ticket_stats(box, Resource.CPU, TicketPolicy(60.0), first_windows=3)
        assert stats.total_tickets == 3

    def test_first_windows_beyond_length(self):
        box = _constant_box("b", [70.0], n=8)
        stats = box_ticket_stats(box, Resource.CPU, TicketPolicy(60.0), first_windows=99)
        assert stats.total_tickets == 8


class TestFleetSummary:
    def test_summary_on_constructed_fleet(self):
        fleet = FleetTrace(
            [
                _constant_box("a", [70.0, 10.0]),
                _constant_box("b", [10.0, 10.0]),
            ]
        )
        summary = fleet_ticket_summary(fleet, thresholds=(60.0,))
        row = summary.row(Resource.CPU, 60.0)
        assert row["pct_boxes"] == 50.0
        assert row["mean_tickets"] == 4.0  # (8 + 0) / 2
        assert row["mean_culprits"] == 1.0  # only over the ticketed box

    def test_monotone_in_threshold(self, small_fleet):
        summary = fleet_ticket_summary(small_fleet, first_windows=96)
        for resource in (Resource.CPU, Resource.RAM):
            rows = [summary.row(resource, t) for t in (60.0, 70.0, 80.0)]
            assert rows[0]["pct_boxes"] >= rows[1]["pct_boxes"] >= rows[2]["pct_boxes"]
            assert rows[0]["mean_tickets"] >= rows[1]["mean_tickets"]


class TestCorrelationCdfs:
    def test_cdfs_cover_all_measures(self, small_fleet):
        cdfs = correlation_cdfs(small_fleet, first_windows=96)
        means = cdfs.means()
        assert set(means) == {"intra_cpu", "intra_ram", "inter_all", "inter_pair"}
        for value in means.values():
            assert -1.0 <= value <= 1.0

    def test_single_vm_boxes_rejected_for_intra(self):
        box = _constant_box("solo", [50.0])
        fleet = FleetTrace([box])
        with pytest.raises(ValueError, match="intra"):
            correlation_cdfs(fleet)
