"""Tests for incident grouping (repro.tickets.incidents)."""

import numpy as np
import pytest

from repro.tickets.incidents import (
    fleet_incident_stats,
    group_incidents,
    incidents_for_box,
)
from repro.tickets.monitor import TicketRecord
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, FleetTrace, Resource, VMTrace


def record(window, vm="vm0", box="b0", resource=Resource.CPU):
    return TicketRecord(
        box_id=box, vm_id=vm, resource=resource, window=window, usage_pct=80.0
    )


class TestGroupIncidents:
    def test_empty(self):
        assert group_incidents([]) == []

    def test_contiguous_tickets_one_incident(self):
        incidents = group_incidents([record(1), record(2), record(3)])
        assert len(incidents) == 1
        assert incidents[0].n_tickets == 3
        assert incidents[0].duration_windows == 3

    def test_gap_splits_incidents(self):
        incidents = group_incidents([record(1), record(2), record(10)])
        assert len(incidents) == 2
        assert incidents[0].n_tickets == 2
        assert incidents[1].start_window == 10

    def test_max_gap_bridges(self):
        incidents = group_incidents([record(1), record(4)], max_gap_windows=3)
        assert len(incidents) == 1

    def test_simultaneous_vms_merge(self):
        incidents = group_incidents([record(5, vm="a"), record(5, vm="b")])
        assert len(incidents) == 1
        assert incidents[0].n_vms == 2
        assert incidents[0].is_spatial

    def test_resources_listed(self):
        incidents = group_incidents(
            [record(1, resource=Resource.CPU), record(1, resource=Resource.RAM)]
        )
        assert incidents[0].resources == (Resource.CPU, Resource.RAM)

    def test_multiple_boxes_rejected(self):
        with pytest.raises(ValueError, match="multiple boxes"):
            group_incidents([record(1, box="a"), record(1, box="b")])

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            group_incidents([record(1)], max_gap_windows=-1)

    def test_unsorted_input_handled(self):
        incidents = group_incidents([record(9), record(1), record(2)])
        assert len(incidents) == 2

    def test_gap_anchor_resets_on_new_incident(self):
        # Regression: the linkage anchor (``last_window``) used to carry
        # across incident boundaries, so after a split every following
        # record was measured against the *previous* incident's windows
        # and got spuriously split off.
        incidents = group_incidents([record(0), record(10), record(11)])
        assert len(incidents) == 2
        assert incidents[1].start_window == 10
        assert incidents[1].n_tickets == 2

    def test_duplicate_window_multi_vm_after_split(self):
        # Two VMs ticketing in the same window after a gap must land in
        # one spatial incident, not one incident per record.
        records = [
            record(0, vm="a"),
            record(5, vm="a"),
            record(5, vm="b"),
        ]
        incidents = group_incidents(records)
        assert len(incidents) == 2
        assert incidents[1].n_vms == 2
        assert incidents[1].is_spatial

    def test_duplicate_window_multi_resource_after_split(self):
        records = [
            record(0),
            record(7, resource=Resource.CPU),
            record(7, resource=Resource.RAM),
        ]
        incidents = group_incidents(records)
        assert len(incidents) == 2
        assert incidents[1].resources == (Resource.CPU, Resource.RAM)

    def test_zero_gap_strict_adjacency(self):
        # max_gap_windows=0 merges only same-window records; every window
        # stands alone, including duplicate-window pairs after a split.
        records = [record(3, vm="a"), record(3, vm="b"),
                   record(4, vm="a"), record(4, vm="b")]
        incidents = group_incidents(records, max_gap_windows=0)
        assert len(incidents) == 2
        assert [i.n_tickets for i in incidents] == [2, 2]
        assert all(i.n_vms == 2 for i in incidents)

    def test_shuffle_invariance(self):
        # Property: grouping sorts internally, so any input permutation
        # yields the same incident structure.
        base = [
            record(w, vm=vm, resource=res)
            for w in (0, 1, 5, 6, 6, 12)
            for vm in ("a", "b")
            for res in (Resource.CPU, Resource.RAM)
        ]
        reference = group_incidents(base)
        rng = np.random.default_rng(7)
        for _ in range(10):
            shuffled = list(base)
            rng.shuffle(shuffled)
            incidents = group_incidents(shuffled)
            assert len(incidents) == len(reference)
            assert [i.n_tickets for i in incidents] == [
                i.n_tickets for i in reference
            ]
            assert [(i.start_window, i.end_window) for i in incidents] == [
                (i.start_window, i.end_window) for i in reference
            ]


class TestBoxAndFleet:
    @pytest.fixture()
    def storm_box(self):
        """Two VMs that cross the threshold in the same windows (Fig. 1)."""
        hot = np.full(12, 20.0)
        hot[4:7] = 80.0
        vms = [
            VMTrace("v1", 2.0, 4.0, hot.copy(), np.full(12, 10.0)),
            VMTrace("v2", 2.0, 4.0, hot.copy(), np.full(12, 10.0)),
        ]
        return BoxTrace("storm", 10.0, 20.0, vms)

    def test_storm_is_one_spatial_incident(self, storm_box):
        incidents = incidents_for_box(storm_box, TicketPolicy(60.0))
        assert len(incidents) == 1
        assert incidents[0].n_tickets == 6
        assert incidents[0].is_spatial

    def test_fleet_stats(self, storm_box):
        fleet = FleetTrace([storm_box])
        stats = fleet_incident_stats(fleet, TicketPolicy(60.0))
        assert stats["tickets"] == 6
        assert stats["incidents"] == 1
        assert stats["tickets_per_incident"] == pytest.approx(6.0)
        assert stats["spatial_incident_share"] == 1.0

    def test_fleet_stats_on_synthetic_fleet(self, small_fleet):
        stats = fleet_incident_stats(small_fleet, TicketPolicy(60.0))
        assert stats["tickets"] >= stats["incidents"] > 0
        # The generator's spatial correlation should make some incidents
        # span multiple VMs, the paper's root-cause-difficulty signal.
        assert stats["tickets_per_incident"] > 1.0

    def test_no_tickets_fleet(self):
        calm = BoxTrace(
            "calm", 10.0, 20.0,
            [VMTrace("v", 2.0, 4.0, np.full(8, 10.0), np.full(8, 10.0))],
        )
        stats = fleet_incident_stats(FleetTrace([calm]), TicketPolicy(60.0))
        assert stats["incidents"] == 0
        # Undefined ratios are None (JSON null), not NaN — ``json.dumps``
        # used to emit the non-standard literal ``NaN`` here.
        assert stats["tickets_per_incident"] is None
        assert stats["spatial_incident_share"] is None
        import json

        assert "NaN" not in json.dumps(stats)
