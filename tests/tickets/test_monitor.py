"""Tests for ticket monitoring (repro.tickets.monitor)."""

import numpy as np
import pytest

from repro.tickets.monitor import (
    count_tickets,
    count_tickets_for_demand,
    per_vm_ticket_counts,
    ticket_matrix,
    tickets_for_box,
)
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, Resource, VMTrace


@pytest.fixture()
def box():
    hot = VMTrace(
        "hot", 4.0, 8.0,
        cpu_usage=np.array([70.0, 50.0, 90.0, 65.0]),
        ram_usage=np.array([30.0, 30.0, 30.0, 30.0]),
    )
    cool = VMTrace(
        "cool", 4.0, 8.0,
        cpu_usage=np.array([10.0, 20.0, 30.0, 40.0]),
        ram_usage=np.array([61.0, 10.0, 10.0, 10.0]),
    )
    return BoxTrace("b0", 10.0, 20.0, [hot, cool])


class TestTicketMatrix:
    def test_indicator_semantics(self):
        usage = np.array([[59.0, 61.0], [60.0, 80.0]])
        matrix = ticket_matrix(usage, TicketPolicy(60.0))
        assert matrix.tolist() == [[False, True], [False, True]]

    def test_1d_promoted(self):
        assert ticket_matrix(np.array([70.0]), TicketPolicy(60.0)).shape == (1, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            ticket_matrix(np.zeros((2, 2, 2)), TicketPolicy(60.0))

    def test_count(self):
        usage = np.array([[70.0, 70.0, 10.0]])
        assert count_tickets(usage, TicketPolicy(60.0)) == 2


class TestDemandTickets:
    def test_demand_threshold(self):
        policy = TicketPolicy(60.0)
        demand = [5.0, 6.1, 7.0]
        assert count_tickets_for_demand(demand, capacity=10.0, policy=policy) == 2

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            count_tickets_for_demand([1.0], 0.0, TicketPolicy(60.0))

    def test_consistent_with_usage_counting(self, box):
        policy = TicketPolicy(60.0)
        for vm in box.vms:
            via_usage = int((vm.cpu_usage > 60.0).sum())
            via_demand = count_tickets_for_demand(
                vm.demand(Resource.CPU), vm.cpu_capacity, policy
            )
            assert via_usage == via_demand


class TestBoxHelpers:
    def test_per_vm_counts(self, box):
        counts = per_vm_ticket_counts(box, Resource.CPU, TicketPolicy(60.0))
        assert counts.tolist() == [3, 0]

    def test_records_sorted_and_complete(self, box):
        records = tickets_for_box(box, TicketPolicy(60.0))
        assert len(records) == 4  # 3 CPU on hot + 1 RAM on cool
        windows = [r.window for r in records]
        assert windows == sorted(windows)

    def test_records_fields(self, box):
        records = tickets_for_box(box, TicketPolicy(60.0), resources=[Resource.RAM])
        assert len(records) == 1
        record = records[0]
        assert record.vm_id == "cool"
        assert record.resource is Resource.RAM
        assert record.window == 0
        assert record.usage_pct == pytest.approx(61.0)

    def test_higher_threshold_fewer_records(self, box):
        low = tickets_for_box(box, TicketPolicy(60.0))
        high = tickets_for_box(box, TicketPolicy(80.0))
        assert len(high) < len(low)

    def test_records_pin_ticket_matrix_semantics(self, box):
        # Pin: record extraction must route through ticket_matrix, the one
        # indicator implementation — it used to restate the comparison
        # inline, which let the two paths drift.
        policy = TicketPolicy(60.0)
        for resource in (Resource.CPU, Resource.RAM):
            usage = box.usage_matrix(resource)
            expected = {
                (box.vms[i].vm_id, int(t))
                for i, t in np.argwhere(ticket_matrix(usage, policy))
            }
            got = {
                (r.vm_id, r.window)
                for r in tickets_for_box(box, policy, resources=[resource])
            }
            assert got == expected

    def test_threshold_boundary_not_ticketed(self):
        # Exact-threshold usage is NOT a ticket (strict >, Eq. 6); the
        # record path must agree with the matrix path on the boundary.
        vm = VMTrace(
            "edge", 4.0, 8.0,
            cpu_usage=np.array([60.0, 60.0001]),
            ram_usage=np.array([0.0, 0.0]),
        )
        boundary_box = BoxTrace("b1", 10.0, 20.0, [vm])
        records = tickets_for_box(boundary_box, TicketPolicy(60.0))
        assert [(r.window, r.usage_pct) for r in records] == [(1, 60.0001)]
