"""Tests for the ticket cost model (repro.tickets.costs)."""

import numpy as np
import pytest

from repro.tickets.costs import CostBreakdown, TicketCostModel


class TestCostModel:
    def test_cost_formula(self):
        model = TicketCostModel(
            cost_per_ticket=10.0,
            triage_cost_per_ticketed_day=5.0,
            cost_per_resize_action=0.5,
        )
        assert model.cost(tickets=4, ticketed_days=2, resize_actions=6) == pytest.approx(
            40.0 + 10.0 + 3.0
        )

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            TicketCostModel(cost_per_ticket=-1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            TicketCostModel().cost(-1)

    def test_savings(self):
        model = TicketCostModel(cost_per_ticket=100.0, triage_cost_per_ticketed_day=0.0,
                                cost_per_resize_action=1.0)
        breakdown = model.savings(
            tickets_before=50, tickets_after=10, resize_actions=20
        )
        assert breakdown.tickets_avoided == 40
        assert breakdown.net_savings == pytest.approx(5000.0 - 1020.0)
        assert breakdown.savings_percent == pytest.approx(100 * 3980.0 / 5000.0)

    def test_savings_percent_nan_when_free(self):
        model = TicketCostModel(0.0, 0.0, 0.0)
        assert np.isnan(model.savings(0, 0).savings_percent)

    def test_savings_percent_nan_on_zero_cost_baseline(self):
        # A ticket-free "before" period has no baseline to save against,
        # even when the "after" period spends money on actuations.
        model = TicketCostModel(cost_per_ticket=10.0,
                                triage_cost_per_ticketed_day=5.0,
                                cost_per_resize_action=1.0)
        breakdown = model.savings(tickets_before=0, tickets_after=0,
                                  resize_actions=7)
        assert breakdown.cost_before == 0.0
        assert breakdown.net_savings == pytest.approx(-7.0)
        assert np.isnan(breakdown.savings_percent)

    def test_resize_actions_billed_only_after(self):
        # Asymmetry pin: actuations are a cost of running ATM, so they hit
        # the "after" side only — never the status-quo baseline.
        model = TicketCostModel(cost_per_ticket=10.0,
                                triage_cost_per_ticketed_day=0.0,
                                cost_per_resize_action=2.0)
        breakdown = model.savings(tickets_before=3, tickets_after=3,
                                  resize_actions=5)
        assert breakdown.cost_before == pytest.approx(30.0)
        assert breakdown.cost_after == pytest.approx(30.0 + 10.0)
        assert breakdown.net_savings == pytest.approx(-10.0)

    def test_breakdown_roundtrip_fields(self):
        breakdown = CostBreakdown(
            cost_before=100.0, cost_after=40.0, tickets_avoided=2,
            resize_actions=1,
        )
        assert breakdown.net_savings == pytest.approx(60.0)
        assert breakdown.savings_percent == pytest.approx(60.0)

    def test_actuation_cost_can_outweigh_small_gains(self):
        model = TicketCostModel(cost_per_ticket=1.0, triage_cost_per_ticketed_day=0.0,
                                cost_per_resize_action=10.0)
        breakdown = model.savings(tickets_before=5, tickets_after=4, resize_actions=3)
        assert breakdown.net_savings < 0

    def test_defaults_reasonable(self):
        model = TicketCostModel()
        assert model.cost_per_ticket > model.cost_per_resize_action
