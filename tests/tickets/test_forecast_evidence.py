"""Evidence bundles that carry the forecast.

When the ops run rides on a completed ATM run (``OpsConfig.atm`` set and
a persistent store present), every incident that overlaps the forecast
horizon gets the controller's predicted demands and allocations attached
to its evidence bundle — the operator sees *why* the controller did or
did not avert the incident.  Incidents outside the horizon, runs without
a store, and runs without ``atm`` keep the legacy ``None`` fields, and
the forecast provenance is folded into the evidence fingerprint so
enriched bundles never collide with plain ones.
"""

import pytest

from repro import obs
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.store import ArtifactKey, clear_memory_tiers, default_store
from repro.tickets.ops import EVIDENCE_STAGE, OpsConfig, run_box_ops
from repro.trace.generator import FleetConfig, generate_fleet

CFG = FleetConfig(n_boxes=4, days=2, seed=13)


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    clear_memory_tiers()
    yield tmp_path
    clear_memory_tiers()


def _atm_config():
    return AtmConfig.with_clustering(
        ClusteringMethod.CBC,
        temporal_model="seasonal_mean",
        training_windows=96,
        horizon_windows=96,
    )


def _load_bundles(result):
    store = default_store()
    bundles = []
    for data_fp, config_fp in result.evidence_refs:
        key = ArtifactKey(
            stage=EVIDENCE_STAGE, data_fp=data_fp, config_fp=config_fp
        )
        payload = store.get(key)
        assert payload is not None
        bundles.append(payload)
    return bundles


class TestForecastEvidence:
    def test_in_horizon_incidents_carry_the_forecast(self, store_env):
        fleet = generate_fleet(CFG)
        atm = _atm_config()
        run_fleet_atm(fleet, atm)  # populate box-result artifacts

        config = OpsConfig(atm=atm)
        enriched = 0
        lo = atm.training_windows
        for box in fleet.boxes:
            result = run_box_ops(box, config)
            for bundle in _load_bundles(result):
                if bundle.predicted is None:
                    assert bundle.allocations is None
                    continue
                enriched += 1
                assert bundle.allocations is not None
                # Per-VM forecast rows: CPU block stacked on RAM block.
                assert bundle.predicted.shape[0] == 2 * box.n_vms
                hi = lo + bundle.predicted.shape[1]
                assert bundle.end_window >= lo
                assert bundle.start_window < hi
        assert enriched > 0
        counters = obs.metrics_snapshot()["counters"]
        assert counters["ops.evidence.forecasts"] == enriched

    def test_without_atm_config_stays_legacy(self, store_env):
        fleet = generate_fleet(CFG)
        run_fleet_atm(fleet, _atm_config())
        for box in fleet.boxes:
            result = run_box_ops(box, OpsConfig())
            assert all(b.predicted is None for b in _load_bundles(result))
        assert "ops.evidence.forecasts" not in obs.metrics_snapshot()["counters"]

    def test_missing_forecast_artifacts_degrade_gracefully(self, store_env):
        """atm configured but no ATM run cached: bundles stay plain."""
        fleet = generate_fleet(CFG)
        for box in fleet.boxes:
            result = run_box_ops(box, OpsConfig(atm=_atm_config()))
            assert all(b.predicted is None for b in _load_bundles(result))

    def test_forecast_provenance_changes_evidence_keys(self, store_env):
        """The same incident must key differently with a forecast attached:
        resuming an enriched run from plain bundles would silently drop
        the forecast."""
        fleet = generate_fleet(CFG)
        box = fleet.boxes[0]
        plain = run_box_ops(box, OpsConfig())
        run_fleet_atm(fleet, _atm_config())
        enriched = run_box_ops(box, OpsConfig(atm=_atm_config()))
        plain_refs = set(plain.evidence_refs)
        enriched_refs = set(enriched.evidence_refs)
        assert plain_refs != enriched_refs
