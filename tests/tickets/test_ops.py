"""Tests for the incident-operations loop (repro.tickets.ops)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.store import ArtifactKey, clear_memory_tiers, default_store
from repro.store.shards import ShardedFleet, write_fleet_shards
from repro.tickets.incidents import group_incidents, incidents_for_box
from repro.tickets.monitor import TicketRecord, tickets_for_box
from repro.tickets.ops import (
    EVIDENCE_STAGE,
    AssignPolicy,
    EvidenceBundle,
    OpsConfig,
    ScoringPolicy,
    SlaClock,
    SlaPolicy,
    build_evidence,
    evidence_key,
    incident_severity,
    route_incidents,
    run_box_ops,
    run_fleet_ops,
)
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, FleetTrace, Resource, VMTrace


def record(window, vm="vm0", box="b0", usage=80.0, resource=Resource.CPU):
    return TicketRecord(
        box_id=box, vm_id=vm, resource=resource, window=window, usage_pct=usage
    )


def incident(windows, vm="vm0", box="b0", usage=80.0):
    return group_incidents(
        [record(w, vm=vm, box=box, usage=usage) for w in windows],
        max_gap_windows=max(1, max(windows) - min(windows)),
    )[0]


POLICY = TicketPolicy(60.0)


@pytest.fixture()
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    clear_memory_tiers()
    yield tmp_path
    clear_memory_tiers()


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestScoring:
    def test_severity_is_relative_overshoot(self):
        # 80% usage over a 60% threshold: mean overshoot 20/60.
        assert incident_severity(incident([1]), POLICY) == pytest.approx(
            1.0 + 20.0 / 60.0
        )

    def test_severity_floor_is_one(self):
        barely = incident([1], usage=60.0001)
        assert incident_severity(barely, POLICY) == pytest.approx(1.0, abs=1e-4)

    def test_score_composes_three_factors(self):
        policy = ScoringPolicy(
            severity_weight=1.0, recurrence_weight=1.0, criticality_weight=1.0
        )
        inc = incident([1])
        severity = incident_severity(inc, POLICY)
        score = policy.score(inc, POLICY, prior_incidents=2, n_vms=4)
        assert score == pytest.approx(severity * 3.0 * 4.0)

    def test_zero_weight_removes_factor(self):
        policy = ScoringPolicy(
            severity_weight=1.0, recurrence_weight=0.0, criticality_weight=0.0
        )
        inc = incident([1])
        chronic = policy.score(inc, POLICY, prior_incidents=50, n_vms=32)
        fresh = policy.score(inc, POLICY, prior_incidents=0, n_vms=1)
        assert chronic == pytest.approx(fresh)

    def test_recurrence_monotone(self):
        policy = ScoringPolicy()
        inc = incident([1])
        scores = [
            policy.score(inc, POLICY, prior_incidents=k, n_vms=2) for k in range(4)
        ]
        assert scores == sorted(scores)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ScoringPolicy(severity_weight=-0.1)

    def test_invalid_inputs_rejected(self):
        inc = incident([1])
        with pytest.raises(ValueError):
            ScoringPolicy().score(inc, POLICY, prior_incidents=-1, n_vms=1)
        with pytest.raises(ValueError):
            ScoringPolicy().score(inc, POLICY, prior_incidents=0, n_vms=0)


class TestAssign:
    def test_round_robin_deals_in_rank_order(self):
        ranked = [incident([w]) for w in (1, 5, 9, 13, 17)]
        assert AssignPolicy(n_queues=2).assign(ranked) == [0, 1, 0, 1, 0]

    def test_sticky_keeps_box_on_one_queue(self):
        ranked = [incident([w], box="chronic") for w in (1, 5, 9)]
        queues = AssignPolicy(n_queues=4, strategy="sticky").assign(ranked)
        assert len(set(queues)) == 1

    def test_sticky_spreads_distinct_boxes(self):
        ranked = [incident([1], box=f"box{i:05d}") for i in range(32)]
        queues = AssignPolicy(n_queues=4, strategy="sticky").assign(ranked)
        assert len(set(queues)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AssignPolicy(n_queues=0)
        with pytest.raises(ValueError, match="unknown assignment strategy"):
            AssignPolicy(strategy="lottery")


class TestSlaPolicy:
    def test_deadlines_in_minutes(self):
        sla = SlaPolicy(ack_windows=2, resolve_windows=8)
        assert sla.deadlines_minutes(POLICY) == (30, 120)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaPolicy(ack_windows=-1)
        with pytest.raises(ValueError):
            SlaPolicy(service_windows=0)
        with pytest.raises(ValueError, match="resolve_windows must be at least"):
            SlaPolicy(ack_windows=5, resolve_windows=2)

    def test_clock_breach_flags(self):
        clock = SlaClock(
            start_window=0, ack_window=3, resolve_window=4,
            ack_deadline=1, resolve_deadline=4,
        )
        assert clock.ack_breached
        assert not clock.resolve_breached
        assert clock.breached

    def test_clock_dict_round_trip(self):
        clock = SlaClock(2, 3, 4, 3, 6)
        assert SlaClock.from_dict(clock.to_dict()) == clock


class TestRouting:
    def test_idle_queue_acks_immediately(self):
        routed = route_incidents(
            [incident([5, 6])], POLICY, ScoringPolicy(), AssignPolicy(),
            SlaPolicy(), n_vms=2,
        )
        (item,) = routed
        assert item.clock.ack_window == 5
        assert item.clock.resolve_window == 6
        assert not item.clock.breached

    def test_contention_delays_and_breaches(self):
        # Two same-window incidents forced onto ONE queue: the second
        # waits for the responder and blows its 0-window ack deadline.
        incidents = [incident([0], vm="a"), incident([0], vm="b")]
        routed = route_incidents(
            incidents, POLICY, ScoringPolicy(), AssignPolicy(n_queues=1),
            SlaPolicy(ack_windows=0, resolve_windows=4), n_vms=2,
        )
        acks = sorted(item.clock.ack_window for item in routed)
        assert acks == [0, 1]
        assert sum(item.clock.ack_breached for item in routed) == 1

    def test_two_queues_absorb_the_storm(self):
        incidents = [incident([0], vm="a"), incident([0], vm="b")]
        routed = route_incidents(
            incidents, POLICY, ScoringPolicy(), AssignPolicy(n_queues=2),
            SlaPolicy(ack_windows=0, resolve_windows=4), n_vms=2,
        )
        assert all(item.clock.ack_window == 0 for item in routed)
        assert not any(item.clock.breached for item in routed)

    def test_rank_order_is_descending_score(self):
        # Later incidents on the same box score higher via recurrence.
        incidents = [incident([0]), incident([10]), incident([20])]
        routed = route_incidents(
            incidents, POLICY, ScoringPolicy(), AssignPolicy(), SlaPolicy(),
            n_vms=2,
        )
        scores = [item.score for item in routed]
        assert scores == sorted(scores, reverse=True)
        assert [item.rank for item in routed] == [0, 1, 2]

    def test_empty_input(self):
        assert route_incidents(
            [], POLICY, ScoringPolicy(), AssignPolicy(), SlaPolicy(), n_vms=1
        ) == []


class TestEvidence:
    @pytest.fixture()
    def spiky_box(self):
        usage = np.full(24, 20.0)
        usage[10:13] = 90.0
        return BoxTrace(
            "spiky", 10.0, 20.0,
            [VMTrace("v1", 2.0, 4.0, usage, np.full(24, 10.0))],
        )

    def _routed(self, box):
        incidents = incidents_for_box(box, POLICY)
        return route_incidents(
            incidents, POLICY, ScoringPolicy(), AssignPolicy(), SlaPolicy(),
            n_vms=box.n_vms,
        )

    def test_context_slice_covers_incident(self, spiky_box):
        (routed,) = self._routed(spiky_box)
        bundle = build_evidence(spiky_box, routed, 60.0, context_windows=4)
        assert (bundle.context_lo, bundle.context_hi) == (6, 17)
        np.testing.assert_array_equal(
            bundle.usage_context, spiky_box.usage_matrix()[:, 6:17]
        )
        assert bundle.n_tickets == 3

    def test_context_clamped_to_trace(self, spiky_box):
        (routed,) = self._routed(spiky_box)
        bundle = build_evidence(spiky_box, routed, 60.0, context_windows=100)
        assert (bundle.context_lo, bundle.context_hi) == (0, 24)

    def test_store_round_trip(self, spiky_box, store_env):
        (routed,) = self._routed(spiky_box)
        bundle = build_evidence(spiky_box, routed, 60.0, context_windows=4)
        key = evidence_key(
            bundle.usage_context, OpsConfig(), spiky_box.box_id,
            bundle.start_window, bundle.end_window, 0,
        )
        store = default_store()
        store.put(key, bundle, memory=False)
        clear_memory_tiers()
        loaded = default_store().get(key, memory=False)
        assert isinstance(loaded, EvidenceBundle)
        assert loaded.records == bundle.records
        assert loaded.clock == bundle.clock
        np.testing.assert_array_equal(loaded.usage_context, bundle.usage_context)

    def test_optional_arrays_round_trip(self, spiky_box, store_env):
        # predicted/allocations are populated when the ops run rides on an
        # ATM run; the codec must carry them (and their absence) exactly.
        (routed,) = self._routed(spiky_box)
        predicted = np.linspace(0.0, 1.0, 6)
        allocations = np.array([4.0, 8.0])
        bundle = build_evidence(
            spiky_box, routed, 60.0, context_windows=2,
            predicted=predicted, allocations=allocations,
        )
        key = evidence_key(
            bundle.usage_context, OpsConfig(), spiky_box.box_id,
            bundle.start_window, bundle.end_window, 1,
        )
        default_store().put(key, bundle, memory=False)
        clear_memory_tiers()
        loaded = default_store().get(key, memory=False)
        np.testing.assert_array_equal(loaded.predicted, predicted)
        np.testing.assert_array_equal(loaded.allocations, allocations)

    def test_key_separates_incident_index(self, spiky_box):
        usage = np.zeros((2, 3))
        key_a = evidence_key(usage, OpsConfig(), "b", 1, 2, index=0)
        key_b = evidence_key(usage, OpsConfig(), "b", 1, 2, index=1)
        assert key_a.data_fp == key_b.data_fp
        assert key_a.config_fp != key_b.config_fp


class TestOpsConfig:
    def test_defaults_fingerprintable(self):
        from repro.store import config_fingerprint

        assert config_fingerprint(OpsConfig()) == config_fingerprint(OpsConfig())

    def test_validation(self):
        with pytest.raises(ValueError):
            OpsConfig(max_gap_windows=-1)
        with pytest.raises(ValueError):
            OpsConfig(context_windows=-1)


class TestBoxOps:
    def test_counts_agree_with_incident_layer(self, small_fleet):
        box = small_fleet.boxes[0]
        cfg = OpsConfig()
        result = run_box_ops(box, cfg)
        assert result.n_tickets == len(tickets_for_box(box, cfg.policy))
        incidents = incidents_for_box(
            box, cfg.policy, max_gap_windows=cfg.max_gap_windows
        )
        assert result.n_incidents == len(incidents)
        assert len(result.rows) == len(incidents)
        assert len(result.evidence_refs) == len(incidents)
        assert sum(result.queue_counts) == result.n_incidents

    def test_digest_deterministic(self, small_fleet):
        box = small_fleet.boxes[0]
        first = run_box_ops(box, OpsConfig())
        second = run_box_ops(box, OpsConfig())
        assert first.assignment_digest == second.assignment_digest
        assert first.evidence_refs == second.evidence_refs

    def test_metrics_recorded(self, small_fleet):
        obs.reset_metrics()
        result = run_box_ops(small_fleet.boxes[0], OpsConfig())
        counters = obs.metrics_snapshot()["counters"]
        assert counters["ops.boxes"] == 1
        assert counters["ops.incidents"] == result.n_incidents
        assert counters["route.assignments"] == result.n_incidents
        assert "sla.breaches" in counters


class TestFleetOps:
    def test_fleet_aggregate(self, small_fleet):
        result = run_fleet_ops(small_fleet)
        assert result.boxes == small_fleet.n_boxes
        assert result.incidents > 0
        assert result.tickets >= result.incidents
        assert sum(result.queue_counts) == result.incidents
        assert result.evidence_bundles == result.incidents
        assert result.tickets_per_incident() > 1.0
        assert 0.0 <= result.spatial_incident_share() <= 1.0
        assert len(result.top_incidents) <= 10
        scores = [row.score for row in result.top_incidents]
        assert scores == sorted(scores, reverse=True)

    def test_ratios_none_on_calm_fleet(self):
        calm = BoxTrace(
            "calm", 10.0, 20.0,
            [VMTrace("v", 2.0, 4.0, np.full(8, 10.0), np.full(8, 10.0))],
        )
        result = run_fleet_ops(FleetTrace([calm]))
        assert result.incidents == 0
        assert result.tickets_per_incident() is None
        assert result.spatial_incident_share() is None
        assert result.breach_rate() is None

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="no boxes"):
            run_fleet_ops(FleetTrace([]))

    def test_parallel_digests_bit_identical(self, small_fleet):
        serial = run_fleet_ops(small_fleet)
        parallel = run_fleet_ops(small_fleet, jobs=2)
        assert serial.assignment_digest == parallel.assignment_digest
        assert serial.evidence_digest == parallel.evidence_digest
        assert serial.queue_counts == parallel.queue_counts
        assert serial.top_incidents == parallel.top_incidents

    def test_parallel_merges_worker_counters(self, small_fleet):
        obs.reset_metrics()
        serial = run_fleet_ops(small_fleet)
        serial_counters = dict(obs.metrics_snapshot()["counters"])
        obs.reset_metrics()
        run_fleet_ops(small_fleet, jobs=2)
        parallel_counters = obs.metrics_snapshot()["counters"]
        for name in ("ops.boxes", "ops.tickets", "ops.incidents",
                     "route.assignments", "sla.breaches"):
            assert parallel_counters[name] == serial_counters[name]
        assert serial.boxes == serial_counters["ops.boxes"]

    def test_sharded_fleet_matches_in_memory(self, small_fleet, tmp_path):
        root = tmp_path / "shards"
        write_fleet_shards(small_fleet, root)
        in_memory = run_fleet_ops(small_fleet)
        sharded = run_fleet_ops(ShardedFleet(root))
        assert sharded.assignment_digest == in_memory.assignment_digest
        assert sharded.evidence_digest == in_memory.evidence_digest
        assert sharded.incidents == in_memory.incidents


class TestResume:
    def test_resume_serves_cached_boxes(self, small_fleet, store_env):
        first = run_fleet_ops(small_fleet, resume=False)
        obs.reset_metrics()
        clear_memory_tiers()
        second = run_fleet_ops(small_fleet, resume=True)
        counters = obs.metrics_snapshot()["counters"]
        assert counters["ops.resume.hits"] == small_fleet.n_boxes
        assert second.assignment_digest == first.assignment_digest
        assert second.evidence_digest == first.evidence_digest
        assert second.top_incidents == first.top_incidents
        # Resume must still publish the telemetry a fresh run would.
        assert counters["ops.incidents"] == first.incidents
        assert counters["sla.breaches"] == first.breached_incidents

    def test_evidence_resolvable_by_fingerprint(self, small_fleet, store_env):
        run_fleet_ops(small_fleet)
        clear_memory_tiers()
        store = default_store()
        resolved = 0
        for box in small_fleet:
            result = run_box_ops(box, OpsConfig(), resume=True)
            for data_fp, config_fp in result.evidence_refs:
                key = ArtifactKey(
                    stage=EVIDENCE_STAGE, data_fp=data_fp, config_fp=config_fp
                )
                bundle = store.get(key, memory=False)
                assert isinstance(bundle, EvidenceBundle)
                assert bundle.box_id == box.box_id
                resolved += 1
        assert resolved > 0

    def test_config_change_misses_cache(self, small_fleet, store_env):
        run_fleet_ops(small_fleet)
        obs.reset_metrics()
        run_fleet_ops(
            small_fleet,
            OpsConfig(sla=SlaPolicy(ack_windows=0, resolve_windows=0)),
            resume=True,
        )
        counters = obs.metrics_snapshot()["counters"]
        assert counters.get("ops.resume.hits", 0) == 0


class TestRowSerialization:
    def test_incident_row_round_trip(self, small_fleet):
        result = run_box_ops(small_fleet.boxes[0], OpsConfig())
        for row in result.rows:
            clone = type(row).from_dict(json.loads(json.dumps(row.to_dict())))
            assert clone == row
