"""End-to-end integration tests: the whole ATM system on small inputs."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import AtmConfig, run_fleet_atm
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace import FleetConfig, Resource, generate_fleet

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in ("AtmConfig", "AtmController", "FleetConfig", "generate_fleet",
                     "run_fleet_atm", "TicketPolicy", "Resource"):
            assert hasattr(repro, name)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(n_boxes=6, days=6, seed=77))

    @pytest.mark.parametrize("method", list(ClusteringMethod))
    def test_full_pipeline_both_clusterings(self, fleet, method):
        config = AtmConfig.with_clustering(method, temporal_model="seasonal_mean")
        result = run_fleet_atm(fleet, config)
        assert 0.0 < result.mean_signature_ratio() <= 1.0
        assert np.isfinite(result.mean_ape())
        atm_cpu = result.mean_reduction(Resource.CPU, ResizingAlgorithm.ATM)
        stingy_cpu = result.mean_reduction(Resource.CPU, ResizingAlgorithm.STINGY)
        assert atm_cpu > stingy_cpu

    def test_neural_pipeline_smoke(self, fleet):
        config = AtmConfig.with_clustering(ClusteringMethod.DTW, temporal_model="neural")
        result = run_fleet_atm(fleet, config)
        assert np.isfinite(result.mean_ape())


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "characterize_fleet.py",
        "compare_predictors.py",
        "trace_roundtrip.py",
        "mediawiki_resizing.py",
        "online_management.py",
    ],
)
def test_example_scripts_run(script):
    """Every shipped example must execute cleanly end to end."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"
