"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.trace.generator import FleetConfig, generate_box, generate_fleet


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_fleet():
    """A small one-day fleet shared by read-only tests."""
    return generate_fleet(FleetConfig(n_boxes=12, days=1, seed=99), name="test-small")


@pytest.fixture(scope="session")
def pipeline_fleet_6d():
    """A tiny six-day fleet for pipeline tests (5 train days + 1 eval day)."""
    return generate_fleet(FleetConfig(n_boxes=4, days=6, seed=7), name="test-pipeline")


@pytest.fixture(scope="session")
def sample_box():
    """One six-day box with a fixed seed."""
    return generate_box(3, FleetConfig(days=6, seed=5))
