"""Scenario-keyed shard stores and store artifacts.

Pins the collision-safety contract of the scenario engine: the spec's
fingerprint rides through shard metas, manifests, memory-mapped views and
``box_fingerprint``, so two scenarios sharing a fleet seed never share
artifacts — while legacy (identity) stores keep their exact bytes.
"""

import json

import numpy as np
import pytest

from repro.core.stages import box_fingerprint
from repro.store.shards import (
    ShardManifest,
    generate_fleet_shards,
    load_fleet_shards,
    open_box,
    write_fleet_shards,
)
from repro.trace import (
    NAMED_SCENARIOS,
    FleetConfig,
    generate_fleet,
    render_fleet,
)
from repro.trace.model import FORBID_GENERATION_ENV_VAR

SMALL = FleetConfig(n_boxes=3, days=2, seed=7)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(FORBID_GENERATION_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


class TestManifestCompat:
    def test_identity_store_manifest_has_no_scenario_keys(self, tmp_path):
        generate_fleet_shards(SMALL, tmp_path, name="legacy")
        raw = json.loads((tmp_path / "manifest.json").read_text())
        assert "scenario" not in raw
        assert all("scenario_fp" not in meta for meta in raw["boxes"])

    def test_identity_spec_store_is_byte_identical_to_legacy(self, tmp_path):
        legacy_root = tmp_path / "legacy"
        spec_root = tmp_path / "spec"
        generate_fleet_shards(SMALL, legacy_root, name="s")
        generate_fleet_shards(
            SMALL, spec_root, name="s", scenario=NAMED_SCENARIOS["paper-fig2"]
        )
        assert (legacy_root / "manifest.json").read_text() == (
            spec_root / "manifest.json"
        ).read_text()

    def test_legacy_manifest_round_trips_unchanged(self, tmp_path):
        generate_fleet_shards(SMALL, tmp_path, name="legacy")
        before = (tmp_path / "manifest.json").read_text()
        ShardManifest.load(tmp_path).save(tmp_path)
        assert (tmp_path / "manifest.json").read_text() == before

    def test_scenario_store_records_provenance(self, tmp_path):
        spec = NAMED_SCENARIOS["spiky"]
        manifest = generate_fleet_shards(SMALL, tmp_path, name="s", scenario=spec)
        assert manifest.scenario == {
            "name": "spiky",
            "fingerprint": spec.fingerprint(),
        }
        loaded = load_fleet_shards(tmp_path)
        assert loaded.scenario == manifest.scenario
        assert all(
            meta.scenario_fp == spec.fingerprint()
            for meta in loaded.manifest.boxes
        )


class TestScenarioViews:
    def test_mapped_views_carry_scenario_fp(self, tmp_path):
        spec = NAMED_SCENARIOS["spiky"]
        manifest = generate_fleet_shards(SMALL, tmp_path, name="s", scenario=spec)
        box = open_box(tmp_path, manifest.boxes[0])
        assert box.scenario_fp == spec.fingerprint()

    def test_materialize_propagates_scenario_fp(self, tmp_path):
        spec = NAMED_SCENARIOS["spiky"]
        generate_fleet_shards(SMALL, tmp_path, name="s", scenario=spec)
        fleet = load_fleet_shards(tmp_path).materialize()
        assert fleet.scenario_fp == spec.fingerprint()
        assert all(b.scenario_fp == spec.fingerprint() for b in fleet.boxes)

    def test_store_matches_direct_render(self, tmp_path):
        spec = NAMED_SCENARIOS["mixed"]
        generate_fleet_shards(SMALL, tmp_path, name="s", scenario=spec)
        direct = render_fleet(spec, SMALL)
        for rendered, view in zip(direct.boxes, load_fleet_shards(tmp_path)):
            np.testing.assert_array_equal(
                view.usage_matrix(), rendered.usage_matrix()
            )

    def test_write_fleet_shards_records_box_scenario_fp(self, tmp_path):
        spec = NAMED_SCENARIOS["ramp"]
        fleet = render_fleet(spec, SMALL)
        manifest = write_fleet_shards(
            fleet,
            tmp_path,
            scenario={"name": spec.name, "fingerprint": spec.fingerprint()},
        )
        assert all(
            meta.scenario_fp == spec.fingerprint() for meta in manifest.boxes
        )


class TestArtifactCollisionSafety:
    def test_scenarios_sharing_a_seed_never_share_box_fingerprints(self):
        identity = generate_fleet(SMALL)
        spiky = render_fleet(NAMED_SCENARIOS["spiky"], SMALL)
        ramp = render_fleet(NAMED_SCENARIOS["ramp"], SMALL)
        fps = set()
        for fleet in (identity, spiky, ramp):
            for box in fleet.boxes:
                fps.add(box_fingerprint(box))
        assert len(fps) == 3 * SMALL.n_boxes

    def test_same_data_different_scenario_fp_changes_fingerprint(self):
        """Even byte-identical traces must key separately per scenario."""
        a = generate_fleet(SMALL).boxes[0]
        b = generate_fleet(SMALL).boxes[0]
        assert box_fingerprint(a) == box_fingerprint(b)
        b.scenario_fp = "deadbeef"
        assert box_fingerprint(a) != box_fingerprint(b)

    def test_legacy_fingerprint_unchanged_by_scenario_field(self):
        """A None scenario_fp hashes exactly as the pre-scenario payload:
        the field's presence alone must not move legacy artifact keys."""
        box = generate_fleet(SMALL).boxes[0]
        fp_with_field = box_fingerprint(box)
        del box.__dict__["scenario_fp"]  # simulate a pre-refactor BoxTrace
        assert box_fingerprint(box) == fp_with_field
