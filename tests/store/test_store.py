"""Unit tests of the content-addressed artifact store and its fingerprints."""

import dataclasses
import enum

import numpy as np
import pytest

from repro import obs
from repro.store import (
    STORE_SCHEMA,
    ArtifactKey,
    ArtifactStore,
    clear_memory_tiers,
    config_fingerprint,
    data_fingerprint,
    default_store,
    get_codec,
    memory_tier,
    register_codec,
    registered_stages,
)

STAGE = "store_unit_test"


def _encode(value):
    return {"payload": np.asarray(value["payload"], dtype=float)}, value["meta"]


def _decode(arrays, meta):
    return {"payload": np.array(arrays["payload"], dtype=float), "meta": meta}


register_codec(STAGE, _encode, _decode)


@pytest.fixture(autouse=True)
def _clean_tiers():
    clear_memory_tiers()
    yield
    clear_memory_tiers()


def _key(config_fp="cfg", data=None):
    data = np.arange(6.0).reshape(2, 3) if data is None else data
    return ArtifactKey(
        stage=STAGE, data_fp=data_fingerprint(data), config_fp=config_fp
    )


def _value(scale=1.0):
    return {"payload": scale * np.arange(6.0).reshape(2, 3), "meta": {"k": 1}}


# ------------------------------------------------------------- fingerprints
class TestDataFingerprint:
    def test_deterministic(self):
        a = np.random.default_rng(0).normal(size=(4, 9))
        assert data_fingerprint(a) == data_fingerprint(a.copy())

    def test_content_sensitive(self):
        a = np.zeros((3, 3))
        b = a.copy()
        b[1, 1] = 1e-12
        assert data_fingerprint(a) != data_fingerprint(b)

    def test_shape_sensitive(self):
        a = np.arange(12.0)
        assert data_fingerprint(a.reshape(3, 4)) != data_fingerprint(a.reshape(4, 3))


class _Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


class TestConfigFingerprint:
    def test_field_order_stable(self):
        fields_ab = dataclasses.make_dataclass("Cfg", [("a", int), ("b", str)])
        fields_ba = dataclasses.make_dataclass("Cfg", [("b", str), ("a", int)])
        assert config_fingerprint(fields_ab(a=1, b="x")) == config_fingerprint(
            fields_ba(b="x", a=1)
        )

    def test_value_sensitive(self):
        cls = dataclasses.make_dataclass("Cfg", [("a", int)])
        assert config_fingerprint(cls(a=1)) != config_fingerprint(cls(a=2))

    def test_class_name_sensitive(self):
        one = dataclasses.make_dataclass("One", [("a", int)])
        two = dataclasses.make_dataclass("Two", [("a", int)])
        assert config_fingerprint(one(a=1)) != config_fingerprint(two(a=1))

    def test_enum_and_array_and_nan(self):
        a = config_fingerprint({"c": _Color.RED, "m": np.zeros(3), "x": float("nan")})
        b = config_fingerprint({"c": _Color.BLUE, "m": np.zeros(3), "x": float("nan")})
        assert a != b
        assert a == config_fingerprint(
            {"c": _Color.RED, "m": np.zeros(3), "x": float("nan")}
        )

    def test_enum_distinct_from_value(self):
        assert config_fingerprint(_Color.RED) != config_fingerprint("red")

    def test_nested_containers(self):
        assert config_fingerprint([1, (2, 3), {"k": None}]) == config_fingerprint(
            [1, [2, 3], {"k": None}]
        )

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            config_fingerprint(object())


class TestArtifactKey:
    def test_schema_default(self):
        assert _key().schema == STORE_SCHEMA

    def test_digest_sensitive_to_every_component(self):
        base = _key()
        assert base.digest() == _key().digest()
        others = [
            dataclasses.replace(base, stage="other"),
            dataclasses.replace(base, data_fp="other"),
            dataclasses.replace(base, config_fp="other"),
            dataclasses.replace(base, schema="repro.store/v0"),
        ]
        assert len({base.digest(), *[k.digest() for k in others]}) == 5


# -------------------------------------------------------------------- store
class TestMemoryTier:
    def test_memory_only_round_trip(self):
        store = ArtifactStore(root=None)
        assert not store.persistent
        key = _key()
        assert store.get(key) is None
        value = _value()
        store.put(key, value)
        assert store.get(key) is value  # identity: no serialization involved

    def test_memory_false_bypasses_tier(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = _key()
        store.put(key, _value(), memory=False)
        assert memory_tier(STAGE).get(key) is None
        hit = store.get(key, memory=False)
        assert hit is not None
        assert memory_tier(STAGE).get(key) is None

    def test_tiers_shared_across_instances(self):
        key = _key()
        ArtifactStore(root=None).put(key, _value())
        assert ArtifactStore(root=None).get(key) is not None


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = _key()
        value = _value(scale=np.pi)
        store.put(key, value)
        path = store.path_for(key)
        assert path is not None and path.exists()
        clear_memory_tiers()
        obs.reset_metrics()
        out = store.get(key)
        assert out is not None
        np.testing.assert_array_equal(out["payload"], value["payload"])
        assert out["meta"] == value["meta"]
        counters = obs.metrics_snapshot()["counters"]
        assert counters.get(f"store.{STAGE}.hit_disk") == 1
        # The disk hit was promoted into the memory tier.
        assert store.get(key) is out or store.get(key) is not None
        assert memory_tier(STAGE).get(key) is not None

    def test_float_payload_bit_identical(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        payload = np.random.default_rng(3).normal(size=(5, 7))
        payload[0, 0] = np.nan
        key = _key()
        store.put(key, {"payload": payload, "meta": {"x": float("nan")}})
        clear_memory_tiers()
        out = store.get(key)
        assert repr(out["payload"].tolist()) == repr(payload.tolist())

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = _key()
        store.put(key, _value())
        path = store.path_for(key)
        path.write_bytes(b"this is not an npz file")
        clear_memory_tiers()
        obs.reset_metrics()
        assert store.get(key) is None
        assert obs.metrics_snapshot()["counters"].get(f"store.{STAGE}.corrupt") == 1

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = _key()
        store.put(key, _value())
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[: 20])
        clear_memory_tiers()
        assert store.get(key) is None

    def test_header_mismatch_is_stale(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = _key(config_fp="cfg-one")
        other = _key(config_fp="cfg-two")
        store.put(key, _value())
        # Masquerade key's artifact as other's: the content-addressed path
        # matches but the embedded header does not.
        other_path = store.path_for(other)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).rename(other_path)
        clear_memory_tiers()
        obs.reset_metrics()
        assert store.get(other) is None
        assert obs.metrics_snapshot()["counters"].get(f"store.{STAGE}.stale") == 1

    def test_unregistered_stage_skips_disk(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        key = ArtifactKey(stage="no_such_codec", data_fp="d", config_fp="c")
        store.put(key, {"anything": 1}, memory=False)
        assert store.path_for(key) is not None
        assert not store.path_for(key).exists()
        assert store.get(key, memory=False) is None

    def test_write_failure_degrades_to_no_op(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "file-not-dir")
        (tmp_path / "file-not-dir").write_text("occupied")
        obs.reset_metrics()
        store.put(_key(), _value(), memory=False)  # must not raise
        counters = obs.metrics_snapshot()["counters"]
        assert counters.get(f"store.{STAGE}.write_errors") == 1


class TestDefaultStore:
    def test_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert not default_store().persistent
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        store = default_store()
        assert store.persistent and store.root == tmp_path
        monkeypatch.delenv("REPRO_STORE")
        assert not default_store().persistent


class TestCodecRegistry:
    def test_registered_stages_include_pipeline_stages(self):
        stages = registered_stages()
        for name in ("spatial", "forecast", "box_result", "resize_eval", STAGE):
            assert name in stages
            assert get_codec(name) is not None

    def test_unknown_stage_has_no_codec(self):
        assert get_codec("definitely-not-registered") is None
