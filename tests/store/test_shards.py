"""Memory-mapped shard store: round-trip, manifest, refs, and the guard."""

import pickle

import numpy as np
import pytest

from repro import obs
from repro.store.shards import (
    SHARDS_SCHEMA,
    BoxShardRef,
    ShardedFleet,
    ShardManifest,
    generate_fleet_shards,
    load_fleet_shards,
    open_box,
    resolve_box,
    write_box_shard,
    write_fleet_shards,
)
from repro.trace import model
from repro.trace.generator import FleetConfig, generate_fleet
from repro.trace.model import FORBID_GENERATION_ENV_VAR, FleetTrace


@pytest.fixture(autouse=True)
def _fresh_shard_tier():
    """Isolate the process-wide "shard tier active" marker per test."""
    model._SHARD_TIER_ACTIVE = False
    yield
    model._SHARD_TIER_ACTIVE = False


@pytest.fixture()
def store(tmp_path, small_fleet):
    root = tmp_path / "shards"
    manifest = write_fleet_shards(small_fleet, root)
    return root, manifest


class TestRoundTrip:
    def test_views_bit_identical_to_source(self, store, small_fleet):
        root, _ = store
        sharded = load_fleet_shards(root)
        assert sharded.n_boxes == small_fleet.n_boxes
        for original, view in zip(small_fleet, sharded):
            assert view.box_id == original.box_id
            assert view.cpu_capacity == original.cpu_capacity
            assert view.ram_capacity == original.ram_capacity
            assert view.interval_minutes == original.interval_minutes
            np.testing.assert_array_equal(
                view.usage_matrix(), original.usage_matrix()
            )
            for vm_orig, vm_view in zip(original.vms, view.vms):
                assert vm_view.vm_id == vm_orig.vm_id
                assert vm_view.cpu_capacity == vm_orig.cpu_capacity
                np.testing.assert_array_equal(vm_view.cpu_usage, vm_orig.cpu_usage)
                np.testing.assert_array_equal(vm_view.ram_usage, vm_orig.ram_usage)

    def test_views_are_readonly_mappings(self, store):
        root, manifest = store
        view = open_box(root, manifest.boxes[0])
        with pytest.raises((ValueError, RuntimeError)):
            view.vms[0].cpu_usage[0] = 1.0

    def test_materialize_equals_source(self, store, small_fleet):
        root, _ = store
        materialized = load_fleet_shards(root).materialize()
        assert isinstance(materialized, FleetTrace)
        assert materialized.name == small_fleet.name
        for original, loaded in zip(small_fleet, materialized):
            np.testing.assert_array_equal(
                loaded.usage_matrix(), original.usage_matrix()
            )

    def test_loader_front_door(self, tmp_path, small_fleet):
        from repro.trace import load_fleet_shards as trace_load
        from repro.trace import save_fleet_shards

        root = tmp_path / "via-loader"
        manifest = save_fleet_shards(small_fleet, root)
        assert manifest.n_boxes == small_fleet.n_boxes
        assert trace_load(root).n_vms == small_fleet.n_vms

    def test_shard_fleet_csv(self, tmp_path, small_fleet):
        from repro.trace import save_fleet_csv, shard_fleet_csv

        csv_path = tmp_path / "fleet.csv"
        save_fleet_csv(small_fleet, csv_path)
        sharded = shard_fleet_csv(csv_path, tmp_path / "from-csv")
        box = next(iter(sharded))
        source = small_fleet.boxes[0]
        np.testing.assert_allclose(
            box.usage_matrix(), source.usage_matrix(), atol=1e-4
        )


class TestManifest:
    def test_schema_and_counts(self, store, small_fleet):
        root, manifest = store
        assert manifest.schema == SHARDS_SCHEMA
        assert manifest.n_boxes == small_fleet.n_boxes
        assert manifest.n_vms == small_fleet.n_vms
        assert manifest.total_bytes == sum(
            box.usage_matrix().nbytes for box in small_fleet
        )
        reloaded = ShardManifest.load(root)
        assert reloaded.boxes == manifest.boxes

    def test_rejects_foreign_schema(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"schema": "bogus/v9", "boxes": []}')
        with pytest.raises(ValueError, match="schema"):
            ShardManifest.load(tmp_path)

    def test_shape_mismatch_raises(self, store):
        import dataclasses

        root, manifest = store
        meta = dataclasses.replace(manifest.boxes[0], n_windows=7)
        with pytest.raises(ValueError, match="does not match"):
            open_box(root, meta)

    def test_verify_catches_tampering(self, store):
        root, manifest = store
        meta = manifest.boxes[0]
        assert open_box(root, meta, verify=True) is not None
        matrix = np.load(root / meta.path)
        matrix[0, 0] += 1.0
        np.save(root / meta.path, matrix)
        with pytest.raises(ValueError, match="fingerprint"):
            open_box(root, meta, verify=True)


class TestContentAddressing:
    def test_rewrite_is_idempotent(self, tmp_path, small_fleet):
        root = tmp_path / "shards"
        obs.reset_metrics()
        write_fleet_shards(small_fleet, root)
        first = obs.metrics_snapshot()["counters"]["shards.writes"]
        assert first == small_fleet.n_boxes
        write_fleet_shards(small_fleet, root)
        again = obs.metrics_snapshot()["counters"]["shards.writes"]
        assert again == first  # no shard rewritten

    def test_identical_boxes_share_a_shard(self, tmp_path, small_fleet):
        box = small_fleet.boxes[0]
        a = write_box_shard(box, tmp_path)
        b = write_box_shard(box, tmp_path)
        assert a.fingerprint == b.fingerprint
        assert a.path == b.path


class TestRefs:
    def test_ref_is_tiny_and_resolvable(self, store):
        root, _ = store
        sharded = ShardedFleet(root)
        refs = sharded.box_refs()
        payload = pickle.dumps(refs[0])
        assert len(payload) < 2048  # descriptors, not data
        box = refs[0].resolve()
        assert box.box_id == refs[0].box_id
        assert box.n_windows == refs[0].n_windows

    def test_resolve_box_passthrough(self, store, small_fleet):
        root, _ = store
        ref = ShardedFleet(root).box_refs()[0]
        assert resolve_box(ref).box_id == ref.box_id
        box = small_fleet.boxes[0]
        assert resolve_box(box) is box

    def test_sharded_fleet_api(self, store, small_fleet):
        root, _ = store
        sharded = load_fleet_shards(root)
        assert len(sharded) == small_fleet.n_boxes
        assert sharded.n_series == 2 * small_fleet.n_vms
        target = small_fleet.boxes[2].box_id
        assert sharded.box_by_id(target).box_id == target
        with pytest.raises(KeyError):
            sharded.box_by_id("nope")
        summary = sharded.summary()
        assert summary["boxes"] == small_fleet.n_boxes
        assert summary["mapped_bytes"] == float(sharded.manifest.total_bytes)


class TestObservability:
    def test_open_counts_bytes_mapped(self, store):
        root, manifest = store
        obs.reset_metrics()
        open_box(root, manifest.boxes[0])
        snap = obs.metrics_snapshot()
        assert snap["counters"]["shards.boxes_opened"] == 1
        assert snap["counters"]["shards.bytes_mapped"] == manifest.boxes[0].nbytes
        assert snap["gauges"]["shards.max_box_bytes"] == manifest.boxes[0].nbytes


class TestMaterializationGuard:
    """Satellite: the forbid-generation guard also forbids full-fleet
    materialization once the shard tier is active in a process."""

    def test_fleettrace_raises_when_tier_active_and_guarded(
        self, store, small_fleet, monkeypatch
    ):
        root, manifest = store
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        # Guard alone does not trip: in-RAM fleets stay constructible.
        FleetTrace(boxes=[small_fleet.boxes[0]], name="ok")
        open_box(root, manifest.boxes[0])  # activates the shard tier
        assert model.shard_tier_active()
        with pytest.raises(RuntimeError, match="materialization is forbidden"):
            FleetTrace(boxes=[small_fleet.boxes[0]], name="bad")
        with pytest.raises(RuntimeError, match="materialization is forbidden"):
            load_fleet_shards(root).materialize()

    def test_guard_off_without_env(self, store, small_fleet, monkeypatch):
        root, _ = store
        monkeypatch.delenv(FORBID_GENERATION_ENV_VAR, raising=False)
        fleet = load_fleet_shards(root).materialize()
        assert fleet.n_boxes == small_fleet.n_boxes


class TestGenerateIntoShards:
    def test_streamed_generation_matches_generate_fleet(self, tmp_path):
        cfg = FleetConfig(n_boxes=3, days=1, seed=31)
        manifest = generate_fleet_shards(cfg, tmp_path / "gen", name="synthetic")
        reference = generate_fleet(cfg, name="synthetic")
        sharded = load_fleet_shards(tmp_path / "gen")
        assert manifest.n_boxes == reference.n_boxes
        for original, view in zip(reference, sharded):
            np.testing.assert_array_equal(
                view.usage_matrix(), original.usage_matrix()
            )

    def test_generation_guard_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            generate_fleet_shards(FleetConfig(n_boxes=1, days=1, seed=1), tmp_path)


class TestParallelGeneration:
    """Satellite: ``generate_fleet_shards(jobs=N)`` is byte-identical to
    serial generation — same shards, same manifest, any worker count."""

    @staticmethod
    def _tree_digest(root):
        import hashlib
        from pathlib import Path

        h = hashlib.blake2b()
        for path in sorted(Path(root).rglob("*")):
            if path.is_file():
                h.update(str(path.relative_to(root)).encode())
                h.update(path.read_bytes())
        return h.hexdigest()

    def test_parallel_store_byte_identical_to_serial(self, tmp_path):
        cfg = FleetConfig(n_boxes=5, days=1, seed=42)
        serial = generate_fleet_shards(cfg, tmp_path / "serial", jobs=1)
        parallel = generate_fleet_shards(cfg, tmp_path / "parallel", jobs=2)
        assert parallel.boxes == serial.boxes
        assert self._tree_digest(tmp_path / "serial") == self._tree_digest(
            tmp_path / "parallel"
        )

    def test_parallel_views_match_generate_fleet(self, tmp_path):
        cfg = FleetConfig(n_boxes=4, days=1, seed=43)
        generate_fleet_shards(cfg, tmp_path / "gen", jobs=2)
        reference = generate_fleet(cfg)
        for original, view in zip(reference, load_fleet_shards(tmp_path / "gen")):
            assert view.box_id == original.box_id
            np.testing.assert_array_equal(
                view.usage_matrix(), original.usage_matrix()
            )

    def test_generation_guard_applies_with_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            generate_fleet_shards(
                FleetConfig(n_boxes=2, days=1, seed=1), tmp_path, jobs=2
            )
