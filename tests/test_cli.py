"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_predict_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--method", "bogus"])


class TestCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--boxes", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ticket characterization" in out
        assert "inter_pair" in out

    def test_resize(self, capsys):
        assert main(["resize", "--boxes", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Oracle resizing" in out
        assert "stingy" in out

    def test_predict_with_cheap_model(self, capsys):
        code = main(
            [
                "predict",
                "--boxes", "3",
                "--seed", "3",
                "--method", "cbc",
                "--temporal", "seasonal_mean",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean APE" in out

    def test_generate_and_reload(self, tmp_path, capsys):
        target = tmp_path / "fleet.csv"
        assert main(["generate", str(target), "--boxes", "2", "--days", "1"]) == 0
        assert target.exists()
        assert main(["characterize", "--input", str(target)]) == 0

    def test_testbed(self, capsys):
        assert main(["testbed", "--hours", "4"]) == 0
        out = capsys.readouterr().out
        assert "MediaWiki testbed" in out
        assert "wiki-two" in out


class TestJobsFlag:
    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(["predict", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["resize", "--jobs", "0"])
        assert args.jobs == 0

    def test_jobs_defaults_to_none(self):
        # None -> resolve_jobs falls back to $REPRO_JOBS, then serial.
        assert build_parser().parse_args(["predict"]).jobs is None
        assert build_parser().parse_args(["resize"]).jobs is None

    def test_predict_with_parallel_jobs(self, capsys):
        code = main(
            [
                "predict",
                "--boxes", "3",
                "--seed", "3",
                "--method", "cbc",
                "--temporal", "seasonal_mean",
                "--jobs", "2",
            ]
        )
        assert code == 0
        assert "mean APE" in capsys.readouterr().out

    def test_resize_with_parallel_jobs(self, capsys):
        assert main(["resize", "--boxes", "4", "--seed", "3", "--jobs", "2"]) == 0
        assert "stingy" in capsys.readouterr().out


class TestMetricsJson:
    def test_flag_defaults_to_none(self):
        assert build_parser().parse_args(["predict"]).metrics_json is None
        assert build_parser().parse_args(["resize"]).metrics_json is None

    def test_resize_writes_schema_valid_metrics(self, tmp_path, capsys):
        import json

        from repro import obs

        path = tmp_path / "metrics.json"
        code = main(
            ["resize", "--boxes", "3", "--seed", "3", "--metrics-json", str(path)]
        )
        assert code == 0
        assert f"wrote metrics to {path}" in capsys.readouterr().out

        data = json.loads(path.read_text())
        assert data["schema"] == obs.METRICS_SCHEMA
        assert set(data) == {"schema", "counters", "spans", "gauges"}
        assert data["counters"]["resize.boxes"] == 3
        assert data["gauges"]["proc.peak_rss_bytes"] > 0
        for stat in data["spans"].values():
            assert set(stat) == {"count", "total_s", "max_s"}
            assert stat["count"] >= 1

    def test_predict_reports_degraded_boxes(self, tmp_path, capsys, monkeypatch):
        # One injected primary-fit failure: the command still exits 0, the
        # box falls back to the seasonal rung, and the table says so.
        monkeypatch.setenv("REPRO_FAULTS", "fit_error:p=1.0")
        path = tmp_path / "metrics.json"
        code = main(
            [
                "predict",
                "--boxes", "2",
                "--seed", "3",
                "--temporal", "seasonal_mean",
                "--metrics-json", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Degraded boxes" in out
        assert "seasonal_mean" in out
        import json

        data = json.loads(path.read_text())
        assert data["counters"]["pipeline.fallback.seasonal"] == 2
