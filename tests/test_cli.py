"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_predict_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--method", "bogus"])


class TestCommands:
    def test_characterize(self, capsys):
        assert main(["characterize", "--boxes", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ticket characterization" in out
        assert "inter_pair" in out

    def test_resize(self, capsys):
        assert main(["resize", "--boxes", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Oracle resizing" in out
        assert "stingy" in out

    def test_predict_with_cheap_model(self, capsys):
        code = main(
            [
                "predict",
                "--boxes", "3",
                "--seed", "3",
                "--method", "cbc",
                "--temporal", "seasonal_mean",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean APE" in out

    def test_generate_and_reload(self, tmp_path, capsys):
        target = tmp_path / "fleet.csv"
        assert main(["generate", str(target), "--boxes", "2", "--days", "1"]) == 0
        assert target.exists()
        assert main(["characterize", "--input", str(target)]) == 0

    def test_testbed(self, capsys):
        assert main(["testbed", "--hours", "4"]) == 0
        out = capsys.readouterr().out
        assert "MediaWiki testbed" in out
        assert "wiki-two" in out

    def test_tickets(self, capsys):
        assert main(["tickets", "--boxes", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Ticket operations" in out
        assert "Routing" in out
        assert "assignment digest" in out
        assert "evidence digest" in out

    def test_tickets_strategy_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tickets", "--strategy", "lottery"])

    def test_tickets_serial_parallel_digests_match(self, capsys):
        assert main(["tickets", "--boxes", "6", "--seed", "3"]) == 0
        serial = capsys.readouterr().out
        assert main(["tickets", "--boxes", "6", "--seed", "3", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def digests(out):
            return [
                line for line in out.splitlines() if "digest" in line
            ]

        assert digests(serial) == digests(parallel)

    def test_tickets_env_knobs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ROUTE_QUEUES", "3")
        assert main(["tickets", "--boxes", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 queues" in out

    def test_scenario_flag(self, capsys):
        assert main(
            ["characterize", "--boxes", "4", "--seed", "3", "--scenario", "spiky"]
        ) == 0
        spiky = capsys.readouterr().out
        assert main(["characterize", "--boxes", "4", "--seed", "3"]) == 0
        assert spiky != capsys.readouterr().out

    def test_scenario_paper_fig2_is_default(self, capsys):
        argv = ["characterize", "--boxes", "4", "--seed", "3"]
        assert main(argv + ["--scenario", "paper-fig2"]) == 0
        explicit = capsys.readouterr().out
        assert main(argv) == 0
        assert explicit == capsys.readouterr().out

    def test_scenario_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="paper-fig2"):
            main(["characterize", "--boxes", "4", "--scenario", "nope"])

    def test_tickets_atm_evidence_requires_store(self):
        with pytest.raises(SystemExit, match="store"):
            main(["tickets", "--boxes", "4", "--seed", "3", "--atm-evidence"])

    def test_tickets_atm_evidence(self, tmp_path, capsys, monkeypatch):
        from repro.store import STORE_ENV_VAR, clear_memory_tiers

        store = tmp_path / "store"
        monkeypatch.setenv(STORE_ENV_VAR, str(store))
        clear_memory_tiers()
        assert main(
            [
                "tickets", "--boxes", "4", "--seed", "3", "--days", "6",
                "--store", str(store), "--atm-evidence",
                "--temporal", "seasonal_mean",
            ]
        ) == 0
        assert "Ticket operations" in capsys.readouterr().out
        clear_memory_tiers()

    def test_tickets_resume_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.store import STORE_ENV_VAR, clear_memory_tiers

        store = tmp_path / "store"
        # --store installs REPRO_STORE process-wide (workers inherit it);
        # scope it to this test so later tests run store-free.
        monkeypatch.setenv(STORE_ENV_VAR, str(store))
        clear_memory_tiers()
        argv = [
            "tickets", "--boxes", "5", "--seed", "3", "--store", str(store)
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        digest_lines = [l for l in first.splitlines() if "digest" in l]
        assert digest_lines == [l for l in resumed.splitlines() if "digest" in l]
        clear_memory_tiers()


class TestJobsFlag:
    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(["predict", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["resize", "--jobs", "0"])
        assert args.jobs == 0

    def test_jobs_defaults_to_none(self):
        # None -> resolve_jobs falls back to $REPRO_JOBS, then serial.
        assert build_parser().parse_args(["predict"]).jobs is None
        assert build_parser().parse_args(["resize"]).jobs is None

    def test_predict_with_parallel_jobs(self, capsys):
        code = main(
            [
                "predict",
                "--boxes", "3",
                "--seed", "3",
                "--method", "cbc",
                "--temporal", "seasonal_mean",
                "--jobs", "2",
            ]
        )
        assert code == 0
        assert "mean APE" in capsys.readouterr().out

    def test_resize_with_parallel_jobs(self, capsys):
        assert main(["resize", "--boxes", "4", "--seed", "3", "--jobs", "2"]) == 0
        assert "stingy" in capsys.readouterr().out


class TestMetricsJson:
    def test_flag_defaults_to_none(self):
        assert build_parser().parse_args(["predict"]).metrics_json is None
        assert build_parser().parse_args(["resize"]).metrics_json is None

    def test_resize_writes_schema_valid_metrics(self, tmp_path, capsys):
        import json

        from repro import obs

        path = tmp_path / "metrics.json"
        code = main(
            ["resize", "--boxes", "3", "--seed", "3", "--metrics-json", str(path)]
        )
        assert code == 0
        assert f"wrote metrics to {path}" in capsys.readouterr().out

        data = json.loads(path.read_text())
        assert data["schema"] == obs.METRICS_SCHEMA
        assert set(data) == {"schema", "counters", "spans", "gauges"}
        assert data["counters"]["resize.boxes"] == 3
        assert data["gauges"]["proc.peak_rss_bytes"] > 0
        for stat in data["spans"].values():
            assert set(stat) == {"count", "total_s", "max_s"}
            assert stat["count"] >= 1

    def test_metrics_written_when_command_raises(self, tmp_path, capsys):
        # Regression: the snapshot used to be written only on clean return,
        # so a failing run left no metrics on disk — exactly the run whose
        # counters are worth inspecting.  The write now lives in a
        # ``finally`` block.
        import json

        from repro import obs

        path = tmp_path / "metrics.json"
        with pytest.raises(FileNotFoundError):
            main(
                [
                    "resize",
                    "--input", str(tmp_path / "does-not-exist.csv"),
                    "--metrics-json", str(path),
                ]
            )
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["schema"] == obs.METRICS_SCHEMA

    def test_tickets_metrics_counters(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["tickets", "--boxes", "6", "--seed", "3",
             "--metrics-json", str(path)]
        )
        assert code == 0
        data = json.loads(path.read_text())
        counters = data["counters"]
        assert counters["ops.boxes"] == 6
        assert "sla.breaches" in counters
        assert "route.assignments" in counters
        assert "sla.open_incidents" in data["gauges"]
        assert "ops.fleet" in data["spans"]

    def test_predict_reports_degraded_boxes(self, tmp_path, capsys, monkeypatch):
        # One injected primary-fit failure: the command still exits 0, the
        # box falls back to the seasonal rung, and the table says so.
        monkeypatch.setenv("REPRO_FAULTS", "fit_error:p=1.0")
        path = tmp_path / "metrics.json"
        code = main(
            [
                "predict",
                "--boxes", "2",
                "--seed", "3",
                "--temporal", "seasonal_mean",
                "--metrics-json", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Degraded boxes" in out
        assert "seasonal_mean" in out
        import json

        data = json.loads(path.read_text())
        assert data["counters"]["pipeline.fallback.seasonal"] == 2
