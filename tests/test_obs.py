"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestCounters:
    def test_inc_accumulates(self):
        obs.inc("a.b")
        obs.inc("a.b", 2.5)
        assert obs.metrics_snapshot()["counters"]["a.b"] == 3.5

    def test_disabled_is_noop(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_ENV_VAR, "0")
        obs.inc("a.b")
        with obs.span("s"):
            pass
        snap = obs.metrics_snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == {}

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.METRICS_ENV_VAR, raising=False)
        assert obs.metrics_enabled()


class TestSpans:
    def test_span_records_count_and_time(self):
        for _ in range(3):
            with obs.span("work"):
                pass
        stat = obs.metrics_snapshot()["spans"]["work"]
        assert stat["count"] == 3
        assert stat["total_s"] >= 0.0
        assert stat["max_s"] <= stat["total_s"]

    def test_span_survives_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("bad"):
                raise RuntimeError("boom")
        assert obs.metrics_snapshot()["spans"]["bad"]["count"] == 1


class TestGauges:
    def test_gauge_max_keeps_high_water_mark(self):
        obs.gauge_max("g", 5.0)
        obs.gauge_max("g", 3.0)
        obs.gauge_max("g", 7.0)
        assert obs.metrics_snapshot()["gauges"]["g"] == 7.0

    def test_disabled_is_noop(self, monkeypatch):
        monkeypatch.setenv(obs.METRICS_ENV_VAR, "0")
        obs.gauge_max("g", 5.0)
        assert obs.metrics_snapshot()["gauges"] == {}

    def test_merge_takes_max(self):
        worker = obs.MetricsRegistry()
        worker.gauge_max("peak", 100.0)
        worker.gauge_max("worker_only", 1.0)
        obs.gauge_max("peak", 40.0)
        obs.merge_snapshot(worker.snapshot())
        gauges = obs.metrics_snapshot()["gauges"]
        assert gauges["peak"] == 100.0  # worker's high-water mark wins
        assert gauges["worker_only"] == 1.0
        obs.merge_snapshot({"schema": obs.METRICS_SCHEMA, "gauges": {"peak": 10.0}})
        assert obs.metrics_snapshot()["gauges"]["peak"] == 100.0

    def test_peak_rss_is_plausible(self):
        peak = obs.peak_rss_bytes()
        # A CPython process with numpy loaded occupies tens of MB at least;
        # anything under 1 MB means the unit conversion is wrong.
        assert peak > 1_000_000

    def test_record_peak_rss_sets_gauge(self):
        value = obs.record_peak_rss()
        assert obs.metrics_snapshot()["gauges"]["proc.peak_rss_bytes"] == value


class TestSnapshot:
    def test_schema_stamp(self):
        assert obs.metrics_snapshot()["schema"] == obs.METRICS_SCHEMA

    def test_merge_adds_counters_and_spans(self):
        worker = obs.MetricsRegistry()
        worker.inc("boxes", 2)
        with worker.span("fit"):
            pass
        obs.inc("boxes", 1)
        obs.merge_snapshot(worker.snapshot())
        snap = obs.metrics_snapshot()
        assert snap["counters"]["boxes"] == 3
        assert snap["spans"]["fit"]["count"] == 1

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            obs.merge_snapshot({"schema": "bogus/v0"})

    def test_merge_takes_span_max(self):
        a = obs.MetricsRegistry()
        a.spans["s"] = obs.SpanStat(count=1, total_s=1.0, max_s=1.0)
        obs.get_registry().spans["s"] = obs.SpanStat(count=2, total_s=0.5, max_s=0.25)
        obs.merge_snapshot(a.snapshot())
        stat = obs.get_registry().spans["s"]
        assert stat.count == 3
        assert stat.total_s == 1.5
        assert stat.max_s == 1.0

    def test_write_metrics_json(self, tmp_path):
        obs.inc("x", 4)
        path = tmp_path / "metrics.json"
        obs.write_metrics_json(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == obs.METRICS_SCHEMA
        assert data["counters"]["x"] == 4
        assert set(data) == {"schema", "counters", "spans", "gauges"}


class TestExecutorIntegration:
    def test_parallel_counters_match_serial(self):
        """Worker snapshots merge: jobs=2 reports the same work as jobs=1."""
        from repro.core.executor import FleetExecutor
        from repro.core.pipeline import run_fleet_atm
        from repro.core.config import AtmConfig
        from repro.prediction.spatial.signatures import ClusteringMethod
        from repro.trace.generator import FleetConfig, generate_fleet

        fleet = generate_fleet(FleetConfig(n_boxes=3, days=6, seed=17), name="obs")
        config = AtmConfig.with_clustering(
            ClusteringMethod.CBC, temporal_model="seasonal_mean"
        )

        obs.reset_metrics()
        run_fleet_atm(fleet, config, jobs=1)
        serial = obs.metrics_snapshot()

        obs.reset_metrics()
        run_fleet_atm(fleet, config, jobs=2, chunksize=1)
        parallel = obs.metrics_snapshot()

        assert serial["counters"]["predict.fits"] == 3
        assert parallel["counters"]["predict.fits"] == 3
        # The parallel run additionally reports its chunk bookkeeping.
        assert parallel["counters"]["executor.chunks"] == 3
        assert FleetExecutor(jobs=1).jobs == 1  # sanity: knob untouched
