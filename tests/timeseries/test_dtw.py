"""Tests for dynamic time warping (repro.timeseries.dtw)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.dtw import dtw_distance, dtw_distance_matrix, dtw_matrix, dtw_path


def brute_force_dtw(p, q, window=None):
    """Reference O(n*m) per-cell implementation for cross-checking."""
    n, m = len(p), len(q)
    w = window
    if w is not None:
        w = max(w, abs(n - m))
    cost = np.full((n, m), np.inf)
    for i in range(n):
        for j in range(m):
            if w is not None and abs(i - j) > w:
                continue
            d = (p[i] - q[j]) ** 2
            if i == 0 and j == 0:
                cost[i, j] = d
                continue
            best = np.inf
            if i > 0:
                best = min(best, cost[i - 1, j])
            if j > 0:
                best = min(best, cost[i, j - 1])
            if i > 0 and j > 0:
                best = min(best, cost[i - 1, j - 1])
            cost[i, j] = d + best
    return cost


class TestDtwMatrix:
    def test_identical_series_zero_distance(self):
        s = [1.0, 2.0, 3.0, 2.0]
        assert dtw_distance(s, s) == 0.0

    def test_single_elements(self):
        assert dtw_distance([2.0], [5.0]) == pytest.approx(9.0)

    def test_known_small_case(self):
        # Align [1,2,3] to [1,2,2,3]: the duplicated 2 warps for free.
        assert dtw_distance([1, 2, 3], [1, 2, 2, 3]) == pytest.approx(0.0)

    def test_shift_cheaper_than_euclidean(self):
        a = np.array([0, 0, 1, 2, 1, 0, 0], dtype=float)
        b = np.array([0, 1, 2, 1, 0, 0, 0], dtype=float)
        euclid = float(((a - b) ** 2).sum())
        assert dtw_distance(a, b) < euclid

    def test_matches_bruteforce_random(self, rng):
        for _ in range(25):
            n, m = rng.integers(1, 12, size=2)
            p = rng.normal(size=n)
            q = rng.normal(size=m)
            fast = dtw_matrix(p, q)
            slow = brute_force_dtw(p, q)
            finite = np.isfinite(slow)
            assert np.allclose(fast[finite], slow[finite])

    def test_matches_bruteforce_banded(self, rng):
        for _ in range(25):
            n, m = rng.integers(2, 12, size=2)
            w = int(rng.integers(0, 5))
            p = rng.normal(size=n)
            q = rng.normal(size=m)
            fast = dtw_matrix(p, q, window=w)
            slow = brute_force_dtw(p, q, window=w)
            finite = np.isfinite(slow)
            assert np.allclose(fast[finite], slow[finite])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0, np.nan], [1.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            dtw_distance(np.ones((2, 2)), [1.0])

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            dtw_matrix([1.0, 2.0], [1.0, 2.0], window=-1)

    def test_normalize_divides_by_lengths(self):
        p, q = [0.0, 0.0, 3.0], [1.0, 1.0]
        raw = dtw_distance(p, q)
        normalized = dtw_distance(p, q, normalize=True)
        assert normalized == pytest.approx(raw / 5.0)


class TestDtwProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(-50, 50), min_size=1, max_size=12),
        st.lists(st.floats(-50, 50), min_size=1, max_size=12),
    )
    def test_symmetry_and_nonnegativity(self, p, q):
        d_pq = dtw_distance(p, q)
        d_qp = dtw_distance(q, p)
        assert d_pq >= 0.0
        assert d_pq == pytest.approx(d_qp, rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=12))
    def test_self_distance_zero(self, p):
        assert dtw_distance(p, p) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-10, 10), min_size=2, max_size=10),
        st.lists(st.floats(-10, 10), min_size=2, max_size=10),
    )
    def test_band_never_beats_unconstrained(self, p, q):
        unconstrained = dtw_distance(p, q)
        banded = dtw_distance(p, q, window=1)
        assert banded >= unconstrained - 1e-9


class TestDtwPath:
    def test_path_endpoints_and_monotonicity(self, rng):
        p = rng.normal(size=8)
        q = rng.normal(size=6)
        path = dtw_path(p, q)
        assert path[0] == (0, 0)
        assert path[-1] == (7, 5)
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert (i1 - i0, j1 - j0) in {(1, 1), (1, 0), (0, 1)}

    def test_path_cost_equals_distance(self, rng):
        p = rng.normal(size=7)
        q = rng.normal(size=7)
        path = dtw_path(p, q)
        cost = sum((p[i] - q[j]) ** 2 for i, j in path)
        assert cost == pytest.approx(dtw_distance(p, q))


class TestDistanceMatrix:
    def test_batch_matches_pairwise(self, rng):
        series = rng.normal(size=(6, 30))
        fast = dtw_distance_matrix(series, window=5)
        for a in range(6):
            for b in range(6):
                expected = 0.0 if a == b else dtw_distance(series[a], series[b], window=5)
                assert fast[a, b] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_unequal_lengths_fall_back(self, rng):
        series = [rng.normal(size=10), rng.normal(size=13), rng.normal(size=10)]
        dist = dtw_distance_matrix(series)
        assert dist.shape == (3, 3)
        assert np.allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0)

    def test_zscore_makes_scaling_irrelevant(self, rng):
        base = rng.normal(size=(1, 40))[0]
        series = [base, 100.0 * base + 7.0]
        dist = dtw_distance_matrix(series, zscore=True)
        assert dist[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_constant_series_zscore_safe(self):
        series = [np.ones(10), np.arange(10.0)]
        dist = dtw_distance_matrix(series, zscore=True)
        assert np.isfinite(dist).all()

    def test_normalized_batch(self, rng):
        series = rng.normal(size=(4, 20))
        raw = dtw_distance_matrix(series)
        norm = dtw_distance_matrix(series, normalize=True)
        assert np.allclose(norm, raw / 40.0)
