"""Tests for OLS / VIF / stepwise regression (repro.timeseries.regression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.regression import (
    fit_dependent_models,
    fit_ols,
    r_squared,
    stepwise_eliminate,
    variance_inflation_factors,
)


class TestOls:
    def test_recovers_exact_linear_model(self, rng):
        x = rng.normal(size=(100, 2))
        y = 3.0 + 2.0 * x[:, 0] - 1.5 * x[:, 1]
        fit = fit_ols(y, x)
        assert fit.intercept == pytest.approx(3.0, abs=1e-8)
        assert fit.coefficients == pytest.approx([2.0, -1.5], abs=1e-8)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-6)

    def test_noisy_fit_reasonable(self, rng):
        x = rng.normal(size=(500, 1))
        y = 1.0 + 0.5 * x[:, 0] + rng.normal(0, 0.1, size=500)
        fit = fit_ols(y, x)
        assert fit.coefficients[0] == pytest.approx(0.5, abs=0.05)
        assert 0.8 < fit.r2 <= 1.0

    def test_residuals_orthogonal_to_regressors(self, rng):
        x = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        fit = fit_ols(y, x)
        residuals = y - fit.predict(x)
        # Normal equations: residuals orthogonal to every column + intercept.
        assert residuals.mean() == pytest.approx(0.0, abs=1e-10)
        for k in range(3):
            assert np.dot(residuals, x[:, k]) == pytest.approx(0.0, abs=1e-8)

    def test_constant_target_r2_one(self):
        x = np.random.default_rng(0).normal(size=(20, 1))
        fit = fit_ols(np.full(20, 5.0), x)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.predict(x) == pytest.approx(np.full(20, 5.0), abs=1e-9)

    def test_rank_deficient_design_does_not_crash(self, rng):
        col = rng.normal(size=50)
        x = np.column_stack([col, col])  # perfectly collinear
        y = 2.0 * col
        fit = fit_ols(y, x)
        assert fit.predict(x) == pytest.approx(y, abs=1e-8)

    def test_1d_regressor_accepted(self, rng):
        x = rng.normal(size=30)
        fit = fit_ols(2 * x, x)
        assert fit.coefficients.shape == (1,)

    def test_predict_shape_mismatch_rejected(self, rng):
        fit = fit_ols(rng.normal(size=10), rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            fit.predict(np.ones((5, 3)))

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            fit_ols(np.ones(5), rng.normal(size=(6, 1)))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(5, 40), st.integers(1, 3))
    def test_r2_at_most_one(self, n, k):
        rng = np.random.default_rng(n * 10 + k)
        x = rng.normal(size=(n, k))
        y = rng.normal(size=n)
        assert r_squared(y, x) <= 1.0 + 1e-12


class TestVif:
    def test_independent_columns_low_vif(self, rng):
        x = rng.normal(size=(400, 3))
        vifs = variance_inflation_factors(x)
        assert np.all(vifs < 1.2)

    def test_collinear_column_high_vif(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        c = a + b + rng.normal(0, 0.01, size=200)
        vifs = variance_inflation_factors(np.column_stack([a, b, c]))
        assert vifs.max() > 100.0

    def test_perfect_collinearity_infinite(self, rng):
        a = rng.normal(size=50)
        vifs = variance_inflation_factors(np.column_stack([a, 2 * a]))
        assert np.isinf(vifs).all()

    def test_single_column_vif_one(self, rng):
        assert variance_inflation_factors(rng.normal(size=(20, 1))) == pytest.approx([1.0])

    def test_vifs_at_least_one(self, rng):
        x = rng.normal(size=(60, 4))
        assert np.all(variance_inflation_factors(x) >= 1.0 - 1e-9)


class TestStepwise:
    def test_removes_redundant_column(self, rng):
        a = rng.normal(size=300)
        b = rng.normal(size=300)
        c = 0.5 * a - 0.7 * b + rng.normal(0, 0.01, size=300)
        kept, removed = stepwise_eliminate(np.column_stack([a, b, c]))
        assert len(kept) == 2
        assert len(removed) == 1

    def test_keeps_independent_columns(self, rng):
        x = rng.normal(size=(300, 4))
        kept, removed = stepwise_eliminate(x)
        assert kept == [0, 1, 2, 3]
        assert removed == []

    def test_min_keep_respected(self, rng):
        a = rng.normal(size=100)
        x = np.column_stack([a, 2 * a, 3 * a])
        kept, _ = stepwise_eliminate(x, min_keep=2)
        assert len(kept) >= 2

    def test_partition_is_complete(self, rng):
        x = rng.normal(size=(100, 5))
        x[:, 4] = x[:, 0] + x[:, 1]
        kept, removed = stepwise_eliminate(x)
        assert sorted(kept + removed) == [0, 1, 2, 3, 4]

    def test_threshold_must_exceed_one(self, rng):
        with pytest.raises(ValueError):
            stepwise_eliminate(rng.normal(size=(10, 2)), vif_threshold=0.5)


class TestDependentModels:
    def test_one_model_per_dependent(self, rng):
        sig = rng.normal(size=(50, 2))
        dep = np.column_stack([sig @ [1.0, 2.0], sig @ [0.5, -1.0], sig @ [3.0, 0.0]])
        fits = fit_dependent_models(sig, dep)
        assert len(fits) == 3
        for k, fit in enumerate(fits):
            assert fit.predict(sig) == pytest.approx(dep[:, k], abs=1e-8)

    def test_sample_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            fit_dependent_models(rng.normal(size=(10, 2)), rng.normal(size=(11, 2)))
