"""Tests for hierarchical clustering (repro.timeseries.clustering)."""

import numpy as np
import pytest

from repro.timeseries.clustering import HierarchicalClustering, Linkage, clusters_as_lists

try:
    from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
    from scipy.spatial.distance import squareform

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    HAVE_SCIPY = False


def random_distance_matrix(rng, n):
    points = rng.normal(size=(n, 3))
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff**2).sum(axis=2))


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            HierarchicalClustering(np.ones((2, 3)))

    def test_rejects_asymmetric(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            HierarchicalClustering(d)

    def test_rejects_nonzero_diagonal(self):
        d = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            HierarchicalClustering(d)

    def test_rejects_negative(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            HierarchicalClustering(d)

    def test_single_item(self):
        hc = HierarchicalClustering(np.zeros((1, 1)))
        assert hc.cut(1) == [0]
        assert hc.merges == []


class TestClustering:
    def test_obvious_two_clusters(self):
        d = np.array(
            [
                [0.0, 1.0, 9.0, 9.0],
                [1.0, 0.0, 9.0, 9.0],
                [9.0, 9.0, 0.0, 1.0],
                [9.0, 9.0, 1.0, 0.0],
            ]
        )
        labels = HierarchicalClustering(d).cut(2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_cut_extremes(self, rng):
        d = random_distance_matrix(rng, 6)
        hc = HierarchicalClustering(d)
        assert hc.cut(1) == [0] * 6
        assert sorted(hc.cut(6)) == list(range(6))

    def test_cut_label_count(self, rng):
        d = random_distance_matrix(rng, 8)
        hc = HierarchicalClustering(d)
        for k in range(1, 9):
            labels = hc.cut(k)
            assert len(set(labels)) == k
            assert max(labels) == k - 1

    def test_cut_out_of_range(self, rng):
        hc = HierarchicalClustering(random_distance_matrix(rng, 4))
        with pytest.raises(ValueError):
            hc.cut(0)
        with pytest.raises(ValueError):
            hc.cut(5)

    def test_cuts_are_nested(self, rng):
        """A k-cut refines the (k-1)-cut: merging is hierarchical."""
        d = random_distance_matrix(rng, 10)
        hc = HierarchicalClustering(d)
        coarse = hc.cut(3)
        fine = hc.cut(5)
        # Every fine cluster must live inside exactly one coarse cluster.
        for fine_label in set(fine):
            members = [i for i, l in enumerate(fine) if l == fine_label]
            assert len({coarse[i] for i in members}) == 1

    def test_average_linkage_heights_monotone(self, rng):
        d = random_distance_matrix(rng, 9)
        hc = HierarchicalClustering(d, linkage=Linkage.AVERAGE)
        heights = hc.merge_heights()
        assert all(a <= b + 1e-9 for a, b in zip(heights, heights[1:]))

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")
    @pytest.mark.parametrize(
        "ours,theirs",
        [(Linkage.SINGLE, "single"), (Linkage.COMPLETE, "complete"), (Linkage.AVERAGE, "average")],
    )
    def test_matches_scipy(self, rng, ours, theirs):
        for _ in range(5):
            d = random_distance_matrix(rng, 8)
            hc = HierarchicalClustering(d, linkage=ours)
            z = scipy_linkage(squareform(d, checks=False), method=theirs)
            for k in (2, 3, 4):
                mine = hc.cut(k)
                scipys = fcluster(z, t=k, criterion="maxclust")
                # Compare partitions up to relabeling.
                mapping = {}
                consistent = True
                for a, b in zip(mine, scipys):
                    if a in mapping and mapping[a] != b:
                        consistent = False
                        break
                    mapping[a] = b
                assert consistent, f"partitions differ at k={k}"


class TestClustersAsLists:
    def test_groups_by_label(self):
        assert clusters_as_lists([0, 1, 0, 2]) == [[0, 2], [1], [3]]

    def test_empty(self):
        assert clusters_as_lists([]) == []


class TestIncrementalCuts:
    """cuts() replays the merges once; every cut must equal a scratch cut."""

    @staticmethod
    def _reference_cut(clustering, n_clusters):
        """Independent per-k union-find replay (the pre-incremental algorithm)."""
        n = clustering.n_items
        parent = list(range(n + len(clustering.merges)))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for step, merge in enumerate(clustering.merges[: n - n_clusters]):
            parent[find(merge.left)] = n + step
            parent[find(merge.right)] = n + step
        roots = [find(i) for i in range(n)]
        relabel, labels = {}, []
        for root in roots:
            if root not in relabel:
                relabel[root] = len(relabel)
            labels.append(relabel[root])
        return labels

    @pytest.mark.parametrize("linkage", list(Linkage))
    def test_cuts_match_reference_for_every_k(self, rng, linkage):
        d = random_distance_matrix(rng, 12)
        hc = HierarchicalClustering(d, linkage=linkage)
        sweep = hc.cuts(range(1, 13))
        for k in range(1, 13):
            assert sweep[k] == self._reference_cut(hc, k), f"k={k}"

    def test_cut_uses_cache(self, rng):
        d = random_distance_matrix(rng, 8)
        hc = HierarchicalClustering(d)
        first = hc.cut(3)
        assert 3 in hc._cut_cache
        second = hc.cut(3)
        assert second == first
        assert second is not first  # callers get a private copy

    def test_cuts_returns_copies(self, rng):
        d = random_distance_matrix(rng, 6)
        hc = HierarchicalClustering(d)
        labels = hc.cuts([2])[2]
        labels[0] = 99
        assert hc.cuts([2])[2][0] != 99

    def test_cuts_validates_range(self, rng):
        d = random_distance_matrix(rng, 5)
        hc = HierarchicalClustering(d)
        with pytest.raises(ValueError):
            hc.cuts([0])
        with pytest.raises(ValueError):
            hc.cuts([6])

    def test_singleton_cut(self):
        hc = HierarchicalClustering(np.zeros((1, 1)))
        assert hc.cut(1) == [0]
