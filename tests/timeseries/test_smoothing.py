"""Tests for smoothing helpers (repro.timeseries.smoothing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.smoothing import difference, ewma, moving_average, undifference


class TestMovingAverage:
    def test_window_one_is_identity(self, rng):
        x = rng.normal(size=20)
        assert moving_average(x, 1) == pytest.approx(x)

    def test_constant_series_unchanged(self):
        x = np.full(10, 3.0)
        assert moving_average(x, 4) == pytest.approx(x)

    def test_known_values(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        assert out == pytest.approx([1.0, 1.5, 2.5, 3.5])

    def test_warmup_ramp(self):
        out = moving_average([2.0, 4.0, 6.0], 3)
        assert out == pytest.approx([2.0, 3.0, 4.0])

    def test_length_preserved(self, rng):
        x = rng.normal(size=37)
        assert moving_average(x, 8).shape == x.shape

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_reduces_variance(self, rng):
        x = rng.normal(size=500)
        assert moving_average(x, 10)[20:].std() < x.std()


class TestEwma:
    def test_alpha_one_identity(self, rng):
        x = rng.normal(size=15)
        assert ewma(x, 1.0) == pytest.approx(x)

    def test_first_value_kept(self):
        assert ewma([5.0, 0.0], 0.5)[0] == 5.0

    def test_recursion(self):
        out = ewma([1.0, 3.0], 0.25)
        assert out[1] == pytest.approx(0.25 * 3.0 + 0.75 * 1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ewma([1.0], 0.0)
        with pytest.raises(ValueError):
            ewma([1.0], 1.5)


class TestDifferencing:
    def test_difference_known(self):
        assert difference([1.0, 4.0, 9.0]) == pytest.approx([3.0, 5.0])

    def test_seasonal_lag(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert difference(x, lag=2) == pytest.approx([2.0, 2.0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            difference([1.0], lag=1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=30),
        st.integers(1, 2),
    )
    def test_roundtrip(self, values, lag):
        if len(values) <= lag:
            return
        x = np.asarray(values)
        d = difference(x, lag=lag)
        restored = undifference(d, x[:lag], lag=lag)
        assert restored == pytest.approx(x, abs=1e-8)

    def test_undifference_seed_length_checked(self):
        with pytest.raises(ValueError):
            undifference([1.0], [1.0, 2.0], lag=1)
