"""Tests for Pearson correlation utilities (repro.timeseries.correlation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.correlation import (
    CorrelationDecomposition,
    count_strong_partners,
    decompose_box_correlations,
    pairwise_correlation_matrix,
    pearson,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        x = rng.normal(size=5000)
        y = rng.normal(size=5000)
        assert abs(pearson(x, y)) < 0.1

    def test_constant_series_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self, rng):
        x = rng.normal(size=50)
        y = 0.3 * x + rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            pearson([1.0], [2.0])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_bounded(self, x):
        y = list(reversed(x))
        value = pearson(x, y)
        assert -1.0 <= value <= 1.0


class TestPairwiseMatrix:
    def test_matches_numpy_corrcoef(self, rng):
        data = rng.normal(size=(5, 80))
        ours = pairwise_correlation_matrix(data)
        theirs = np.corrcoef(data)
        assert np.allclose(ours, theirs)

    def test_diagonal_ones(self, rng):
        data = rng.normal(size=(4, 20))
        assert np.allclose(np.diag(pairwise_correlation_matrix(data)), 1.0)

    def test_constant_row_zero_off_diagonal(self, rng):
        data = np.vstack([np.ones(20), rng.normal(size=20)])
        corr = pairwise_correlation_matrix(data)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_correlation_matrix(np.arange(5.0))


class TestDecomposition:
    def _box(self, rng, m=4, t=60):
        shared = rng.normal(size=t)
        cpu = [0.8 * shared + 0.2 * rng.normal(size=t) for _ in range(m)]
        ram = [0.9 * c + 0.1 * rng.normal(size=t) for c in cpu]
        return cpu, ram

    def test_strong_pair_detected(self, rng):
        cpu, ram = self._box(rng)
        decomposition = decompose_box_correlations(cpu, ram)
        assert decomposition.inter_pair > 0.8
        assert decomposition.intra_cpu > 0.5

    def test_single_vm_has_nan_intra(self, rng):
        cpu, ram = self._box(rng, m=1)
        decomposition = decompose_box_correlations(cpu, ram)
        assert np.isnan(decomposition.intra_cpu)
        assert np.isnan(decomposition.intra_ram)
        assert np.isfinite(decomposition.inter_pair)

    def test_mismatched_counts_rejected(self, rng):
        cpu, ram = self._box(rng)
        with pytest.raises(ValueError):
            decompose_box_correlations(cpu, ram[:-1])

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            decompose_box_correlations([], [])

    def test_absolute_flag(self, rng):
        t = 60
        cpu = [rng.normal(size=t)]
        ram = [-cpu[0]]
        signed = decompose_box_correlations(cpu, ram)
        absolute = decompose_box_correlations(cpu, ram, absolute=True)
        assert signed.inter_pair == pytest.approx(-1.0)
        assert absolute.inter_pair == pytest.approx(1.0)

    def test_as_dict_keys(self, rng):
        cpu, ram = self._box(rng)
        d = decompose_box_correlations(cpu, ram).as_dict()
        assert set(d) == {"intra_cpu", "intra_ram", "inter_all", "inter_pair"}


class TestStrongPartners:
    def test_counts_and_means(self):
        corr = np.array(
            [
                [1.0, 0.9, 0.1],
                [0.9, 1.0, 0.8],
                [0.1, 0.8, 1.0],
            ]
        )
        counts, means = count_strong_partners(corr, threshold=0.7)
        assert counts.tolist() == [1, 2, 1]
        assert means[0] == pytest.approx(0.9)
        assert means[1] == pytest.approx(0.85)

    def test_no_strong_partner_zero_mean(self):
        corr = np.eye(3)
        counts, means = count_strong_partners(corr, threshold=0.7)
        assert counts.tolist() == [0, 0, 0]
        assert np.all(means == 0.0)

    def test_diagonal_excluded(self):
        corr = np.eye(2)
        counts, _ = count_strong_partners(corr, threshold=0.5)
        assert counts.tolist() == [0, 0]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            count_strong_partners(np.ones((2, 3)), 0.5)
