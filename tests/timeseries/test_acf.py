"""Tests for autocorrelation features (repro.timeseries.acf)."""

import numpy as np
import pytest

from repro.timeseries.acf import autocorrelation, feature_vector, seasonal_strength


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        assert autocorrelation(rng.normal(size=50), 0) == 1.0

    def test_smooth_series_high_lag1(self, rng):
        x = np.cumsum(rng.normal(size=2000))
        assert autocorrelation(x, 1) > 0.95

    def test_white_noise_near_zero(self, rng):
        x = rng.normal(size=5000)
        assert abs(autocorrelation(x, 1)) < 0.05

    def test_alternating_series_negative(self):
        x = np.array([1.0, -1.0] * 50)
        assert autocorrelation(x, 1) == pytest.approx(-1.0, abs=0.05)

    def test_constant_series_zero(self):
        assert autocorrelation(np.ones(20), 1) == 0.0

    def test_short_series_zero(self):
        assert autocorrelation([1.0, 2.0], 5) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], -1)

    def test_bounded(self, rng):
        x = rng.normal(size=200)
        for lag in (1, 5, 20):
            assert -1.0 <= autocorrelation(x, lag) <= 1.0


class TestSeasonalStrength:
    def test_pure_seasonal_near_one(self):
        x = np.tile([0.0, 10.0, 0.0, 10.0], 20)
        assert seasonal_strength(x, 4) > 0.9

    def test_white_noise_near_zero(self, rng):
        x = rng.normal(size=960)
        assert seasonal_strength(x, 96) < 0.3

    def test_short_series_zero(self, rng):
        assert seasonal_strength(rng.normal(size=10), 96) == 0.0

    def test_constant_zero(self):
        assert seasonal_strength(np.ones(200), 4) == 0.0

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            seasonal_strength([1.0] * 10, 1)


class TestFeatureVector:
    def test_shape_and_finiteness(self, rng):
        vec = feature_vector(rng.uniform(1, 100, size=300), period=96)
        assert vec.shape == (8,)
        assert np.isfinite(vec).all()

    def test_level_and_spread(self):
        x = np.array([10.0, 10.0, 20.0, 20.0] * 30)
        vec = feature_vector(x, period=4)
        assert vec[0] == pytest.approx(15.0)  # mean
        assert vec[1] == pytest.approx(5.0)  # std

    def test_spiky_series_high_peak_ratio(self, rng):
        flat = np.full(200, 10.0) + rng.normal(0, 0.1, 200)
        spiky = flat.copy()
        spiky[50] = 100.0
        assert feature_vector(spiky)[7] > feature_vector(flat)[7]

    def test_constant_series_safe(self):
        vec = feature_vector(np.full(100, 5.0))
        assert np.isfinite(vec).all()

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            feature_vector([1.0, 2.0, 3.0])
