"""Tests for silhouette scores (repro.timeseries.silhouette)."""

import numpy as np
import pytest

from repro.timeseries.silhouette import best_cluster_count, mean_silhouette, silhouette_values


def two_blob_distances():
    """4 items: {0,1} close together, {2,3} close together, blobs far apart."""
    d = np.full((4, 4), 10.0)
    np.fill_diagonal(d, 0.0)
    d[0, 1] = d[1, 0] = 1.0
    d[2, 3] = d[3, 2] = 1.0
    return d


class TestSilhouetteValues:
    def test_good_clustering_high_scores(self):
        d = two_blob_distances()
        values = silhouette_values(d, [0, 0, 1, 1])
        assert np.all(values > 0.8)

    def test_bad_clustering_negative_scores(self):
        d = two_blob_distances()
        values = silhouette_values(d, [0, 1, 0, 1])
        assert np.all(values < 0.0)

    def test_single_cluster_all_zero(self):
        d = two_blob_distances()
        assert np.all(silhouette_values(d, [0, 0, 0, 0]) == 0.0)

    def test_singleton_cluster_zero(self):
        d = two_blob_distances()
        values = silhouette_values(d, [0, 1, 1, 1])
        assert values[0] == 0.0

    def test_values_bounded(self, rng):
        points = rng.normal(size=(10, 2))
        diff = points[:, None] - points[None, :]
        d = np.sqrt((diff**2).sum(axis=2))
        labels = rng.integers(0, 3, size=10)
        values = silhouette_values(d, labels)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ValueError):
            silhouette_values(two_blob_distances(), [0, 1])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            silhouette_values(np.ones((2, 3)), [0, 1])


class TestMeanSilhouette:
    def test_prefers_correct_partition(self):
        d = two_blob_distances()
        good = mean_silhouette(d, [0, 0, 1, 1])
        bad = mean_silhouette(d, [0, 1, 0, 1])
        assert good > bad


class TestBestClusterCount:
    def test_picks_true_structure(self):
        d = two_blob_distances()
        labelings = [[0, 0, 1, 1], [0, 1, 2, 2], [0, 1, 2, 3]]
        assert best_cluster_count(d, labelings, [2, 3, 4]) == 2

    def test_tie_prefers_fewer_clusters(self):
        d = np.zeros((3, 3))
        labelings = [[0, 0, 0], [0, 1, 2]]  # all-zero distances: scores tie at 0
        assert best_cluster_count(d, labelings, [1, 3]) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            best_cluster_count(np.zeros((2, 2)), [], [])
