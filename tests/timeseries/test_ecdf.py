"""Tests for ECDF and box-plot summaries (repro.timeseries.ecdf)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.ecdf import BoxplotSummary, Ecdf, histogram_shares


class TestEcdf:
    def test_basic_evaluation(self):
        ecdf = Ecdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(1.0) == 0.25
        assert ecdf(2.5) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_monotone_nondecreasing(self, rng):
        ecdf = Ecdf.from_samples(rng.normal(size=100))
        xs = np.linspace(-4, 4, 50)
        values = [ecdf(x) for x in xs]
        assert all(a <= b for a, b in zip(values, values[1:]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_range_zero_one(self, samples):
        ecdf = Ecdf.from_samples(samples)
        for x in samples:
            assert 0.0 < ecdf(x) <= 1.0

    def test_quantile_median(self):
        ecdf = Ecdf.from_samples([1, 2, 3, 4, 5])
        assert ecdf.median == 3.0
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 5.0

    def test_quantile_out_of_range(self):
        ecdf = Ecdf.from_samples([1.0])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_non_finite_samples_dropped(self):
        ecdf = Ecdf.from_samples([1.0, np.nan, 2.0, np.inf])
        assert ecdf.values.size == 2

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_samples([np.nan])

    def test_evaluate_grid(self):
        ecdf = Ecdf.from_samples([1.0, 2.0])
        pairs = ecdf.evaluate([0.0, 1.5, 3.0])
        assert pairs == [(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]

    def test_mean(self):
        assert Ecdf.from_samples([1.0, 3.0]).mean == 2.0


class TestBoxplotSummary:
    def test_known_quartiles(self):
        summary = BoxplotSummary.from_samples(range(1, 101))
        assert summary.median == pytest.approx(50.5)
        assert summary.q25 == pytest.approx(25.75)
        assert summary.q75 == pytest.approx(75.25)
        assert summary.whisker_low == 1
        assert summary.whisker_high == 100
        assert summary.n == 100

    def test_ordering_invariant(self, rng):
        summary = BoxplotSummary.from_samples(rng.normal(size=200))
        row = summary.as_row()
        assert list(row) == sorted(row)[: len(row)] or (
            row[0] <= row[1] <= row[2] <= row[3] <= row[4]
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotSummary.from_samples([])


class TestHistogramShares:
    def test_shares_sum_to_at_most_one(self, rng):
        samples = rng.integers(2, 30, size=100)
        shares = histogram_shares(samples, [2, 4, 8, 16, 31])
        assert sum(s for _, s in shares) == pytest.approx(1.0)

    def test_labels(self):
        shares = histogram_shares([2, 3, 5], [2, 4, 6])
        assert [label for label, _ in shares] == ["2-3", "4-5"]
        assert [s for _, s in shares] == pytest.approx([2 / 3, 1 / 3])

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            histogram_shares([1.0], [3, 2])
        with pytest.raises(ValueError):
            histogram_shares([1.0], [2])
        with pytest.raises(ValueError):
            histogram_shares([], [0, 1])
