"""Tests for accuracy metrics (repro.timeseries.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.metrics import (
    absolute_percentage_errors,
    mean_absolute_error,
    mean_absolute_percentage_error,
    peak_absolute_percentage_error,
    root_mean_squared_error,
    symmetric_mape,
)


class TestApe:
    def test_exact_prediction_zero_error(self):
        actual = [10.0, 20.0, 30.0]
        assert mean_absolute_percentage_error(actual, actual) == 0.0

    def test_known_value(self):
        # |10-12|/10 = 0.2, |20-15|/20 = 0.25 -> mean 22.5%
        assert mean_absolute_percentage_error([10, 20], [12, 15]) == pytest.approx(22.5)

    def test_as_fraction(self):
        assert mean_absolute_percentage_error(
            [10, 20], [12, 15], as_percent=False
        ) == pytest.approx(0.225)

    def test_zero_actuals_excluded(self):
        errors = absolute_percentage_errors([0.0, 10.0], [5.0, 11.0])
        assert errors == pytest.approx([0.1])

    def test_all_zero_actuals_nan(self):
        assert np.isnan(mean_absolute_percentage_error([0.0, 0.0], [1.0, 2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.5, 100), min_size=1, max_size=20))
    def test_nonnegative(self, actual):
        predicted = [a * 1.1 for a in actual]
        assert mean_absolute_percentage_error(actual, predicted) >= 0.0


class TestPeakApe:
    def test_only_peak_windows_counted(self):
        actual = np.array([10.0, 80.0, 20.0, 90.0])
        predicted = np.array([0.0, 72.0, 0.0, 99.0])
        # Peaks at 80 (err 10%) and 90 (err 10%).
        value = peak_absolute_percentage_error(actual, predicted, peak_threshold=60.0)
        assert value == pytest.approx(10.0)

    def test_no_peaks_nan(self):
        assert np.isnan(
            peak_absolute_percentage_error([1.0, 2.0], [1.0, 2.0], peak_threshold=60.0)
        )


class TestOtherMetrics:
    def test_rmse_known(self):
        assert root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mae_known(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 0.0]) == pytest.approx(1.5)

    def test_smape_symmetric(self, rng):
        a = rng.uniform(1, 10, size=20)
        b = rng.uniform(1, 10, size=20)
        assert symmetric_mape(a, b) == pytest.approx(symmetric_mape(b, a))

    def test_smape_bounded(self, rng):
        a = rng.uniform(0.1, 10, size=50)
        b = rng.uniform(0.1, 10, size=50)
        assert 0.0 <= symmetric_mape(a, b) <= 200.0

    def test_rmse_zero_for_exact(self, rng):
        a = rng.normal(size=10)
        assert root_mean_squared_error(a, a) == 0.0


class TestFiniteAggregates:
    def test_finite_mean_filters(self):
        from repro.timeseries.metrics import finite_mean

        assert finite_mean([1.0, float("nan"), 3.0, float("inf")]) == 2.0

    def test_finite_mean_empty_and_all_nan(self):
        from repro.timeseries.metrics import finite_mean

        assert np.isnan(finite_mean([]))
        assert np.isnan(finite_mean([float("nan")]))

    def test_finite_std(self):
        from repro.timeseries.metrics import finite_std

        assert finite_std([1.0, float("nan"), 3.0]) == 1.0
        assert np.isnan(finite_std([float("nan")]))

    def test_finite_values_returns_array(self):
        from repro.timeseries.metrics import finite_values

        out = finite_values([1.0, float("-inf"), 2.0])
        assert out.tolist() == [1.0, 2.0]
