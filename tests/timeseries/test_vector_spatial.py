"""Randomized equivalence tests for the vectorized spatial-search engine.

Every vectorized path introduced under ``REPRO_VECTOR_SPATIAL`` (Gram-based
VIFs, downdated stepwise elimination, multi-RHS OLS, matmul silhouettes,
the batched DTW wavefront) must make the *same decisions* as the retained
reference implementation — identical kept/removed columns, identical best
cuts, bitwise-equal DTW distances — with numeric outputs agreeing to tight
tolerances.  These tests drive both paths over randomized and adversarial
inputs (constant series, rank-deficient designs, singleton clusters, tied
scores) and compare them directly.
"""

import numpy as np
import pytest

from repro.timeseries import regression as reg
from repro.timeseries import silhouette as sil
from repro.timeseries.clustering import HierarchicalClustering
from repro.timeseries.correlation import pairwise_correlation_matrix
from repro.timeseries.dtw import _dtw_batch_fast, _dtw_batch_reference, dtw_distance_matrix
from repro.timeseries.regression import (
    fit_ols,
    fit_ols_multi,
    stepwise_eliminate,
    variance_inflation_factors,
)
from repro.timeseries.silhouette import (
    best_cluster_count,
    best_silhouette_cut,
    mean_silhouette,
    mean_silhouettes_for_cuts,
    silhouette_values,
)
from repro.timeseries.vector import VECTOR_ENV_VAR, vector_spatial_enabled


@pytest.fixture()
def gate_off(monkeypatch):
    monkeypatch.setenv(VECTOR_ENV_VAR, "0")


@pytest.fixture()
def gate_on(monkeypatch):
    monkeypatch.setenv(VECTOR_ENV_VAR, "1")


def _random_design(rng, n, k, constant_cols=(), duplicate_of=None):
    """A (n, k) design with optional constant and duplicated columns."""
    x = rng.normal(size=(n, k))
    for col in constant_cols:
        x[:, col] = rng.normal()
    if duplicate_of is not None:
        src, dst = duplicate_of
        x[:, dst] = x[:, src]
    return x


def _random_distances(rng, n):
    """A symmetric non-negative distance matrix with a zero diagonal."""
    d = np.abs(rng.normal(size=(n, n)))
    d = (d + d.T) / 2
    np.fill_diagonal(d, 0.0)
    return d


class TestGate:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(VECTOR_ENV_VAR, raising=False)
        assert vector_spatial_enabled()

    @pytest.mark.parametrize("raw", ["0", "false", "off", "no", " OFF ", "No"])
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv(VECTOR_ENV_VAR, raw)
        assert not vector_spatial_enabled()

    @pytest.mark.parametrize("raw", ["1", "true", "on", "", "yes"])
    def test_on_values(self, monkeypatch, raw):
        monkeypatch.setenv(VECTOR_ENV_VAR, raw)
        assert vector_spatial_enabled()


class TestVifEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("shape", [(30, 2), (50, 5), (120, 10), (12, 8)])
    def test_random_designs(self, seed, shape):
        rng = np.random.default_rng(seed)
        x = _random_design(rng, *shape)
        ref = reg._vif_reference(x)
        vec = variance_inflation_factors(x)
        assert np.allclose(ref, vec, rtol=1e-6, atol=1e-8)

    @pytest.mark.parametrize("seed", range(4))
    def test_constant_column_is_inf_on_both_paths(self, seed):
        rng = np.random.default_rng(seed)
        x = _random_design(rng, 40, 5, constant_cols=(2,))
        ref = reg._vif_reference(x)
        vec = variance_inflation_factors(x)
        assert np.isinf(ref[2]) and np.isinf(vec[2])
        finite = np.isfinite(ref)
        assert np.array_equal(finite, np.isfinite(vec))
        assert np.allclose(ref[finite], vec[finite], rtol=1e-6, atol=1e-8)

    def test_collinear_pair_matches_reference_decision(self):
        # A duplicated column makes the Gram matrix singular; the vectorized
        # path must fall back to (and agree with) the reference.
        rng = np.random.default_rng(7)
        x = _random_design(rng, 40, 4, duplicate_of=(0, 3))
        ref = reg._vif_reference(x)
        vec = variance_inflation_factors(x)
        big = ref > 1e6
        assert np.array_equal(big, vec > 1e6)
        assert np.allclose(ref[~big], vec[~big], rtol=1e-4, atol=1e-6)

    def test_precomputed_corr_matches(self):
        rng = np.random.default_rng(11)
        x = _random_design(rng, 60, 6)
        corr = pairwise_correlation_matrix(x.T)
        direct = variance_inflation_factors(x)
        shared = variance_inflation_factors(x, corr=corr)
        assert np.allclose(direct, shared, rtol=1e-8, atol=1e-10)

    def test_fewer_than_two_columns(self, gate_on):
        assert np.array_equal(variance_inflation_factors(np.ones((10, 1))), [1.0])


class TestStepwiseEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_correlated_designs(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(80, 3))
        # Mix base columns so several VIFs land above the threshold.
        mix = rng.normal(size=(3, 7))
        x = base @ mix + 0.05 * rng.normal(size=(80, 7))
        ref = reg._stepwise_reference(x, vif_threshold=4.0, min_keep=1)
        vec = stepwise_eliminate(x, vif_threshold=4.0, min_keep=1)
        assert vec == ref

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("min_keep", [1, 3, 5])
    def test_min_keep_floors(self, seed, min_keep):
        rng = np.random.default_rng(100 + seed)
        base = rng.normal(size=(60, 2))
        x = base @ rng.normal(size=(2, 5)) + 0.01 * rng.normal(size=(60, 5))
        ref = reg._stepwise_reference(x, vif_threshold=4.0, min_keep=min_keep)
        vec = stepwise_eliminate(x, vif_threshold=4.0, min_keep=min_keep)
        assert vec == ref

    @pytest.mark.parametrize("seed", range(4))
    def test_constant_and_rank_deficient_columns(self, seed):
        rng = np.random.default_rng(200 + seed)
        x = _random_design(rng, 50, 6, constant_cols=(1,), duplicate_of=(0, 4))
        ref = reg._stepwise_reference(x, vif_threshold=4.0, min_keep=1)
        vec = stepwise_eliminate(x, vif_threshold=4.0, min_keep=1)
        assert vec == ref

    def test_shared_corr_matches_unshared(self):
        rng = np.random.default_rng(42)
        base = rng.normal(size=(70, 3))
        x = base @ rng.normal(size=(3, 6)) + 0.1 * rng.normal(size=(70, 6))
        corr = pairwise_correlation_matrix(x.T)
        assert stepwise_eliminate(x, corr=corr) == stepwise_eliminate(x)

    def test_partition_and_order_invariants(self):
        rng = np.random.default_rng(5)
        base = rng.normal(size=(90, 4))
        x = base @ rng.normal(size=(4, 9)) + 0.02 * rng.normal(size=(90, 9))
        kept, removed = stepwise_eliminate(x)
        assert sorted(kept + removed) == list(range(9))


class TestMultiRhsOls:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n_targets", [1, 3, 7])
    def test_matches_per_column_loop(self, seed, n_targets):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 4))
        y = rng.normal(size=(60, n_targets))
        multi = fit_ols_multi(y, x)
        singles = [fit_ols(y[:, k], x) for k in range(n_targets)]
        for m, s in zip(multi, singles):
            assert np.allclose(m.coefficients, s.coefficients, rtol=1e-8, atol=1e-10)
            assert m.intercept == pytest.approx(s.intercept, rel=1e-8, abs=1e-10)
            assert m.r2 == pytest.approx(s.r2, rel=1e-8, abs=1e-10)
            assert m.residual_std == pytest.approx(s.residual_std, rel=1e-8, abs=1e-10)

    def test_constant_target_r2_one_both_paths(self, gate_on):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(40, 3))
        y = np.column_stack([np.full(40, 2.5), rng.normal(size=40)])
        fits = fit_ols_multi(y, x)
        assert fits[0].r2 == 1.0
        assert fit_ols(y[:, 0], x).r2 == 1.0

    def test_rank_deficient_design(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(50, 3))
        x = np.column_stack([x, x[:, 0]])  # duplicated regressor
        y = rng.normal(size=(50, 2))
        multi = fit_ols_multi(y, x)
        singles = [fit_ols(y[:, k], x) for k in range(2)]
        for m, s in zip(multi, singles):
            # lstsq minimum-norm solutions agree; so do the fits.
            assert np.allclose(m.coefficients, s.coefficients, rtol=1e-6, atol=1e-8)
            assert m.r2 == pytest.approx(s.r2, rel=1e-8, abs=1e-8)

    def test_empty_targets(self):
        assert fit_ols_multi(np.empty((20, 0)), np.ones((20, 2))) == []

    def test_1d_target_accepted(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        (m,) = fit_ols_multi(y, x)
        s = fit_ols(y, x)
        assert np.allclose(m.coefficients, s.coefficients, rtol=1e-8, atol=1e-10)

    def test_gate_off_is_per_column_loop(self, gate_off):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(25, 3))
        y = rng.normal(size=(25, 2))
        multi = fit_ols_multi(y, x)
        singles = [fit_ols(y[:, k], x) for k in range(2)]
        for m, s in zip(multi, singles):
            assert np.array_equal(m.coefficients, s.coefficients)
            assert m.intercept == s.intercept


class TestSilhouetteEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_labelings(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 30))
        d = _random_distances(rng, n)
        k = int(rng.integers(2, n))
        labels = rng.integers(0, k, size=n)
        ref = sil._silhouette_values_reference(d, labels)
        vec = sil._silhouette_values_vector(d, labels)
        assert np.allclose(ref, vec, rtol=1e-9, atol=1e-12)

    def test_singleton_clusters_are_zero(self):
        rng = np.random.default_rng(0)
        d = _random_distances(rng, 6)
        labels = np.array([0, 1, 2, 3, 4, 5])  # all singletons
        assert np.array_equal(sil._silhouette_values_vector(d, labels), np.zeros(6))
        assert np.array_equal(sil._silhouette_values_reference(d, labels), np.zeros(6))

    def test_single_cluster_is_zero(self):
        rng = np.random.default_rng(0)
        d = _random_distances(rng, 5)
        labels = np.zeros(5, dtype=int)
        assert np.array_equal(silhouette_values(d, labels), np.zeros(5))

    def test_zero_distances(self):
        d = np.zeros((4, 4))
        labels = [0, 0, 1, 1]
        ref = sil._silhouette_values_reference(d, np.asarray(labels))
        vec = sil._silhouette_values_vector(d, np.asarray(labels))
        assert np.array_equal(ref, vec)

    def test_noncontiguous_labels(self):
        rng = np.random.default_rng(4)
        d = _random_distances(rng, 8)
        labels = np.array([10, 10, 3, 3, 7, 7, 3, 10])
        ref = sil._silhouette_values_reference(d, labels)
        vec = sil._silhouette_values_vector(d, labels)
        assert np.allclose(ref, vec, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_cut_sweep_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 25))
        d = _random_distances(rng, n)
        cuts = HierarchicalClustering(d).cuts(range(2, max(3, n // 2 + 1)))
        sweep = mean_silhouettes_for_cuts(d, cuts)
        for k, labels in cuts.items():
            expected = float(
                sil._silhouette_values_reference(d, np.asarray(labels)).mean()
            )
            assert sweep[k] == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_non_nested_labelings_supported(self):
        # Arbitrary labelings (not from one merge tree) must still score
        # correctly through the direct-matmul branch.
        rng = np.random.default_rng(17)
        d = _random_distances(rng, 10)
        labelings = {
            2: [0, 0, 0, 0, 0, 1, 1, 1, 1, 1],
            3: [0, 1, 2, 0, 1, 2, 0, 1, 2, 0],  # not a refinement partner
        }
        sweep = mean_silhouettes_for_cuts(d, labelings)
        for k, labels in labelings.items():
            expected = float(
                sil._silhouette_values_reference(d, np.asarray(labels)).mean()
            )
            assert sweep[k] == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_best_cut_tie_prefers_fewer_clusters(self):
        # Two perfectly separated pairs: k=2 scores 1.0; so does the
        # degenerate k tie — fewer clusters must win on both paths.
        d = np.array(
            [
                [0.0, 1.0, 9.0, 9.0],
                [1.0, 0.0, 9.0, 9.0],
                [9.0, 9.0, 0.0, 1.0],
                [9.0, 9.0, 1.0, 0.0],
            ]
        )
        cuts = HierarchicalClustering(d).cuts([2, 3])
        score, k, labels = best_silhouette_cut(d, cuts)
        assert k == 2
        assert score == pytest.approx(mean_silhouette(d, cuts[2]))

    def test_best_cluster_count_tie(self):
        d = np.zeros((4, 4))  # every labeling scores 0.0 -> tie
        labelings = [[0, 0, 1, 1], [0, 1, 2, 0], [0, 1, 2, 3]]
        assert best_cluster_count(d, labelings, [2, 3, 4]) == 2

    def test_gate_off_matches_gate_on(self, monkeypatch):
        rng = np.random.default_rng(23)
        d = _random_distances(rng, 12)
        cuts = HierarchicalClustering(d).cuts(range(2, 7))
        monkeypatch.setenv(VECTOR_ENV_VAR, "1")
        on = best_silhouette_cut(d, cuts)
        monkeypatch.setenv(VECTOR_ENV_VAR, "0")
        off = best_silhouette_cut(d, cuts)
        assert on[1] == off[1] and on[2] == off[2]
        assert on[0] == pytest.approx(off[0], rel=1e-9, abs=1e-12)


class TestDtwBatchEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("window", [None, 0, 3, 12])
    def test_bitwise_identical(self, seed, window):
        rng = np.random.default_rng(seed)
        p = rng.normal(size=(20, 40))
        q = rng.normal(size=(20, 40))
        assert np.array_equal(
            _dtw_batch_fast(p, q, window), _dtw_batch_reference(p, q, window)
        )

    def test_distance_matrix_gate_equivalence(self, monkeypatch):
        rng = np.random.default_rng(6)
        series = rng.normal(size=(9, 50))
        monkeypatch.setenv(VECTOR_ENV_VAR, "1")
        on = dtw_distance_matrix(series, window=5, zscore=True)
        monkeypatch.setenv(VECTOR_ENV_VAR, "0")
        off = dtw_distance_matrix(series, window=5, zscore=True)
        assert np.array_equal(on, off)


class TestSearchGateEquivalence:
    """REPRO_VECTOR_SPATIAL=0 restores the reference search end to end."""

    @pytest.mark.parametrize("method_name", ["cbc", "dtw"])
    def test_full_search_identical_decisions(self, monkeypatch, method_name):
        from repro.prediction.spatial.cache import SIGNATURE_CACHE
        from repro.prediction.spatial.signatures import (
            ClusteringMethod,
            SignatureSearchConfig,
            search_signature_set,
        )

        rng = np.random.default_rng(31)
        base = rng.normal(size=(3, 96))
        mix = rng.normal(size=(10, 3))
        data = mix @ base + 0.2 * rng.normal(size=(10, 96))
        cfg = SignatureSearchConfig(method=ClusteringMethod(method_name))

        models = {}
        for raw in ("1", "0"):
            monkeypatch.setenv(VECTOR_ENV_VAR, raw)
            SIGNATURE_CACHE.clear()
            models[raw] = search_signature_set(data, cfg)
        SIGNATURE_CACHE.clear()
        on, off = models["1"], models["0"]
        assert on.signature_indices == off.signature_indices
        assert on.dependent_indices == off.dependent_indices
        assert on.initial_signature_indices == off.initial_signature_indices
        assert on.cluster_labels == off.cluster_labels
        for idx in on.dependent_indices:
            assert np.allclose(
                on.models[idx].coefficients,
                off.models[idx].coefficients,
                rtol=1e-8,
                atol=1e-10,
            )

    def test_reconstruct_gate_equivalence(self, monkeypatch):
        from repro.prediction.spatial.cache import SIGNATURE_CACHE
        from repro.prediction.spatial.signatures import search_signature_set

        rng = np.random.default_rng(13)
        base = rng.normal(size=(2, 80))
        data = rng.normal(size=(6, 2)) @ base + 0.1 * rng.normal(size=(6, 80))
        monkeypatch.setenv(VECTOR_ENV_VAR, "1")
        SIGNATURE_CACHE.clear()
        model = search_signature_set(data)
        sig = data[list(model.signature_indices)]
        on = model.reconstruct(sig)
        monkeypatch.setenv(VECTOR_ENV_VAR, "0")
        off = model.reconstruct(sig)
        SIGNATURE_CACHE.clear()
        assert np.allclose(on, off, rtol=1e-9, atol=1e-12)
        # Signature rows pass through verbatim either way.
        assert np.array_equal(on[list(model.signature_indices)], sig)
