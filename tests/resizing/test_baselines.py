"""Tests for baseline allocators (repro.resizing.baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resizing.baselines import max_min_fairness_allocation, stingy_allocation
from repro.resizing.problem import ResizingProblem


class TestStingy:
    def test_allocates_peak(self):
        problem = ResizingProblem(
            demands=np.array([[1.0, 3.0], [2.0, 2.0]]), capacity=100.0
        )
        assert stingy_allocation(problem) == pytest.approx([3.0, 2.0])

    def test_respects_bounds(self):
        problem = ResizingProblem(
            demands=np.array([[1.0, 3.0]]),
            capacity=100.0,
            lower_bounds=np.array([5.0]),
        )
        assert stingy_allocation(problem) == pytest.approx([5.0])


class TestMaxMin:
    def test_abundance_reaches_all_targets(self):
        problem = ResizingProblem(
            demands=np.array([[3.0, 6.0], [1.0, 2.0]]), capacity=100.0, alpha=0.6
        )
        alloc = max_min_fairness_allocation(problem)
        # Targets are peak/alpha = [10, 10/3]; surplus then spreads further.
        assert alloc[0] >= 10.0 - 1e-9
        assert alloc[1] >= 2.0 / 0.6 - 1e-9

    def test_capacity_exhausted(self):
        """Paper: the pour continues 'until all capacity is exhausted'."""
        problem = ResizingProblem(
            demands=np.array([[3.0, 6.0], [1.0, 2.0]]), capacity=40.0, alpha=0.6
        )
        alloc = max_min_fairness_allocation(problem)
        assert alloc.sum() == pytest.approx(40.0)

    def test_scarcity_favors_small_vms(self):
        problem = ResizingProblem(
            demands=np.array([[30.0] * 3, [1.0] * 3]), capacity=10.0, alpha=0.6
        )
        alloc = max_min_fairness_allocation(problem)
        # Small VM reaches its target (1/0.6); big VM absorbs the remainder
        # and stays far below its own 50.0 target.
        assert alloc[1] >= 1.0 / 0.6 - 1e-9
        assert alloc[0] < 30.0 / 0.6

    def test_equal_vms_get_equal_shares(self):
        problem = ResizingProblem(
            demands=np.array([[5.0] * 4, [5.0] * 4]), capacity=6.0, alpha=0.6
        )
        alloc = max_min_fairness_allocation(problem)
        assert alloc[0] == pytest.approx(alloc[1])

    def test_upper_bounds_cap_the_pour(self):
        problem = ResizingProblem(
            demands=np.array([[5.0, 5.0]]),
            capacity=100.0,
            upper_bounds=np.array([6.0]),
        )
        alloc = max_min_fairness_allocation(problem)
        assert alloc[0] <= 6.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 5000), st.floats(0.2, 2.0))
    def test_budget_never_violated(self, seed, scale):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0, 10, size=(4, 6))
        capacity = max(scale * demands.max(axis=1).sum(), 1.0)
        problem = ResizingProblem(demands=demands, capacity=capacity, alpha=0.6)
        alloc = max_min_fairness_allocation(problem)
        assert alloc.sum() <= capacity + 1e-6
        assert np.all(alloc >= -1e-9)

    def test_lower_bounds_funded_first(self):
        problem = ResizingProblem(
            demands=np.array([[1.0], [1.0]]),
            capacity=5.0,
            lower_bounds=np.array([2.0, 2.0]),
        )
        alloc = max_min_fairness_allocation(problem)
        assert np.all(alloc >= 2.0 - 1e-9)
