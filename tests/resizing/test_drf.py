"""Tests for the DRF allocator (repro.resizing.drf)."""

import numpy as np
import pytest

from repro.resizing.drf import drf_allocation
from repro.resizing.problem import ResizingProblem
from repro.trace.model import Resource


def two_resource_problems(cpu_demands, ram_demands, cpu_cap, ram_cap, alpha=0.6):
    return {
        Resource.CPU: ResizingProblem(
            demands=np.asarray(cpu_demands, float), capacity=cpu_cap, alpha=alpha
        ),
        Resource.RAM: ResizingProblem(
            demands=np.asarray(ram_demands, float), capacity=ram_cap, alpha=alpha
        ),
    }


class TestDrf:
    def test_abundance_meets_targets(self):
        problems = two_resource_problems(
            [[3.0, 6.0], [1.0, 2.0]], [[2.0, 4.0], [4.0, 8.0]], 100.0, 100.0
        )
        alloc = drf_allocation(problems)
        assert alloc[Resource.CPU][0] >= 6.0 / 0.6 - 0.2
        assert alloc[Resource.RAM][1] >= 8.0 / 0.6 - 0.2

    def test_budgets_never_violated(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            cpu = local.uniform(0, 10, size=(4, 6))
            ram = local.uniform(0, 8, size=(4, 6))
            problems = two_resource_problems(cpu, ram, 20.0, 15.0)
            alloc = drf_allocation(problems)
            assert alloc[Resource.CPU].sum() <= 20.0 + 1e-6
            assert alloc[Resource.RAM].sum() <= 15.0 + 1e-6
            assert np.all(alloc[Resource.CPU] >= -1e-9)

    def test_dominant_shares_equalized_under_scarcity(self):
        # Two identical VMs competing for a scarce resource: equal shares.
        problems = two_resource_problems(
            [[30.0], [30.0]], [[1.0], [1.0]], 10.0, 100.0
        )
        alloc = drf_allocation(problems)
        assert alloc[Resource.CPU][0] == pytest.approx(alloc[Resource.CPU][1], rel=0.05)

    def test_cpu_heavy_vs_ram_heavy(self):
        # VM0 is CPU-dominant, VM1 RAM-dominant: DRF should let each take
        # from its non-dominant resource freely.
        problems = two_resource_problems(
            [[20.0], [1.0]], [[1.0], [20.0]], 20.0, 20.0
        )
        alloc = drf_allocation(problems)
        # Both progress: neither is starved on its dominant resource.
        assert alloc[Resource.CPU][0] > 5.0
        assert alloc[Resource.RAM][1] > 5.0

    def test_mismatched_vm_counts_rejected(self):
        problems = {
            Resource.CPU: ResizingProblem(demands=np.ones((2, 2)), capacity=10.0),
            Resource.RAM: ResizingProblem(demands=np.ones((3, 2)), capacity=10.0),
        }
        with pytest.raises(ValueError):
            drf_allocation(problems)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            drf_allocation({})

    def test_upper_bounds_respected(self):
        problems = {
            Resource.CPU: ResizingProblem(
                demands=np.full((1, 3), 30.0),
                capacity=100.0,
                upper_bounds=np.array([5.0]),
            ),
            Resource.RAM: ResizingProblem(demands=np.ones((1, 3)), capacity=100.0),
        }
        alloc = drf_allocation(problems)
        assert alloc[Resource.CPU][0] <= 5.0 + 1e-6
