"""Tests for the resizing problem (repro.resizing.problem)."""

import numpy as np
import pytest

from repro.resizing.problem import ResizingProblem, per_vm_tickets, tickets_for_allocation


@pytest.fixture()
def problem():
    demands = np.array(
        [
            [3.0, 3.0, 4.0, 6.0],
            [1.0, 1.0, 1.0, 1.0],
        ]
    )
    return ResizingProblem(demands=demands, capacity=20.0, alpha=0.6)


class TestValidation:
    def test_defaults(self, problem):
        assert problem.n_vms == 2
        assert problem.n_windows == 4
        assert problem.lower_bounds == pytest.approx([0.0, 0.0])
        assert problem.upper_bounds == pytest.approx([20.0, 20.0])

    def test_rejects_1d_demands(self):
        with pytest.raises(ValueError):
            ResizingProblem(demands=np.ones(3), capacity=1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            ResizingProblem(demands=np.array([[-1.0]]), capacity=1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ResizingProblem(demands=np.ones((1, 2)), capacity=1.0, alpha=1.0)

    def test_rejects_bad_bound_shapes(self):
        with pytest.raises(ValueError):
            ResizingProblem(
                demands=np.ones((2, 2)), capacity=1.0, lower_bounds=np.ones(3)
            )

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError):
            ResizingProblem(
                demands=np.ones((1, 2)),
                capacity=10.0,
                lower_bounds=np.array([5.0]),
                upper_bounds=np.array([2.0]),
            )

    def test_bounds_feasibility(self):
        p = ResizingProblem(
            demands=np.ones((2, 2)), capacity=3.0, lower_bounds=np.array([2.0, 2.0])
        )
        assert not p.bounds_feasible


class TestTickets:
    def test_indicator_semantics(self, problem):
        # alpha*C = 0.6*5 = 3: demands strictly above 3 ticket.
        counts = per_vm_tickets(problem, [5.0, 5.0])
        assert counts.tolist() == [2, 0]  # windows with 4 and 6

    def test_boundary_not_ticketed(self, problem):
        # alpha*C = 3.0 exactly: 'demand == threshold' is not a violation.
        counts = per_vm_tickets(problem, [5.0, 100.0])
        assert counts[0] == 2

    def test_zero_allocation_all_windows(self, problem):
        counts = per_vm_tickets(problem, [0.0, 10.0])
        assert counts[0] == 4

    def test_total(self, problem):
        assert tickets_for_allocation(problem, [5.0, 5.0]) == 2

    def test_generous_allocation_zero(self, problem):
        assert tickets_for_allocation(problem, [20.0, 20.0]) == 0

    def test_monotone_in_allocation(self, problem):
        small = tickets_for_allocation(problem, [4.0, 1.0])
        large = tickets_for_allocation(problem, [8.0, 2.0])
        assert large <= small

    def test_wrong_shape_rejected(self, problem):
        with pytest.raises(ValueError):
            per_vm_tickets(problem, [1.0])


class TestFeasibility:
    def test_is_feasible(self, problem):
        assert problem.is_feasible([10.0, 10.0])
        assert not problem.is_feasible([15.0, 10.0])  # budget exceeded
        assert not problem.is_feasible([10.0])  # wrong shape

    def test_clamp(self):
        p = ResizingProblem(
            demands=np.ones((2, 2)),
            capacity=10.0,
            lower_bounds=np.array([1.0, 1.0]),
            upper_bounds=np.array([4.0, 4.0]),
        )
        assert p.clamp([0.0, 9.0]) == pytest.approx([1.0, 4.0])
