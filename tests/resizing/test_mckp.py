"""Tests for the MCKP transform (repro.resizing.mckp), including Lemma 4.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resizing.mckp import build_mckp
from repro.resizing.problem import ResizingProblem, tickets_for_allocation

PAPER_EXAMPLE = [30.0, 30.0, 40.0, 40.0, 23.0, 25.0, 60.0, 60.0, 60.0, 60.0]


class TestPaperExample:
    """The running example of Section IV-A.1."""

    def _instance(self, literal=True, epsilon=0.0):
        problem = ResizingProblem(
            demands=np.array([PAPER_EXAMPLE]), capacity=1000.0, alpha=0.6
        )
        return build_mckp(problem, epsilon=epsilon, literal_formulation=literal)

    def test_reduced_demand_set(self):
        group = self._instance().groups[0]
        assert group.capacities.tolist() == [60.0, 40.0, 30.0, 25.0, 23.0, 0.0]

    def test_ticket_counts(self):
        group = self._instance().groups[0]
        assert group.tickets.tolist() == [0, 4, 6, 8, 9, 10]

    def test_discretized_set(self):
        # ε = 10 rounds {23, 25} up to 30: D' = {60, 40, 30, 0} and the
        # paper's updated ticket counts P = {0, 4, 6, 10}.
        group = self._instance(epsilon=10.0).groups[0]
        assert group.capacities.tolist() == [60.0, 40.0, 30.0, 0.0]
        assert group.tickets.tolist() == [0, 4, 6, 10]

    def test_effective_capacity_scaling(self):
        # Non-literal: the allocated capacity is candidate / alpha.
        group = self._instance(literal=False).groups[0]
        assert group.capacities[0] == pytest.approx(100.0)
        assert group.tickets[0] == 0


class TestBuildMckp:
    def test_idle_vm_single_candidate(self):
        problem = ResizingProblem(demands=np.zeros((1, 5)), capacity=10.0, alpha=0.6)
        group = build_mckp(problem).groups[0]
        assert group.capacities.tolist() == [0.0]
        assert group.tickets.tolist() == [0]

    def test_lower_bound_trims_candidates(self):
        problem = ResizingProblem(
            demands=np.array([[1.0, 2.0, 3.0]]),
            capacity=100.0,
            alpha=0.5,
            lower_bounds=np.array([4.0]),
        )
        group = build_mckp(problem).groups[0]
        assert group.capacities.min() >= 4.0

    def test_upper_bound_caps_candidates(self):
        problem = ResizingProblem(
            demands=np.array([[1.0, 2.0, 30.0]]),
            capacity=100.0,
            alpha=0.5,
            upper_bounds=np.array([10.0]),
        )
        group = build_mckp(problem).groups[0]
        assert group.capacities.max() <= 10.0

    def test_tickets_monotone(self, rng):
        problem = ResizingProblem(
            demands=rng.uniform(0, 10, size=(4, 20)), capacity=100.0, alpha=0.6
        )
        for group in build_mckp(problem).groups:
            assert np.all(np.diff(group.tickets) >= 0)
            assert np.all(np.diff(group.capacities) < 0)

    def test_epsilon_per_vm(self, rng):
        problem = ResizingProblem(
            demands=rng.uniform(0, 10, size=(3, 10)), capacity=100.0, alpha=0.6
        )
        instance = build_mckp(problem, epsilon=np.array([0.5, 1.0, 2.0]))
        assert instance.n_vms == 3

    def test_epsilon_validation(self, rng):
        problem = ResizingProblem(demands=np.ones((2, 3)), capacity=10.0)
        with pytest.raises(ValueError):
            build_mckp(problem, epsilon=np.array([1.0]))
        with pytest.raises(ValueError):
            build_mckp(problem, epsilon=-1.0)

    def test_instance_accessors(self, rng):
        problem = ResizingProblem(
            demands=rng.uniform(0, 5, size=(3, 8)), capacity=50.0, alpha=0.6
        )
        instance = build_mckp(problem)
        assert instance.n_vms == 3
        assert instance.n_variables == sum(g.n_choices for g in instance.groups)
        assert instance.min_total_capacity() <= instance.max_total_capacity()
        choices = (0, 0, 0)
        alloc = instance.allocation_for(choices)
        assert alloc == pytest.approx([g.capacities[0] for g in instance.groups])

    def test_choice_count_checked(self, rng):
        problem = ResizingProblem(demands=np.ones((2, 3)), capacity=10.0)
        instance = build_mckp(problem)
        with pytest.raises(ValueError):
            instance.allocation_for((0,))


class TestLemma41:
    """Lemma 4.1: restricting capacities to the candidate set loses nothing."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(0.0, 20.0), min_size=2, max_size=6),
            min_size=1,
            max_size=3,
        )
    )
    def test_candidates_dominate_continuum(self, demand_lists):
        t = min(len(d) for d in demand_lists)
        demands = np.array([d[:t] for d in demand_lists])
        problem = ResizingProblem(demands=demands, capacity=1e9, alpha=0.6)
        instance = build_mckp(problem)
        # For each VM and ANY capacity value c, some candidate uses <= c
        # capacity and yields <= the tickets of c (sampled check).
        rng = np.random.default_rng(0)
        for i, group in enumerate(instance.groups):
            for c in rng.uniform(0.0, 40.0, size=10):
                tickets_c = int(
                    (demands[i] > 0.6 * c + 1e-9).sum()
                ) if c > 0 else int((demands[i] > 1e-9).sum())
                dominating = [
                    v
                    for v in range(group.n_choices)
                    if group.capacities[v] <= c + 1e-9
                    and group.tickets[v] <= tickets_c
                ]
                assert dominating, (
                    f"no candidate dominates capacity {c} for VM {i}"
                )

    def test_epsilon_rounding_is_safe(self, rng):
        """ε rounds demands up: the discretized optimum never tickets more
        at the same capacity level (it allocates at least as much)."""
        demands = rng.uniform(0, 10, size=(1, 12))
        problem = ResizingProblem(demands=demands, capacity=1e9, alpha=0.6)
        plain = build_mckp(problem).groups[0]
        rounded = build_mckp(problem, epsilon=2.0).groups[0]
        assert rounded.capacities[0] >= plain.capacities[0] - 1e-9
        assert rounded.tickets[0] == 0 == plain.tickets[0]


class TestVectorizedTickets:
    """The searchsorted ticket counting must match the original scan."""

    @staticmethod
    def _reference_tickets(demands, caps, threshold_factor):
        # The original O(candidates x windows) list comprehension.
        return np.array(
            [
                int((demands > threshold_factor * c + 1e-9).sum())
                if c > 0
                else int((demands > 1e-9).sum())
                for c in caps
            ],
            dtype=int,
        )

    @pytest.mark.parametrize("literal", [False, True])
    @pytest.mark.parametrize("epsilon", [0.0, 1.5])
    def test_random_fleet_pin(self, literal, epsilon, small_fleet):
        # Demand matrices from a generated fleet (duplicates, idle VMs and
        # bursty rows included) — the ticket arrays must be identical.
        factor = 1.0 if literal else 0.6
        from repro.trace.model import Resource

        for box in small_fleet.boxes[:6]:
            demands = np.maximum(box.demand_matrix(Resource.CPU), 0.0)
            problem = ResizingProblem(
                demands=demands, capacity=float(box.cpu_capacity), alpha=0.6
            )
            instance = build_mckp(
                problem, epsilon=epsilon, literal_formulation=literal
            )
            for group in instance.groups:
                expected = self._reference_tickets(
                    problem.demands[group.vm_index], group.capacities, factor
                )
                np.testing.assert_array_equal(group.tickets, expected)

    def test_duplicate_and_boundary_demands(self):
        # Exact ties between a candidate threshold and a demand value are
        # where a searchsorted side-mismatch would bite.
        demands = np.array([[1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 0.0]])
        problem = ResizingProblem(demands=demands, capacity=100.0, alpha=0.5)
        group = build_mckp(problem, literal_formulation=True).groups[0]
        expected = self._reference_tickets(demands[0], group.capacities, 1.0)
        np.testing.assert_array_equal(group.tickets, expected)
