"""Tests for fleet resizing evaluation (repro.resizing.evaluate)."""

import numpy as np
import pytest

from repro.resizing.evaluate import (
    BoxReduction,
    FleetReduction,
    ResizingAlgorithm,
    evaluate_box_resizing,
    evaluate_fleet_resizing,
    redistribute_slack,
    reduction_percent,
    resize_allocation,
)
from repro.resizing.problem import ResizingProblem
from repro.tickets.policy import TicketPolicy
from repro.trace.model import Resource


class TestReductionPercent:
    def test_basic(self):
        assert reduction_percent(100, 40) == pytest.approx(60.0)

    def test_increase_is_negative(self):
        assert reduction_percent(10, 30) == pytest.approx(-200.0)

    def test_no_tickets_nan(self):
        assert np.isnan(reduction_percent(0, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            reduction_percent(-1, 0)

    def test_clipped_reduction(self):
        r = BoxReduction("b", Resource.CPU, ResizingAlgorithm.ATM, 10, 40, True)
        assert r.reduction == pytest.approx(-300.0)
        assert r.clipped_reduction == -100.0


class TestRedistributeSlack:
    def test_restores_toward_current(self):
        problem = ResizingProblem(
            demands=np.ones((2, 2)), capacity=10.0, upper_bounds=np.array([10.0, 10.0])
        )
        out = redistribute_slack(problem, np.array([1.0, 1.0]), current=np.array([4.0, 4.0]))
        assert np.all(out >= 4.0 - 1e-9)
        assert out.sum() <= 10.0 + 1e-9

    def test_partial_restore_when_tight(self):
        problem = ResizingProblem(demands=np.ones((2, 2)), capacity=5.0)
        out = redistribute_slack(problem, np.array([2.0, 2.0]), current=np.array([4.0, 4.0]))
        assert out.sum() == pytest.approx(5.0)

    def test_no_slack_no_change(self):
        problem = ResizingProblem(demands=np.ones((2, 2)), capacity=4.0)
        alloc = np.array([2.0, 2.0])
        assert redistribute_slack(problem, alloc, current=np.array([9.0, 9.0])) == pytest.approx(alloc)

    def test_spreads_surplus_without_current(self):
        problem = ResizingProblem(
            demands=np.ones((2, 2)), capacity=10.0, upper_bounds=np.array([10.0, 10.0])
        )
        out = redistribute_slack(problem, np.array([1.0, 1.0]))
        assert out.sum() == pytest.approx(10.0)


class TestResizeAllocation:
    def _problem(self, rng):
        demands = rng.uniform(0, 5, size=(3, 10))
        return ResizingProblem(
            demands=demands,
            capacity=40.0,
            alpha=0.6,
            lower_bounds=demands.max(axis=1),
        )

    @pytest.mark.parametrize("algorithm", list(ResizingAlgorithm))
    def test_all_algorithms_return_valid_allocations(self, rng, algorithm):
        problem = self._problem(rng)
        alloc, feasible = resize_allocation(
            problem, algorithm, epsilon=0.1, current=np.full(3, 5.0)
        )
        assert alloc.shape == (3,)
        assert np.all(np.isfinite(alloc))
        if feasible:
            assert alloc.sum() <= problem.capacity + 1e-6

    def test_atm_uses_epsilon(self, rng):
        problem = self._problem(rng)
        with_eps, _ = resize_allocation(problem, ResizingAlgorithm.ATM, epsilon=1.0)
        without, _ = resize_allocation(
            problem, ResizingAlgorithm.ATM_NO_DISCRETIZATION, epsilon=1.0
        )
        # ε rounds demands up -> never allocates less at the greedy stage.
        assert with_eps.sum() >= without.sum() - 1e-6


class TestBoxEvaluation:
    def test_oracle_resizing_eliminates_tickets(self, small_fleet):
        box = small_fleet.boxes[0]
        policy = TicketPolicy(60.0)
        results = evaluate_box_resizing(
            box,
            Resource.CPU,
            policy,
            [ResizingAlgorithm.ATM],
            eval_demands=box.demand_matrix(Resource.CPU)[:, :96],
        )
        result = results[0]
        assert result.tickets_after <= result.tickets_before

    def test_sizing_vs_eval_demands_split(self, small_fleet):
        box = small_fleet.boxes[0]
        policy = TicketPolicy(60.0)
        eval_demands = box.demand_matrix(Resource.CPU)[:, :96]
        # Sizing with zero demands + lower bound zero starves everyone.
        sizing = np.zeros_like(eval_demands)
        results = evaluate_box_resizing(
            box,
            Resource.CPU,
            policy,
            [ResizingAlgorithm.STINGY],
            eval_demands=eval_demands,
            sizing_demands=sizing,
            lower_bounds=np.zeros(box.n_vms),
        )
        # Starved VMs: every nonzero-demand window tickets.
        assert results[0].tickets_after >= results[0].tickets_before


class TestFleetEvaluation:
    def test_summary_populated(self, small_fleet):
        reduction = evaluate_fleet_resizing(
            small_fleet,
            TicketPolicy(60.0),
            (ResizingAlgorithm.ATM, ResizingAlgorithm.STINGY),
            eval_windows=96,
        )
        atm_cpu = reduction.mean_reduction(Resource.CPU, ResizingAlgorithm.ATM)
        assert np.isfinite(atm_cpu)
        assert atm_cpu > reduction.mean_reduction(Resource.CPU, ResizingAlgorithm.STINGY)

    def test_totals(self, small_fleet):
        reduction = evaluate_fleet_resizing(
            small_fleet, TicketPolicy(60.0), (ResizingAlgorithm.ATM,), eval_windows=96
        )
        before, after = reduction.totals(Resource.CPU, ResizingAlgorithm.ATM)
        assert before >= after >= 0

    def test_missing_algorithm_nan(self):
        empty = FleetReduction()
        assert np.isnan(empty.mean_reduction(Resource.CPU, ResizingAlgorithm.ATM))
