"""Tests for the greedy MTRV solver (repro.resizing.greedy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resizing.exact import solve_bruteforce
from repro.resizing.greedy import mtrv, solve_greedy
from repro.resizing.mckp import build_mckp
from repro.resizing.problem import ResizingProblem


def random_problem(rng, m=3, t=8, capacity_scale=1.0):
    demands = rng.uniform(0.0, 10.0, size=(m, t))
    capacity = capacity_scale * demands.max(axis=1).sum() / 0.6
    return ResizingProblem(demands=demands, capacity=max(capacity, 1.0), alpha=0.6)


class TestGreedyBasics:
    def test_abundant_capacity_zero_tickets(self, rng):
        problem = random_problem(rng, capacity_scale=2.0)
        solution = solve_greedy(build_mckp(problem))
        assert solution.feasible
        assert solution.tickets == 0
        assert solution.total_capacity <= problem.capacity + 1e-9

    def test_budget_respected_when_binding(self, rng):
        problem = random_problem(rng, capacity_scale=0.5)
        solution = solve_greedy(build_mckp(problem))
        assert solution.feasible
        assert solution.total_capacity <= problem.capacity + 1e-9
        assert solution.tickets >= 0

    def test_infeasible_bounds_flagged(self):
        problem = ResizingProblem(
            demands=np.array([[5.0], [5.0]]),
            capacity=3.0,
            alpha=0.5,
            lower_bounds=np.array([2.0, 2.0]),
        )
        solution = solve_greedy(build_mckp(problem))
        assert not solution.feasible

    def test_iterations_reported(self, rng):
        problem = random_problem(rng, capacity_scale=0.4)
        solution = solve_greedy(build_mckp(problem))
        assert solution.iterations > 0

    def test_deterministic(self, rng):
        problem = random_problem(rng, capacity_scale=0.7)
        instance = build_mckp(problem)
        a = solve_greedy(instance)
        b = solve_greedy(instance)
        assert a.choices == b.choices


class TestMtrv:
    def test_definition(self):
        problem = ResizingProblem(
            demands=np.array([[10.0, 8.0, 6.0]]), capacity=100.0, alpha=0.5
        )
        instance = build_mckp(problem)
        group = instance.groups[0]
        value = mtrv(instance, 0, 0)
        expected = (group.tickets[1] - group.tickets[0]) / (
            group.capacities[0] - group.capacities[1]
        )
        assert value == pytest.approx(expected)

    def test_last_choice_cannot_step(self):
        problem = ResizingProblem(demands=np.array([[1.0]]), capacity=10.0)
        instance = build_mckp(problem)
        last = instance.groups[0].n_choices - 1
        with pytest.raises(IndexError):
            mtrv(instance, 0, last)


class TestGreedyVsExact:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.floats(0.3, 1.5))
    def test_near_optimal_on_random_instances(self, seed, scale):
        rng = np.random.default_rng(seed)
        problem = random_problem(rng, m=3, t=5, capacity_scale=scale)
        instance = build_mckp(problem)
        greedy = solve_greedy(instance)
        exact = solve_bruteforce(instance)
        if not (greedy.feasible and exact.feasible):
            assert greedy.feasible == exact.feasible
            return
        # The greedy is a heuristic: never better than exact, and on tiny
        # adversarially tight instances it may pay a handful of tickets.
        assert greedy.tickets >= exact.tickets
        assert greedy.tickets - exact.tickets <= 6

    def test_mostly_exact(self, rng):
        """At realistic capacity levels the greedy is usually exactly optimal."""
        optimal = 0
        total = 40
        for k in range(total):
            local = np.random.default_rng(k)
            problem = random_problem(local, m=3, t=5, capacity_scale=0.9)
            instance = build_mckp(problem)
            greedy = solve_greedy(instance)
            exact = solve_bruteforce(instance)
            if greedy.feasible and exact.feasible and greedy.tickets == exact.tickets:
                optimal += 1
        assert optimal >= 0.7 * total
