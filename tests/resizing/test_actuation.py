"""Tests for the simulated cgroups actuator (repro.resizing.actuation)."""

import pytest

from repro.resizing.actuation import LimitChange, SimulatedCgroupsActuator
from repro.trace.model import Resource


@pytest.fixture()
def actuator():
    act = SimulatedCgroupsActuator({Resource.CPU: 10.0, Resource.RAM: 16.0})
    act.register_vm("vm-a", {Resource.CPU: 4.0, Resource.RAM: 8.0})
    act.register_vm("vm-b", {Resource.CPU: 4.0, Resource.RAM: 8.0})
    return act


class TestRegistration:
    def test_current_limit(self, actuator):
        assert actuator.current_limit("vm-a", Resource.CPU) == 4.0

    def test_unknown_vm_rejected(self, actuator):
        with pytest.raises(KeyError):
            actuator.current_limit("nope", Resource.CPU)

    def test_over_budget_registration_rejected(self, actuator):
        with pytest.raises(ValueError, match="exceed host"):
            actuator.register_vm("vm-c", {Resource.CPU: 5.0})

    def test_nonpositive_limit_rejected(self, actuator):
        with pytest.raises(ValueError):
            actuator.register_vm("vm-c", {Resource.CPU: 0.0})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCgroupsActuator({Resource.CPU: 0.0})


class TestApplyLimits:
    def test_applies_and_logs(self, actuator):
        changes = actuator.apply_limits(3, {("vm-a", Resource.CPU): 6.0,
                                            ("vm-b", Resource.CPU): 3.0})
        assert actuator.current_limit("vm-a", Resource.CPU) == 6.0
        assert actuator.current_limit("vm-b", Resource.CPU) == 3.0
        assert len(changes) == 2
        assert all(isinstance(c, LimitChange) for c in changes)
        assert actuator.change_log[-1].window == 3

    def test_no_op_changes_not_logged(self, actuator):
        changes = actuator.apply_limits(0, {("vm-a", Resource.CPU): 4.0})
        assert changes == []
        assert actuator.change_log == []

    def test_batch_over_budget_rejected_atomically(self, actuator):
        with pytest.raises(ValueError, match="exceed host"):
            actuator.apply_limits(0, {("vm-a", Resource.CPU): 9.0})
        # Nothing changed.
        assert actuator.current_limit("vm-a", Resource.CPU) == 4.0

    def test_swap_within_batch_allowed(self, actuator):
        # Individually over budget, jointly fine: batches validate as a whole.
        actuator.apply_limits(
            1, {("vm-a", Resource.CPU): 7.0, ("vm-b", Resource.CPU): 2.0}
        )
        assert actuator.current_limit("vm-a", Resource.CPU) == 7.0

    def test_unknown_vm_rejected(self, actuator):
        with pytest.raises(KeyError):
            actuator.apply_limits(0, {("ghost", Resource.CPU): 1.0})

    def test_nonpositive_limit_rejected(self, actuator):
        with pytest.raises(ValueError):
            actuator.apply_limits(0, {("vm-a", Resource.CPU): -1.0})

    def test_change_records_old_and_new(self, actuator):
        changes = actuator.apply_limits(5, {("vm-b", Resource.RAM): 6.0})
        assert changes[0].old_limit == 8.0
        assert changes[0].new_limit == 6.0
        assert changes[0].resource is Resource.RAM


class TestAllOrNothing:
    """A rejected batch must leave limits and the audit log untouched —
    a half-applied resize would leave the box in a state ATM never chose."""

    def _snapshot(self, actuator):
        return {
            (vm, res): actuator.current_limit(vm, res)
            for vm in ("vm-a", "vm-b")
            for res in (Resource.CPU, Resource.RAM)
        }

    def test_nonpositive_limit_rolls_back_whole_batch(self, actuator):
        before = self._snapshot(actuator)
        with pytest.raises(ValueError):
            actuator.apply_limits(
                2, {("vm-a", Resource.CPU): 6.0, ("vm-b", Resource.CPU): -1.0}
            )
        assert self._snapshot(actuator) == before
        assert actuator.change_log == []

    def test_unknown_vm_rolls_back_whole_batch(self, actuator):
        before = self._snapshot(actuator)
        with pytest.raises(KeyError):
            actuator.apply_limits(
                2, {("vm-a", Resource.CPU): 6.0, ("ghost", Resource.CPU): 1.0}
            )
        assert self._snapshot(actuator) == before
        assert actuator.change_log == []

    def test_over_budget_mixed_batch_rolls_back(self, actuator):
        before = self._snapshot(actuator)
        with pytest.raises(ValueError, match="exceed host"):
            actuator.apply_limits(
                2, {("vm-a", Resource.RAM): 2.0, ("vm-b", Resource.RAM): 15.0}
            )
        assert self._snapshot(actuator) == before

    def test_budget_check_defaults_to_enforced_limits(self, actuator):
        # Regression: the no-argument form used to annotate its parameter
        # as a plain (non-Optional) Dict while defaulting to None.
        assert actuator._check_host_budget() is None
