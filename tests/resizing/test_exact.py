"""Tests for the exact solvers (repro.resizing.exact)."""

import numpy as np
import pytest

from repro.resizing.exact import solve_bruteforce, solve_dp
from repro.resizing.mckp import build_mckp
from repro.resizing.problem import ResizingProblem


def small_problem(rng, m=3, t=5, scale=0.7):
    demands = rng.uniform(0.0, 10.0, size=(m, t))
    capacity = scale * demands.max(axis=1).sum() / 0.6
    return ResizingProblem(demands=demands, capacity=max(capacity, 1.0), alpha=0.6)


class TestBruteForce:
    def test_budget_respected(self, rng):
        instance = build_mckp(small_problem(rng))
        solution = solve_bruteforce(instance)
        assert solution.feasible
        assert solution.total_capacity <= instance.capacity + 1e-9

    def test_returns_global_minimum(self, rng):
        instance = build_mckp(small_problem(rng, m=2, t=4))
        solution = solve_bruteforce(instance)
        import itertools

        best = min(
            instance.tickets_for(c)
            for c in itertools.product(*(range(g.n_choices) for g in instance.groups))
            if sum(g.capacities[i] for g, i in zip(instance.groups, c))
            <= instance.capacity + 1e-9
        )
        assert solution.tickets == best

    def test_infeasible_instance(self):
        problem = ResizingProblem(
            demands=np.array([[5.0]]),
            capacity=1.0,
            alpha=0.5,
            lower_bounds=np.array([4.0]),
            upper_bounds=np.array([6.0]),
        )
        solution = solve_bruteforce(build_mckp(problem))
        assert not solution.feasible

    def test_size_limit(self, rng):
        demands = rng.uniform(0, 10, size=(10, 90))
        problem = ResizingProblem(demands=demands, capacity=100.0)
        with pytest.raises(ValueError, match="too large"):
            solve_bruteforce(build_mckp(problem))


class TestDp:
    def test_matches_bruteforce(self, rng):
        for k in range(15):
            local = np.random.default_rng(k)
            instance = build_mckp(small_problem(local, scale=0.5 + 0.1 * (k % 5)))
            brute = solve_bruteforce(instance)
            dp = solve_dp(instance, grid_points=4096)
            assert dp.feasible == brute.feasible
            if brute.feasible:
                # DP rounds capacities up onto the grid, so it may be off by
                # at most a grid-resolution artifact; with 4096 buckets it
                # should match on these tiny instances.
                assert dp.tickets == brute.tickets

    def test_budget_respected(self, rng):
        instance = build_mckp(small_problem(rng))
        solution = solve_dp(instance)
        assert solution.total_capacity <= instance.capacity + 1e-9

    def test_grid_validation(self, rng):
        instance = build_mckp(small_problem(rng))
        with pytest.raises(ValueError):
            solve_dp(instance, grid_points=0)

    def test_coarse_grid_still_feasible(self, rng):
        instance = build_mckp(small_problem(rng))
        solution = solve_dp(instance, grid_points=16)
        if solution.feasible:
            assert solution.total_capacity <= instance.capacity + 1e-9

    def test_infeasible_instance(self):
        problem = ResizingProblem(
            demands=np.array([[5.0]]),
            capacity=1.0,
            alpha=0.5,
            lower_bounds=np.array([4.0]),
            upper_bounds=np.array([6.0]),
        )
        solution = solve_dp(build_mckp(problem))
        assert not solution.feasible
