"""Public cluster-trace adapter: long CSV → BoxTrace / shard store."""

import csv

import numpy as np
import pytest

from repro.store.shards import load_fleet_shards
from repro.trace import load_cluster_csv, shard_cluster_csv
from repro.trace.loader import external_fingerprint

HEADER = ["machine_id", "vm_id", "timestamp", "cpu_util_pct", "ram_util_pct"]
CAPS = ["vm_cpu_capacity", "vm_ram_capacity"]


def _write(path, rows, header=None):
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header or HEADER)
        writer.writerows(rows)
    return path


def _cluster_rows(machines=2, vms=2, samples=6, caps=False):
    rng = np.random.default_rng(11)
    rows = []
    for m in range(machines):
        for v in range(vms):
            for t in range(samples):
                row = [
                    f"m{m:02d}",
                    f"m{m:02d}-vm{v}",
                    t * 300,  # epoch-style seconds, 5-minute cadence
                    round(float(rng.uniform(5, 70)), 3),
                    round(float(rng.uniform(10, 50)), 3),
                ]
                if caps:
                    row += [2.0 + v, 4.0 + v]
                rows.append(row)
    return rows


class TestLoadClusterCsv:
    def test_machines_become_boxes(self, tmp_path):
        path = _write(tmp_path / "c.csv", _cluster_rows())
        fleet = load_cluster_csv(path, name="ext")
        assert fleet.name == "ext"
        assert fleet.n_boxes == 2
        assert fleet.n_vms == 4
        assert fleet.boxes[0].n_windows == 6
        assert fleet.boxes[0].interval_minutes == 5

    def test_timestamp_order_is_irrelevant(self, tmp_path):
        """Windows sort by timestamp, not by row position in the file.

        (Box/VM identity follows first appearance, so only the time
        dimension is permuted here.)
        """
        rows = _cluster_rows()
        ordered = _write(tmp_path / "a.csv", rows)
        backwards = sorted(rows, key=lambda r: -r[2])  # stable: ids keep order
        scrambled = _write(tmp_path / "b.csv", backwards)
        a = load_cluster_csv(ordered)
        b = load_cluster_csv(scrambled)
        for box_a, box_b in zip(a.boxes, b.boxes):
            np.testing.assert_array_equal(
                box_a.usage_matrix(), box_b.usage_matrix()
            )

    def test_capacity_columns_and_headroom(self, tmp_path):
        path = _write(
            tmp_path / "c.csv", _cluster_rows(caps=True), header=HEADER + CAPS
        )
        fleet = load_cluster_csv(path, headroom=1.5)
        box = fleet.boxes[0]
        assert [vm.cpu_capacity for vm in box.vms] == [2.0, 3.0]
        assert box.cpu_capacity == pytest.approx((2.0 + 3.0) * 1.5)

    def test_external_fingerprint_rides_every_level(self, tmp_path):
        path = _write(tmp_path / "c.csv", _cluster_rows())
        fleet = load_cluster_csv(path)
        fp = external_fingerprint(path)
        assert fleet.scenario_fp == fp
        assert all(box.scenario_fp == fp for box in fleet.boxes)

    def test_different_dumps_fingerprint_differently(self, tmp_path):
        a = _write(tmp_path / "a.csv", _cluster_rows(samples=6))
        b = _write(tmp_path / "b.csv", _cluster_rows(samples=7))
        assert external_fingerprint(a) != external_fingerprint(b)

    def test_bad_header_rejected(self, tmp_path):
        path = _write(tmp_path / "c.csv", [], header=["x", "y"])
        with pytest.raises(ValueError, match="unexpected cluster CSV header"):
            load_cluster_csv(path)

    def test_duplicate_timestamp_rejected(self, tmp_path):
        rows = _cluster_rows(machines=1, vms=1)
        rows.append(rows[0])
        path = _write(tmp_path / "c.csv", rows)
        with pytest.raises(ValueError, match="duplicate samples"):
            load_cluster_csv(path)

    def test_gappy_vm_rejected(self, tmp_path):
        rows = _cluster_rows(machines=1, vms=2)
        # Drop one of vm1's samples: it no longer covers the machine grid.
        victim = next(i for i, r in enumerate(rows) if r[1].endswith("vm1"))
        del rows[victim]
        path = _write(tmp_path / "c.csv", rows)
        with pytest.raises(ValueError, match="gap-free"):
            load_cluster_csv(path)


class TestShardClusterCsv:
    def test_round_trip_through_shard_store(self, tmp_path):
        path = _write(tmp_path / "c.csv", _cluster_rows())
        fleet = load_cluster_csv(path)
        sharded = shard_cluster_csv(path, tmp_path / "shards")
        assert sharded.n_boxes == fleet.n_boxes
        for original, view in zip(fleet.boxes, sharded):
            np.testing.assert_array_equal(
                view.usage_matrix(), original.usage_matrix()
            )
            assert view.scenario_fp == fleet.scenario_fp

    def test_manifest_records_external_provenance(self, tmp_path):
        path = _write(tmp_path / "c.csv", _cluster_rows())
        shard_cluster_csv(path, tmp_path / "shards")
        store = load_fleet_shards(tmp_path / "shards")
        assert store.scenario == {
            "name": "external",
            "fingerprint": external_fingerprint(path),
        }
