"""Tests for workload signal primitives (repro.trace.workloads)."""

import numpy as np
import pytest

from repro.trace.workloads import (
    alternating_load,
    ar1_noise,
    bursts,
    daily_spikes,
    diurnal,
    level_shifts,
    random_walk,
)


class TestDiurnal:
    def test_period_and_bounds(self):
        signal = diurnal(192, 96, amplitude=2.0)
        assert signal.shape == (192,)
        assert signal.max() <= 2.0 + 1e-9
        assert signal.min() >= -2.0 - 1e-9
        assert signal[:96] == pytest.approx(signal[96:])

    def test_phase_shift(self):
        a = diurnal(96, 96, phase=0.0)
        b = diurnal(96, 96, phase=0.25)
        assert not np.allclose(a, b)
        # Quarter-day shift: b(t) = a(t - 24).
        assert b[24:] == pytest.approx(a[:-24], abs=1e-9)

    def test_sharpness_squeezes(self):
        soft = diurnal(96, 96, sharpness=1.0)
        sharp = diurnal(96, 96, sharpness=3.0)
        assert np.abs(sharp).mean() < np.abs(soft).mean()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            diurnal(0, 96)


class TestAr1:
    def test_stationary_variance(self, rng):
        phi, sigma = 0.8, 1.0
        x = ar1_noise(rng, 20000, phi=phi, sigma=sigma)
        expected_std = sigma / np.sqrt(1 - phi * phi)
        assert x.std() == pytest.approx(expected_std, rel=0.1)

    def test_autocorrelation_sign(self, rng):
        x = ar1_noise(rng, 5000, phi=0.9)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert lag1 > 0.8

    def test_phi_bounds(self, rng):
        with pytest.raises(ValueError):
            ar1_noise(rng, 10, phi=1.0)

    def test_deterministic_given_seed(self):
        a = ar1_noise(np.random.default_rng(5), 50)
        b = ar1_noise(np.random.default_rng(5), 50)
        assert a == pytest.approx(b)


class TestBursts:
    def test_nonnegative(self, rng):
        assert bursts(rng, 1000, rate_per_window=0.05).min() >= 0.0

    def test_zero_rate_no_bursts(self, rng):
        assert bursts(rng, 500, rate_per_window=0.0).max() == 0.0

    def test_rate_scales_occupancy(self, rng):
        low = bursts(rng, 5000, rate_per_window=0.001)
        high = bursts(rng, 5000, rate_per_window=0.1)
        assert (high > 0).mean() > (low > 0).mean()

    def test_negative_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            bursts(rng, 10, rate_per_window=-0.1)


class TestDailySpikes:
    def test_zero_spikes(self, rng):
        assert daily_spikes(rng, 96, 96, spikes_per_day=0).max() == 0.0

    def test_spikes_repeat_daily(self, rng):
        train = daily_spikes(rng, 96 * 5, 96, spikes_per_day=1, height_range=(10, 10))
        days_with_spike = sum(
            train[d * 96 : (d + 1) * 96].max() > 0 for d in range(5)
        )
        assert days_with_spike >= 4  # jitter may push one off the edge

    def test_height_in_range(self, rng):
        train = daily_spikes(rng, 96 * 3, 96, height_range=(5.0, 7.0))
        positive = train[train > 0]
        assert positive.size > 0
        assert positive.min() >= 5.0 - 1e-9
        assert positive.max() <= 7.0 + 1e-9

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            daily_spikes(rng, 96, 96, spikes_per_day=-1)
        with pytest.raises(ValueError):
            daily_spikes(rng, 96, 96, max_duration=0)


class TestRandomWalkAndShifts:
    def test_reflection_bounds(self, rng):
        walk = random_walk(rng, 5000, sigma=1.0, reflect_at=5.0)
        assert walk.max() <= 5.0 + 1e-9
        assert walk.min() >= -5.0 - 1e-9

    def test_reflect_positive_required(self, rng):
        with pytest.raises(ValueError):
            random_walk(rng, 10, reflect_at=0.0)

    def test_level_shifts_piecewise_constant(self, rng):
        shifts = level_shifts(rng, 2000, shift_probability=0.01)
        diffs = np.flatnonzero(np.diff(shifts))
        assert diffs.size < 60  # only occasional change points


class TestAlternatingLoad:
    def test_square_wave(self):
        load = alternating_load(8, 2, low=1.0, high=3.0)
        assert load.tolist() == [1, 1, 3, 3, 1, 1, 3, 3]

    def test_start_high(self):
        load = alternating_load(4, 2, low=1.0, high=3.0, start_low=False)
        assert load.tolist() == [3, 3, 1, 1]

    def test_low_above_high_rejected(self):
        with pytest.raises(ValueError):
            alternating_load(4, 2, low=5.0, high=3.0)


class TestAr1LfilterPath:
    """The scipy lfilter fast path is bit-identical to the Python loop."""

    @staticmethod
    def _reference(rng, n_windows, phi, sigma=1.0):
        eps = rng.normal(0.0, sigma, size=n_windows)
        x0 = rng.normal(0.0, sigma / np.sqrt(max(1e-12, 1.0 - phi * phi)))
        out = np.empty(n_windows)
        out[0] = x0
        for t in range(1, n_windows):
            out[t] = phi * out[t - 1] + eps[t]
        return out

    @pytest.mark.parametrize("phi", [0.8, 0.97, -0.5, 0.3])
    def test_bit_identical_to_loop(self, phi):
        fast = ar1_noise(np.random.default_rng(7), 500, phi=phi)
        loop = self._reference(np.random.default_rng(7), 500, phi=phi)
        np.testing.assert_array_equal(fast, loop)
