"""Tests for the trace data model (repro.trace.model)."""

import numpy as np
import pytest

from repro.trace.model import MAX_USAGE_PCT, BoxTrace, FleetTrace, Resource, SeriesKey, VMTrace


def make_vm(vm_id="vm0", n=8, cpu_cap=4.0, ram_cap=8.0, level=50.0):
    return VMTrace(
        vm_id=vm_id,
        cpu_capacity=cpu_cap,
        ram_capacity=ram_cap,
        cpu_usage=np.full(n, level),
        ram_usage=np.full(n, level / 2),
    )


def make_box(box_id="box0", m=3, n=8):
    vms = [make_vm(f"{box_id}-vm{i}", n=n) for i in range(m)]
    return BoxTrace(box_id=box_id, cpu_capacity=20.0, ram_capacity=40.0, vms=vms)


class TestVMTrace:
    def test_demand_is_usage_times_capacity(self):
        vm = make_vm(level=50.0, cpu_cap=4.0)
        assert vm.demand(Resource.CPU) == pytest.approx(np.full(8, 2.0))
        assert vm.demand(Resource.RAM) == pytest.approx(np.full(8, 2.0))

    def test_usage_above_entitlement_allowed(self):
        vm = VMTrace("v", 1.0, 1.0, np.full(4, 150.0), np.full(4, 10.0))
        assert vm.demand(Resource.CPU)[0] == pytest.approx(1.5)

    def test_usage_beyond_cap_rejected(self):
        with pytest.raises(ValueError):
            VMTrace("v", 1.0, 1.0, np.full(4, MAX_USAGE_PCT + 1), np.zeros(4))

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            VMTrace("v", 1.0, 1.0, np.array([-5.0]), np.array([0.0]))

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            VMTrace("v", 1.0, 1.0, np.array([np.nan]), np.array([0.0]))

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            VMTrace("v", 0.0, 1.0, np.zeros(2), np.zeros(2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VMTrace("v", 1.0, 1.0, np.zeros(3), np.zeros(4))


class TestBoxTrace:
    def test_series_keys_order(self):
        box = make_box(m=2)
        keys = box.series_keys()
        assert keys == [
            SeriesKey(0, Resource.CPU),
            SeriesKey(1, Resource.CPU),
            SeriesKey(0, Resource.RAM),
            SeriesKey(1, Resource.RAM),
        ]

    def test_usage_matrix_shapes(self):
        box = make_box(m=3, n=8)
        assert box.usage_matrix(Resource.CPU).shape == (3, 8)
        assert box.usage_matrix().shape == (6, 8)

    def test_demand_matrix_consistent_with_series(self):
        box = make_box(m=2)
        full = box.demand_matrix()
        for idx, key in enumerate(box.series_keys()):
            assert full[idx] == pytest.approx(box.series(key, demand=True))

    def test_allocations(self):
        box = make_box(m=3)
        assert box.allocations(Resource.CPU) == pytest.approx([4.0, 4.0, 4.0])

    def test_split_windows(self):
        box = make_box(n=8)
        head, tail = box.split_windows(5)
        assert head.n_windows == 5
        assert tail.n_windows == 3
        assert head.box_id == tail.box_id == box.box_id

    def test_split_windows_bounds(self):
        box = make_box(n=8)
        with pytest.raises(ValueError):
            box.split_windows(0)
        with pytest.raises(ValueError):
            box.split_windows(8)

    def test_split_deep_copies(self):
        box = make_box(n=8)
        head, _ = box.split_windows(4)
        head.vms[0].cpu_usage[0] = 99.0
        assert box.vms[0].cpu_usage[0] != 99.0

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            BoxTrace("b", 1.0, 1.0, [])

    def test_inconsistent_lengths_rejected(self):
        vms = [make_vm("a", n=8), make_vm("b", n=9)]
        with pytest.raises(ValueError):
            BoxTrace("b", 1.0, 1.0, vms)

    def test_windows_per_day(self):
        assert make_box().windows_per_day == 96


class TestFleetTrace:
    def test_summary(self):
        fleet = FleetTrace([make_box("a", m=2), make_box("b", m=4)])
        summary = fleet.summary()
        assert summary["boxes"] == 2
        assert summary["vms"] == 6
        assert summary["series"] == 12
        assert summary["mean_vms_per_box"] == 3.0

    def test_box_by_id(self):
        fleet = FleetTrace([make_box("a"), make_box("b")])
        assert fleet.box_by_id("b").box_id == "b"
        with pytest.raises(KeyError):
            fleet.box_by_id("zzz")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            FleetTrace([make_box("a"), make_box("a")])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetTrace([])

    def test_iteration(self):
        fleet = FleetTrace([make_box("a"), make_box("b")])
        assert [box.box_id for box in fleet] == ["a", "b"]
