"""Tests for the synthetic fleet generator (repro.trace.generator)."""

import numpy as np
import pytest

from repro.tickets import correlation_cdfs, fleet_ticket_summary
from repro.trace.generator import FleetConfig, generate_box, generate_fleet
from repro.trace.model import Resource


class TestConfigValidation:
    def test_defaults_valid(self):
        FleetConfig()

    def test_rejects_bad_boxes(self):
        with pytest.raises(ValueError):
            FleetConfig(n_boxes=0)

    def test_rejects_bad_vm_bounds(self):
        with pytest.raises(ValueError):
            FleetConfig(min_vms_per_box=10, max_vms_per_box=5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            FleetConfig(cpu_hot_box_fraction=1.5)

    def test_n_windows(self):
        assert FleetConfig(days=2, windows_per_day=96).n_windows == 192


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        cfg = FleetConfig(n_boxes=3, days=1, seed=42)
        a = generate_fleet(cfg)
        b = generate_fleet(cfg)
        for box_a, box_b in zip(a, b):
            assert box_a.box_id == box_b.box_id
            for vm_a, vm_b in zip(box_a.vms, box_b.vms):
                assert vm_a.cpu_usage == pytest.approx(vm_b.cpu_usage)
                assert vm_a.ram_usage == pytest.approx(vm_b.ram_usage)

    def test_different_seed_different_fleet(self):
        a = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=1))
        b = generate_fleet(FleetConfig(n_boxes=2, days=1, seed=2))
        assert not np.allclose(a.boxes[0].vms[0].cpu_usage, b.boxes[0].vms[0].cpu_usage)

    def test_boxes_independent_of_fleet(self):
        """A box can be regenerated alone, bit-identical to its fleet copy."""
        cfg = FleetConfig(n_boxes=4, days=1, seed=9)
        fleet = generate_fleet(cfg)
        box2 = generate_box(2, cfg)
        assert box2.vms[0].cpu_usage == pytest.approx(fleet.boxes[2].vms[0].cpu_usage)


class TestStructure:
    def test_box_shapes(self):
        cfg = FleetConfig(n_boxes=5, days=2, seed=3)
        fleet = generate_fleet(cfg)
        for box in fleet:
            assert box.n_windows == 192
            assert cfg.min_vms_per_box <= box.n_vms <= cfg.max_vms_per_box
            assert box.cpu_capacity > 0
            # headroom >= 1: the current allocations are always feasible.
            assert sum(vm.cpu_capacity for vm in box.vms) <= box.cpu_capacity + 1e-9

    def test_consolidation_level(self):
        fleet = generate_fleet(FleetConfig(n_boxes=60, days=1, seed=4))
        assert 7.0 < fleet.summary()["mean_vms_per_box"] < 13.0

    def test_usage_within_validation_bounds(self):
        fleet = generate_fleet(FleetConfig(n_boxes=10, days=1, seed=5))
        for box in fleet:
            for vm in box.vms:
                assert vm.cpu_usage.min() >= 0.0
                assert vm.ram_usage.min() >= 0.0


class TestCalibration:
    """The generator must track the paper's published aggregates (Fig. 2/3)."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return generate_fleet(FleetConfig(n_boxes=120, days=1, seed=2016))

    def test_ticket_box_shares(self, fleet):
        summary = fleet_ticket_summary(fleet, first_windows=96)
        cpu60 = summary.row(Resource.CPU, 60.0)["pct_boxes"]
        ram60 = summary.row(Resource.RAM, 60.0)["pct_boxes"]
        ram80 = summary.row(Resource.RAM, 80.0)["pct_boxes"]
        assert 45.0 < cpu60 < 72.0      # paper: 57%
        assert 25.0 < ram60 < 50.0      # paper: 38%
        assert ram80 < 25.0             # paper: 10%
        assert cpu60 > ram60            # CPU tickets touch more boxes

    def test_ticket_count_decay_is_flat(self, fleet):
        summary = fleet_ticket_summary(fleet, first_windows=96)
        cpu = [summary.row(Resource.CPU, t)["mean_tickets"] for t in (60.0, 80.0)]
        assert cpu[1] > 0.45 * cpu[0]   # paper: 29/39 = 0.74

    def test_culprit_concentration(self, fleet):
        summary = fleet_ticket_summary(fleet, first_windows=96)
        for resource in (Resource.CPU, Resource.RAM):
            culprits = summary.row(resource, 60.0)["mean_culprits"]
            assert 1.0 <= culprits <= 2.5

    def test_correlation_structure(self, fleet):
        means = correlation_cdfs(fleet, first_windows=96).means()
        assert 0.15 < means["intra_cpu"] < 0.40      # paper 0.26
        assert 0.12 < means["intra_ram"] < 0.38      # paper 0.24
        assert 0.15 < means["inter_all"] < 0.42      # paper 0.30
        assert 0.50 < means["inter_pair"] < 0.75     # paper 0.62
        assert means["inter_pair"] > means["inter_all"]
