"""Scenario engine: truth/render split, identity pin, regime splices."""

import hashlib
import json

import numpy as np
import pytest

from repro.store.shards import generate_fleet_shards
from repro.trace import (
    ARCHETYPES,
    NAMED_SCENARIOS,
    CohortSpec,
    FleetConfig,
    RegimeShift,
    RenderSpec,
    ScenarioSpec,
    generate_fleet,
    render_box,
    render_fleet,
    resolve_scenario,
)
from repro.trace.generator import generate_box
from repro.trace.model import FORBID_GENERATION_ENV_VAR
from repro.trace.scenario import (
    PAPER_ARCHETYPE,
    SCENARIO_ENV_VAR,
    _cohort_of,
    _switch_window,
)

SMALL = FleetConfig(n_boxes=4, days=2, seed=20160628)

#: Fleet digest of the calibrated profile at SMALL — the bit-identity pin:
#: the scenario refactor must never change what the legacy generator (and
#: therefore the default ``paper-fig2`` scenario) produces.
PAPER_FIG2_DIGEST = "cf28e23545b78942cf8193e4153439bca60a883a"


def _fleet_digest(fleet) -> str:
    h = hashlib.blake2b(digest_size=20)
    for box in fleet.boxes:
        h.update(box.box_id.encode())
        h.update(np.ascontiguousarray(box.usage_matrix(), dtype=np.float64).tobytes())
        h.update(np.float64(box.cpu_capacity).tobytes())
        h.update(np.float64(box.ram_capacity).tobytes())
    return h.hexdigest()


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(SCENARIO_ENV_VAR, raising=False)
    monkeypatch.delenv(FORBID_GENERATION_ENV_VAR, raising=False)


class TestIdentityPin:
    def test_paper_fig2_is_bit_identical_to_legacy_generator(self):
        legacy = generate_fleet(SMALL)
        assert _fleet_digest(legacy) == PAPER_FIG2_DIGEST
        rendered = render_fleet(NAMED_SCENARIOS[PAPER_ARCHETYPE], SMALL)
        assert _fleet_digest(rendered) == PAPER_FIG2_DIGEST

    def test_identity_spec_leaves_scenario_fp_unset(self):
        fleet = render_fleet(NAMED_SCENARIOS[PAPER_ARCHETYPE], SMALL)
        assert fleet.scenario_fp is None
        assert all(box.scenario_fp is None for box in fleet.boxes)

    def test_generate_fleet_scenario_kwarg_identity(self):
        via_kwarg = generate_fleet(
            SMALL, scenario=NAMED_SCENARIOS[PAPER_ARCHETYPE]
        )
        assert _fleet_digest(via_kwarg) == PAPER_FIG2_DIGEST

    def test_is_identity_property(self):
        assert NAMED_SCENARIOS[PAPER_ARCHETYPE].is_identity
        assert not NAMED_SCENARIOS["spiky"].is_identity
        assert not ScenarioSpec(
            "noisy", render=RenderSpec(noise_scale=2.0)
        ).is_identity


class TestArchetypes:
    def test_every_archetype_renders_valid_traces(self):
        for name in ARCHETYPES:
            fleet = render_fleet(
                ScenarioSpec(name, (CohortSpec(name),)), SMALL
            )
            for box in fleet.boxes:
                matrix = box.usage_matrix()
                assert np.all(np.isfinite(matrix))
                assert matrix.min() >= 0.0
                assert matrix.max() <= 400.0

    def test_non_identity_scenarios_differ_from_paper(self):
        paper = _fleet_digest(generate_fleet(SMALL))
        for name in ARCHETYPES:
            if name == PAPER_ARCHETYPE:
                continue
            fleet = render_fleet(ScenarioSpec(name, (CohortSpec(name),)), SMALL)
            assert _fleet_digest(fleet) != paper, name

    def test_rendering_is_deterministic(self):
        spec = NAMED_SCENARIOS["mixed"]
        assert _fleet_digest(render_fleet(spec, SMALL)) == _fleet_digest(
            render_fleet(spec, SMALL)
        )

    def test_archetype_preserves_vm_identities_and_capacities(self):
        """Overrides + envelopes must not perturb who the VMs are.

        VM ids and VM capacities are drawn before any override-affected
        draw, so every archetype agrees on them; box capacity folds a
        headroom draw made *after* the usage series, so it may differ.
        """
        legacy = generate_box(1, SMALL)
        for name in ARCHETYPES:
            spec = ScenarioSpec(name, (CohortSpec(name),))
            box = render_box(1, spec, SMALL)
            assert [vm.vm_id for vm in box.vms] == [vm.vm_id for vm in legacy.vms]
            assert [vm.cpu_capacity for vm in box.vms] == [
                vm.cpu_capacity for vm in legacy.vms
            ]
            assert [vm.ram_capacity for vm in box.vms] == [
                vm.ram_capacity for vm in legacy.vms
            ]


class TestRegimeShift:
    def test_splice_preserves_identity_and_pre_segment(self):
        spec = ScenarioSpec(
            "s",
            (CohortSpec("web-diurnal", shift=RegimeShift("spiky", at_fraction=0.5)),),
        )
        pure_pre = render_box(0, ScenarioSpec("p", (CohortSpec("web-diurnal"),)), SMALL)
        shifted = render_box(0, spec, SMALL)
        switch = _switch_window(SMALL, spec.cohorts[0].shift, 0)
        assert switch == SMALL.n_windows // 2
        assert [vm.vm_id for vm in shifted.vms] == [vm.vm_id for vm in pure_pre.vms]
        for vm_pre, vm_shift in zip(pure_pre.vms, shifted.vms):
            # Before the switch the shifted box IS the pre-archetype box.
            assert np.array_equal(
                vm_pre.cpu_usage[:switch], vm_shift.cpu_usage[:switch]
            )
            # After it, the workload changed.
        post_equal = all(
            np.array_equal(a.cpu_usage[switch:], b.cpu_usage[switch:])
            for a, b in zip(pure_pre.vms, shifted.vms)
        )
        assert not post_equal

    def test_seeded_switch_window_in_band_and_reproducible(self):
        shift = RegimeShift("spiky")
        w1 = _switch_window(SMALL, shift, 0)
        w2 = _switch_window(SMALL, shift, 0)
        assert w1 == w2
        assert 0.35 * SMALL.n_windows <= w1 <= 0.65 * SMALL.n_windows
        # Different cohorts draw different windows from the same seed.
        other = _switch_window(SMALL, shift, 1)
        assert 1 <= other <= SMALL.n_windows - 1

    def test_bad_shift_rejected(self):
        with pytest.raises(ValueError, match="unknown shift archetype"):
            RegimeShift("nope")
        with pytest.raises(ValueError, match="at_fraction"):
            RegimeShift("spiky", at_fraction=1.5)


class TestCohorts:
    def test_striping_covers_fleet_proportionally(self):
        spec = NAMED_SCENARIOS["mixed"]  # weights 2:1:1
        n = 8
        cfg = FleetConfig(n_boxes=n, days=1, seed=1)
        assigned = [_cohort_of(spec, b, n)[1].archetype for b in range(n)]
        assert assigned == (
            ["web-diurnal"] * 4 + ["batch"] * 2 + ["spiky"] * 2
        )
        fleet = render_fleet(spec, cfg)
        assert fleet.n_boxes == n

    def test_out_of_range_box_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            _cohort_of(NAMED_SCENARIOS["mixed"], 99, 8)

    def test_bad_cohort_rejected(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            CohortSpec("nope")
        with pytest.raises(ValueError, match="weight"):
            CohortSpec("spiky", weight=0.0)


class TestFingerprints:
    def test_all_named_scenarios_fingerprint_uniquely(self):
        fps = {name: spec.fingerprint() for name, spec in NAMED_SCENARIOS.items()}
        assert len(set(fps.values())) == len(fps)

    def test_fingerprint_stable_across_json_round_trip(self, tmp_path):
        for spec in NAMED_SCENARIOS.values():
            path = spec.to_json(tmp_path / f"{spec.name}.json")
            assert ScenarioSpec.from_json(path).fingerprint() == spec.fingerprint()

    def test_render_changes_fingerprint(self):
        base = ScenarioSpec("x", (CohortSpec("spiky"),))
        noisy = ScenarioSpec(
            "x", (CohortSpec("spiky"),), render=RenderSpec(noise_scale=2.0)
        )
        assert base.fingerprint() != noisy.fingerprint()


class TestResolveScenario:
    def test_none_defaults_to_identity(self):
        assert resolve_scenario(None).is_identity

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(SCENARIO_ENV_VAR, "spiky")
        assert resolve_scenario(None).name == "spiky"

    def test_named_and_spec_path(self, tmp_path):
        assert resolve_scenario("mixed") is NAMED_SCENARIOS["mixed"]
        path = NAMED_SCENARIOS["regime-shift"].to_json(tmp_path / "spec.json")
        assert (
            resolve_scenario(str(path)).fingerprint()
            == NAMED_SCENARIOS["regime-shift"].fingerprint()
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="paper-fig2"):
            resolve_scenario("nope")

    def test_missing_spec_file(self):
        with pytest.raises(ValueError, match="not found"):
            resolve_scenario("/no/such/spec.json")


class TestRenderSpec:
    def test_capacity_spread_zero_homogenizes_headroom(self):
        spec = ScenarioSpec(
            "flat",
            (CohortSpec(PAPER_ARCHETYPE),),
            render=RenderSpec(capacity_spread=0.0),
        )
        fleet = render_fleet(spec, SMALL)
        assert fleet.scenario_fp is not None
        # Spread 0 collapses headroom_range to its midpoint (1.15 for the
        # calibrated (1.00, 1.30)): every box sized at exactly that ratio.
        for box in fleet.boxes:
            ratio = box.cpu_capacity / sum(vm.cpu_capacity for vm in box.vms)
            assert ratio == pytest.approx(1.15)

    def test_out_of_band_knob_rejected(self):
        with pytest.raises(ValueError, match="noise_scale"):
            RenderSpec(noise_scale=11.0)


class TestGenerationGuard:
    """Satellite: REPRO_FORBID_FLEET_GENERATION covers scenario rendering."""

    def test_render_fleet_honours_guard(self, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            render_fleet(NAMED_SCENARIOS["spiky"], SMALL)

    def test_generate_fleet_scenario_path_honours_guard(self, monkeypatch):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            generate_fleet(SMALL, scenario=NAMED_SCENARIOS["spiky"])

    def test_shard_generation_guard_checked_in_parent(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        with pytest.raises(RuntimeError, match="forbidden"):
            generate_fleet_shards(
                SMALL, tmp_path, scenario=NAMED_SCENARIOS["spiky"]
            )

    def test_render_box_stays_callable_under_guard(self, monkeypatch):
        """render_box is the pool-worker unit: workers render by design,
        so the guard binds the fleet-level entry points only."""
        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        box = render_box(1, NAMED_SCENARIOS["spiky"], SMALL)
        assert box.scenario_fp == NAMED_SCENARIOS["spiky"].fingerprint()

    def test_worker_shard_unit_renders_under_guard(self, monkeypatch, tmp_path):
        from repro.store.shards import _render_box_shard

        monkeypatch.setenv(FORBID_GENERATION_ENV_VAR, "1")
        meta = _render_box_shard(
            0, SMALL, NAMED_SCENARIOS["spiky"], str(tmp_path)
        )
        assert meta.scenario_fp == NAMED_SCENARIOS["spiky"].fingerprint()

    def test_parallel_scenario_store_matches_serial(self, monkeypatch, tmp_path):
        serial_root = tmp_path / "serial"
        generate_fleet_shards(
            SMALL, serial_root, name="s", scenario=NAMED_SCENARIOS["spiky"]
        )
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel_root = tmp_path / "parallel"
        generate_fleet_shards(
            SMALL, parallel_root, name="s", scenario=NAMED_SCENARIOS["spiky"]
        )
        serial = json.loads((serial_root / "manifest.json").read_text())
        parallel = json.loads((parallel_root / "manifest.json").read_text())
        assert serial == parallel
