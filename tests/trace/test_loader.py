"""Tests for CSV persistence (repro.trace.loader)."""

import numpy as np
import pytest

from repro.trace.generator import FleetConfig, generate_fleet
from repro.trace.loader import load_fleet_csv, save_fleet_csv


@pytest.fixture()
def tiny_fleet():
    return generate_fleet(FleetConfig(n_boxes=2, days=1, seed=17, mean_vms_per_box=4))


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        loaded = load_fleet_csv(path)
        assert loaded.n_boxes == tiny_fleet.n_boxes
        assert loaded.n_vms == tiny_fleet.n_vms

    def test_roundtrip_preserves_values(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        loaded = load_fleet_csv(path)
        for box_orig, box_new in zip(tiny_fleet, loaded):
            assert box_new.cpu_capacity == pytest.approx(box_orig.cpu_capacity)
            for vm_orig, vm_new in zip(box_orig.vms, box_new.vms):
                assert vm_new.vm_id == vm_orig.vm_id
                assert vm_new.cpu_usage == pytest.approx(vm_orig.cpu_usage, abs=1e-3)
                assert vm_new.ram_usage == pytest.approx(vm_orig.ram_usage, abs=1e-3)

    def test_loaded_fleet_name(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        assert load_fleet_csv(path, name="renamed").name == "renamed"


class TestErrors:
    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_fleet_csv(path)

    def test_malformed_row_rejected(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        with path.open("a") as handle:
            handle.write("only,three,cells\n")
        with pytest.raises(ValueError, match="malformed"):
            load_fleet_csv(path)

    def test_gap_detected(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        lines = path.read_text().splitlines()
        # Remove one mid-series observation to create a gap.
        del lines[10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="gaps"):
            load_fleet_csv(path)

    def test_rows_in_any_order(self, tiny_fleet, tmp_path):
        path = tmp_path / "fleet.csv"
        save_fleet_csv(tiny_fleet, path)
        lines = path.read_text().splitlines()
        header, rows = lines[0], lines[1:]
        rows.reverse()
        path.write_text("\n".join([header] + rows) + "\n")
        loaded = load_fleet_csv(path)
        original_vm = tiny_fleet.boxes[0].vms[0]
        loaded_box = loaded.box_by_id(tiny_fleet.boxes[0].box_id)
        loaded_vm = next(vm for vm in loaded_box.vms if vm.vm_id == original_vm.vm_id)
        assert loaded_vm.cpu_usage == pytest.approx(original_vm.cpu_usage, abs=1e-3)
