"""Tests for the testbed experiment runner (repro.testbed.experiment)."""

import numpy as np
import pytest

from repro.testbed.experiment import TestbedConfig, run_testbed_experiment


@pytest.fixture(scope="module")
def runs():
    cfg = TestbedConfig(duration_windows=24, seed=11)
    original = run_testbed_experiment(resizing=False, config=cfg)
    resized = run_testbed_experiment(resizing=True, config=cfg)
    return original, resized


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TestbedConfig(duration_windows=0)
        with pytest.raises(ValueError):
            TestbedConfig(resize_every=0)
        with pytest.raises(ValueError):
            TestbedConfig(warmup_windows=-1)


class TestExperiment:
    def test_series_lengths(self, runs):
        original, resized = runs
        for run in runs:
            for series in run.usage_pct.values():
                assert series.shape == (24,)
            for series in run.throughput.values():
                assert series.shape == (24,)

    def test_identical_offered_load(self, runs):
        """Both runs must see the same workload for a fair comparison."""
        original, resized = runs
        # With the same seed, the original and resized runs draw identical
        # rates, so wiki-one's unsaturated throughput matches exactly.
        assert original.throughput["wiki-one"] == pytest.approx(
            resized.throughput["wiki-one"], rel=1e-6
        )

    def test_resizing_reduces_tickets_dramatically(self, runs):
        original, resized = runs
        assert original.tickets() >= 30
        assert resized.tickets() <= 5

    def test_usage_capped_at_limit(self, runs):
        for run in runs:
            for series in run.usage_pct.values():
                assert series.max() <= 100.0 + 1e-9
                assert series.min() >= 0.0

    def test_limits_respected_per_node(self, runs):
        _, resized = runs
        from repro.testbed.experiment import build_cluster

        cluster, _, _ = build_cluster()
        for node_name, node in cluster.nodes.items():
            vm_ids = [vm.vm_id for vm in cluster.vms_on(node_name)]
            for t in range(24):
                total = sum(resized.limits[vm_id][t] for vm_id in vm_ids)
                assert total <= node.cpu_capacity + 1e-6

    def test_original_limits_static(self, runs):
        original, _ = runs
        for series in original.limits.values():
            assert np.ptp(series) == 0.0

    def test_wiki_two_throughput_gain(self, runs):
        original, resized = runs
        assert resized.mean_throughput("wiki-two") > original.mean_throughput("wiki-two")

    def test_wiki_one_latency_gain(self, runs):
        original, resized = runs
        assert resized.mean_response_time("wiki-one") < original.mean_response_time(
            "wiki-one"
        )

    def test_tickets_per_vm_accessor(self, runs):
        original, _ = runs
        total = sum(original.tickets(vm_id) for vm_id in original.usage_pct)
        assert total == original.tickets()
