"""Tests for the testbed load generator (repro.testbed.workload)."""

import numpy as np
import pytest

from repro.testbed.workload import AlternatingLoad


class TestAlternatingLoad:
    def test_noiseless_square_wave(self):
        load = AlternatingLoad(low_rps=10.0, high_rps=30.0, windows_per_phase=2, noise=0.0)
        rates = load.rates(8)
        assert rates.tolist() == [10, 10, 30, 30, 10, 10, 30, 30]

    def test_start_high(self):
        load = AlternatingLoad(10.0, 30.0, windows_per_phase=1, noise=0.0, start_low=False)
        assert load.rates(4).tolist() == [30, 10, 30, 10]

    def test_noise_jitters_but_preserves_phases(self, rng):
        load = AlternatingLoad(10.0, 30.0, windows_per_phase=4, noise=0.05)
        rates = load.rates(8, rng)
        assert rates[:4].mean() < rates[4:].mean()
        assert not np.allclose(rates[:4], 10.0)

    def test_rates_nonnegative(self, rng):
        load = AlternatingLoad(0.1, 0.2, noise=5.0)  # absurd noise still safe
        assert load.rates(100, rng).min() >= 0.0

    def test_period(self):
        assert AlternatingLoad(1.0, 2.0, windows_per_phase=4).period_windows == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AlternatingLoad(low_rps=5.0, high_rps=1.0)
        with pytest.raises(ValueError):
            AlternatingLoad(1.0, 2.0, windows_per_phase=0)
        with pytest.raises(ValueError):
            AlternatingLoad(1.0, 2.0, noise=-0.1)
