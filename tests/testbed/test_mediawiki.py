"""Tests for the MediaWiki deployment model (repro.testbed.mediawiki)."""

import numpy as np
import pytest

from repro.testbed.experiment import build_cluster
from repro.testbed.mediawiki import wiki_one_spec, wiki_two_spec


@pytest.fixture()
def deployments():
    return build_cluster()


class TestSpecs:
    def test_topologies_match_fig11(self):
        one, two = wiki_one_spec(), wiki_two_spec()
        assert (one.n_apache, one.n_memcached, one.n_db) == (4, 2, 1)
        assert (two.n_apache, two.n_memcached, two.n_db) == (2, 1, 1)

    def test_loads_alternate_hourly(self):
        assert wiki_one_spec().load.windows_per_phase == 4  # 1 hour of 15-min windows


class TestBuildCluster:
    def test_eleven_vms_three_nodes(self, deployments):
        cluster, dep_one, dep_two = deployments
        assert len(cluster.vms) == 11
        assert set(cluster.nodes) == {"node2", "node3", "node4"}
        assert len(dep_one.vm_ids) == 7
        assert len(dep_two.vm_ids) == 4

    def test_ram_within_host(self, deployments):
        cluster, _, _ = deployments
        for node_name, node in cluster.nodes.items():
            total_ram = sum(vm.ram_limit for vm in cluster.vms_on(node_name))
            assert total_ram <= node.ram_gb + 1e-9


class TestStep:
    def test_zero_load_idle(self, deployments):
        _, dep_one, _ = deployments
        metrics = dep_one.step(0.0)
        assert metrics.throughput_rps == 0.0
        # Background demand only.
        for demand in metrics.demands_ghz.values():
            assert 0.0 < demand < 0.5

    def test_low_load_served_fully(self, deployments):
        _, dep_one, _ = deployments
        metrics = dep_one.step(100.0)
        assert metrics.throughput_rps == pytest.approx(100.0, rel=1e-6)

    def test_throughput_monotone_then_saturates(self, deployments):
        _, _, dep_two = deployments
        tputs = [dep_two.step(r).throughput_rps for r in (5.0, 15.0, 30.0, 60.0)]
        assert tputs[0] < tputs[1] <= tputs[2] <= tputs[3] + 1e-9
        assert tputs[3] < 60.0  # saturated well below offered

    def test_response_time_grows_with_load(self, deployments):
        _, dep_one, _ = deployments
        rt_low = dep_one.step(50.0).response_time_s
        rt_high = dep_one.step(390.0).response_time_s
        assert rt_high > rt_low

    def test_demands_cover_all_vms(self, deployments):
        _, dep_one, dep_two = deployments
        metrics_one = dep_one.step(100.0)
        metrics_two = dep_two.step(10.0)
        assert set(metrics_one.demands_ghz) == set(dep_one.vm_ids)
        assert set(metrics_two.demands_ghz) == set(dep_two.vm_ids)

    def test_raising_limits_lowers_response_time(self, deployments):
        cluster, dep_one, _ = deployments
        high_load = 390.0
        before = dep_one.step(high_load).response_time_s
        for vm in dep_one.apache:
            vm.cpu_limit = vm.cpu_limit * 1.8
        after = dep_one.step(high_load).response_time_s
        assert after < before
