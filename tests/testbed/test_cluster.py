"""Tests for the testbed cluster model (repro.testbed.cluster)."""

import pytest

from repro.testbed.cluster import NodeSpec, TestbedCluster, VMInstance


def tiny_cluster():
    nodes = [NodeSpec("n1"), NodeSpec("n2")]
    vms = [
        VMInstance("a", "wiki-one", "apache", "n1", cpu_limit=3.0),
        VMInstance("b", "wiki-one", "mysql", "n1", cpu_limit=3.0),
        VMInstance("c", "wiki-two", "apache", "n2", cpu_limit=3.0),
    ]
    return TestbedCluster(nodes, vms)


class TestNodeSpec:
    def test_capacity_formula(self):
        node = NodeSpec("n", cores=4, core_ghz=3.6, smt_factor=1.25)
        assert node.cpu_capacity == pytest.approx(0.95 * 4 * 3.6 * 1.25)


class TestClusterConstruction:
    def test_vms_on_sorted(self):
        cluster = tiny_cluster()
        assert [vm.vm_id for vm in cluster.vms_on("n1")] == ["a", "b"]

    def test_unknown_node_rejected(self):
        nodes = [NodeSpec("n1")]
        vms = [VMInstance("a", "w", "apache", "ghost", cpu_limit=1.0)]
        with pytest.raises(ValueError, match="unknown node"):
            TestbedCluster(nodes, vms)

    def test_duplicate_vm_ids_rejected(self):
        nodes = [NodeSpec("n1")]
        vms = [
            VMInstance("a", "w", "apache", "n1", cpu_limit=1.0),
            VMInstance("a", "w", "mysql", "n1", cpu_limit=1.0),
        ]
        with pytest.raises(ValueError, match="unique"):
            TestbedCluster(nodes, vms)

    def test_over_capacity_placement_rejected(self):
        nodes = [NodeSpec("n1")]
        vms = [VMInstance(f"v{i}", "w", "apache", "n1", cpu_limit=10.0) for i in range(3)]
        with pytest.raises(ValueError, match="exceed host"):
            TestbedCluster(nodes, vms)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            VMInstance("a", "w", "apache", "n1", cpu_limit=0.0)


class TestLimitManagement:
    def test_apply_limits_updates_vms(self):
        cluster = tiny_cluster()
        cluster.apply_cpu_limits(2, {"a": 5.0, "b": 2.0})
        assert cluster.vms["a"].cpu_limit == 5.0
        assert cluster.cpu_limits()["b"] == 2.0

    def test_actuator_log_records(self):
        cluster = tiny_cluster()
        cluster.apply_cpu_limits(1, {"a": 4.0})
        log = cluster.actuator("n1").change_log
        assert len(log) == 1
        assert log[0].vm_id == "a"

    def test_budget_enforced_per_node(self):
        cluster = tiny_cluster()
        capacity = cluster.nodes["n1"].cpu_capacity
        with pytest.raises(ValueError, match="exceed host"):
            cluster.apply_cpu_limits(0, {"a": capacity, "b": capacity})

    def test_headroom(self):
        cluster = tiny_cluster()
        expected = cluster.nodes["n1"].cpu_capacity - 6.0
        assert cluster.node_headroom("n1") == pytest.approx(expected)
