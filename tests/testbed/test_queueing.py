"""Tests for queueing primitives (repro.testbed.queueing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testbed.queueing import (
    SATURATION_RHO,
    ps_response_time,
    served_rate,
    station_sample,
)


class TestPsResponseTime:
    def test_zero_load_is_service_time(self):
        assert ps_response_time(0.1, 0.0) == pytest.approx(0.1)

    def test_half_load_doubles(self):
        assert ps_response_time(0.1, 0.5) == pytest.approx(0.2)

    def test_capped_at_rho_cap(self):
        capped = ps_response_time(0.1, 2.0, rho_cap=0.9)
        assert capped == pytest.approx(0.1 / 0.1)

    def test_monotone_in_rho(self):
        values = [ps_response_time(0.05, rho) for rho in np.linspace(0, 1.2, 20)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ps_response_time(-0.1, 0.5)
        with pytest.raises(ValueError):
            ps_response_time(0.1, 0.5, rho_cap=1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 10.0), st.floats(-1.0, 5.0))
    def test_at_least_service_time(self, s, rho):
        assert ps_response_time(s, rho) >= s - 1e-12


class TestServedRate:
    def test_under_capacity_serves_all(self):
        assert served_rate(10.0, 100.0, 1.0) == pytest.approx(10.0)

    def test_saturated_clips(self):
        # capacity 10 GHz, 1 GHz-s per request -> max 9.5 rps.
        assert served_rate(50.0, 10.0, 1.0) == pytest.approx(SATURATION_RHO * 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            served_rate(-1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            served_rate(1.0, 1.0, 0.0)


class TestStationSample:
    def test_unsaturated_sample(self):
        sample = station_sample(
            offered_rate=10.0,
            capacity_ghz=5.0,
            work_per_request=0.1,
            base_service_time=0.05,
            background_ghz=0.5,
        )
        assert sample.served_rate == pytest.approx(10.0)
        assert not sample.saturated
        assert sample.demand_ghz == pytest.approx(1.5)
        assert sample.rho == pytest.approx(0.3)
        assert sample.response_time > 0.05

    def test_saturated_sample(self):
        sample = station_sample(
            offered_rate=100.0,
            capacity_ghz=2.0,
            work_per_request=0.1,
            base_service_time=0.05,
        )
        assert sample.saturated
        assert sample.served_rate < 100.0
