"""Consolidated runtime settings — the single home of every ``REPRO_*`` gate.

Historically each subsystem read its own environment variable with its own
parsing and its own notion of falsiness.  This module replaces those
ad-hoc ``os.environ`` reads with one parse-and-validate path; the owning
modules keep their public gate functions but delegate here.

==========================  =========  =========================================
Variable                    Default    Meaning
==========================  =========  =========================================
``REPRO_JOBS``              ``1``      Worker processes for fleet fan-out
                                       (``<= 0`` = all cores).
``REPRO_VECTOR_SPATIAL``    on         Vectorized spatial linear-algebra engine
                                       (``0`` restores per-column reference).
``REPRO_BATCHED_TEMPORAL``  on         Batched multi-series temporal training
                                       (``0`` forces per-series fits).
``REPRO_SIGNATURE_CACHE``   on         In-process memory tier of the signature
                                       search (``0`` disables memoization).
``REPRO_METRICS``           on         :mod:`repro.obs` counters/span timers
                                       (``0`` turns recording into no-ops).
``REPRO_FAULTS``            unset      Fault-injection spec
                                       (see :mod:`repro.core.faults`).
``REPRO_FAULTS_SEED``       ``0``      Seed of the fault plan's hash decisions.
``REPRO_STORE``             unset      Directory of the persistent artifact
                                       store's disk tier
                                       (see :mod:`repro.store`).
``REPRO_STREAM_AGG``        on         Streaming constant-memory fleet
                                       aggregation (``0`` restores the
                                       full-result-list path for bit-identical
                                       verification).
``REPRO_WARM_REFIT``        on         Warm-started temporal refits in the
                                       online controller (``0`` forces cold
                                       per-step fits, the bit-identical
                                       legacy path).
``REPRO_DRIFT_GATE``        on         Drift-gated signature re-search in the
                                       online controller (``0`` restores the
                                       fixed ``refit_every_steps`` cadence).
``REPRO_FUSED_FLEET``       on         Fleet-level fused temporal training:
                                       chunk workers merge all their boxes'
                                       signature fits into cross-box
                                       mega-batches (``0`` restores strictly
                                       per-box stage execution).
``REPRO_ROUTE_QUEUES``      ``2``      Responder queues the ticket-operations
                                       loop routes incidents into (CLI
                                       ``tickets --queues`` overrides).
``REPRO_SCENARIO``          unset      Default trace scenario (a name from
                                       :data:`repro.trace.NAMED_SCENARIOS`
                                       or a JSON spec path); CLI
                                       ``--scenario`` overrides.  Unset means
                                       the calibrated ``paper-fig2`` profile.
``REPRO_SLA_ACK_WINDOWS``   ``1``      Ack deadline of the incident SLA clock,
                                       in ticketing windows.
``REPRO_SLA_RESOLVE_WINDOWS`` ``4``    Resolve deadline of the incident SLA
                                       clock, in ticketing windows.
==========================  =========  =========================================

Boolean gates share one falsy set: ``0``, ``false``, ``off``, ``no``
(case-insensitive); anything else — including unset — means the default.
Reads are live (no import-time snapshot), so tests can monkeypatch the
environment per case.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "BATCHED_ENV_VAR",
    "DRIFT_GATE_ENV_VAR",
    "FAULTS_ENV_VAR",
    "FUSED_FLEET_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
    "JOBS_ENV_VAR",
    "METRICS_ENV_VAR",
    "ROUTE_QUEUES_ENV_VAR",
    "SCENARIO_ENV_VAR",
    "SIGNATURE_CACHE_ENV_VAR",
    "SLA_ACK_ENV_VAR",
    "SLA_RESOLVE_ENV_VAR",
    "STORE_ENV_VAR",
    "STREAM_AGG_ENV_VAR",
    "VECTOR_ENV_VAR",
    "WARM_REFIT_ENV_VAR",
    "RuntimeSettings",
    "batched_temporal_enabled",
    "drift_gate_enabled",
    "env_jobs",
    "faults_seed",
    "faults_spec",
    "fused_fleet_enabled",
    "metrics_enabled",
    "route_queues",
    "scenario_name",
    "settings",
    "signature_cache_enabled",
    "sla_ack_windows",
    "sla_resolve_windows",
    "store_dir",
    "stream_agg_enabled",
    "vector_spatial_enabled",
    "warm_refit_enabled",
]

JOBS_ENV_VAR = "REPRO_JOBS"
VECTOR_ENV_VAR = "REPRO_VECTOR_SPATIAL"
BATCHED_ENV_VAR = "REPRO_BATCHED_TEMPORAL"
SIGNATURE_CACHE_ENV_VAR = "REPRO_SIGNATURE_CACHE"
METRICS_ENV_VAR = "REPRO_METRICS"
FAULTS_ENV_VAR = "REPRO_FAULTS"
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"
STORE_ENV_VAR = "REPRO_STORE"
STREAM_AGG_ENV_VAR = "REPRO_STREAM_AGG"
WARM_REFIT_ENV_VAR = "REPRO_WARM_REFIT"
DRIFT_GATE_ENV_VAR = "REPRO_DRIFT_GATE"
FUSED_FLEET_ENV_VAR = "REPRO_FUSED_FLEET"
ROUTE_QUEUES_ENV_VAR = "REPRO_ROUTE_QUEUES"
SCENARIO_ENV_VAR = "REPRO_SCENARIO"
SLA_ACK_ENV_VAR = "REPRO_SLA_ACK_WINDOWS"
SLA_RESOLVE_ENV_VAR = "REPRO_SLA_RESOLVE_WINDOWS"

#: The one spelling of "disabled" every boolean gate accepts.
_FALSY = frozenset({"0", "false", "off", "no"})


def _flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in _FALSY


def _int_or_error(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def env_jobs() -> Optional[int]:
    """``REPRO_JOBS`` as an int, ``None`` when unset; invalid values raise."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return None
    return _int_or_error(JOBS_ENV_VAR, raw)


def vector_spatial_enabled() -> bool:
    """Whether the vectorized spatial engine is active (default on)."""
    return _flag(VECTOR_ENV_VAR)


def batched_temporal_enabled() -> bool:
    """Whether batched multi-series temporal training is active (default on)."""
    return _flag(BATCHED_ENV_VAR)


def signature_cache_enabled() -> bool:
    """Whether the signature search's memory tier is active (default on)."""
    return _flag(SIGNATURE_CACHE_ENV_VAR)


def metrics_enabled() -> bool:
    """Whether :mod:`repro.obs` recording is active (default on)."""
    return _flag(METRICS_ENV_VAR)


def faults_spec() -> str:
    """The raw ``REPRO_FAULTS`` spec string ("" when unset)."""
    return os.environ.get(FAULTS_ENV_VAR, "").strip()


def faults_seed() -> int:
    """``REPRO_FAULTS_SEED`` as an int (default 0); invalid values raise."""
    raw = os.environ.get(FAULTS_SEED_ENV_VAR, "0").strip() or "0"
    return _int_or_error(FAULTS_SEED_ENV_VAR, raw)


def store_dir() -> Optional[str]:
    """Directory of the artifact store's disk tier; ``None`` when unset."""
    raw = os.environ.get(STORE_ENV_VAR, "").strip()
    return raw or None


def stream_agg_enabled() -> bool:
    """Whether streaming fleet aggregation is active (default on)."""
    return _flag(STREAM_AGG_ENV_VAR)


def warm_refit_enabled() -> bool:
    """Whether online temporal refits warm-start from stored parameters
    (default on)."""
    return _flag(WARM_REFIT_ENV_VAR)


def drift_gate_enabled() -> bool:
    """Whether the online signature re-search is drift-gated (default on)."""
    return _flag(DRIFT_GATE_ENV_VAR)


def fused_fleet_enabled() -> bool:
    """Whether fleet-level fused temporal training is active (default on)."""
    return _flag(FUSED_FLEET_ENV_VAR)


def _int_env(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name, "").strip()
    value = _int_or_error(name, raw) if raw else default
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def scenario_name() -> Optional[str]:
    """Default trace scenario (``REPRO_SCENARIO``); ``None`` when unset.

    Resolution to a :class:`repro.trace.ScenarioSpec` happens in
    :func:`repro.trace.resolve_scenario`; this accessor only owns the
    environment read so the variable appears in :func:`settings`.
    """
    raw = os.environ.get(SCENARIO_ENV_VAR, "").strip()
    return raw or None


def route_queues() -> int:
    """Default responder-queue count of the ops loop (``REPRO_ROUTE_QUEUES``)."""
    return _int_env(ROUTE_QUEUES_ENV_VAR, default=2, minimum=1)


def sla_ack_windows() -> int:
    """Default ack deadline in ticketing windows (``REPRO_SLA_ACK_WINDOWS``)."""
    return _int_env(SLA_ACK_ENV_VAR, default=1, minimum=0)


def sla_resolve_windows() -> int:
    """Default resolve deadline in windows (``REPRO_SLA_RESOLVE_WINDOWS``)."""
    return _int_env(SLA_RESOLVE_ENV_VAR, default=4, minimum=0)


@dataclass(frozen=True)
class RuntimeSettings:
    """One validated snapshot of every runtime gate."""

    jobs: Optional[int]
    vector_spatial: bool
    batched_temporal: bool
    signature_cache: bool
    metrics: bool
    faults_spec: str
    faults_seed: int
    store_dir: Optional[str]
    stream_agg: bool
    warm_refit: bool
    drift_gate: bool
    fused_fleet: bool
    route_queues: int
    sla_ack_windows: int
    sla_resolve_windows: int
    scenario: Optional[str]


def settings() -> RuntimeSettings:
    """Parse and validate the full environment in one pass.

    Raises the first parse error it meets (invalid ``REPRO_JOBS`` /
    ``REPRO_FAULTS_SEED``); the per-gate accessors stay independent, so a
    bad jobs value cannot break an unrelated subsystem's gate.
    """
    return RuntimeSettings(
        jobs=env_jobs(),
        vector_spatial=vector_spatial_enabled(),
        batched_temporal=batched_temporal_enabled(),
        signature_cache=signature_cache_enabled(),
        metrics=metrics_enabled(),
        faults_spec=faults_spec(),
        faults_seed=faults_seed(),
        store_dir=store_dir(),
        stream_agg=stream_agg_enabled(),
        warm_refit=warm_refit_enabled(),
        drift_gate=drift_gate_enabled(),
        fused_fleet=fused_fleet_enabled(),
        route_queues=route_queues(),
        sla_ack_windows=sla_ack_windows(),
        sla_resolve_windows=sla_resolve_windows(),
        scenario=scenario_name(),
    )
