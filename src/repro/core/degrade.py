"""Structured degradation reporting for the fleet pipeline.

The graceful-degradation ladder (neural temporal → seasonal-mean fallback
→ hold current allocation) never silently swallows a failure: every rung
transition is recorded as a :class:`DegradationEvent` and surfaced through
the entry point's :class:`ErrorReport`, so a partially degraded fleet run
is distinguishable from a clean one at a glance — and debuggable from the
stored reasons.

Rung names, in ladder order:

* ``"primary"`` — the configured model ran (no event recorded);
* ``"seasonal_mean"`` — the primary fit/predict failed, the per-series
  seasonal-mean fallback served the step;
* ``"hold"`` — the fallback failed too; the current allocation was held
  (no resize, no prediction score);
* ``"failed"`` — the per-box unit of work itself died outside the ladder;
  the box is excluded from the partial results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = [
    "RUNG_FAILED",
    "RUNG_HOLD",
    "RUNG_PRIMARY",
    "RUNG_SEASONAL",
    "DegradationEvent",
    "ErrorReport",
    "sanitize_demands",
]

RUNG_PRIMARY = "primary"
RUNG_SEASONAL = "seasonal_mean"
RUNG_HOLD = "hold"
RUNG_FAILED = "failed"


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded rung transition (or whole-box failure)."""

    box_id: str
    stage: str              # "fit", "predict", or "run"
    rung: str               # the rung reached: seasonal_mean / hold / failed
    reason: str             # repr() of the triggering exception
    step: Optional[int] = None  # online controller step; None for one-shot runs

    def to_dict(self) -> dict:
        return {
            "box_id": self.box_id,
            "stage": self.stage,
            "rung": self.rung,
            "reason": self.reason,
            "step": self.step,
        }


@dataclass
class ErrorReport:
    """Aggregated degradation events of one fleet-scale run."""

    events: List[DegradationEvent] = field(default_factory=list)

    def add(self, event: DegradationEvent) -> None:
        self.events.append(event)

    def extend(self, events: List[DegradationEvent]) -> None:
        self.events.extend(events)

    @property
    def ok(self) -> bool:
        """True when nothing degraded."""
        return not self.events

    @property
    def degraded_boxes(self) -> List[str]:
        """Unique box ids that hit any rung below primary, in event order."""
        seen: List[str] = []
        for event in self.events:
            if event.box_id not in seen:
                seen.append(event.box_id)
        return seen

    @property
    def failed_boxes(self) -> List[str]:
        """Boxes excluded from results entirely (rung ``"failed"``)."""
        seen: List[str] = []
        for event in self.events:
            if event.rung == RUNG_FAILED and event.box_id not in seen:
                seen.append(event.box_id)
        return seen

    def events_for(self, box_id: str) -> List[DegradationEvent]:
        return [e for e in self.events if e.box_id == box_id]

    def to_dict(self) -> dict:
        return {
            "degraded_boxes": self.degraded_boxes,
            "failed_boxes": self.failed_boxes,
            "events": [e.to_dict() for e in self.events],
        }


def sanitize_demands(matrix: np.ndarray) -> np.ndarray:
    """Replace non-finite training samples with the row's finite mean.

    The fallback rung must survive NaN-poisoned training slices that the
    primary fit correctly rejects; substituting each series' finite mean
    (0 when a series has none) keeps the slice's scale while discarding
    the corruption.  Always returns a copy; finite input comes back equal.
    """
    arr = np.array(matrix, dtype=float)
    finite = np.isfinite(arr)
    if finite.all():
        return arr
    counts = finite.sum(axis=1)
    sums = np.where(finite, arr, 0.0).sum(axis=1)
    means = np.divide(sums, counts, out=np.zeros_like(sums), where=counts > 0)
    rows, cols = np.nonzero(~finite)
    arr[rows, cols] = means[rows]
    return arr
