"""Result containers for ATM runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.timeseries.ecdf import Ecdf
from repro.timeseries.metrics import (
    finite_mean,
    finite_values,
    mean_absolute_percentage_error,
    peak_absolute_percentage_error,
)

__all__ = ["PredictionAccuracy", "accuracy_for_box"]


@dataclass(frozen=True)
class PredictionAccuracy:
    """Per-box prediction accuracy, the Fig. 9 unit of analysis.

    ``ape`` is the mean absolute percentage error across all series and
    windows of the box; ``peak_ape`` restricts to windows whose *actual*
    usage exceeded the ticket threshold (the paper's "Peak" CDFs).  Either
    may be ``nan`` for degenerate boxes (e.g. no peaks).
    """

    box_id: str
    ape: float
    peak_ape: float
    signature_ratio: float


def accuracy_for_box(
    box_id: str,
    actual: np.ndarray,
    predicted: np.ndarray,
    peak_thresholds: np.ndarray,
    signature_ratio: float,
) -> PredictionAccuracy:
    """Compute per-box accuracy from actual/predicted demand matrices.

    Parameters
    ----------
    actual, predicted:
        ``(n_series, horizon)`` matrices in demand units.
    peak_thresholds:
        Per-series demand levels marking "peak" windows (``alpha`` times the
        series' current allocated capacity — i.e. usage above the ticket
        threshold).
    """
    if actual.shape != predicted.shape:
        raise ValueError(
            f"actual and predicted shapes differ: {actual.shape} vs {predicted.shape}"
        )
    if peak_thresholds.shape != (actual.shape[0],):
        raise ValueError("need one peak threshold per series")
    apes: List[float] = []
    peak_apes: List[float] = []
    for row in range(actual.shape[0]):
        apes.append(mean_absolute_percentage_error(actual[row], predicted[row]))
        peak_apes.append(
            peak_absolute_percentage_error(
                actual[row], predicted[row], peak_threshold=float(peak_thresholds[row])
            )
        )
    return PredictionAccuracy(
        box_id=box_id,
        ape=finite_mean(apes),
        peak_ape=finite_mean(peak_apes),
        signature_ratio=signature_ratio,
    )


def ape_cdf(accuracies: List[PredictionAccuracy], peak: bool = False) -> Optional[Ecdf]:
    """Build the Fig. 9 CDF across boxes; ``None`` if no finite samples."""
    values = [a.peak_ape if peak else a.ape for a in accuracies]
    finite = finite_values(values)
    if not finite.size:
        return None
    return Ecdf.from_samples(finite)
