"""Online dynamic workload management — the paper's stated future work.

The conclusion of the paper: "In our future work we intend to use ATM's
prediction abilities to drive online dynamic workload management."  This
module implements that extension: a rolling controller that, day after day,

1. re-fits the spatial-temporal predictor on a sliding training window,
2. predicts the next resizing window,
3. actuates new capacity limits (with the ε safety margin and slack
   redistribution), and
4. observes the day's *actual* demands, scoring both prediction accuracy
   and realized tickets against the static status quo.

Because allocations change daily while demands do not depend on them (the
post-hoc trace assumption the paper itself makes), the rolling run yields a
day-by-day account of how ATM would have managed the box across the whole
trace — including its behavior under workload drift.

A production controller must keep running when a model does not: every
step climbs a graceful-degradation ladder — the configured (neural)
spatial-temporal predictor first, a per-series seasonal-mean fallback when
that fit or forecast fails, and finally *hold the current allocation* when
even the fallback dies.  Each rung transition is recorded as a
:class:`~repro.core.degrade.DegradationEvent` on the step and the run, so
a degraded fleet is reported, never silently wrong.  The
:mod:`repro.core.faults` harness injects fit errors, NaN-poisoned training
slices and slow boxes to keep the ladder honest in CI.

Warm starts come for free from the artifact store: the controller's
step-0 training slice is exactly the offline pipeline's training matrix,
and the signature search consults :mod:`repro.store` by content address —
so with ``REPRO_STORE`` pointing at a store populated by an offline run
(or a previous online run), the expensive spatial search of the first
step is served from disk instead of recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.degrade import (
    RUNG_FAILED,
    RUNG_HOLD,
    RUNG_PRIMARY,
    RUNG_SEASONAL,
    DegradationEvent,
    ErrorReport,
    sanitize_demands,
)
from repro.prediction.combined import SpatialTemporalPredictor
from repro.prediction.temporal.seasonal import phase_aligned_slot_means_batch
from repro.resizing.evaluate import ResizingAlgorithm, resize_allocation
from repro.resizing.problem import ResizingProblem, tickets_for_allocation
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.trace.model import BoxTrace, FleetTrace, Resource

__all__ = [
    "OnlineStep",
    "OnlineRunResult",
    "OnlineFleetResult",
    "OnlineAtmController",
    "run_online_fleet",
]


@dataclass(frozen=True)
class OnlineStep:
    """One resizing window of the rolling controller, per resource."""

    day_index: int
    resource: Resource
    ape: float
    tickets_static: int
    tickets_atm: int
    allocation: np.ndarray
    #: Mean predicted demand of the step (NaN on the hold rung) — lets a
    #: reader verify that non-refit steps track the advancing window.
    predicted_mean: float = float("nan")
    #: Degradation rung that served the step (see repro.core.degrade).
    rung: str = RUNG_PRIMARY
    #: repr() of the failure that forced a lower rung, if any.
    reason: Optional[str] = None

    def __post_init__(self) -> None:
        # Defensive copy: the caller's allocation array stays mutable in
        # its hands; a frozen step must not change after the fact.
        object.__setattr__(
            self, "allocation", np.array(self.allocation, dtype=float)
        )

    @property
    def tickets_avoided(self) -> int:
        return self.tickets_static - self.tickets_atm


@dataclass
class OnlineRunResult:
    """Rolling-run outcome for one box."""

    box_id: str
    steps: List[OnlineStep] = field(default_factory=list)
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any step was served below the primary rung."""
        return bool(self.degradations)

    def total_tickets(self, static: bool = False) -> int:
        return sum(s.tickets_static if static else s.tickets_atm for s in self.steps)

    def reduction_percent(self) -> float:
        before = self.total_tickets(static=True)
        if before == 0:
            return float("nan")
        return 100.0 * (before - self.total_tickets()) / before

    def mean_ape(self) -> float:
        values = [s.ape for s in self.steps if np.isfinite(s.ape)]
        return float(np.mean(values)) if values else float("nan")

    def steps_for(self, resource: Resource) -> List[OnlineStep]:
        return [s for s in self.steps if s.resource is resource]


class OnlineAtmController:
    """Day-by-day rolling ATM for one box.

    Parameters
    ----------
    box:
        The full box trace (training prefix + the days to manage).
    config:
        ATM configuration; ``training_windows`` is the sliding-window
        length and ``horizon_windows`` the per-step resizing window.
    refit_every_steps:
        Re-run the (expensive) signature search only every k steps;
        intermediate steps keep the fitted spatial model but re-anchor the
        temporal models on the advanced training window — the practical
        deployment compromise.
    """

    def __init__(
        self,
        box: BoxTrace,
        config: Optional[AtmConfig] = None,
        refit_every_steps: int = 1,
    ) -> None:
        if refit_every_steps < 1:
            raise ValueError("refit_every_steps must be >= 1")
        self.box = box
        self.config = config or AtmConfig()
        self.refit_every_steps = refit_every_steps
        self._predictor: Optional[SpatialTemporalPredictor] = None
        self._fitted_at_step = -10**9
        self._anchored_at_step = -10**9
        self._degradations: List[DegradationEvent] = []

    @property
    def n_steps(self) -> int:
        """How many full resizing windows the trace supports."""
        cfg = self.config
        spare = self.box.n_windows - cfg.training_windows
        return max(0, spare // cfg.horizon_windows)

    def _window_bounds(self, step: int) -> "tuple[int, int]":
        cfg = self.config
        start = cfg.training_windows + step * cfg.horizon_windows
        return start, start + cfg.horizon_windows

    def _training_slice(self, step: int) -> np.ndarray:
        start, _ = self._window_bounds(step)
        train = self.box.demand_matrix()[:, start - self.config.training_windows : start]
        # Fault hooks: a poisoned slice / slow box, keyed by box id so
        # healthy boxes are bit-identical to a no-faults run.
        train = faults.poison_training(self.box.box_id, train)
        faults.inject_slow(self.box.box_id)
        return train

    # ------------------------------------------------------- ladder rung 1
    def _primary_prediction(self, step: int) -> np.ndarray:
        """Fit/advance the configured predictor and forecast the step."""
        cfg = self.config
        train = self._training_slice(step)
        faults.inject_fault("fit_error", self.box.box_id)
        if (
            self._predictor is None
            or step - self._fitted_at_step >= self.refit_every_steps
        ):
            with obs.span("online.fit"):
                predictor = SpatialTemporalPredictor(cfg.prediction).fit(train)
            self._predictor = predictor
            self._fitted_at_step = step
            self._anchored_at_step = step
            obs.inc("online.refit")
        elif step != self._anchored_at_step:
            # Non-refit step: the signature search is reused, but the
            # temporal models are re-anchored on the advanced window —
            # otherwise every intermediate step would replay the
            # prediction of the last refit verbatim.
            with obs.span("online.refit_temporal"):
                self._predictor.refit_temporal(train)
            self._anchored_at_step = step
            obs.inc("online.refit_temporal")
        with obs.span("online.predict"):
            prediction = self._predictor.predict(cfg.horizon_windows)
        return prediction.predictions

    # ------------------------------------------------------- ladder rung 2
    def _fallback_prediction(self, step: int) -> np.ndarray:
        """Per-series seasonal-mean forecast; robust to poisoned slices.

        Deliberately avoids the signature search (it may be the failing
        component) and sanitizes non-finite training samples.
        """
        faults.inject_fault("fallback_error", self.box.box_id)
        cfg = self.config
        period = cfg.prediction.period
        train = sanitize_demands(self._training_slice(step))
        with obs.span("online.fallback_fit"):
            slot_means = phase_aligned_slot_means_batch(train, period)
            slots = np.arange(cfg.horizon_windows) % period
            return np.maximum(slot_means[:, slots], 0.0)

    def _predict_step(self, step: int) -> "tuple[Optional[np.ndarray], str, Optional[str]]":
        """Climb the degradation ladder for one step.

        Returns ``(prediction matrix | None, rung, reason)``; a ``None``
        matrix means the hold rung — keep the current allocation.
        """
        try:
            return self._primary_prediction(step), RUNG_PRIMARY, None
        except Exception as exc:
            # A half-fitted predictor must not serve later steps.
            self._predictor = None
            reason = repr(exc)
            obs.inc("online.fallback.seasonal")
            self._degradations.append(
                DegradationEvent(
                    box_id=self.box.box_id,
                    stage="fit",
                    rung=RUNG_SEASONAL,
                    reason=reason,
                    step=step,
                )
            )
        try:
            return self._fallback_prediction(step), RUNG_SEASONAL, reason
        except Exception as exc:
            reason = repr(exc)
            obs.inc("online.fallback.hold")
            self._degradations.append(
                DegradationEvent(
                    box_id=self.box.box_id,
                    stage="fit",
                    rung=RUNG_HOLD,
                    reason=reason,
                    step=step,
                )
            )
            return None, RUNG_HOLD, reason

    def run(self) -> OnlineRunResult:
        """Roll over every available resizing window."""
        if self.n_steps == 0:
            raise ValueError(
                f"box {self.box.box_id} too short for one online step "
                f"({self.box.n_windows} windows, need "
                f"{self.config.training_windows + self.config.horizon_windows})"
            )
        cfg = self.config
        result = OnlineRunResult(box_id=self.box.box_id)
        self._degradations = result.degradations
        m = self.box.n_vms
        demands_all = self.box.demand_matrix()

        for step in range(self.n_steps):
            obs.inc("online.steps")
            predicted_full, rung, reason = self._predict_step(step)
            start, stop = self._window_bounds(step)
            actual = demands_all[:, start:stop]

            for resource in (Resource.CPU, Resource.RAM):
                rows = slice(0, m) if resource is Resource.CPU else slice(m, 2 * m)
                current = self.box.allocations(resource)
                capacity = self.box.capacity(resource)
                truth = ResizingProblem(
                    demands=actual[rows],
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    upper_bounds=np.full(m, capacity),
                )
                tickets_static = tickets_for_allocation(truth, current)

                if predicted_full is None:
                    # Hold rung: no usable prediction — keep the current
                    # allocation, score no APE, and report the reason.
                    result.steps.append(
                        OnlineStep(
                            day_index=step,
                            resource=resource,
                            ape=float("nan"),
                            tickets_static=tickets_static,
                            tickets_atm=tickets_static,
                            allocation=current,
                            rung=rung,
                            reason=reason,
                        )
                    )
                    continue

                predicted = np.maximum(predicted_full[rows], 0.0)
                # Lower bound: yesterday's observed peak.  Clamp the
                # lookback at the start of the trace — with a training
                # window shorter than a day a negative start would wrap
                # to the tail of the array and fabricate lower bounds
                # from future demands.
                lookback_lo = max(0, start - self.box.windows_per_day)
                lookback = demands_all[rows, lookback_lo:start]
                lower = np.minimum(lookback.max(axis=1), capacity)
                problem = ResizingProblem(
                    demands=predicted,
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    lower_bounds=lower,
                    upper_bounds=np.full(m, capacity),
                )
                with obs.span("online.resize"):
                    allocation, feasible = resize_allocation(
                        problem,
                        ResizingAlgorithm.ATM,
                        epsilon=cfg.epsilon_pct / 100.0 * current,
                        current=current,
                    )
                if not feasible:
                    obs.inc("online.infeasible")
                    allocation = current
                apes = [
                    mean_absolute_percentage_error(actual[rows][i], predicted[i])
                    for i in range(m)
                ]
                apes = [a for a in apes if np.isfinite(a)]
                step_record = OnlineStep(
                    day_index=step,
                    resource=resource,
                    ape=float(np.mean(apes)) if apes else float("nan"),
                    tickets_static=tickets_static,
                    tickets_atm=tickets_for_allocation(truth, allocation),
                    allocation=allocation,
                    predicted_mean=float(predicted.mean()),
                    rung=rung,
                    reason=reason,
                )
                obs.inc("online.tickets_avoided", step_record.tickets_avoided)
                result.steps.append(step_record)
        return result


class OnlineFleetResult(Mapping[str, OnlineRunResult]):
    """Partial fleet results plus the structured degradation report.

    Behaves as a read-only mapping ``box_id -> OnlineRunResult`` (so
    pre-ladder callers keep working) while exposing :attr:`report` with
    every degradation event and whole-box failure of the run.
    """

    def __init__(
        self,
        results: Optional[Dict[str, OnlineRunResult]] = None,
        report: Optional[ErrorReport] = None,
    ) -> None:
        self.results: Dict[str, OnlineRunResult] = dict(results or {})
        self.report = report or ErrorReport()

    def __getitem__(self, box_id: str) -> OnlineRunResult:
        return self.results[box_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineFleetResult({len(self.results)} boxes, "
            f"{len(self.report.events)} degradation events)"
        )


def run_online_fleet(
    fleet: FleetTrace,
    config: Optional[AtmConfig] = None,
    refit_every_steps: int = 1,
    degrade: bool = True,
) -> OnlineFleetResult:
    """Run the rolling controller on every box long enough to support it.

    Per-box failures outside the fit/predict ladder do not abort the
    fleet: the box is recorded in ``result.report`` (rung ``"failed"``)
    and the remaining boxes run to completion.  Pass ``degrade=False`` to
    restore fail-fast propagation of the first per-box exception.
    """
    cfg = config or AtmConfig()
    needed = cfg.training_windows + cfg.horizon_windows
    eligible = [box for box in fleet if box.n_windows >= needed]
    if not eligible:
        raise ValueError(f"no box in fleet {fleet.name!r} supports an online run")

    results: Dict[str, OnlineRunResult] = {}
    report = ErrorReport()
    with obs.span("online.fleet"):
        for box in eligible:
            obs.inc("online.boxes")
            try:
                faults.inject_fault("box_error", box.box_id)
                controller = OnlineAtmController(
                    box, cfg, refit_every_steps=refit_every_steps
                )
                result = controller.run()
            except Exception as exc:
                if not degrade:
                    raise
                obs.inc("online.boxes_failed")
                report.add(
                    DegradationEvent(
                        box_id=box.box_id,
                        stage="run",
                        rung=RUNG_FAILED,
                        reason=repr(exc),
                    )
                )
                continue
            results[box.box_id] = result
            report.extend(result.degradations)
    return OnlineFleetResult(results=results, report=report)
