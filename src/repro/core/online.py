"""Online dynamic workload management — the paper's stated future work.

The conclusion of the paper: "In our future work we intend to use ATM's
prediction abilities to drive online dynamic workload management."  This
module implements that extension: a rolling controller that, day after day,

1. re-fits the spatial-temporal predictor on a sliding training window,
2. predicts the next resizing window,
3. actuates new capacity limits (with the ε safety margin and slack
   redistribution), and
4. observes the day's *actual* demands, scoring both prediction accuracy
   and realized tickets against the static status quo.

Because allocations change daily while demands do not depend on them (the
post-hoc trace assumption the paper itself makes), the rolling run yields a
day-by-day account of how ATM would have managed the box across the whole
trace — including its behavior under workload drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import AtmConfig
from repro.prediction.combined import SpatialTemporalPredictor
from repro.resizing.evaluate import ResizingAlgorithm, resize_allocation
from repro.resizing.problem import ResizingProblem, tickets_for_allocation
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.trace.model import BoxTrace, FleetTrace, Resource

__all__ = ["OnlineStep", "OnlineRunResult", "OnlineAtmController", "run_online_fleet"]


@dataclass(frozen=True)
class OnlineStep:
    """One resizing window of the rolling controller, per resource."""

    day_index: int
    resource: Resource
    ape: float
    tickets_static: int
    tickets_atm: int
    allocation: np.ndarray

    @property
    def tickets_avoided(self) -> int:
        return self.tickets_static - self.tickets_atm


@dataclass
class OnlineRunResult:
    """Rolling-run outcome for one box."""

    box_id: str
    steps: List[OnlineStep] = field(default_factory=list)

    def total_tickets(self, static: bool = False) -> int:
        return sum(s.tickets_static if static else s.tickets_atm for s in self.steps)

    def reduction_percent(self) -> float:
        before = self.total_tickets(static=True)
        if before == 0:
            return float("nan")
        return 100.0 * (before - self.total_tickets()) / before

    def mean_ape(self) -> float:
        values = [s.ape for s in self.steps if np.isfinite(s.ape)]
        return float(np.mean(values)) if values else float("nan")

    def steps_for(self, resource: Resource) -> List[OnlineStep]:
        return [s for s in self.steps if s.resource is resource]


class OnlineAtmController:
    """Day-by-day rolling ATM for one box.

    Parameters
    ----------
    box:
        The full box trace (training prefix + the days to manage).
    config:
        ATM configuration; ``training_windows`` is the sliding-window
        length and ``horizon_windows`` the per-step resizing window.
    refit_every_steps:
        Re-run the (expensive) signature search and temporal fits only
        every k steps; intermediate steps reuse the fitted models with the
        window advanced — the practical deployment compromise.
    """

    def __init__(
        self,
        box: BoxTrace,
        config: Optional[AtmConfig] = None,
        refit_every_steps: int = 1,
    ) -> None:
        if refit_every_steps < 1:
            raise ValueError("refit_every_steps must be >= 1")
        self.box = box
        self.config = config or AtmConfig()
        self.refit_every_steps = refit_every_steps
        self._predictor: Optional[SpatialTemporalPredictor] = None
        self._fitted_at_step = -10**9

    @property
    def n_steps(self) -> int:
        """How many full resizing windows the trace supports."""
        cfg = self.config
        spare = self.box.n_windows - cfg.training_windows
        return max(0, spare // cfg.horizon_windows)

    def _window_bounds(self, step: int) -> "tuple[int, int]":
        cfg = self.config
        start = cfg.training_windows + step * cfg.horizon_windows
        return start, start + cfg.horizon_windows

    def _fit(self, step: int) -> SpatialTemporalPredictor:
        cfg = self.config
        start, _ = self._window_bounds(step)
        train = self.box.demand_matrix()[:, start - cfg.training_windows : start]
        predictor = SpatialTemporalPredictor(cfg.prediction).fit(train)
        self._predictor = predictor
        self._fitted_at_step = step
        return predictor

    def run(self) -> OnlineRunResult:
        """Roll over every available resizing window."""
        if self.n_steps == 0:
            raise ValueError(
                f"box {self.box.box_id} too short for one online step "
                f"({self.box.n_windows} windows, need "
                f"{self.config.training_windows + self.config.horizon_windows})"
            )
        cfg = self.config
        result = OnlineRunResult(box_id=self.box.box_id)
        m = self.box.n_vms
        demands_all = self.box.demand_matrix()

        for step in range(self.n_steps):
            if (
                self._predictor is None
                or step - self._fitted_at_step >= self.refit_every_steps
            ):
                predictor = self._fit(step)
            else:
                predictor = self._predictor
            prediction = predictor.predict(cfg.horizon_windows)
            start, stop = self._window_bounds(step)
            actual = demands_all[:, start:stop]

            for resource in (Resource.CPU, Resource.RAM):
                rows = slice(0, m) if resource is Resource.CPU else slice(m, 2 * m)
                predicted = np.maximum(prediction.predictions[rows], 0.0)
                current = self.box.allocations(resource)
                capacity = self.box.capacity(resource)
                # Lower bound: yesterday's observed peak.
                lookback = demands_all[rows, start - self.box.windows_per_day : start]
                lower = np.minimum(lookback.max(axis=1), capacity)
                problem = ResizingProblem(
                    demands=predicted,
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    lower_bounds=lower,
                    upper_bounds=np.full(m, capacity),
                )
                allocation, feasible = resize_allocation(
                    problem,
                    ResizingAlgorithm.ATM,
                    epsilon=cfg.epsilon_pct / 100.0 * current,
                    current=current,
                )
                if not feasible:
                    allocation = current
                truth = ResizingProblem(
                    demands=actual[rows],
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    upper_bounds=np.full(m, capacity),
                )
                apes = [
                    mean_absolute_percentage_error(actual[rows][i], predicted[i])
                    for i in range(m)
                ]
                apes = [a for a in apes if np.isfinite(a)]
                result.steps.append(
                    OnlineStep(
                        day_index=step,
                        resource=resource,
                        ape=float(np.mean(apes)) if apes else float("nan"),
                        tickets_static=tickets_for_allocation(truth, current),
                        tickets_atm=tickets_for_allocation(truth, allocation),
                        allocation=allocation,
                    )
                )
        return result


def run_online_fleet(
    fleet: FleetTrace,
    config: Optional[AtmConfig] = None,
    refit_every_steps: int = 1,
) -> Dict[str, OnlineRunResult]:
    """Run the rolling controller on every box long enough to support it."""
    cfg = config or AtmConfig()
    out: Dict[str, OnlineRunResult] = {}
    needed = cfg.training_windows + cfg.horizon_windows
    for box in fleet:
        if box.n_windows < needed:
            continue
        controller = OnlineAtmController(box, cfg, refit_every_steps=refit_every_steps)
        out[box.box_id] = controller.run()
    if not out:
        raise ValueError(f"no box in fleet {fleet.name!r} supports an online run")
    return out
