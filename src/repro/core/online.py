"""Online dynamic workload management — the paper's stated future work.

The conclusion of the paper: "In our future work we intend to use ATM's
prediction abilities to drive online dynamic workload management."  This
module implements that extension: a rolling controller that, day after day,

1. re-fits the spatial-temporal predictor on a sliding training window,
2. predicts the next resizing window,
3. actuates new capacity limits (with the ε safety margin and slack
   redistribution), and
4. observes the day's *actual* demands, scoring both prediction accuracy
   and realized tickets against the static status quo.

Because allocations change daily while demands do not depend on them (the
post-hoc trace assumption the paper itself makes), the rolling run yields a
day-by-day account of how ATM would have managed the box across the whole
trace — including its behavior under workload drift.

A production controller must keep running when a model does not: every
step climbs a graceful-degradation ladder — the configured (neural)
spatial-temporal predictor first, a per-series seasonal-mean fallback when
that fit or forecast fails, and finally *hold the current allocation* when
even the fallback dies.  Each rung transition is recorded as a
:class:`~repro.core.degrade.DegradationEvent` on the step and the run, so
a degraded fleet is reported, never silently wrong.  The
:mod:`repro.core.faults` harness injects fit errors, NaN-poisoned training
slices and slow boxes to keep the ladder honest in CI.

Warm starts come for free from the artifact store: the controller's
step-0 training slice is exactly the offline pipeline's training matrix,
and the signature search consults :mod:`repro.store` by content address —
so with ``REPRO_STORE`` pointing at a store populated by an offline run
(or a previous online run), the expensive spatial search of the first
step is served from disk instead of recomputed.

Steps are *incremental* by default, restarting nothing they can reuse:

* **Warm-started refits** — the controller's predictor opts into the
  warm-refit chain (:mod:`repro.prediction.temporal.warm`): each
  temporal refit resumes from the previous step's ``(K, P)`` parameter
  state instead of re-training from scratch, with a validation-loss
  guard and per-step persistence for interrupted-run resume.
  ``REPRO_WARM_REFIT=0`` restores cold per-step fits.
* **Drift-gated re-search** — between cadence refits the controller
  scores workload drift as the rise of the spatial model's relative
  reconstruction error on the advanced window over its fit-time
  baseline; the expensive signature search re-runs early only when the
  score exceeds ``drift_threshold``.  ``refit_every_steps`` is thereby
  demoted to a fallback cap: set it large and let drift decide.
  ``REPRO_DRIFT_GATE=0`` restores the pure cadence.  With the default
  ``refit_every_steps=1`` the cap is always due, so both gates leave the
  legacy path bit-identical.

:func:`run_online_fleet` fans boxes out across worker processes exactly
like the offline pipeline: :class:`~repro.core.executor.FleetExecutor`
windowed streaming dispatch, :class:`~repro.store.shards.ShardedFleet`
accepted with manifest-only eligibility and zero-pickle
:class:`~repro.store.shards.BoxShardRef` dispatch, and one streaming
aggregation fold shared with the serial path (bit-identical for any
worker count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.degrade import (
    RUNG_FAILED,
    RUNG_HOLD,
    RUNG_PRIMARY,
    RUNG_SEASONAL,
    DegradationEvent,
    ErrorReport,
    sanitize_demands,
)
from repro.core.executor import FleetExecutor
from repro.core.runtime import drift_gate_enabled
from repro.core.streaming import fleet_results
from repro.prediction.combined import SpatialTemporalPredictor
from repro.prediction.temporal.seasonal import phase_aligned_slot_means_batch
from repro.resizing.evaluate import ResizingAlgorithm, resize_allocation
from repro.resizing.problem import ResizingProblem, tickets_for_allocation
from repro.timeseries.metrics import mean_absolute_percentage_error
from repro.trace.model import BoxTrace, FleetTrace, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.shards import ShardedFleet

__all__ = [
    "DRIFT_THRESHOLD_DEFAULT",
    "OnlineStep",
    "OnlineRunResult",
    "OnlineFleetResult",
    "OnlineAtmController",
    "run_online_fleet",
]

#: Default drift-score threshold above which the signature search re-runs
#: before its cadence cap.  The score is a *rise* in relative Frobenius
#: reconstruction error over the fit-time baseline, so 0.15 means "the
#: signature set explains 15 points less of the window's energy than it
#: did when chosen" — far outside the step-to-step jitter of a stable
#: workload (see ``tests/core/test_online_incremental.py``).
DRIFT_THRESHOLD_DEFAULT = 0.15


@dataclass(frozen=True)
class OnlineStep:
    """One resizing window of the rolling controller, per resource."""

    day_index: int
    resource: Resource
    ape: float
    tickets_static: int
    tickets_atm: int
    allocation: np.ndarray
    #: Mean predicted demand of the step (NaN on the hold rung) — lets a
    #: reader verify that non-refit steps track the advancing window.
    predicted_mean: float = float("nan")
    #: Degradation rung that served the step (see repro.core.degrade).
    rung: str = RUNG_PRIMARY
    #: repr() of the failure that forced a lower rung, if any.
    reason: Optional[str] = None

    def __post_init__(self) -> None:
        # Defensive copy: the caller's allocation array stays mutable in
        # its hands; a frozen step must not change after the fact.
        object.__setattr__(
            self, "allocation", np.array(self.allocation, dtype=float)
        )

    @property
    def tickets_avoided(self) -> int:
        return self.tickets_static - self.tickets_atm


@dataclass
class OnlineRunResult:
    """Rolling-run outcome for one box."""

    box_id: str
    steps: List[OnlineStep] = field(default_factory=list)
    degradations: List[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any step was served below the primary rung."""
        return bool(self.degradations)

    def total_tickets(self, static: bool = False) -> int:
        return sum(s.tickets_static if static else s.tickets_atm for s in self.steps)

    def reduction_percent(self) -> float:
        before = self.total_tickets(static=True)
        if before == 0:
            return float("nan")
        return 100.0 * (before - self.total_tickets()) / before

    def mean_ape(self) -> float:
        values = [s.ape for s in self.steps if np.isfinite(s.ape)]
        return float(np.mean(values)) if values else float("nan")

    def steps_for(self, resource: Resource) -> List[OnlineStep]:
        return [s for s in self.steps if s.resource is resource]


class OnlineAtmController:
    """Day-by-day rolling ATM for one box.

    Parameters
    ----------
    box:
        The full box trace (training prefix + the days to manage).
    config:
        ATM configuration; ``training_windows`` is the sliding-window
        length and ``horizon_windows`` the per-step resizing window.
    refit_every_steps:
        Cadence cap on the (expensive) signature search: re-run it at
        least every k steps.  Intermediate steps keep the fitted spatial
        model but re-anchor the temporal models on the advanced training
        window (warm-started when ``REPRO_WARM_REFIT`` is on) — the
        practical deployment compromise.  With the drift gate enabled the
        search also re-runs *early* whenever the drift score exceeds
        ``drift_threshold``, so a large cap is safe.
    drift_threshold:
        Drift-score trigger of the early re-search (``None`` =
        :data:`DRIFT_THRESHOLD_DEFAULT`).  Only consulted between cadence
        refits and only while ``REPRO_DRIFT_GATE`` is on.
    """

    def __init__(
        self,
        box: BoxTrace,
        config: Optional[AtmConfig] = None,
        refit_every_steps: int = 1,
        drift_threshold: Optional[float] = None,
    ) -> None:
        if refit_every_steps < 1:
            raise ValueError("refit_every_steps must be >= 1")
        if drift_threshold is not None and drift_threshold < 0:
            raise ValueError("drift_threshold must be >= 0")
        self.box = box
        self.config = config or AtmConfig()
        self.refit_every_steps = refit_every_steps
        self.drift_threshold = (
            DRIFT_THRESHOLD_DEFAULT if drift_threshold is None else float(drift_threshold)
        )
        self._predictor: Optional[SpatialTemporalPredictor] = None
        self._fitted_at_step = -10**9
        self._anchored_at_step = -10**9
        self._degradations: List[DegradationEvent] = []

    @property
    def n_steps(self) -> int:
        """How many full resizing windows the trace supports."""
        cfg = self.config
        spare = self.box.n_windows - cfg.training_windows
        return max(0, spare // cfg.horizon_windows)

    def _window_bounds(self, step: int) -> "tuple[int, int]":
        cfg = self.config
        start = cfg.training_windows + step * cfg.horizon_windows
        return start, start + cfg.horizon_windows

    def _training_slice(self, step: int) -> np.ndarray:
        start, _ = self._window_bounds(step)
        train = self.box.demand_matrix()[:, start - self.config.training_windows : start]
        # Fault hooks: a poisoned slice / slow box, keyed by box id so
        # healthy boxes are bit-identical to a no-faults run.
        train = faults.poison_training(self.box.box_id, train)
        faults.inject_slow(self.box.box_id)
        return train

    def _search_due(self, step: int, train: np.ndarray) -> bool:
        """Whether this step re-runs the signature search.

        Due when no predictor exists or the cadence cap expired; between
        cap refits, the drift gate may pull the search forward: the spatial
        model's relative reconstruction error on the advanced window is
        compared against its fit-time baseline, and a rise beyond
        ``drift_threshold`` means the signature set no longer explains the
        workload — re-search now rather than ride out the cap.
        """
        if (
            self._predictor is None
            or step - self._fitted_at_step >= self.refit_every_steps
        ):
            if self._predictor is not None:
                obs.inc("online.refit.cap")
            return True
        if not drift_gate_enabled():
            return False
        with obs.span("online.drift_check"):
            drift = (
                self._predictor.reconstruction_error(train)
                - self._predictor.baseline_reconstruction_error
            )
        obs.gauge_max("online.drift_score", drift)
        if drift > self.drift_threshold:
            obs.inc("online.refit.drift")
            return True
        obs.inc("online.drift_skips")
        return False

    # ------------------------------------------------------- ladder rung 1
    def _primary_prediction(self, step: int) -> np.ndarray:
        """Fit/advance the configured predictor and forecast the step."""
        cfg = self.config
        train = self._training_slice(step)
        faults.inject_fault("fit_error", self.box.box_id)
        if self._search_due(step, train):
            with obs.span("online.fit"):
                # warm_refits: subsequent refit_temporal calls on this
                # predictor chain through the warm-started kernel (the
                # initial fit below is cold — fresh signature set).
                predictor = SpatialTemporalPredictor(
                    cfg.prediction, warm_refits=True
                ).fit(train)
            self._predictor = predictor
            self._fitted_at_step = step
            self._anchored_at_step = step
            obs.inc("online.refit")
        elif step != self._anchored_at_step:
            # Non-refit step: the signature search is reused, but the
            # temporal models are re-anchored on the advanced window —
            # otherwise every intermediate step would replay the
            # prediction of the last refit verbatim.
            with obs.span("online.refit_temporal"):
                self._predictor.refit_temporal(train)
            self._anchored_at_step = step
            obs.inc("online.refit_temporal")
        with obs.span("online.predict"):
            prediction = self._predictor.predict(cfg.horizon_windows)
        return prediction.predictions

    # ------------------------------------------------------- ladder rung 2
    def _fallback_prediction(self, step: int) -> np.ndarray:
        """Per-series seasonal-mean forecast; robust to poisoned slices.

        Deliberately avoids the signature search (it may be the failing
        component) and sanitizes non-finite training samples.
        """
        faults.inject_fault("fallback_error", self.box.box_id)
        cfg = self.config
        period = cfg.prediction.period
        train = sanitize_demands(self._training_slice(step))
        with obs.span("online.fallback_fit"):
            slot_means = phase_aligned_slot_means_batch(train, period)
            slots = np.arange(cfg.horizon_windows) % period
            return np.maximum(slot_means[:, slots], 0.0)

    def _predict_step(self, step: int) -> "tuple[Optional[np.ndarray], str, Optional[str]]":
        """Climb the degradation ladder for one step.

        Returns ``(prediction matrix | None, rung, reason)``; a ``None``
        matrix means the hold rung — keep the current allocation.
        """
        try:
            return self._primary_prediction(step), RUNG_PRIMARY, None
        except Exception as exc:
            # A half-fitted predictor must not serve later steps.
            self._predictor = None
            reason = repr(exc)
            obs.inc("online.fallback.seasonal")
            self._degradations.append(
                DegradationEvent(
                    box_id=self.box.box_id,
                    stage="fit",
                    rung=RUNG_SEASONAL,
                    reason=reason,
                    step=step,
                )
            )
        try:
            return self._fallback_prediction(step), RUNG_SEASONAL, reason
        except Exception as exc:
            reason = repr(exc)
            obs.inc("online.fallback.hold")
            self._degradations.append(
                DegradationEvent(
                    box_id=self.box.box_id,
                    stage="fit",
                    rung=RUNG_HOLD,
                    reason=reason,
                    step=step,
                )
            )
            return None, RUNG_HOLD, reason

    def run(self) -> OnlineRunResult:
        """Roll over every available resizing window."""
        if self.n_steps == 0:
            raise ValueError(
                f"box {self.box.box_id} too short for one online step "
                f"({self.box.n_windows} windows, need "
                f"{self.config.training_windows + self.config.horizon_windows})"
            )
        cfg = self.config
        result = OnlineRunResult(box_id=self.box.box_id)
        self._degradations = result.degradations
        m = self.box.n_vms
        demands_all = self.box.demand_matrix()

        for step in range(self.n_steps):
            obs.inc("online.steps")
            predicted_full, rung, reason = self._predict_step(step)
            start, stop = self._window_bounds(step)
            actual = demands_all[:, start:stop]

            for resource in (Resource.CPU, Resource.RAM):
                rows = slice(0, m) if resource is Resource.CPU else slice(m, 2 * m)
                current = self.box.allocations(resource)
                capacity = self.box.capacity(resource)
                truth = ResizingProblem(
                    demands=actual[rows],
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    upper_bounds=np.full(m, capacity),
                )
                tickets_static = tickets_for_allocation(truth, current)

                if predicted_full is None:
                    # Hold rung: no usable prediction — keep the current
                    # allocation, score no APE, and report the reason.
                    result.steps.append(
                        OnlineStep(
                            day_index=step,
                            resource=resource,
                            ape=float("nan"),
                            tickets_static=tickets_static,
                            tickets_atm=tickets_static,
                            allocation=current,
                            rung=rung,
                            reason=reason,
                        )
                    )
                    continue

                predicted = np.maximum(predicted_full[rows], 0.0)
                # Lower bound: yesterday's observed peak.  Clamp the
                # lookback at the start of the trace — with a training
                # window shorter than a day a negative start would wrap
                # to the tail of the array and fabricate lower bounds
                # from future demands.
                lookback_lo = max(0, start - self.box.windows_per_day)
                lookback = demands_all[rows, lookback_lo:start]
                lower = np.minimum(lookback.max(axis=1), capacity)
                problem = ResizingProblem(
                    demands=predicted,
                    capacity=capacity,
                    alpha=cfg.policy.alpha,
                    lower_bounds=lower,
                    upper_bounds=np.full(m, capacity),
                )
                with obs.span("online.resize"):
                    allocation, feasible = resize_allocation(
                        problem,
                        ResizingAlgorithm.ATM,
                        epsilon=cfg.epsilon_pct / 100.0 * current,
                        current=current,
                    )
                if not feasible:
                    obs.inc("online.infeasible")
                    allocation = current
                apes = [
                    mean_absolute_percentage_error(actual[rows][i], predicted[i])
                    for i in range(m)
                ]
                apes = [a for a in apes if np.isfinite(a)]
                step_record = OnlineStep(
                    day_index=step,
                    resource=resource,
                    ape=float(np.mean(apes)) if apes else float("nan"),
                    tickets_static=tickets_static,
                    tickets_atm=tickets_for_allocation(truth, allocation),
                    allocation=allocation,
                    predicted_mean=float(predicted.mean()),
                    rung=rung,
                    reason=reason,
                )
                obs.inc("online.tickets_avoided", step_record.tickets_avoided)
                result.steps.append(step_record)
        return result


class OnlineFleetResult(Mapping[str, OnlineRunResult]):
    """Partial fleet results plus the structured degradation report.

    Behaves as a read-only mapping ``box_id -> OnlineRunResult`` (so
    pre-ladder callers keep working) while exposing :attr:`report` with
    every degradation event and whole-box failure of the run.
    """

    def __init__(
        self,
        results: Optional[Dict[str, OnlineRunResult]] = None,
        report: Optional[ErrorReport] = None,
    ) -> None:
        self.results: Dict[str, OnlineRunResult] = dict(results or {})
        self.report = report or ErrorReport()

    def __getitem__(self, box_id: str) -> OnlineRunResult:
        return self.results[box_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineFleetResult({len(self.results)} boxes, "
            f"{len(self.report.events)} degradation events)"
        )

    def total_tickets(self, static: bool = False) -> int:
        """Fleet-wide ticket total across every completed box's steps."""
        return sum(r.total_tickets(static=static) for r in self.results.values())

    def reduction_percent(self) -> float:
        """Fleet-wide ticket reduction of ATM over the static allocation."""
        before = self.total_tickets(static=True)
        if before == 0:
            return float("nan")
        return 100.0 * (before - self.total_tickets()) / before


def _run_box_online(
    box,
    config: AtmConfig,
    refit_every_steps: int,
    drift_threshold: Optional[float],
    degrade: bool,
) -> Tuple[Optional[OnlineRunResult], List[DegradationEvent]]:
    """Per-box unit of work; module-level so pool workers can unpickle it.

    ``box`` may be a :class:`repro.store.shards.BoxShardRef`, in which
    case the shard is memory-mapped here in the worker — the parent never
    pickles trace data.  Failures outside the controller's own ladder
    yield ``(None, [failed event])`` under ``degrade`` instead of
    aborting the fleet.
    """
    from repro.store.shards import resolve_box

    obs.inc("online.boxes")
    try:
        faults.inject_fault("box_error", box.box_id)
        controller = OnlineAtmController(
            resolve_box(box),
            config,
            refit_every_steps=refit_every_steps,
            drift_threshold=drift_threshold,
        )
        result = controller.run()
    except Exception as exc:
        if not degrade:
            raise
        obs.inc("online.boxes_failed")
        event = DegradationEvent(
            box_id=box.box_id, stage="run", rung=RUNG_FAILED, reason=repr(exc)
        )
        return None, [event]
    return result, list(result.degradations)


def run_online_fleet(
    fleet: Union[FleetTrace, "ShardedFleet"],
    config: Optional[AtmConfig] = None,
    refit_every_steps: int = 1,
    degrade: bool = True,
    drift_threshold: Optional[float] = None,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    retries: int = 0,
) -> OnlineFleetResult:
    """Run the rolling controller on every box long enough to support it.

    Per-box failures outside the fit/predict ladder do not abort the
    fleet: the box is recorded in ``result.report`` (rung ``"failed"``)
    and the remaining boxes run to completion.  A fleet with *no* eligible
    box likewise degrades to an empty result with one fleet-level
    ``"failed"`` event rather than raising.  Pass ``degrade=False`` to
    restore fail-fast propagation (including the no-eligible-box
    ``ValueError``).

    ``fleet`` may be an in-RAM :class:`FleetTrace` or a
    :class:`repro.store.shards.ShardedFleet`; for the latter, eligibility
    is read from the manifest and workers receive shard descriptors they
    memory-map locally.  ``jobs`` fans boxes out across worker processes
    (``None`` reads ``REPRO_JOBS``; 1 = serial, the bit-identical legacy
    path); results aggregate in fleet box order for any worker count.
    ``chunksize`` and ``retries`` forward to the executor.
    """
    cfg = config or AtmConfig()
    needed = cfg.training_windows + cfg.horizon_windows
    if hasattr(fleet, "box_refs"):
        # Sharded fleet: eligibility comes from the manifest; no shard is
        # opened in the parent, and workers receive the refs themselves.
        eligible = [ref for ref in fleet.box_refs() if ref.n_windows >= needed]
    else:
        eligible = [box for box in fleet if box.n_windows >= needed]

    results: Dict[str, OnlineRunResult] = {}
    report = ErrorReport()
    if not eligible:
        reason = f"no box in fleet {fleet.name!r} supports an online run"
        if not degrade:
            raise ValueError(reason)
        obs.inc("online.fleets_empty")
        report.add(
            DegradationEvent(
                box_id=f"fleet:{fleet.name}",
                stage="fleet",
                rung=RUNG_FAILED,
                reason=reason,
            )
        )
        return OnlineFleetResult(results=results, report=report)

    executor = FleetExecutor(jobs=jobs, chunksize=chunksize, retries=retries)
    with obs.span("online.fleet"):
        # One fold for both the streaming and the materialized path: only
        # the iterator differs (see repro.core.streaming), so the two are
        # bit-identical by construction.
        for result, events in fleet_results(
            executor,
            _run_box_online,
            eligible,
            cfg,
            refit_every_steps,
            drift_threshold,
            degrade,
        ):
            report.extend(events)
            if result is None:
                continue
            results[result.box_id] = result
    return OnlineFleetResult(results=results, report=report)
