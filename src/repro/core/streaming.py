"""Streaming constant-memory fleet aggregation.

At paper scale (6K boxes) the fleet sweeps cannot park every per-box
result in a list before reducing: a ``BoxAtmResult`` carries predicted
and allocation matrices, so a full-fleet result list costs O(fleet ×
trace) RAM for values the aggregates immediately collapse into scalars.
This module holds the pieces both fleet entry points
(:func:`repro.core.pipeline.run_fleet_atm`,
:func:`repro.resizing.evaluate.evaluate_fleet_resizing`) share:

* :func:`fleet_results` — the gate between the streaming and the
  materialized dispatch.  With ``REPRO_STREAM_AGG`` on (the default) it
  returns :meth:`FleetExecutor.imap`'s ordered generator, so each heavy
  per-box result is folded and dropped before the next chunk lands; with
  the gate off it returns the fully materialized ``map`` list — the
  legacy path kept for bit-identical verification.  Both produce the
  same values in the same order, so the *fold code is shared verbatim*
  by construction and equivalence is structural, not coincidental.
* :class:`TicketHistogram` — an incremental fixed-bin reducer over
  per-box ticket reductions (the Fig. 8/10 axis), so reduction shapes
  survive a streaming sweep without any per-box list growing with
  payloads.

The reducers here are deliberately plain Python (ints and a short
counts list): they are updated once per box from inside the fold loop
and must never become the thing that scales with fleet size.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

from repro.core import runtime
from repro.core.executor import FleetExecutor

__all__ = ["TicketHistogram", "fleet_results"]


def fleet_results(
    executor: FleetExecutor,
    fn: Callable[..., Any],
    items: Iterable[Any],
    *common: Any,
    chunk_fn: Optional[Callable[..., Sequence[Any]]] = None,
) -> Iterator[Any]:
    """Yield per-item worker results in input order, streaming when gated on.

    ``REPRO_STREAM_AGG`` on (default): :meth:`FleetExecutor.imap` — chunks
    are yielded as they land and the caller's fold releases each result
    before the next arrives, keeping resident results O(workers).

    ``REPRO_STREAM_AGG=0``: :meth:`FleetExecutor.map` materializes the
    full result list first (the pre-streaming behaviour), then iterates
    it — the verification path for bit-identical comparison.

    ``chunk_fn`` is forwarded to the executor unchanged: when given, each
    chunk's items are handed to it together instead of looping ``fn``
    (the fleet-fused training plane rides through here).
    """
    if runtime.stream_agg_enabled():
        return executor.imap(fn, items, *common, chunk_fn=chunk_fn)
    return iter(executor.map(fn, items, *common, chunk_fn=chunk_fn))


class TicketHistogram:
    """Streaming histogram of per-box ticket-reduction percentages.

    Bins span the paper's Fig. 8/10 axis, ``[-100, 100]`` percent in
    ``width``-point steps (clipped reductions never leave it; values are
    clamped to the edge bins regardless).  Non-finite reductions — boxes
    with no tickets to begin with — are tallied separately, mirroring how
    the mean/std aggregations skip them.

    State is a fixed-size counts list plus three scalars, so the reducer
    is O(bins) no matter how many boxes stream through it.
    """

    LO = -100.0
    HI = 100.0

    def __init__(self, width: float = 5.0) -> None:
        if width <= 0:
            raise ValueError(f"bin width must be positive, got {width}")
        self.width = float(width)
        self.n_bins = int(math.ceil((self.HI - self.LO) / self.width))
        self.counts: List[int] = [0] * self.n_bins
        self.nan_count = 0
        self.total = 0
        self._sum = 0.0

    def add(self, reduction_pct: float) -> None:
        """Fold one box's reduction percentage into the histogram."""
        self.total += 1
        value = float(reduction_pct)
        if not math.isfinite(value):
            self.nan_count += 1
            return
        self._sum += value
        index = int((value - self.LO) // self.width)
        self.counts[max(0, min(self.n_bins - 1, index))] += 1

    @property
    def finite_count(self) -> int:
        return self.total - self.nan_count

    def mean(self) -> float:
        """Mean of the finite reductions (``nan`` when there are none)."""
        if self.finite_count == 0:
            return float("nan")
        return self._sum / self.finite_count

    def edges(self) -> List[float]:
        """The ``n_bins + 1`` bin edges, for plotting."""
        return [self.LO + i * self.width for i in range(self.n_bins + 1)]

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (the shape ``--metrics-json`` consumers get)."""
        return {
            "edges": self.edges(),
            "counts": list(self.counts),
            "nan_count": self.nan_count,
            "total": self.total,
        }
