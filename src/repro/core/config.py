"""Configuration of the full ATM system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.prediction.combined import SpatialTemporalConfig
from repro.prediction.spatial.signatures import ClusteringMethod, SignatureSearchConfig
from repro.resizing.evaluate import ResizingAlgorithm
from repro.tickets.policy import TicketPolicy

__all__ = ["AtmConfig"]


@dataclass(frozen=True)
class AtmConfig:
    """Everything ATM needs to run on a fleet.

    Defaults reproduce the paper's Section V setup: 5 training days,
    a 1-day resizing window of 96 ticketing windows, the 60% ticket
    policy, neural-network temporal models over an inter-resource
    signature search, and ε = 5 discretization.

    Attributes
    ----------
    prediction:
        Spatial-temporal predictor configuration (clustering method,
        temporal model, ...).
    policy:
        Ticketing policy (threshold, window length).
    training_windows:
        Number of windows used for model fitting (5 days x 96).
    horizon_windows:
        Resizing window length in ticketing windows (1 day = 96).
    epsilon_pct:
        Discretization factor ε, in percentage points of each VM's current
        capacity.
    algorithms:
        Sizing policies evaluated against each other (Fig. 10).
    """

    prediction: SpatialTemporalConfig = field(default_factory=SpatialTemporalConfig)
    policy: TicketPolicy = field(default_factory=TicketPolicy)
    training_windows: int = 5 * 96
    horizon_windows: int = 96
    epsilon_pct: float = 5.0
    algorithms: Tuple[ResizingAlgorithm, ...] = tuple(ResizingAlgorithm)

    def __post_init__(self) -> None:
        if self.training_windows < 2:
            raise ValueError("training_windows must be >= 2")
        if self.horizon_windows < 1:
            raise ValueError("horizon_windows must be >= 1")
        if self.epsilon_pct < 0:
            raise ValueError("epsilon_pct must be non-negative")
        if not self.algorithms:
            raise ValueError("need at least one sizing algorithm")

    @classmethod
    def with_clustering(cls, method: ClusteringMethod, **kwargs) -> "AtmConfig":
        """Convenience constructor: the paper's two ATM variants.

        ``AtmConfig.with_clustering(ClusteringMethod.DTW)`` is "ATM w/ DTW",
        ``...(ClusteringMethod.CBC)`` is "ATM w/ CBC".
        """
        prediction = SpatialTemporalConfig(
            search=SignatureSearchConfig(method=method),
            **{k: v for k, v in kwargs.items() if k in ("temporal_model", "period")},
        )
        rest = {k: v for k, v in kwargs.items() if k not in ("temporal_model", "period")}
        return cls(prediction=prediction, **rest)
