"""Fleet-scale ATM evaluation (the Section V production-trace study).

Runs the per-box ATM controller over every box of a fleet and aggregates:

* the Fig. 9 prediction-accuracy CDFs (all windows and peak-only),
* the Fig. 10 ticket-reduction comparison driven by *predicted* demands,
* signature-set statistics (how much of the fleet needed temporal models).

Per-box runs are independent (the paper deploys ATM per box), so the fleet
loop fans out across processes through :class:`repro.core.executor.FleetExecutor`
when ``jobs > 1``; ``jobs=1`` (the default) is the bit-identical serial path.

A failing box degrades instead of aborting the fleet: the per-box unit of
work climbs the policy ladder (configured model → seasonal-mean fallback →
reported failure) and :class:`FleetAtmResult.report` carries the structured
degradation events; healthy boxes are unaffected, bit for bit.

At paper scale the fleet argument can be a
:class:`repro.store.shards.ShardedFleet`: eligibility is decided from the
manifest alone, workers receive few-hundred-byte shard *descriptors*
instead of pickled traces and memory-map their boxes locally, and results
are folded into the aggregates as chunks land
(:mod:`repro.core.streaming`) instead of accumulating a full result list
— peak RSS stays flat as the fleet grows.  ``REPRO_STREAM_AGG=0``
restores the materialized-list path for bit-identical verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro import obs
from repro.core.atm import AtmController, BoxAtmResult
from repro.core.config import AtmConfig
from repro.core.degrade import (
    RUNG_FAILED,
    RUNG_SEASONAL,
    DegradationEvent,
    ErrorReport,
)
from repro.core.executor import FleetExecutor, default_chunksize
from repro.core.results import PredictionAccuracy, ape_cdf
from repro.core.streaming import fleet_results
from repro.resizing.evaluate import FleetReduction, ResizingAlgorithm
from repro.timeseries.ecdf import Ecdf
from repro.timeseries.metrics import finite_mean
from repro.trace.model import FleetTrace, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.shards import ShardedFleet

__all__ = ["FUSED_CHUNK_BOXES", "FleetAtmResult", "run_fleet_atm"]

#: Upper bound on boxes gathered into one fused training chunk.  The
#: fused plane holds every gathered box's training slice and controller
#: live for the duration of the chunk, so the cap keeps the per-worker
#: gather footprint flat (tens of MB at paper-sized boxes) and preserves
#: the sublinear peak-RSS scaling pinned by BENCH_scale.json — fusion
#: batches per chunk, never per fleet.
FUSED_CHUNK_BOXES = 64


@dataclass
class FleetAtmResult:
    """Aggregated outcome of an ATM run across a fleet."""

    config: AtmConfig
    accuracies: List[PredictionAccuracy] = field(default_factory=list)
    reduction: FleetReduction = field(default_factory=FleetReduction)
    box_results: List[BoxAtmResult] = field(default_factory=list)
    #: Structured degradation report: which boxes fell back to the
    #: seasonal-mean rung, which failed outright, and why.
    report: ErrorReport = field(default_factory=ErrorReport)

    # ---------------------------------------------------------------- Fig. 9
    def ape_cdf(self, peak: bool = False) -> Optional[Ecdf]:
        """CDF of per-box mean APE (peak-only when ``peak``)."""
        return ape_cdf(self.accuracies, peak=peak)

    def mean_ape(self, peak: bool = False) -> float:
        values = [a.peak_ape if peak else a.ape for a in self.accuracies]
        return finite_mean(values)

    # --------------------------------------------------------------- Fig. 10
    def mean_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return self.reduction.mean_reduction(resource, algorithm)

    def std_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return self.reduction.std_reduction(resource, algorithm)

    # ------------------------------------------------------------- signatures
    def mean_signature_ratio(self) -> float:
        return finite_mean([a.signature_ratio for a in self.accuracies])


def _seasonal_fallback_config(config: AtmConfig) -> AtmConfig:
    """The same ATM setup with the temporal model downgraded to seasonal-mean."""
    return replace(
        config,
        prediction=replace(config.prediction, temporal_model="seasonal_mean"),
    )


def _run_box_atm(
    box, config: AtmConfig, degrade: bool, resume: bool = False
) -> Tuple[Optional[BoxAtmResult], List[DegradationEvent]]:
    """Per-box unit of work; module-level so pool workers can unpickle it.

    Climbs the degradation ladder: the configured model first; on failure
    a seasonal-mean fallback run (with sanitized training data); on a
    second failure the box is reported as failed (``None`` result) rather
    than aborting the fleet.  ``degrade=False`` restores fail-fast.

    With a persistent artifact store the completed ``(result, events)``
    pair is materialized per box, so an interrupted fleet run leaves each
    finished box's outcome on disk; ``resume=True`` serves those boxes
    from the store (counted as ``pipeline.resume.hits``) and computes only
    the rest — bit-identical to an uninterrupted run.

    ``box`` may be a :class:`repro.store.shards.BoxShardRef`, in which
    case the shard is memory-mapped here in the worker — the parent never
    pickles trace data.
    """
    from repro.core import stages
    from repro.store import default_store
    from repro.store.shards import resolve_box

    box = resolve_box(box)
    store = default_store()
    key = stages.box_result_key(box, config, degrade) if store.persistent else None
    if resume and key is not None:
        cached = store.get(key, memory=False)
        if cached is not None:
            obs.inc("pipeline.resume.hits")
            result, events = cached
            return result, list(events)
    result, events = _run_box_ladder(box, config, degrade)
    if key is not None:
        store.put(key, (result, events), memory=False)
    return result, events


def _run_box_ladder(
    box, config: AtmConfig, degrade: bool
) -> Tuple[Optional[BoxAtmResult], List[DegradationEvent]]:
    """The degradation ladder itself (no store interaction)."""
    events: List[DegradationEvent] = []
    try:
        with obs.span("pipeline.box_run"):
            return AtmController(box, config).run(), events
    except Exception as exc:
        if not degrade:
            raise
        obs.inc("pipeline.fallback.seasonal")
        events.append(
            DegradationEvent(
                box_id=box.box_id,
                stage="fit",
                rung=RUNG_SEASONAL,
                reason=repr(exc),
            )
        )
    try:
        with obs.span("pipeline.box_run_fallback"):
            result = AtmController(
                box, _seasonal_fallback_config(config), rung=RUNG_SEASONAL
            ).run()
        return result, events
    except Exception as exc:
        obs.inc("pipeline.boxes_failed")
        events.append(
            DegradationEvent(
                box_id=box.box_id,
                stage="fit",
                rung=RUNG_FAILED,
                reason=repr(exc),
            )
        )
        return None, events


def _fused_eligible(config: AtmConfig) -> bool:
    """Whether the fleet-fused training plane applies under ``config``.

    Fusion needs the batched temporal engine (it extends the same kernel)
    and a registered fleet fitter for the configured model; either
    ``REPRO_FUSED_FLEET=0`` or ``REPRO_BATCHED_TEMPORAL=0`` restores
    strictly per-box stage execution.
    """
    from repro.core import runtime
    from repro.prediction.registry import has_fleet_fitter
    from repro.prediction.temporal.batched import batched_temporal_enabled

    return (
        runtime.fused_fleet_enabled()
        and batched_temporal_enabled()
        and has_fleet_fitter(config.prediction.temporal_model)
    )


def _run_box_atm_fused_chunk(
    items, config: AtmConfig, degrade: bool, resume: bool = False
) -> List[Tuple[Optional[BoxAtmResult], List[DegradationEvent]]]:
    """Whole-chunk unit of work: fuse every box's temporal fits into one pass.

    Produces exactly ``_run_box_atm(item, ...)`` for each item — same
    results, same events, same store artifacts under the same keys — but
    reorders the work: first a *gather* phase runs each box's resume
    probe, forecast probe and signature search, then all gathered boxes'
    signature series train together in one cross-box mega-batched pass
    (:func:`repro.prediction.registry.fit_temporal_fleet_batch`), and a
    *scatter* phase completes each box's forecast, sizing and evaluation.
    The fused kernel is bit-identical to the per-box batched fit, so the
    reordering is observable only as wall-clock.

    Failure isolation stays per-box when ``degrade`` is on: a box that
    raises anywhere in the gather or scatter phases — or whose histories
    fail fused validation — is re-run down the ordinary
    :func:`_run_box_atm` ladder (counted as ``fused.fallback_boxes``);
    injected faults are deterministic per (box, attempt), so the replay
    reproduces the per-box path's events exactly.  ``degrade=False``
    keeps fail-fast semantics: the first exception propagates and fails
    the chunk, as it would fail the fleet.
    """
    from repro.core import stages
    from repro.prediction.combined import SpatialTemporalPredictor
    from repro.prediction.registry import fit_temporal_fleet_batch
    from repro.store import default_store
    from repro.store.shards import resolve_box

    out: List[Optional[Tuple[Optional[BoxAtmResult], List[DegradationEvent]]]] = [
        None
    ] * len(items)
    store = default_store()

    def fallback(pos: int) -> None:
        obs.inc("fused.fallback_boxes")
        out[pos] = _run_box_atm(items[pos], config, degrade, resume)

    # Gather: resume probes, forecast probes, signature searches.  Boxes
    # with a stored forecast skip fitting entirely (``finish``); the rest
    # contribute their signature histories to the fused pass (``pending``).
    pending: List[Tuple[int, AtmController, object, List]] = []
    finish: List[Tuple[int, AtmController, object, object]] = []
    for pos in range(len(items)):
        try:
            box = resolve_box(items[pos])
            result_key = (
                stages.box_result_key(box, config, degrade)
                if store.persistent
                else None
            )
            if resume and result_key is not None:
                cached = store.get(result_key, memory=False)
                if cached is not None:
                    obs.inc("pipeline.resume.hits")
                    result, events = cached
                    out[pos] = (result, list(events))
                    continue
            controller = AtmController(box, config)
            demands, forecast_key, prediction = stages.probe_forecast(controller)
            if prediction is not None:
                finish.append((pos, controller, result_key, prediction))
                continue
            predictor = SpatialTemporalPredictor(config.prediction)
            with obs.span("atm.fit"):
                histories = predictor.begin_fit(demands)
            controller._predictor = predictor
            pending.append((pos, controller, result_key, forecast_key, histories))
        except Exception:
            if not degrade:
                raise
            fallback(pos)

    # Fuse: one cross-box mega-batched fit over every pending box's
    # signature series.  A None entry = that box's group failed validation
    # (re-run it per box, where its degradation ladder applies); a raised
    # exception fails every pending box back to the per-box path.
    groups: List[Optional[List]] = []
    if pending:
        try:
            with obs.span("predict.temporal_fit"):
                fitted = fit_temporal_fleet_batch(
                    config.prediction.temporal_model,
                    [histories for (_, _, _, _, histories) in pending],
                    period=config.prediction.period,
                )
            groups = [None] * len(pending) if fitted is None else fitted
        except Exception:
            if not degrade:
                raise
            groups = [None] * len(pending)

    # Scatter: complete each fused box's forecast, then run its sizing
    # and evaluation stages exactly as the per-box orchestrator would.
    for (pos, controller, result_key, forecast_key, _), models in zip(
        pending, groups
    ):
        try:
            if models is None:
                fallback(pos)
                continue
            controller._predictor.finish_fit(models)
            prediction = controller.predict(config.horizon_windows)
            stages.store_forecast(forecast_key, prediction)
            finish.append((pos, controller, result_key, prediction))
        except Exception:
            if not degrade:
                raise
            fallback(pos)

    # Evaluate: sizing + accuracy for every box that holds a forecast.
    for pos, controller, result_key, prediction in finish:
        try:
            with obs.span("pipeline.box_run"):
                result = stages.evaluate_forecast_stages(controller, prediction)
            pair: Tuple[Optional[BoxAtmResult], List[DegradationEvent]] = (result, [])
            if result_key is not None:
                store.put(result_key, pair, memory=False)
            out[pos] = pair
        except Exception:
            if not degrade:
                raise
            fallback(pos)
    return out  # type: ignore[return-value]


def run_fleet_atm(
    fleet: Union[FleetTrace, "ShardedFleet"],
    config: Optional[AtmConfig] = None,
    keep_box_results: bool = False,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    degrade: bool = True,
    resume: bool = False,
    retries: int = 0,
) -> FleetAtmResult:
    """Run ATM end-to-end on every box of a fleet.

    Boxes too short for the configured training + horizon windows are
    skipped (the paper likewise restricts its ATM study to the subset of
    gap-free boxes).

    ``fleet`` may be an in-RAM :class:`FleetTrace` or a
    :class:`repro.store.shards.ShardedFleet`; for the latter, eligibility
    is read from the manifest and workers receive shard descriptors they
    memory-map locally — no trace data crosses the process boundary.

    Parameters
    ----------
    keep_box_results:
        Retain per-box predictions/allocations (memory-heavy for large
        fleets); aggregates are always kept.
    jobs:
        Worker processes for the per-box fan-out.  ``None`` reads the
        ``REPRO_JOBS`` environment variable (default 1 = serial, the
        bit-identical legacy path); ``jobs <= 0`` uses all cores.  Results
        are aggregated in fleet box order for any worker count.
    chunksize:
        Boxes per scheduled pool task (parallel path only); defaults to
        ~4 chunks per worker.
    degrade:
        Climb the per-box policy ladder on failure (default), collecting
        partial results plus ``result.report``; ``False`` restores the
        fail-fast behaviour where the first box exception propagates.
    resume:
        Serve boxes whose result artifact is already materialized in the
        persistent store (``REPRO_STORE`` / ``--store``) instead of
        recomputing them; aggregates are bit-identical to a fresh run.
        No-op without a persistent store.
    retries:
        Per-box retry budget forwarded to the executor (transient
        ``once`` faults clear on the retry attempt).
    """
    cfg = config or AtmConfig()
    out = FleetAtmResult(config=cfg)
    needed = cfg.training_windows + cfg.horizon_windows
    if hasattr(fleet, "box_refs"):
        # Sharded fleet: eligibility comes from the manifest; no shard is
        # opened in the parent, and workers receive the refs themselves.
        eligible = [ref for ref in fleet.box_refs() if ref.n_windows >= needed]
    else:
        eligible = [box for box in fleet if box.n_windows >= needed]
    if not eligible:
        raise ValueError(
            f"no box in fleet {fleet.name!r} has the {needed} windows required"
        )
    executor = FleetExecutor(jobs=jobs, chunksize=chunksize, retries=retries)
    chunk_fn = None
    if _fused_eligible(cfg):
        chunk_fn = _run_box_atm_fused_chunk
        if chunksize is None:
            # Cap fused chunks: the gather phase holds a whole chunk's
            # training slices at once, so the RSS bound must come from
            # the chunk size, never the fleet size.  Serially there is no
            # straggler risk to balance, so take the whole cap — bigger
            # chunks mean fuller mega-batches.
            executor.chunksize = (
                FUSED_CHUNK_BOXES
                if executor.jobs == 1
                else min(
                    default_chunksize(len(eligible), executor.jobs),
                    FUSED_CHUNK_BOXES,
                )
            )
    obs.inc("pipeline.boxes", len(eligible))
    with obs.span("pipeline.fleet"):
        # One fold for both the streaming and the materialized path: only
        # the iterator differs (see repro.core.streaming), so the two are
        # bit-identical by construction.
        for result, events in fleet_results(
            executor, _run_box_atm, eligible, cfg, degrade, resume, chunk_fn=chunk_fn
        ):
            out.report.extend(events)
            if result is None:
                continue
            out.accuracies.append(result.accuracy)
            for reduction in result.reductions.values():
                out.reduction.add(reduction)
            if keep_box_results:
                out.box_results.append(result)
    return out
