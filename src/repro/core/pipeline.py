"""Fleet-scale ATM evaluation (the Section V production-trace study).

Runs the per-box ATM controller over every box of a fleet and aggregates:

* the Fig. 9 prediction-accuracy CDFs (all windows and peak-only),
* the Fig. 10 ticket-reduction comparison driven by *predicted* demands,
* signature-set statistics (how much of the fleet needed temporal models).

Per-box runs are independent (the paper deploys ATM per box), so the fleet
loop fans out across processes through :class:`repro.core.executor.FleetExecutor`
when ``jobs > 1``; ``jobs=1`` (the default) is the bit-identical serial path.

A failing box degrades instead of aborting the fleet: the per-box unit of
work climbs the policy ladder (configured model → seasonal-mean fallback →
reported failure) and :class:`FleetAtmResult.report` carries the structured
degradation events; healthy boxes are unaffected, bit for bit.

At paper scale the fleet argument can be a
:class:`repro.store.shards.ShardedFleet`: eligibility is decided from the
manifest alone, workers receive few-hundred-byte shard *descriptors*
instead of pickled traces and memory-map their boxes locally, and results
are folded into the aggregates as chunks land
(:mod:`repro.core.streaming`) instead of accumulating a full result list
— peak RSS stays flat as the fleet grows.  ``REPRO_STREAM_AGG=0``
restores the materialized-list path for bit-identical verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro import obs
from repro.core.atm import AtmController, BoxAtmResult
from repro.core.config import AtmConfig
from repro.core.degrade import (
    RUNG_FAILED,
    RUNG_SEASONAL,
    DegradationEvent,
    ErrorReport,
)
from repro.core.executor import FleetExecutor
from repro.core.results import PredictionAccuracy, ape_cdf
from repro.core.streaming import fleet_results
from repro.resizing.evaluate import FleetReduction, ResizingAlgorithm
from repro.timeseries.ecdf import Ecdf
from repro.timeseries.metrics import finite_mean
from repro.trace.model import FleetTrace, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.shards import ShardedFleet

__all__ = ["FleetAtmResult", "run_fleet_atm"]


@dataclass
class FleetAtmResult:
    """Aggregated outcome of an ATM run across a fleet."""

    config: AtmConfig
    accuracies: List[PredictionAccuracy] = field(default_factory=list)
    reduction: FleetReduction = field(default_factory=FleetReduction)
    box_results: List[BoxAtmResult] = field(default_factory=list)
    #: Structured degradation report: which boxes fell back to the
    #: seasonal-mean rung, which failed outright, and why.
    report: ErrorReport = field(default_factory=ErrorReport)

    # ---------------------------------------------------------------- Fig. 9
    def ape_cdf(self, peak: bool = False) -> Optional[Ecdf]:
        """CDF of per-box mean APE (peak-only when ``peak``)."""
        return ape_cdf(self.accuracies, peak=peak)

    def mean_ape(self, peak: bool = False) -> float:
        values = [a.peak_ape if peak else a.ape for a in self.accuracies]
        return finite_mean(values)

    # --------------------------------------------------------------- Fig. 10
    def mean_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return self.reduction.mean_reduction(resource, algorithm)

    def std_reduction(self, resource: Resource, algorithm: ResizingAlgorithm) -> float:
        return self.reduction.std_reduction(resource, algorithm)

    # ------------------------------------------------------------- signatures
    def mean_signature_ratio(self) -> float:
        return finite_mean([a.signature_ratio for a in self.accuracies])


def _seasonal_fallback_config(config: AtmConfig) -> AtmConfig:
    """The same ATM setup with the temporal model downgraded to seasonal-mean."""
    return replace(
        config,
        prediction=replace(config.prediction, temporal_model="seasonal_mean"),
    )


def _run_box_atm(
    box, config: AtmConfig, degrade: bool, resume: bool = False
) -> Tuple[Optional[BoxAtmResult], List[DegradationEvent]]:
    """Per-box unit of work; module-level so pool workers can unpickle it.

    Climbs the degradation ladder: the configured model first; on failure
    a seasonal-mean fallback run (with sanitized training data); on a
    second failure the box is reported as failed (``None`` result) rather
    than aborting the fleet.  ``degrade=False`` restores fail-fast.

    With a persistent artifact store the completed ``(result, events)``
    pair is materialized per box, so an interrupted fleet run leaves each
    finished box's outcome on disk; ``resume=True`` serves those boxes
    from the store (counted as ``pipeline.resume.hits``) and computes only
    the rest — bit-identical to an uninterrupted run.

    ``box`` may be a :class:`repro.store.shards.BoxShardRef`, in which
    case the shard is memory-mapped here in the worker — the parent never
    pickles trace data.
    """
    from repro.core import stages
    from repro.store import default_store
    from repro.store.shards import resolve_box

    box = resolve_box(box)
    store = default_store()
    key = stages.box_result_key(box, config, degrade) if store.persistent else None
    if resume and key is not None:
        cached = store.get(key, memory=False)
        if cached is not None:
            obs.inc("pipeline.resume.hits")
            result, events = cached
            return result, list(events)
    result, events = _run_box_ladder(box, config, degrade)
    if key is not None:
        store.put(key, (result, events), memory=False)
    return result, events


def _run_box_ladder(
    box, config: AtmConfig, degrade: bool
) -> Tuple[Optional[BoxAtmResult], List[DegradationEvent]]:
    """The degradation ladder itself (no store interaction)."""
    events: List[DegradationEvent] = []
    try:
        with obs.span("pipeline.box_run"):
            return AtmController(box, config).run(), events
    except Exception as exc:
        if not degrade:
            raise
        obs.inc("pipeline.fallback.seasonal")
        events.append(
            DegradationEvent(
                box_id=box.box_id,
                stage="fit",
                rung=RUNG_SEASONAL,
                reason=repr(exc),
            )
        )
    try:
        with obs.span("pipeline.box_run_fallback"):
            result = AtmController(
                box, _seasonal_fallback_config(config), rung=RUNG_SEASONAL
            ).run()
        return result, events
    except Exception as exc:
        obs.inc("pipeline.boxes_failed")
        events.append(
            DegradationEvent(
                box_id=box.box_id,
                stage="fit",
                rung=RUNG_FAILED,
                reason=repr(exc),
            )
        )
        return None, events


def run_fleet_atm(
    fleet: Union[FleetTrace, "ShardedFleet"],
    config: Optional[AtmConfig] = None,
    keep_box_results: bool = False,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    degrade: bool = True,
    resume: bool = False,
    retries: int = 0,
) -> FleetAtmResult:
    """Run ATM end-to-end on every box of a fleet.

    Boxes too short for the configured training + horizon windows are
    skipped (the paper likewise restricts its ATM study to the subset of
    gap-free boxes).

    ``fleet`` may be an in-RAM :class:`FleetTrace` or a
    :class:`repro.store.shards.ShardedFleet`; for the latter, eligibility
    is read from the manifest and workers receive shard descriptors they
    memory-map locally — no trace data crosses the process boundary.

    Parameters
    ----------
    keep_box_results:
        Retain per-box predictions/allocations (memory-heavy for large
        fleets); aggregates are always kept.
    jobs:
        Worker processes for the per-box fan-out.  ``None`` reads the
        ``REPRO_JOBS`` environment variable (default 1 = serial, the
        bit-identical legacy path); ``jobs <= 0`` uses all cores.  Results
        are aggregated in fleet box order for any worker count.
    chunksize:
        Boxes per scheduled pool task (parallel path only); defaults to
        ~4 chunks per worker.
    degrade:
        Climb the per-box policy ladder on failure (default), collecting
        partial results plus ``result.report``; ``False`` restores the
        fail-fast behaviour where the first box exception propagates.
    resume:
        Serve boxes whose result artifact is already materialized in the
        persistent store (``REPRO_STORE`` / ``--store``) instead of
        recomputing them; aggregates are bit-identical to a fresh run.
        No-op without a persistent store.
    retries:
        Per-box retry budget forwarded to the executor (transient
        ``once`` faults clear on the retry attempt).
    """
    cfg = config or AtmConfig()
    out = FleetAtmResult(config=cfg)
    needed = cfg.training_windows + cfg.horizon_windows
    if hasattr(fleet, "box_refs"):
        # Sharded fleet: eligibility comes from the manifest; no shard is
        # opened in the parent, and workers receive the refs themselves.
        eligible = [ref for ref in fleet.box_refs() if ref.n_windows >= needed]
    else:
        eligible = [box for box in fleet if box.n_windows >= needed]
    if not eligible:
        raise ValueError(
            f"no box in fleet {fleet.name!r} has the {needed} windows required"
        )
    executor = FleetExecutor(jobs=jobs, chunksize=chunksize, retries=retries)
    obs.inc("pipeline.boxes", len(eligible))
    with obs.span("pipeline.fleet"):
        # One fold for both the streaming and the materialized path: only
        # the iterator differs (see repro.core.streaming), so the two are
        # bit-identical by construction.
        for result, events in fleet_results(
            executor, _run_box_atm, eligible, cfg, degrade, resume
        ):
            out.report.extend(events)
            if result is None:
                continue
            out.accuracies.append(result.accuracy)
            for reduction in result.reductions.values():
                out.reduction.add(reduction)
            if keep_box_results:
                out.box_results.append(result)
    return out
