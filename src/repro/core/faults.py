"""Seeded fault injection for the fleet pipeline (testing the ladder).

Graceful degradation is only trustworthy if it is exercised: this harness
injects the three production failure modes the online controller must
survive — fit exceptions, NaN-poisoned training slices, and slow workers —
deterministically, so CI can assert that a faulted fleet run completes
with the degraded boxes reported and the healthy boxes untouched.

Activation is env-gated (``REPRO_FAULTS`` holds the spec, off by default)
or programmatic (:func:`fault_plan` for tests).  Every injection decision
is a pure hash of ``(seed, kind, key)`` — no shared RNG stream is consumed
— which gives two properties the acceptance tests rely on:

* **Determinism across processes.**  Worker processes make the same
  decisions as a serial run, for any worker count.
* **Isolation.**  Whether box A is faulted cannot perturb box B's results;
  healthy boxes are bit-identical to a no-faults run.

Spec format (``;``-separated rules, ``,``-separated options)::

    REPRO_FAULTS="fit_error:p=1.0;slow:p=0.5,seconds=0.05;nan_train:p=0.3,fraction=0.2"
    REPRO_FAULTS_SEED=7

Fault kinds and the pipeline hook that honours each:

``fit_error``
    Raise :class:`InjectedFault` from the *primary* model fit
    (exercises the seasonal-mean fallback rung).
``fallback_error``
    Raise from the fallback fit (exercises the hold rung).
``nan_train``
    Poison a deterministic fraction of the training slice with NaN
    (the primary fit rejects non-finite history; the fallback sanitizes).
``slow``
    Sleep inside the per-box unit of work (exercises executor timeouts).
``box_error``
    Raise from the per-box fleet loop itself, outside the fit/predict
    ladder (exercises the partial-results error report).

The ``once`` option makes a rule transient: it fires on a box's first
attempt only, so the executor's bounded retry can be shown to recover.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core import runtime

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "attempt_context",
    "current_attempt",
    "fault_plan",
    "inject_fault",
    "inject_slow",
    "parse_fault_spec",
    "poison_training",
    "set_fault_plan",
]

FAULTS_ENV_VAR = runtime.FAULTS_ENV_VAR
FAULTS_SEED_ENV_VAR = runtime.FAULTS_SEED_ENV_VAR

FAULT_KINDS = ("fit_error", "fallback_error", "nan_train", "slow", "box_error")


class InjectedFault(RuntimeError):
    """Raised by the harness at an injection point."""


@dataclass(frozen=True)
class FaultRule:
    """One fault kind with its firing probability and options."""

    kind: str
    probability: float
    once: bool = False      # fire on attempt 0 only (transient fault)
    seconds: float = 0.05   # "slow" only: sleep duration
    fraction: float = 0.1   # "nan_train" only: fraction of samples poisoned

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")


def _hash_unit(seed: int, kind: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, kind, key)."""
    digest = hashlib.sha256(f"{seed}:{kind}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault rules plus the decision seed."""

    rules: Tuple[FaultRule, ...]
    seed: int = 0

    def rule(self, kind: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    def should_inject(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Pure decision: does fault ``kind`` fire for ``key``?"""
        rule = self.rule(kind)
        if rule is None or rule.probability <= 0.0:
            return False
        if rule.once and attempt > 0:
            return False
        return _hash_unit(self.seed, kind, key) < rule.probability


def parse_fault_spec(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    rules = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, raw_opts = chunk.partition(":")
        kind = kind.strip()
        options: Dict[str, object] = {}
        for opt in raw_opts.split(","):
            opt = opt.strip()
            if not opt:
                continue
            if opt == "once":
                options["once"] = True
                continue
            name, sep, value = opt.partition("=")
            if not sep:
                raise ValueError(
                    f"bad fault option {opt!r} in {chunk!r}; expected name=value"
                )
            name = name.strip()
            if name == "p":
                options["probability"] = float(value)
            elif name in ("seconds", "fraction"):
                options[name] = float(value)
            else:
                raise ValueError(f"unknown fault option {name!r} in {chunk!r}")
        options.setdefault("probability", 1.0)
        rules.append(FaultRule(kind=kind, **options))  # type: ignore[arg-type]
    return FaultPlan(rules=tuple(rules), seed=seed)


# The programmatic override; None means "consult the environment".
_ACTIVE: Optional[FaultPlan] = None
# Cache of the parsed environment spec, keyed by the raw (spec, seed) strings.
_ENV_CACHE: Tuple[Optional[Tuple[str, str]], Optional[FaultPlan]] = (None, None)


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) a programmatic fault plan."""
    global _ACTIVE
    _ACTIVE = plan


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Temporarily install a fault plan (test helper)."""
    previous = _ACTIVE
    set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: programmatic override, else the environment spec."""
    if _ACTIVE is not None:
        return _ACTIVE
    spec = runtime.faults_spec()
    if not spec:
        return None
    seed = runtime.faults_seed()
    global _ENV_CACHE
    cache_key = (spec, str(seed))
    if _ENV_CACHE[0] == cache_key:
        return _ENV_CACHE[1]
    plan = parse_fault_spec(spec, seed=seed)
    _ENV_CACHE = (cache_key, plan)
    return plan


# ----------------------------------------------------------- attempt context
# The executor's retry loop publishes the current attempt number here so
# that `once` rules can clear on a retry without threading an argument
# through every per-item function signature.

_ATTEMPT = 0


def current_attempt() -> int:
    return _ATTEMPT


@contextmanager
def attempt_context(attempt: int) -> Iterator[None]:
    """Mark injection decisions inside the block as attempt ``attempt``."""
    global _ATTEMPT
    previous = _ATTEMPT
    _ATTEMPT = attempt
    try:
        yield
    finally:
        _ATTEMPT = previous


# ------------------------------------------------------------ injection API


def inject_fault(kind: str, key: str) -> None:
    """Raise :class:`InjectedFault` when the active plan fires for ``key``."""
    plan = active_plan()
    if plan is not None and plan.should_inject(kind, key, attempt=_ATTEMPT):
        raise InjectedFault(f"injected {kind} for {key!r}")


def inject_slow(key: str) -> None:
    """Sleep when the active plan's ``slow`` rule fires for ``key``."""
    plan = active_plan()
    if plan is not None and plan.should_inject("slow", key, attempt=_ATTEMPT):
        rule = plan.rule("slow")
        assert rule is not None
        time.sleep(rule.seconds)


def poison_training(key: str, matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with a deterministic NaN poisoning when firing.

    The input is never modified; when the ``nan_train`` rule fires a copy
    with ``fraction`` of its entries set to NaN is returned.  Poisoned
    positions derive from the same (seed, kind, key) hash, so repeated
    calls (e.g. the fallback rung re-reading the slice) see the identical
    corruption.
    """
    plan = active_plan()
    if plan is None or not plan.should_inject("nan_train", key, attempt=_ATTEMPT):
        return matrix
    rule = plan.rule("nan_train")
    assert rule is not None
    poisoned = np.array(matrix, dtype=float)
    n_poison = max(1, int(round(rule.fraction * poisoned.size)))
    digest = hashlib.sha256(f"{plan.seed}:nan_train:pos:{key}".encode()).digest()
    rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
    flat = rng.choice(poisoned.size, size=min(n_poison, poisoned.size), replace=False)
    poisoned.ravel()[flat] = np.nan
    return poisoned
