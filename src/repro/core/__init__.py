"""The ATM (Active Ticket Managing) system — the paper's core contribution.

Ties the substrates together: per box, ATM trains the spatial-temporal
predictor on a training window (5 days in the paper), forecasts all demand
series one resizing window ahead (1 day = 96 ticketing windows), and sizes
the co-located VMs with the greedy MCKP algorithm.

* :mod:`repro.core.config` — configuration of the full system.
* :mod:`repro.core.runtime` — consolidated environment-variable gates.
* :mod:`repro.core.atm` — the per-box ATM controller.
* :mod:`repro.core.stages` — the typed per-box stage graph + artifact keys.
* :mod:`repro.core.executor` — parallel fleet execution engine.
* :mod:`repro.core.pipeline` — fleet-scale evaluation runs (Figs. 9, 10).
* :mod:`repro.core.results` — result containers and aggregation.
* :mod:`repro.core.degrade` — graceful-degradation ladder reporting.
* :mod:`repro.core.faults` — seeded fault injection for the pipeline.
"""

from repro.core.atm import AtmController, BoxAtmResult
from repro.core.config import AtmConfig
from repro.core.degrade import DegradationEvent, ErrorReport
from repro.core.executor import FleetExecutor, resolve_jobs
from repro.core.online import (
    OnlineAtmController,
    OnlineFleetResult,
    OnlineRunResult,
    run_online_fleet,
)
from repro.core.pipeline import FleetAtmResult, run_fleet_atm
from repro.core.results import PredictionAccuracy

# Imported for its side effect as well: registers the forecast/box-result/
# resize-eval artifact codecs with repro.store.
from repro.core import stages as stages  # noqa: F401  (re-exported module)

__all__ = [
    "AtmConfig",
    "AtmController",
    "BoxAtmResult",
    "DegradationEvent",
    "ErrorReport",
    "FleetAtmResult",
    "FleetExecutor",
    "OnlineAtmController",
    "OnlineFleetResult",
    "OnlineRunResult",
    "PredictionAccuracy",
    "resolve_jobs",
    "run_fleet_atm",
    "run_online_fleet",
]
