"""The per-box ATM controller: train → predict → resize.

One :class:`AtmController` manages one physical box.  Its lifecycle follows
the paper's deployment story:

1. :meth:`fit` on the training window (5 days of demand history).  The
   inter-resource signature search runs over the stacked CPU+RAM demand
   matrix, temporal models are fitted to the signature series only.
2. :meth:`predict` the full next resizing window (1 day, 96 windows) for
   every series.
3. :meth:`resize` per resource: build the MCKP from the predicted demands
   and solve it greedily, yielding the capacity allocation the actuator
   should enforce for the next day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.degrade import RUNG_PRIMARY, RUNG_SEASONAL, sanitize_demands
from repro.core.results import PredictionAccuracy
from repro.prediction.combined import BoxPrediction, SpatialTemporalPredictor
from repro.resizing.evaluate import BoxReduction, ResizingAlgorithm, resize_allocation
from repro.resizing.problem import ResizingProblem
from repro.trace.model import BoxTrace, Resource

__all__ = ["AtmController", "BoxAtmResult"]


@dataclass
class BoxAtmResult:
    """Everything an end-to-end ATM run produces for one box."""

    box_id: str
    accuracy: PredictionAccuracy
    reductions: Dict[Tuple[Resource, ResizingAlgorithm], BoxReduction]
    predicted: Dict[Resource, np.ndarray]
    allocations: Dict[Resource, np.ndarray]


class AtmController:
    """ATM for a single box.

    ``rung`` names the degradation-ladder rung this controller serves
    (see :mod:`repro.core.degrade`): the default ``"primary"`` runs the
    configured model on the raw training slice; ``"seasonal_mean"`` is
    the fallback instantiation the fleet pipeline builds after a primary
    failure — it sanitizes non-finite training samples (surviving
    NaN-poisoned slices the primary correctly rejects) and answers to the
    ``fallback_error`` fault kind instead of ``fit_error``.
    """

    def __init__(
        self,
        box: BoxTrace,
        config: Optional[AtmConfig] = None,
        rung: str = RUNG_PRIMARY,
    ) -> None:
        self.box = box
        self.config = config or AtmConfig()
        self.rung = rung
        self._predictor: Optional[SpatialTemporalPredictor] = None
        self._train_demands: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ train
    def _training_demands(self, train_windows: Optional[int] = None) -> np.ndarray:
        """Materialize the training slice (fault hooks included).

        This is the stage graph's input boundary: every fault that can
        corrupt or abort training fires *here*, before any artifact-store
        lookup, so poisoned slices change the artifact's data fingerprint
        (and fit errors raise) rather than tainting stored results.
        """
        windows = train_windows or self.config.training_windows
        windows = min(windows, self.box.n_windows)
        demands = self.box.demand_matrix()[:, :windows]  # stacked CPU+RAM
        demands = faults.poison_training(self.box.box_id, demands)
        faults.inject_slow(self.box.box_id)
        if self.rung == RUNG_PRIMARY:
            faults.inject_fault("fit_error", self.box.box_id)
        else:
            faults.inject_fault("fallback_error", self.box.box_id)
            demands = sanitize_demands(demands)
        self._train_demands = demands
        return demands

    def fit(self, train_windows: Optional[int] = None) -> "AtmController":
        """Fit the spatial-temporal predictor on the first training windows."""
        demands = self._training_demands(train_windows)
        with obs.span("atm.fit"):
            self._predictor = SpatialTemporalPredictor(self.config.prediction).fit(
                demands
            )
        return self

    @property
    def is_fitted(self) -> bool:
        return self._predictor is not None

    @property
    def signature_ratio(self) -> float:
        if self._predictor is None:
            raise RuntimeError("controller has not been fitted")
        return self._predictor.spatial_model.signature_ratio

    # ---------------------------------------------------------------- predict
    def predict(self, horizon: Optional[int] = None) -> BoxPrediction:
        """Forecast every demand series for the next resizing window."""
        if self._predictor is None:
            raise RuntimeError("controller has not been fitted")
        return self._predictor.predict(horizon or self.config.horizon_windows)

    def split_prediction(self, prediction: BoxPrediction) -> Dict[Resource, np.ndarray]:
        """Split a stacked (2M, H) prediction into per-resource matrices."""
        m = self.box.n_vms
        return {
            Resource.CPU: prediction.predictions[:m],
            Resource.RAM: prediction.predictions[m:],
        }

    # ----------------------------------------------------------------- resize
    def resize(
        self,
        predicted: Dict[Resource, np.ndarray],
        lower_bounds: Optional[Dict[Resource, np.ndarray]] = None,
    ) -> Dict[Resource, np.ndarray]:
        """Compute next-window capacity allocations from predicted demands.

        Returns per-resource allocation vectors; falls back to the current
        allocation when the greedy cannot satisfy the bounds.
        """
        allocations: Dict[Resource, np.ndarray] = {}
        for resource, demands in predicted.items():
            current = self.box.allocations(resource)
            capacity = self.box.capacity(resource)
            bounds = None if lower_bounds is None else lower_bounds.get(resource)
            if bounds is None:
                bounds = self._default_lower_bounds(resource)
            bounds = np.minimum(bounds, capacity)
            problem = ResizingProblem(
                demands=np.maximum(demands, 0.0),
                capacity=capacity,
                alpha=self.config.policy.alpha,
                lower_bounds=bounds,
                upper_bounds=np.full(self.box.n_vms, capacity),
            )
            epsilon = self.config.epsilon_pct / 100.0 * current
            allocation, feasible = resize_allocation(
                problem, ResizingAlgorithm.ATM, epsilon=epsilon, current=current
            )
            allocations[resource] = allocation if feasible else current
        return allocations

    def _default_lower_bounds(self, resource: Resource) -> np.ndarray:
        """Peak demand of the last training day — "peak usage before resizing"."""
        if self._train_demands is None:
            raise RuntimeError("controller has not been fitted")
        m = self.box.n_vms
        rows = slice(0, m) if resource is Resource.CPU else slice(m, 2 * m)
        period = self.box.windows_per_day
        tail = self._train_demands[rows, -period:]
        return tail.max(axis=1)

    # ------------------------------------------------------------ end to end
    def run(self) -> BoxAtmResult:
        """Full post-hoc evaluation on this box's trace.

        Trains on the configured training windows, predicts the following
        resizing window, evaluates prediction accuracy against the actual
        demands, and compares sizing policies with the predicted demands as
        sizing input (the Fig. 9/10 pipeline for a single box).

        The body is the stage graph of :mod:`repro.core.stages` —
        forecast → resize → evaluate — which consults the artifact store
        before recomputing a stage (bit-identical to the legacy inline
        pipeline when no persistent store is configured).
        """
        cfg = self.config
        if self.box.n_windows < cfg.training_windows + cfg.horizon_windows:
            raise ValueError(
                f"box {self.box.box_id} has {self.box.n_windows} windows; "
                f"need {cfg.training_windows + cfg.horizon_windows} for "
                f"train + horizon"
            )
        from repro.core import stages  # local: stages imports this module

        return stages.run_box_stages(self)
