"""Parallel fleet execution engine.

Per-box ATM work is embarrassingly parallel: the paper deploys ATM *per
box*, and nothing a box's controller computes depends on any other box.
This module turns that structure into wall-clock speedup by fanning
per-box work across a :class:`~concurrent.futures.ProcessPoolExecutor`
with chunked scheduling, while keeping three guarantees:

1. **Deterministic aggregation.**  Results are always returned in the
   input (box) order, no matter which worker finished first.
2. **Bit-identical serial fallback.**  ``jobs=1`` (the default, also
   selectable via ``REPRO_JOBS=1``) runs the exact same per-item function
   in-process, in order — byte-for-byte the pre-engine behaviour.  The
   per-box computations themselves are deterministic (every random draw
   is seeded per fit), so ``jobs=N`` produces numerically identical
   results; only wall-clock changes.
3. **Workers never regenerate input data.**  Items (e.g. ``BoxTrace``
   objects) are pickled and shipped to the workers; helpers that build
   fleets (``repro.trace.generator``, ``repro.benchhelpers.fleetcache``)
   are never invoked inside a worker.  See
   ``REPRO_FORBID_FLEET_GENERATION`` in :mod:`repro.trace.generator` for
   the enforcement hook the test suite uses.

The number of workers is resolved as: explicit ``jobs`` argument →
``REPRO_JOBS`` environment variable → 1 (serial).  ``jobs <= 0`` means
"all available cores".

Robustness knobs (both default off, preserving the fail-fast contract):

* ``retries`` — bounded, deterministic per-item retry: an item that
  raises is re-invoked up to ``retries`` more times before the exception
  propagates.  Attempt numbers are published to
  :mod:`repro.core.faults`, so transient (``once``) injected faults
  clear on the retry while sticky faults keep failing deterministically.
* ``timeout`` — wall-clock bound (seconds) on a parallel ``map``/
  ``imap``; on expiry, queued chunks are cancelled and a ``TimeoutError``
  reports how many chunks completed.  The serial path ignores it
  (nothing to cancel in-process).

Scale: dispatch is *windowed*.  :meth:`FleetExecutor.imap` submits at
most a few chunks per worker at a time and yields results in input order
as their chunks land, so a 6,000-box fleet never has 6,000 task payloads
queued in the IPC pipe nor 6,000 results parked in the parent —
in-flight descriptors and the out-of-order buffer stay proportional to
the worker count, not the fleet.  :meth:`FleetExecutor.map` is
``list(imap(...))``: one dispatch path, two consumption styles.

Worker observability: each chunk ships its worker-process metrics
snapshot back with its results, and the parent merges them into the
session registry — ``jobs=N`` reports the same :mod:`repro.obs` counters
as ``jobs=1``.  Every chunk also records its worker's peak RSS under the
``proc.peak_rss_bytes`` gauge (merged by max), so ``--metrics-json``
reports the fleet's true memory high-water mark across all processes.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.core import faults, runtime

__all__ = ["JOBS_ENV_VAR", "FleetExecutor", "resolve_jobs", "default_chunksize"]

#: In-flight chunks per worker for windowed dispatch: deep enough that no
#: worker ever idles waiting for the parent, shallow enough that pending
#: payloads and buffered results stay O(workers), not O(fleet).
_INFLIGHT_CHUNKS_PER_WORKER = 4

#: Environment variable consulted when no explicit ``jobs`` is given
#: (parsed by :mod:`repro.core.runtime`).
JOBS_ENV_VAR = runtime.JOBS_ENV_VAR

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument → ``REPRO_JOBS`` → 1 (serial).

    ``jobs <= 0`` (argument or environment) selects all available cores.
    """
    if jobs is None:
        env = runtime.env_jobs()
        jobs = 1 if env is None else env
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def default_chunksize(n_items: int, jobs: int) -> int:
    """Chunk size targeting ~4 chunks per worker.

    Small enough that a slow box cannot straggle a whole worker's share,
    large enough that per-task pickling overhead stays amortized.
    """
    if n_items <= 0:
        return 1
    return max(1, math.ceil(n_items / (max(1, jobs) * 4)))


def _run_item(fn: Callable[..., R], item: Any, common: tuple, retries: int) -> R:
    """Apply ``fn`` once, retrying up to ``retries`` times on exception."""
    for attempt in range(retries + 1):
        try:
            with faults.attempt_context(attempt):
                return fn(item, *common)
        except Exception:
            if attempt == retries:
                raise
            obs.inc("executor.retries")
    raise AssertionError("unreachable")  # pragma: no cover


def _run_chunk_items(
    chunk_fn: Callable[..., Sequence[R]],
    items: Sequence[Any],
    common: tuple,
    retries: int,
) -> List[R]:
    """Apply a whole-chunk function once, retrying the chunk on exception.

    ``chunk_fn`` sees all items of the chunk together (the fused training
    plane gathers cross-box mega-batches this way) and must return one
    result per item, in input order.  Retries are chunk-granular: a
    raising chunk re-runs every item of the chunk under the next attempt
    number, so transient (``once``) injected faults still clear.
    """
    for attempt in range(retries + 1):
        try:
            with faults.attempt_context(attempt):
                results = list(chunk_fn(items, *common))
        except Exception:
            if attempt == retries:
                raise
            obs.inc("executor.retries")
            continue
        if len(results) != len(items):
            raise RuntimeError(
                f"chunk function returned {len(results)} results for "
                f"{len(items)} items"
            )
        return results
    raise AssertionError("unreachable")  # pragma: no cover


def _run_chunk(
    fn: Callable[..., R],
    items: Sequence[Any],
    common: tuple,
    retries: int,
    chunk_fn: Optional[Callable[..., Sequence[R]]] = None,
) -> Tuple[List[R], dict]:
    """Worker entry point: one chunk, in order, plus the worker's metrics.

    The registry is reset first — fork-started workers inherit the
    parent's counters, and pool processes run many chunks back to back —
    so the returned snapshot covers exactly this chunk's work.
    """
    obs.reset_metrics()
    if chunk_fn is not None:
        results = _run_chunk_items(chunk_fn, items, common, retries)
    else:
        results = [_run_item(fn, item, common, retries) for item in items]
    obs.record_peak_rss()
    return results, obs.metrics_snapshot()


class FleetExecutor:
    """Maps a per-item function over a fleet's boxes, serially or in parallel.

    Parameters
    ----------
    jobs:
        Worker count; resolved through :func:`resolve_jobs` (``None`` reads
        ``REPRO_JOBS``, defaulting to 1 = serial).
    chunksize:
        Items per scheduled task; defaults to :func:`default_chunksize`.
    mp_context:
        Multiprocessing start method.  Defaults to ``fork`` where available
        (cheap, inherits loaded modules) and the platform default elsewhere.
    retries:
        Extra attempts per item after a first failing call (default 0 =
        fail fast on the first exception, the pre-existing contract).
    timeout:
        Wall-clock bound in seconds for a parallel :meth:`map`; ``None``
        (default) waits indefinitely.  Ignored on the serial path.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunksize: Optional[int] = None,
        mp_context: Optional[str] = None,
        retries: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        if mp_context is None and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self.mp_context = mp_context
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout

    def map(
        self,
        fn: Callable[..., R],
        items: Iterable[T],
        *common: Any,
        chunk_fn: Optional[Callable[..., Sequence[R]]] = None,
    ) -> List[R]:
        """Return ``[fn(item, *common) for item in items]``, possibly in parallel.

        ``fn`` must be a module-level (picklable) callable when ``jobs > 1``.
        Results keep the input order regardless of worker completion order;
        a worker exception propagates to the caller, and chunks not yet
        started are cancelled rather than run to completion (fail fast —
        a poisoned box should not cost the wall-clock of the whole fleet).

        ``chunk_fn``, when given, replaces the per-item loop *inside each
        chunk*: it is called as ``chunk_fn(chunk_items, *common)`` and
        must return one result per item, in order.  Dispatch, ordering,
        windowing and metrics are unchanged — only the intra-chunk
        execution strategy differs (the fused training plane batches all
        boxes of a chunk into cross-box mega-fits this way).
        """
        return list(self.imap(fn, items, *common, chunk_fn=chunk_fn))

    def imap(
        self,
        fn: Callable[..., R],
        items: Iterable[T],
        *common: Any,
        chunk_fn: Optional[Callable[..., Sequence[R]]] = None,
    ) -> Iterator[R]:
        """Yield ``fn(item, *common)`` for each item, in input order.

        The streaming form of :meth:`map`: same dispatch, same ordering,
        same fail-fast and timeout semantics, but results are yielded as
        their chunks complete instead of accumulated in a list, and at
        most ``workers * 4`` chunks are in flight at a time.  Callers that
        fold results incrementally (``run_fleet_atm`` with streaming
        aggregation on) therefore hold O(workers) chunk results, not
        O(fleet).

        Out-of-order completions are buffered until their predecessors
        land, so the caller always sees deterministic input order; the
        buffer is bounded by the in-flight window.

        See :meth:`map` for ``chunk_fn`` semantics; the serial path
        applies it over the same ``chunksize`` slices a parallel run
        would ship, so chunk boundaries are identical at every ``jobs``.
        """
        work = list(items)
        if self.jobs == 1 or len(work) <= 1:
            obs.inc("executor.items", len(work))
            if chunk_fn is not None and work:
                chunk = self.chunksize or default_chunksize(len(work), self.jobs)
                for lo in range(0, len(work), chunk):
                    part = work[lo : lo + chunk]
                    for result in _run_chunk_items(
                        chunk_fn, part, common, self.retries
                    ):
                        yield result
            else:
                for item in work:
                    yield _run_item(fn, item, common, self.retries)
            obs.record_peak_rss()
            return

        chunk = self.chunksize or default_chunksize(len(work), self.jobs)
        chunks = [work[i : i + chunk] for i in range(0, len(work), chunk)]
        workers = min(self.jobs, len(chunks))
        obs.inc("executor.items", len(work))
        obs.inc("executor.chunks", len(chunks))
        context = (
            multiprocessing.get_context(self.mp_context) if self.mp_context else None
        )
        window = workers * _INFLIGHT_CHUNKS_PER_WORKER
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        pending: dict = {}  # future -> chunk index
        buffered: dict = {}  # chunk index -> chunk results
        next_submit = 0
        next_yield = 0
        completed = 0
        wait_on_shutdown = True
        try:
            while next_yield < len(chunks):
                while next_submit < len(chunks) and len(pending) < window:
                    part = chunks[next_submit]
                    future = pool.submit(
                        _run_chunk, fn, part, common, self.retries, chunk_fn
                    )
                    pending[future] = next_submit
                    next_submit += 1
                while next_yield in buffered:
                    for item in buffered.pop(next_yield):
                        yield item
                    next_yield += 1
                if next_yield >= len(chunks):
                    break
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                done = (
                    wait(pending, timeout=remaining, return_when=FIRST_COMPLETED).done
                    if remaining is None or remaining > 0
                    else ()
                )
                if not done:
                    for future in pending:
                        future.cancel()
                    # Don't wait for in-flight chunks: a timeout exists
                    # precisely because a worker may be stuck.  Queued
                    # chunks are cancelled; running ones finish in the
                    # background.
                    pool.shutdown(wait=False, cancel_futures=True)
                    wait_on_shutdown = False
                    obs.inc("executor.timeouts")
                    raise TimeoutError(
                        f"fleet map timed out after {self.timeout}s with "
                        f"{completed}/{len(chunks)} chunks completed"
                    ) from None
                for future in done:
                    index = pending.pop(future)
                    part_results, worker_metrics = future.result()
                    buffered[index] = part_results
                    obs.merge_snapshot(worker_metrics)
                    completed += 1
        except BaseException:
            for future in pending:
                future.cancel()
            pool.shutdown(wait=wait_on_shutdown, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        obs.record_peak_rss()
