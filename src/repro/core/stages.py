"""The typed stage graph of a per-box ATM run.

The monolithic ``AtmController.run()`` decomposes into five stages, each
consuming and producing serializable artifacts:

    signature-search ──> temporal-fit ──> forecast ──> resize ──> evaluate

Three of them materialize artifacts in :mod:`repro.store` (temporal fits
are cheap relative to the search and travel inside the forecast artifact;
the resize allocations travel inside the box result):

``spatial``
    The fitted :class:`~repro.prediction.spatial.signatures.SpatialModel`,
    keyed by (training-matrix fingerprint, search-config fingerprint).
    Written by ``search_signature_set`` itself, so *every* caller —
    offline pipeline, online controller warm starts, ablation benches —
    shares one artifact per distinct (data, config) pair.
``forecast``
    The :class:`~repro.prediction.combined.BoxPrediction` for one
    (training matrix, prediction config, horizon) triple.  ε sweeps rerun
    sizing on top of stored forecasts without refitting anything.
``box_result``
    The complete per-box outcome of the fleet pipeline — accuracy,
    reductions, allocations, plus the degradation events that produced
    them — keyed by (box fingerprint, ATM config + active fault plan).
    ``--resume`` skips boxes whose result is already materialized.
``resize_eval``
    One box's :func:`~repro.resizing.evaluate.evaluate_box_resizing`
    sweep for the standalone Fig. 8 study (``repro resize --resume``).

Keys are content-addressed: the *data* fingerprint hashes the demand
matrices the stage actually consumed (so fault-poisoned slices can never
serve clean runs), the *config* fingerprint canonicalizes the governing
dataclasses (stable across field order), and the schema version
(``repro.store/v1``) rejects artifacts written by an incompatible layout.
The active fault plan is folded into the run-level keys for the same
reason as the data fingerprint: a degraded run's artifacts must not leak
into a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core import faults
from repro.core.config import AtmConfig
from repro.core.degrade import DegradationEvent
from repro.core.results import accuracy_for_box
from repro.prediction.combined import BoxPrediction, SpatialTemporalPredictor
from repro.prediction.registry import temporal_model_version
from repro.prediction.spatial.signatures import SPATIAL_STAGE
from repro.resizing.evaluate import (
    BoxReduction,
    ResizingAlgorithm,
    evaluate_box_resizing,
)
from repro.store import (
    ArtifactKey,
    config_fingerprint,
    data_fingerprint,
    default_store,
    get_codec,
    register_codec,
)
from repro.tickets.policy import TicketPolicy
from repro.trace.model import BoxTrace, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.atm import AtmController, BoxAtmResult

__all__ = [
    "BOX_RESULT_STAGE",
    "FORECAST_STAGE",
    "RESIZE_EVAL_STAGE",
    "SPATIAL_STAGE",
    "STAGES",
    "Stage",
    "acquire_forecast",
    "box_fingerprint",
    "box_result_key",
    "evaluate_forecast_stages",
    "forecast_key",
    "probe_forecast",
    "resize_eval_key",
    "run_box_stages",
    "store_forecast",
]

#: Artifact-store stage names (``SPATIAL_STAGE`` re-exported for symmetry).
FORECAST_STAGE = "forecast"
BOX_RESULT_STAGE = "box_result"
RESIZE_EVAL_STAGE = "resize_eval"


@dataclass(frozen=True)
class Stage:
    """One node of the per-box stage graph.

    ``artifact`` names the store stage the node materializes (empty for
    in-memory-only nodes); ``consumes`` lists upstream node names.
    """

    name: str
    consumes: Tuple[str, ...]
    artifact: str
    description: str


#: The per-box ATM stage graph, in topological order.
STAGES: Tuple[Stage, ...] = (
    Stage(
        name="signature-search",
        consumes=(),
        artifact=SPATIAL_STAGE,
        description="two-step signature search over the training matrix",
    ),
    Stage(
        name="temporal-fit",
        consumes=("signature-search",),
        artifact="",
        description="per-signature temporal models (travel inside the forecast)",
    ),
    Stage(
        name="forecast",
        consumes=("temporal-fit",),
        artifact=FORECAST_STAGE,
        description="full-box demand forecast for the resizing window",
    ),
    Stage(
        name="resize",
        consumes=("forecast",),
        artifact=RESIZE_EVAL_STAGE,
        description="MCKP sizing / policy comparison on the forecast",
    ),
    Stage(
        name="evaluate",
        consumes=("forecast", "resize"),
        artifact=BOX_RESULT_STAGE,
        description="accuracy + ticket-reduction evaluation of one box",
    ),
)


# ------------------------------------------------------------------- keys
def box_fingerprint(box: BoxTrace) -> str:
    """Content fingerprint of everything a run reads from one box.

    A rendered scenario's fingerprint is folded in when present, so two
    scenarios sharing a fleet seed can never collide in the store; legacy
    boxes (``scenario_fp`` unset/None) hash exactly as before, keeping
    pre-scenario artifacts addressable.
    """
    payload = {
        "box_id": box.box_id,
        "interval_minutes": box.interval_minutes,
        "capacity": {r.value: box.capacity(r) for r in Resource},
        "allocations": {r.value: box.allocations(r) for r in Resource},
        "demands": box.demand_matrix(),
    }
    scenario_fp = getattr(box, "scenario_fp", None)
    if scenario_fp:
        payload["scenario"] = scenario_fp
    return config_fingerprint(payload)


def forecast_key(train_demands: np.ndarray, config: AtmConfig) -> ArtifactKey:
    """Key of the forecast produced from ``train_demands`` under ``config``.

    Depends only on the training matrix, the prediction config and the
    horizon — *not* on ε or the sizing policies — so sizing-side sweeps
    share one stored forecast per box.
    """
    return ArtifactKey(
        stage=FORECAST_STAGE,
        data_fp=data_fingerprint(train_demands),
        config_fp=config_fingerprint(
            {
                "prediction": config.prediction,
                "horizon": config.horizon_windows,
                "temporal_model_version": temporal_model_version(
                    config.prediction.temporal_model
                ),
            }
        ),
    )


def box_result_key(box: BoxTrace, config: AtmConfig, degrade: bool = True) -> ArtifactKey:
    """Key of one box's complete pipeline outcome.

    Folds the active fault plan in so artifacts computed under injected
    faults can never serve a clean run (and vice versa).
    """
    return ArtifactKey(
        stage=BOX_RESULT_STAGE,
        data_fp=box_fingerprint(box),
        config_fp=config_fingerprint(
            {
                "config": config,
                "degrade": degrade,
                "faults": faults.active_plan(),
            }
        ),
    )


def resize_eval_key(
    box: BoxTrace,
    sizing_by_resource: Dict[Resource, Optional[np.ndarray]],
    resources: Sequence[Resource],
    policy: TicketPolicy,
    algorithms: Sequence[ResizingAlgorithm],
    eval_windows: Optional[int],
    epsilon_pct: float,
    degrade: bool = True,
) -> ArtifactKey:
    """Key of one box's standalone resizing sweep (the Fig. 8 study)."""
    return ArtifactKey(
        stage=RESIZE_EVAL_STAGE,
        data_fp=config_fingerprint(
            {
                "box": box_fingerprint(box),
                "sizing": {
                    resource.value: sizing_by_resource.get(resource)
                    for resource in resources
                },
            }
        ),
        config_fp=config_fingerprint(
            {
                "resources": [resource.value for resource in resources],
                "policy": policy,
                "algorithms": list(algorithms),
                "eval_windows": eval_windows,
                "epsilon_pct": epsilon_pct,
                "degrade": degrade,
                "faults": faults.active_plan(),
            }
        ),
    )


# ------------------------------------------------------------ orchestrator
def probe_forecast(
    controller: "AtmController",
) -> Tuple[np.ndarray, Optional[ArtifactKey], Optional[BoxPrediction]]:
    """Materialize the training slice and probe the forecast artifact.

    The pre-fit half of the forecast stage, shared by the per-box and the
    fleet-fused orchestrators: fault hooks fire inside
    ``_training_demands`` (so poisoned slices change the key rather than
    serve stale artifacts), then the store is consulted.  Returns
    ``(demands, key, prediction)`` with ``key``/``prediction`` ``None``
    when there is no persistent store / no stored forecast.
    """
    demands = controller._training_demands()
    store = default_store()
    key = forecast_key(demands, controller.config) if store.persistent else None
    # Disk-only: the in-memory tier already caches the expensive half
    # (the spatial model) and forecasts are cheap to rebuild in-process.
    prediction = store.get(key, memory=False) if key is not None else None
    if prediction is not None:
        obs.inc("stages.forecast.hits")
    return demands, key, prediction


def store_forecast(key: Optional[ArtifactKey], prediction: BoxPrediction) -> None:
    """Persist a freshly computed forecast artifact (no-op without a key)."""
    if key is not None:
        default_store().put(key, prediction, memory=False)


def acquire_forecast(controller: "AtmController") -> BoxPrediction:
    """The forecast stage: serve the stored artifact or fit and predict.

    With a persistent store a stored forecast short-circuits the signature
    search and every temporal fit, and the run proceeds straight to
    sizing.  Without a store the compute path below is the bit-identical
    legacy pipeline.
    """
    cfg = controller.config
    horizon = cfg.horizon_windows
    if controller.is_fitted:
        # Legacy pre-fitted path: honour whatever the caller fitted.
        return controller.predict(horizon)
    demands, key, prediction = probe_forecast(controller)
    if prediction is None:
        with obs.span("atm.fit"):
            controller._predictor = SpatialTemporalPredictor(
                cfg.prediction
            ).fit(demands)
        prediction = controller.predict(horizon)
        store_forecast(key, prediction)
    return prediction


def evaluate_forecast_stages(
    controller: "AtmController", prediction: BoxPrediction
) -> "BoxAtmResult":
    """The resize → evaluate stages downstream of an acquired forecast."""
    from repro.core.atm import BoxAtmResult

    box = controller.box
    cfg = controller.config
    horizon = cfg.horizon_windows
    per_resource = controller.split_prediction(prediction)

    lo = cfg.training_windows
    actual = box.demand_matrix()[:, lo : lo + horizon]
    # Peak windows: actual usage above the ticket threshold.
    peak_thresholds = np.concatenate(
        [
            cfg.policy.alpha * box.allocations(Resource.CPU),
            cfg.policy.alpha * box.allocations(Resource.RAM),
        ]
    )
    accuracy = accuracy_for_box(
        box.box_id,
        actual,
        prediction.predictions,
        peak_thresholds,
        prediction.signature_ratio,
    )

    reductions: Dict[Tuple[Resource, ResizingAlgorithm], BoxReduction] = {}
    m = box.n_vms
    for resource in (Resource.CPU, Resource.RAM):
        rows = slice(0, m) if resource is Resource.CPU else slice(m, 2 * m)
        results = evaluate_box_resizing(
            box,
            resource,
            cfg.policy,
            cfg.algorithms,
            eval_demands=actual[rows],
            sizing_demands=per_resource[resource],
            epsilon_pct=cfg.epsilon_pct,
            lower_bounds=controller._default_lower_bounds(resource),
        )
        for result in results:
            reductions[(resource, result.algorithm)] = result

    allocations = controller.resize(per_resource)
    return BoxAtmResult(
        box_id=box.box_id,
        accuracy=accuracy,
        reductions=reductions,
        predicted=per_resource,
        allocations=allocations,
    )


def run_box_stages(controller: "AtmController") -> "BoxAtmResult":
    """Run the forecast → resize → evaluate stages for one controller.

    This is the body of :meth:`AtmController.run`: identical arithmetic,
    decomposed into :func:`acquire_forecast` (store-aware fit + predict)
    and :func:`evaluate_forecast_stages` (sizing and evaluation) so the
    fleet-fused orchestrator can interleave many boxes' fits between the
    two halves without changing what any single box computes.
    """
    return evaluate_forecast_stages(controller, acquire_forecast(controller))


# ----------------------------------------------------------------- codecs
def _encode_forecast(prediction: BoxPrediction):
    spatial_codec = get_codec(SPATIAL_STAGE)
    assert spatial_codec is not None
    sp_arrays, sp_meta = spatial_codec.encode(prediction.spatial)
    arrays = {"predictions": np.asarray(prediction.predictions, dtype=float)}
    for name, arr in sp_arrays.items():
        arrays[f"spatial__{name}"] = arr
    return arrays, {"temporal_model": prediction.temporal_model, "spatial": sp_meta}


def _decode_forecast(arrays, meta) -> BoxPrediction:
    spatial_codec = get_codec(SPATIAL_STAGE)
    assert spatial_codec is not None
    prefix = "spatial__"
    sp_arrays = {
        name[len(prefix) :]: arr
        for name, arr in arrays.items()
        if name.startswith(prefix)
    }
    return BoxPrediction(
        predictions=np.array(arrays["predictions"], dtype=float),
        spatial=spatial_codec.decode(sp_arrays, meta["spatial"]),
        temporal_model=str(meta["temporal_model"]),
    )


def _encode_events(events: Sequence[DegradationEvent]) -> List[dict]:
    return [event.to_dict() for event in events]


def _decode_events(items: Sequence[dict]) -> List[DegradationEvent]:
    return [
        DegradationEvent(
            box_id=str(item["box_id"]),
            stage=str(item["stage"]),
            rung=str(item["rung"]),
            reason=str(item["reason"]),
            step=None if item.get("step") is None else int(item["step"]),
        )
        for item in items
    ]


def _encode_reduction(reduction: BoxReduction) -> dict:
    # int()/bool(): ticket counts and feasibility may arrive as numpy
    # scalars, which the JSON header writer rejects.
    return {
        "box_id": reduction.box_id,
        "resource": reduction.resource.value,
        "algorithm": reduction.algorithm.value,
        "tickets_before": int(reduction.tickets_before),
        "tickets_after": int(reduction.tickets_after),
        "feasible": bool(reduction.feasible),
    }


def _decode_reduction(item: dict) -> BoxReduction:
    return BoxReduction(
        box_id=str(item["box_id"]),
        resource=Resource(item["resource"]),
        algorithm=ResizingAlgorithm(item["algorithm"]),
        tickets_before=int(item["tickets_before"]),
        tickets_after=int(item["tickets_after"]),
        feasible=bool(item["feasible"]),
    )


def _encode_box_result(value):
    """Encode the pipeline's per-box ``(result | None, events)`` pair."""
    result, events = value
    arrays = {}
    meta = {"events": _encode_events(events), "failed": result is None}
    if result is not None:
        meta["box_id"] = result.box_id
        meta["accuracy"] = {
            "ape": float(result.accuracy.ape),
            "peak_ape": float(result.accuracy.peak_ape),
            "signature_ratio": float(result.accuracy.signature_ratio),
        }
        meta["reductions"] = [
            _encode_reduction(r) for r in result.reductions.values()
        ]
        for resource, arr in result.predicted.items():
            arrays[f"predicted__{resource.value}"] = np.asarray(arr, dtype=float)
        for resource, arr in result.allocations.items():
            arrays[f"alloc__{resource.value}"] = np.asarray(arr, dtype=float)
    return arrays, meta


def _decode_box_result(arrays, meta):
    from repro.core.atm import BoxAtmResult
    from repro.core.results import PredictionAccuracy

    events = _decode_events(meta["events"])
    if meta["failed"]:
        return None, events
    box_id = str(meta["box_id"])
    reductions = {}
    for item in meta["reductions"]:
        reduction = _decode_reduction(item)
        reductions[(reduction.resource, reduction.algorithm)] = reduction
    result = BoxAtmResult(
        box_id=box_id,
        accuracy=PredictionAccuracy(
            box_id=box_id,
            ape=float(meta["accuracy"]["ape"]),
            peak_ape=float(meta["accuracy"]["peak_ape"]),
            signature_ratio=float(meta["accuracy"]["signature_ratio"]),
        ),
        reductions=reductions,
        predicted={
            resource: np.array(arrays[f"predicted__{resource.value}"], dtype=float)
            for resource in Resource
            if f"predicted__{resource.value}" in arrays
        },
        allocations={
            resource: np.array(arrays[f"alloc__{resource.value}"], dtype=float)
            for resource in Resource
            if f"alloc__{resource.value}" in arrays
        },
    )
    return result, events


def _encode_resize_eval(value):
    """Encode a resize sweep's ``(reductions, events)`` pair."""
    reductions, events = value
    meta = {
        "reductions": [_encode_reduction(r) for r in reductions],
        "events": _encode_events(events),
    }
    return {}, meta


def _decode_resize_eval(arrays, meta):
    return (
        [_decode_reduction(item) for item in meta["reductions"]],
        _decode_events(meta["events"]),
    )


register_codec(FORECAST_STAGE, _encode_forecast, _decode_forecast)
register_codec(BOX_RESULT_STAGE, _encode_box_result, _decode_box_result)
register_codec(RESIZE_EVAL_STAGE, _encode_resize_eval, _decode_resize_eval)
