"""Seeded fleets shared across benchmarks.

Fleet generation is deterministic in the seed, so benches can share one
fleet per scale without re-generating it; the cache keeps benchmark wall
time dominated by the algorithms under study rather than by data synthesis.

The ``lru_cache`` is **per process**.  The parallel execution engine
(:mod:`repro.core.executor`) therefore never asks a pool worker to look a
fleet up: the parent resolves the fleet once and ships each worker the
pickled ``BoxTrace`` objects of its chunk.  A worker calling
:func:`repro.trace.generator.generate_fleet` would regenerate the whole
fleet per process — ``tests/core/test_executor.py`` pins this down by
forbidding generation (``REPRO_FORBID_FLEET_GENERATION``) around a
parallel run.
"""

from __future__ import annotations

from functools import lru_cache

from repro.trace.generator import FleetConfig, generate_fleet
from repro.trace.model import FleetTrace

__all__ = ["characterization_fleet", "pipeline_fleet"]

#: Seed shared by all benchmarks (reported in EXPERIMENTS.md).
BENCH_SEED = 20160628


@lru_cache(maxsize=4)
def characterization_fleet(n_boxes: int = 200) -> FleetTrace:
    """One-day fleet used by the Section II benches (Figs. 2, 3, 8).

    The paper characterizes a single day (April 3, 2015); one day keeps the
    trace small while every per-box statistic stays well defined.
    """
    cfg = FleetConfig(n_boxes=n_boxes, days=1, seed=BENCH_SEED)
    return generate_fleet(cfg, name=f"characterization-{n_boxes}")


@lru_cache(maxsize=4)
def pipeline_fleet(n_boxes: int = 60) -> FleetTrace:
    """Six-day fleet used by the ATM pipeline benches (Figs. 5-7, 9, 10).

    Five training days plus the prediction day, mirroring the paper's
    gap-free 400-box subset at a scale a laptop reproduces in minutes.
    """
    cfg = FleetConfig(n_boxes=n_boxes, days=6, seed=BENCH_SEED + 1)
    return generate_fleet(cfg, name=f"pipeline-{n_boxes}")
