"""Parallel-scaling harness shared by the benches and the smoke tests.

:func:`scaling_report` times ``run_fleet_atm`` on one fleet at several
worker counts, verifies every run produces *numerically identical*
aggregates (the engine's core guarantee), and returns printable rows.
The signature cache is cleared before each timed run so later runs
cannot freeload on clusterings computed by earlier ones — each worker
count pays the full cost and the speedup column measures the engine,
not the cache.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import AtmConfig
from repro.core.executor import resolve_jobs
from repro.core.pipeline import FleetAtmResult, run_fleet_atm
from repro.prediction.spatial.cache import SIGNATURE_CACHE
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm
from repro.trace.generator import FleetConfig, generate_fleet
from repro.trace.model import FleetTrace, Resource

__all__ = ["bench_jobs", "fingerprint_result", "scaling_report", "quick_scaling_report"]


def bench_jobs() -> int:
    """Worker count for the bench harness: ``REPRO_JOBS`` or 1 (serial)."""
    return resolve_jobs(None)


def _nan_safe(value: float) -> object:
    """Make a float comparable under ``==`` even when it is ``nan``."""
    if isinstance(value, float) and value != value:
        return "nan"
    return value


def fingerprint_result(result: FleetAtmResult) -> Tuple:
    """Everything the Fig. 9/10 benches aggregate, as a comparable tuple.

    Two runs with this fingerprint equal are numerically identical for
    every downstream table: per-box accuracies (order included), per-box
    ticket counts, and the fleet-level means.  ``nan`` metrics (legitimate
    for degenerate boxes) compare equal to themselves.
    """
    accuracies = tuple(
        (a.box_id, _nan_safe(a.ape), _nan_safe(a.peak_ape), _nan_safe(a.signature_ratio))
        for a in result.accuracies
    )
    reductions = tuple(
        (r.box_id, r.resource.value, r.algorithm.value, r.tickets_before, r.tickets_after)
        for r in result.reduction.results
    )
    return (
        accuracies,
        reductions,
        _nan_safe(result.mean_ape()),
        _nan_safe(result.mean_ape(peak=True)),
        _nan_safe(result.mean_signature_ratio()),
        tuple(
            _nan_safe(result.mean_reduction(resource, algorithm))
            for resource in (Resource.CPU, Resource.RAM)
            for algorithm in ResizingAlgorithm
        ),
    )


def scaling_report(
    fleet: FleetTrace,
    jobs_list: Sequence[int] = (1, 2, 4),
    config: Optional[AtmConfig] = None,
) -> Tuple[List[List[float]], Dict[int, FleetAtmResult]]:
    """Time ``run_fleet_atm`` per worker count; assert identical results.

    Returns ``(rows, results)`` where each row is
    ``[jobs, seconds, speedup vs jobs=1]`` in ``jobs_list`` order.
    Raises ``AssertionError`` if any worker count changes any aggregate.
    """
    cfg = config or AtmConfig()
    rows: List[List[float]] = []
    results: Dict[int, FleetAtmResult] = {}
    baseline_seconds: Optional[float] = None
    baseline_fingerprint: Optional[Tuple] = None
    for jobs in jobs_list:
        SIGNATURE_CACHE.clear()
        start = time.perf_counter()
        result = run_fleet_atm(fleet, cfg, jobs=jobs)
        elapsed = time.perf_counter() - start
        fingerprint = fingerprint_result(result)
        if baseline_fingerprint is None:
            baseline_seconds = elapsed
            baseline_fingerprint = fingerprint
        else:
            assert fingerprint == baseline_fingerprint, (
                f"jobs={jobs} changed the fleet aggregates vs jobs={jobs_list[0]}"
            )
        rows.append([jobs, elapsed, baseline_seconds / elapsed])
        results[jobs] = result
    SIGNATURE_CACHE.clear()
    return rows, results


def quick_scaling_report(
    n_boxes: int = 6,
    jobs_list: Sequence[int] = (1, 2),
    seed: int = 20160628,
) -> Tuple[List[List[float]], Dict[int, FleetAtmResult]]:
    """Small-fleet smoke run: cheap temporal model, seconds not minutes.

    Used by ``bench_parallel_scaling.py --quick`` and the tier-1 test that
    keeps the harness from rotting.
    """
    fleet = generate_fleet(
        FleetConfig(n_boxes=n_boxes, days=6, seed=seed), name=f"scaling-{n_boxes}"
    )
    config = AtmConfig.with_clustering(
        ClusteringMethod.CBC, temporal_model="seasonal_mean"
    )
    return scaling_report(fleet, jobs_list=jobs_list, config=config)
