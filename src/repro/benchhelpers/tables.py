"""Fixed-width table printing so every benchmark emits the same rows/series
the paper's figures plot."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["format_row", "print_table", "print_series"]


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """Format one row with right-aligned numeric cells."""
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            parts.append(f"{cell:>{width}.2f}")
        else:
            parts.append(f"{str(cell):>{width}}")
    return "  ".join(parts)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    min_width: int = 8,
) -> None:
    """Print a titled fixed-width table."""
    rows = [list(r) for r in rows]
    widths = [max(min_width, len(h)) for h in headers]
    print()
    print(f"== {title}")
    print(format_row(headers, widths))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print(format_row(row, widths))


def print_series(
    title: str, pairs: Iterable[Tuple[float, float]], x_label: str = "x", y_label: str = "F(x)"
) -> None:
    """Print an (x, y) series — the textual form of a figure's CDF curve."""
    print()
    print(f"== {title}")
    print(f"{x_label:>10}  {y_label:>10}")
    for x, y in pairs:
        print(f"{x:>10.3f}  {y:>10.3f}")
