"""Shared utilities for the benchmark harness (one bench per paper figure)."""

from repro.benchhelpers.fleetcache import characterization_fleet, pipeline_fleet
from repro.benchhelpers.tables import format_row, print_series, print_table

__all__ = [
    "characterization_fleet",
    "format_row",
    "pipeline_fleet",
    "print_series",
    "print_table",
]
