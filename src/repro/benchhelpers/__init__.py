"""Shared utilities for the benchmark harness (one bench per paper figure)."""

from repro.benchhelpers.fleetcache import characterization_fleet, pipeline_fleet
from repro.benchhelpers.scaling import (
    bench_jobs,
    quick_scaling_report,
    scaling_report,
)
from repro.benchhelpers.tables import format_row, print_series, print_table

__all__ = [
    "bench_jobs",
    "characterization_fleet",
    "format_row",
    "pipeline_fleet",
    "print_series",
    "print_table",
    "quick_scaling_report",
    "scaling_report",
]
