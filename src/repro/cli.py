"""Command-line interface: ``python -m repro <command>``.

Eight commands cover the workflows an operator would actually run:

* ``characterize`` — the Section II study on a (synthetic or loaded) fleet.
* ``predict``      — full-ATM prediction accuracy (Fig. 9 style).
* ``resize``       — oracle resizing comparison across algorithms (Fig. 8).
* ``online``       — the rolling day-by-day controller (incremental:
  warm-started refits, drift-gated re-search, parallel boxes).
* ``tickets``      — the incident-operations loop: monitor → incidents →
  route → resolve, with SLA clocks and store-served evidence bundles.
* ``testbed``      — the simulated MediaWiki experiment (Figs. 12/13).
* ``generate``     — write a synthetic fleet trace to CSV.
* ``shard``        — build a memory-mapped shard store (synthetic or from
  CSV); ``--shards DIR`` then feeds it to the fleet commands without ever
  materializing the fleet in RAM.

Each command prints the same fixed-width tables the benchmarks produce.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import obs
from repro.benchhelpers.tables import print_table
from repro.core import AtmConfig, run_fleet_atm, run_online_fleet
from repro.core import runtime
from repro.prediction.registry import available_temporal_models
from repro.prediction.spatial.signatures import ClusteringMethod
from repro.resizing.evaluate import ResizingAlgorithm, evaluate_fleet_resizing
from repro.store import STORE_ENV_VAR
from repro.tickets import DEFAULT_THRESHOLDS, correlation_cdfs, fleet_ticket_summary
from repro.tickets.ops.assign import ASSIGN_STRATEGIES
from repro.tickets.policy import TicketPolicy
from repro.trace import (
    FleetConfig,
    generate_fleet,
    load_fleet_csv,
    load_fleet_shards,
    resolve_scenario,
    save_fleet_csv,
    shard_fleet_csv,
)
from repro.trace.model import Resource

__all__ = ["main", "build_parser"]


def _scenario_from_args(args: argparse.Namespace):
    """Resolve ``--scenario`` (falling back to $REPRO_SCENARIO) to a spec."""
    return resolve_scenario(getattr(args, "scenario", None))


def _fleet_from_args(args: argparse.Namespace):
    if getattr(args, "shards", None):
        return load_fleet_shards(args.shards)
    if getattr(args, "input", None):
        return load_fleet_csv(args.input)
    config = FleetConfig(n_boxes=args.boxes, days=args.days, seed=args.seed)
    return generate_fleet(config, scenario=_scenario_from_args(args))


def _print_degradations(report) -> None:
    """Surface a run's degradation ladder events, if any."""
    if report.ok:
        return
    print_table(
        "Degraded boxes (graceful-degradation ladder)",
        ["box", "stage", "rung", "reason"],
        [[e.box_id, e.stage, e.rung, e.reason[:50]] for e in report.events],
    )


def _cmd_characterize(args: argparse.Namespace) -> int:
    fleet = _fleet_from_args(args)
    summary = fleet_ticket_summary(fleet, DEFAULT_THRESHOLDS, first_windows=96)
    rows = []
    for resource in (Resource.CPU, Resource.RAM):
        for threshold in DEFAULT_THRESHOLDS:
            row = summary.row(resource, threshold)
            rows.append(
                [
                    resource.value,
                    int(threshold),
                    row["pct_boxes"],
                    row["mean_tickets"],
                    row["std_tickets"],
                    row["mean_culprits"],
                ]
            )
    print_table(
        f"Ticket characterization — {fleet.n_boxes} boxes / {fleet.n_vms} VMs",
        ["res", "thr%", "%boxes", "tickets", "std", "culprits"],
        rows,
    )
    means = correlation_cdfs(fleet, first_windows=96).means()
    print_table(
        "Spatial correlation (mean of per-box medians)",
        ["measure", "value"],
        [[k, v] for k, v in means.items()],
    )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    fleet = _fleet_from_args(args)
    config = AtmConfig.with_clustering(
        ClusteringMethod(args.method), temporal_model=args.temporal
    )
    resume = _apply_store_args(args)
    result = run_fleet_atm(fleet, config, jobs=args.jobs, resume=resume)
    print_table(
        f"ATM prediction — {args.method} clustering, {args.temporal} temporal model",
        ["metric", "value"],
        [
            ["boxes evaluated", len(result.accuracies)],
            ["signature ratio %", 100.0 * result.mean_signature_ratio()],
            ["mean APE % (all windows)", result.mean_ape()],
            ["mean APE % (peak windows)", result.mean_ape(peak=True)],
        ],
    )
    rows = []
    for algorithm in ResizingAlgorithm:
        rows.append(
            [
                algorithm.value,
                result.mean_reduction(Resource.CPU, algorithm),
                result.mean_reduction(Resource.RAM, algorithm),
            ]
        )
    print_table(
        "Ticket reduction with predicted demands (%)",
        ["algorithm", "CPU", "RAM"],
        rows,
    )
    _print_degradations(result.report)
    return 0


def _cmd_resize(args: argparse.Namespace) -> int:
    fleet = _fleet_from_args(args)
    policy = TicketPolicy(threshold_pct=args.threshold)
    resume = _apply_store_args(args)
    reduction = evaluate_fleet_resizing(
        fleet, policy, tuple(ResizingAlgorithm), eval_windows=96,
        epsilon_pct=args.epsilon, jobs=args.jobs, resume=resume,
    )
    rows = []
    for algorithm in ResizingAlgorithm:
        for resource in (Resource.CPU, Resource.RAM):
            rows.append(
                [
                    algorithm.value,
                    resource.value,
                    reduction.mean_reduction(resource, algorithm),
                    reduction.std_reduction(resource, algorithm),
                ]
            )
    print_table(
        f"Oracle resizing at the {args.threshold:.0f}% threshold (ε={args.epsilon}%)",
        ["algorithm", "res", "mean %", "std"],
        rows,
    )
    _print_degradations(reduction.report)
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    fleet = _fleet_from_args(args)
    config = AtmConfig.with_clustering(
        ClusteringMethod(args.method), temporal_model=args.temporal
    )
    _apply_store_args(args)
    result = run_online_fleet(
        fleet,
        config,
        refit_every_steps=args.refit_every,
        drift_threshold=args.drift_threshold,
        jobs=args.jobs,
    )
    rows = [
        [
            run.box_id,
            len(run.steps),
            run.mean_ape(),
            run.total_tickets(static=True),
            run.total_tickets(),
            run.reduction_percent(),
            len(run.degradations),
        ]
        for run in result.values()
    ]
    print_table(
        f"Online ATM — rolling controller, refit cap {args.refit_every} "
        f"({args.temporal} temporal model)",
        ["box", "steps", "APE %", "static", "ATM", "reduct %", "degr"],
        rows,
    )
    print_table(
        "Online ATM — fleet summary",
        ["metric", "value"],
        [
            ["boxes managed", len(result)],
            ["tickets (static)", result.total_tickets(static=True)],
            ["tickets (ATM)", result.total_tickets()],
            ["reduction %", result.reduction_percent()],
        ],
    )
    _print_degradations(result.report)
    return 0


def _cmd_tickets(args: argparse.Namespace) -> int:
    from repro.tickets.ops import (
        AssignPolicy,
        OpsConfig,
        ScoringPolicy,
        SlaPolicy,
        run_fleet_ops,
    )

    fleet = _fleet_from_args(args)
    resume = _apply_store_args(args)
    # Flags override the env knobs, which override the package defaults.
    queues = args.queues if args.queues is not None else runtime.route_queues()
    ack = (
        args.ack_windows
        if args.ack_windows is not None
        else runtime.sla_ack_windows()
    )
    resolve = (
        args.resolve_windows
        if args.resolve_windows is not None
        else runtime.sla_resolve_windows()
    )
    atm = None
    if args.atm_evidence:
        if not runtime.store_dir():
            raise SystemExit("--atm-evidence requires --store or $REPRO_STORE")
        atm = AtmConfig.with_clustering(
            ClusteringMethod(args.method), temporal_model=args.temporal
        )
    config = OpsConfig(
        policy=TicketPolicy(threshold_pct=args.threshold),
        max_gap_windows=args.max_gap,
        scoring=ScoringPolicy(),
        assign=AssignPolicy(n_queues=queues, strategy=args.strategy),
        sla=SlaPolicy(ack_windows=ack, resolve_windows=resolve),
        atm=atm,
    )
    result = run_fleet_ops(fleet, config, jobs=args.jobs, resume=resume)
    ack_min, resolve_min = config.sla.deadlines_minutes(config.policy)
    ratio = result.tickets_per_incident()
    spatial = result.spatial_incident_share()
    print_table(
        f"Ticket operations — {result.boxes} boxes, "
        f"{args.threshold:.0f}% threshold, SLA ack {ack_min} min / "
        f"resolve {resolve_min} min",
        ["metric", "value"],
        [
            ["tickets", result.tickets],
            ["incidents", result.incidents],
            ["tickets/incident", "n/a" if ratio is None else ratio],
            ["spatial share %", "n/a" if spatial is None else 100.0 * spatial],
            ["evidence bundles", result.evidence_bundles],
            ["peak open incidents", result.max_open],
            ["ack breaches", result.ack_breaches],
            ["resolve breaches", result.resolve_breaches],
        ],
    )
    print_table(
        f"Routing — {config.assign.n_queues} queues ({config.assign.strategy})",
        ["queue", "incidents", "breaches"],
        [
            [queue, count, result.queue_breaches[queue]]
            for queue, count in enumerate(result.queue_counts)
        ],
    )
    if result.top_incidents:
        print_table(
            "Top incidents by triage score",
            ["box", "windows", "tk", "vms", "score", "q", "ack", "rslv", "SLA"],
            [
                [
                    row.box_id,
                    f"{row.start_window}-{row.end_window}",
                    row.n_tickets,
                    row.n_vms,
                    row.score,
                    row.queue,
                    row.ack_window,
                    row.resolve_window,
                    "BREACH" if (row.ack_breached or row.resolve_breached) else "ok",
                ]
                for row in result.top_incidents
            ],
        )
    print(f"assignment digest {result.assignment_digest}")
    print(f"evidence digest   {result.evidence_digest}")
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.testbed.experiment import TestbedConfig, run_testbed_experiment

    config = TestbedConfig(duration_windows=args.hours * 4, seed=args.seed)
    original = run_testbed_experiment(resizing=False, config=config)
    resized = run_testbed_experiment(resizing=True, config=config)
    print_table(
        "MediaWiki testbed — tickets",
        ["run", "tickets"],
        [["original", original.tickets()], ["ATM resized", resized.tickets()]],
    )
    rows = []
    for wiki in ("wiki-one", "wiki-two"):
        rows.append(
            [
                wiki,
                1000.0 * original.mean_response_time(wiki),
                1000.0 * resized.mean_response_time(wiki),
                original.mean_throughput(wiki),
                resized.mean_throughput(wiki),
            ]
        )
    print_table(
        "Application performance",
        ["wiki", "RT orig ms", "RT resz ms", "TP orig", "TP resz"],
        rows,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = FleetConfig(n_boxes=args.boxes, days=args.days, seed=args.seed)
    fleet = generate_fleet(config, scenario=_scenario_from_args(args))
    save_fleet_csv(fleet, args.output)
    print(
        f"wrote {args.output}: {fleet.n_boxes} boxes, {fleet.n_vms} VMs, "
        f"{fleet.boxes[0].n_windows} windows"
    )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.store import generate_fleet_shards

    if args.input:
        manifest = shard_fleet_csv(args.input, args.output).manifest
    else:
        # Streaming: boxes are generated and written one at a time, so the
        # store can exceed RAM even at build time.  --jobs fans generation
        # across processes; the resulting store is byte-identical.
        config = FleetConfig(n_boxes=args.boxes, days=args.days, seed=args.seed)
        manifest = generate_fleet_shards(
            config, args.output, jobs=args.jobs,
            scenario=_scenario_from_args(args),
        )
    scenario_note = ""
    if manifest.scenario is not None:
        scenario_note = f" [scenario {manifest.scenario['name']}]"
    print(
        f"wrote shard store {args.output}: {manifest.n_boxes} boxes, "
        f"{manifest.n_vms} VMs, {manifest.total_bytes / 1e6:.1f} MB"
        f"{scenario_note}"
    )
    return 0


def _add_fleet_arguments(parser: argparse.ArgumentParser, days: int) -> None:
    parser.add_argument("--boxes", type=int, default=40, help="synthetic fleet size")
    parser.add_argument("--days", type=int, default=days, help="trace length in days")
    parser.add_argument("--seed", type=int, default=20160628, help="generator seed")
    parser.add_argument(
        "--input", type=str, default=None,
        help="load a fleet CSV instead of generating one",
    )
    parser.add_argument(
        "--shards", type=str, default=None, metavar="DIR",
        help="open a memory-mapped shard store (see the `shard` command) "
        "instead of generating or loading a fleet; workers map per-box "
        "slices, nothing is materialized in RAM",
    )
    _add_scenario_argument(parser)


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", type=str, default=None, metavar="NAME|SPEC.json",
        help="trace scenario to render the synthetic fleet under: a named "
        "scenario (see repro.trace.NAMED_SCENARIOS, e.g. paper-fig2, "
        "web-diurnal, batch, spiky, ramp, weekend-heavy, mixed, "
        "regime-shift) or a path to a ScenarioSpec JSON file "
        "(default: $REPRO_SCENARIO or paper-fig2, the calibrated profile)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser, resume: bool = True) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the per-box fan-out "
        "(default: $REPRO_JOBS or 1 = serial; 0 = all cores)",
    )
    parser.add_argument(
        "--metrics-json", type=str, default=None, metavar="PATH",
        help="write the run's pipeline metrics (repro.metrics/v1 schema: "
        "counters + span timers + gauges, incl. peak RSS and bytes "
        "mapped) to PATH as JSON",
    )
    parser.add_argument(
        "--store", type=str, default=None, metavar="DIR",
        help="persistent artifact store directory (default: $REPRO_STORE; "
        "unset = in-memory caching only)",
    )
    if resume:
        parser.add_argument(
            "--resume", action="store_true",
            help="serve boxes whose result artifacts are already materialized "
            "in the store instead of recomputing them (requires --store or "
            "$REPRO_STORE; aggregates are bit-identical to a fresh run)",
        )


def _apply_store_args(args: argparse.Namespace) -> bool:
    """Install ``--store`` into the environment; return the resume flag.

    The store root travels via ``REPRO_STORE`` rather than a parameter so
    forked pool workers inherit it with no extra plumbing.
    """
    store = getattr(args, "store", None)
    if store:
        os.environ[STORE_ENV_VAR] = store
    resume = bool(getattr(args, "resume", False))
    if resume and not runtime.store_dir():
        raise SystemExit("--resume requires --store or $REPRO_STORE")
    return resume


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATM (Active Ticket Managing) — DSN 2016 reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    characterize = sub.add_parser(
        "characterize", help="Section II ticket/correlation study"
    )
    _add_fleet_arguments(characterize, days=1)
    characterize.set_defaults(func=_cmd_characterize)

    predict = sub.add_parser("predict", help="full-ATM prediction + reduction")
    _add_fleet_arguments(predict, days=6)
    _add_jobs_argument(predict)
    predict.add_argument(
        "--method",
        choices=[m.value for m in ClusteringMethod],
        default="cbc",
        help="signature clustering method",
    )
    predict.add_argument(
        "--temporal",
        choices=list(available_temporal_models()),
        default="neural",
        help="temporal model for the signature series",
    )
    predict.set_defaults(func=_cmd_predict)

    resize = sub.add_parser("resize", help="oracle resizing comparison")
    _add_fleet_arguments(resize, days=1)
    _add_jobs_argument(resize)
    resize.add_argument("--threshold", type=float, default=60.0)
    resize.add_argument("--epsilon", type=float, default=5.0)
    resize.set_defaults(func=_cmd_resize)

    online = sub.add_parser(
        "online", help="rolling online controller (day-by-day active sizing)"
    )
    _add_fleet_arguments(online, days=7)
    # Online runs warm-resume implicitly through --store (every refit's
    # parameter state is content-addressed), so no explicit --resume flag.
    _add_jobs_argument(online, resume=False)
    online.add_argument(
        "--refit-every", type=int, default=1, dest="refit_every", metavar="K",
        help="cadence cap on the signature re-search: re-run at least "
        "every K steps (default 1 = every step, the legacy path); with "
        "the drift gate on, drift can pull the search forward, so a "
        "large cap is safe",
    )
    online.add_argument(
        "--drift-threshold", type=float, default=None, dest="drift_threshold",
        metavar="X",
        help="drift score (rise in spatial reconstruction error over the "
        "fit-time baseline) above which the signature search re-runs "
        "early (default 0.15; only consulted between cadence refits "
        "while REPRO_DRIFT_GATE is on)",
    )
    online.add_argument(
        "--method",
        choices=[m.value for m in ClusteringMethod],
        default="cbc",
        help="signature clustering method",
    )
    online.add_argument(
        "--temporal",
        choices=list(available_temporal_models()),
        default="neural",
        help="temporal model for the signature series",
    )
    online.set_defaults(func=_cmd_online)

    tickets = sub.add_parser(
        "tickets",
        help="incident operations: monitor → incidents → route → resolve",
    )
    _add_fleet_arguments(tickets, days=1)
    _add_jobs_argument(tickets)
    tickets.add_argument(
        "--threshold", type=float, default=60.0,
        help="ticket threshold in percent of allocation (Eq. 6 alpha)",
    )
    tickets.add_argument(
        "--max-gap", type=int, default=1, dest="max_gap", metavar="G",
        help="windows of silence that still merge tickets into one incident",
    )
    tickets.add_argument(
        "--queues", type=int, default=None, metavar="N",
        help="responder queues (default: $REPRO_ROUTE_QUEUES or 2)",
    )
    tickets.add_argument(
        "--strategy", choices=list(ASSIGN_STRATEGIES), default="round_robin",
        help="incident → queue assignment strategy",
    )
    tickets.add_argument(
        "--ack-windows", type=int, default=None, dest="ack_windows", metavar="W",
        help="SLA ack deadline in ticketing windows "
        "(default: $REPRO_SLA_ACK_WINDOWS or 1)",
    )
    tickets.add_argument(
        "--resolve-windows", type=int, default=None, dest="resolve_windows",
        metavar="W",
        help="SLA resolve deadline in ticketing windows "
        "(default: $REPRO_SLA_RESOLVE_WINDOWS or 4)",
    )
    tickets.add_argument(
        "--atm-evidence", action="store_true", dest="atm_evidence",
        help="attach the forecast and resize allocations a prior `predict` "
        "run materialized in the artifact store to each in-horizon "
        "incident's evidence bundle (requires --store or $REPRO_STORE; "
        "--method/--temporal must match the predict run)",
    )
    tickets.add_argument(
        "--method",
        choices=[m.value for m in ClusteringMethod],
        default="cbc",
        help="signature clustering method of the ATM run --atm-evidence reads",
    )
    tickets.add_argument(
        "--temporal",
        choices=list(available_temporal_models()),
        default="neural",
        help="temporal model of the ATM run --atm-evidence reads",
    )
    tickets.set_defaults(func=_cmd_tickets)

    testbed = sub.add_parser("testbed", help="simulated MediaWiki experiment")
    testbed.add_argument("--hours", type=int, default=6)
    testbed.add_argument("--seed", type=int, default=42)
    testbed.set_defaults(func=_cmd_testbed)

    generate = sub.add_parser("generate", help="write a synthetic fleet CSV")
    generate.add_argument("output", type=str, help="output CSV path")
    generate.add_argument("--boxes", type=int, default=20)
    generate.add_argument("--days", type=int, default=7)
    generate.add_argument("--seed", type=int, default=20160628)
    _add_scenario_argument(generate)
    generate.set_defaults(func=_cmd_generate)

    shard = sub.add_parser(
        "shard", help="build a memory-mapped shard store (synthetic or from CSV)"
    )
    shard.add_argument("output", type=str, help="shard store directory")
    shard.add_argument("--boxes", type=int, default=20)
    shard.add_argument("--days", type=int, default=7)
    shard.add_argument("--seed", type=int, default=20160628)
    shard.add_argument(
        "--input", type=str, default=None,
        help="convert this fleet CSV instead of generating synthetically",
    )
    shard.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for synthetic generation (default: $REPRO_JOBS "
        "or 1 = serial; 0 = all cores); the store is byte-identical at any "
        "worker count",
    )
    _add_scenario_argument(shard)
    shard.set_defaults(func=_cmd_shard)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_path = getattr(args, "metrics_json", None)
    if metrics_path:
        obs.reset_metrics()  # scope the snapshot to this command
    try:
        code = args.func(args)
    finally:
        # Write the snapshot even when the command raises: a degraded or
        # failing run is exactly when the breach/degradation counters are
        # worth having on disk.
        if metrics_path:
            obs.write_metrics_json(metrics_path)
            print(f"wrote metrics to {metrics_path}")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
