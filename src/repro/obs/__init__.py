"""Lightweight pipeline observability: counters and span timers.

Every fleet-scale entry point (the Fig. 9/10 pipeline, the online rolling
controller, the resizing sweep, the parallel executor) records what it did
here — stage wall-clock spans, cache hits, degradation fallbacks, retries,
tickets avoided — so a run can explain where its time and its tickets went
without a profiler.

Design constraints, in order:

1. **Near-zero overhead.**  A counter bump is one dict update; a span is
   two ``perf_counter`` calls.  Nothing is recorded per ticketing window,
   only per box / per stage, so the fig10 pipeline pays well under 1%.
2. **Process-safe aggregation.**  Each process owns a plain in-process
   registry; :func:`repro.core.executor._run_chunk` snapshots the worker's
   registry and the parent merges it, so ``jobs=N`` reports the same
   counters as ``jobs=1``.
3. **Optional.**  ``REPRO_METRICS=0`` turns every record call into a no-op
   for overhead-sensitive measurements.

The JSON snapshot schema (``repro.metrics/v1``), also emitted by the CLI's
``--metrics-json``::

    {
      "schema": "repro.metrics/v1",
      "counters": {"<name>": <float>},
      "gauges": {"<name>": <float>},
      "spans": {"<name>": {"count": <int>, "total_s": <float>, "max_s": <float>}}
    }

Counters add across worker snapshots; *gauges* are high-water marks and
merge by maximum (the one aggregation that makes sense for per-process
peak RSS or peak bytes-mapped: the fleet's memory footprint is the worst
process, not the sum of every process's worst moment).

Metric names are dotted ``<subsystem>.<event>`` strings, e.g.
``online.fallback.seasonal`` or ``pipeline.box_run``.
"""

from __future__ import annotations

import json
import resource as _resource
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = [
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "SpanStat",
    "gauge_max",
    "get_registry",
    "inc",
    "metrics_enabled",
    "metrics_snapshot",
    "merge_snapshot",
    "peak_rss_bytes",
    "record_peak_rss",
    "reset_metrics",
    "span",
    "write_metrics_json",
]

#: Set to ``0`` / ``false`` / ``off`` / ``no`` to disable all metric
#: recording (parsed by :mod:`repro.core.runtime`).
METRICS_ENV_VAR = "REPRO_METRICS"

#: Schema identifier stamped into every snapshot.
METRICS_SCHEMA = "repro.metrics/v1"


def metrics_enabled() -> bool:
    """Whether recording is on (default) — ``REPRO_METRICS=0`` disables."""
    # Lazy import: obs must stay importable without dragging in repro.core.
    from repro.core.runtime import metrics_enabled as _enabled

    return _enabled()


@dataclass
class SpanStat:
    """Accumulated timing of one named span."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds


@dataclass
class MetricsRegistry:
    """In-process metric store: float counters, max-gauges, span timers."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    spans: Dict[str, SpanStat] = field(default_factory=dict)

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (no-op when metrics are off)."""
        if not metrics_enabled():
            return
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (no-op when off).

        Gauges are high-water marks: repeated observations keep the max,
        and worker snapshots merge by max rather than by sum.
        """
        if not metrics_enabled():
            return
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under span ``name`` (no-op when off)."""
        if not metrics_enabled():
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            stat = self.spans.get(name)
            if stat is None:
                stat = self.spans[name] = SpanStat()
            stat.add(time.perf_counter() - start)

    def snapshot(self) -> dict:
        """JSON-able state under the ``repro.metrics/v1`` schema."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: {"count": s.count, "total_s": s.total_s, "max_s": s.max_s}
                for name, s in self.spans.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and span counts/totals add; gauges and span maxima take
        the max.  Used by the executor to aggregate worker-process metrics.
        """
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snapshot.get('schema')!r}; "
                f"expected {METRICS_SCHEMA!r}"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in snapshot.get("gauges", {}).items():
            current = self.gauges.get(name)
            if current is None or float(value) > current:
                self.gauges[name] = float(value)
        for name, raw in snapshot.get("spans", {}).items():
            stat = self.spans.get(name)
            if stat is None:
                stat = self.spans[name] = SpanStat()
            stat.count += int(raw["count"])
            stat.total_s += float(raw["total_s"])
            stat.max_s = max(stat.max_s, float(raw["max_s"]))

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.spans.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def inc(name: str, value: float = 1.0) -> None:
    """Bump a counter on the default registry."""
    _REGISTRY.inc(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge on the default registry."""
    _REGISTRY.gauge_max(name, value)


def peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize so
    the gauge is platform-independent.
    """
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def record_peak_rss(name: str = "proc.peak_rss_bytes") -> int:
    """Record the current peak RSS under gauge ``name``; returns the bytes."""
    peak = peak_rss_bytes()
    gauge_max(name, float(peak))
    return peak


def span(name: str):
    """Context manager timing a block on the default registry."""
    return _REGISTRY.span(name)


def metrics_snapshot() -> dict:
    """Snapshot of the default registry (``repro.metrics/v1``)."""
    return _REGISTRY.snapshot()


def merge_snapshot(snapshot: dict) -> None:
    """Merge a worker snapshot into the default registry."""
    _REGISTRY.merge(snapshot)


def reset_metrics() -> None:
    """Clear the default registry (start of a measured run)."""
    _REGISTRY.reset()


def write_metrics_json(path: str) -> None:
    """Write the default registry's snapshot to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_snapshot(), fh, indent=2, sort_keys=True)
        fh.write("\n")
