"""Naive and seasonal baseline predictors.

These are the cheap reference points every serious temporal model must beat.
``SeasonalNaivePredictor`` (repeat yesterday) and ``SeasonalMeanPredictor``
(average the same time-of-day slot over the training days) are surprisingly
strong on diurnal data-center series and serve as the overhead floor in the
prediction-cost benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.prediction.base import TemporalPredictor, validate_history, validate_horizon
from repro.prediction.temporal.seasonal import phase_aligned_slot_means

__all__ = [
    "LastValuePredictor",
    "MovingAveragePredictor",
    "SeasonalNaivePredictor",
    "SeasonalMeanPredictor",
]


class LastValuePredictor(TemporalPredictor):
    """Forecast every future window as the last observed value."""

    def __init__(self) -> None:
        self._history = None

    def fit(self, history: Sequence[float]) -> "LastValuePredictor":
        self._history = validate_history(history, minimum=1)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        return np.full(horizon, self._history[-1])


class MovingAveragePredictor(TemporalPredictor):
    """Forecast every future window as the mean of the last ``window`` samples."""

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._history = None

    def fit(self, history: Sequence[float]) -> "MovingAveragePredictor":
        self._history = validate_history(history, minimum=1)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        tail = self._history[-self.window :]
        return np.full(horizon, float(tail.mean()))


class SeasonalNaivePredictor(TemporalPredictor):
    """Repeat the last full season (e.g. yesterday's 96 windows)."""

    def __init__(self, period: int = 96) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._history = None

    def fit(self, history: Sequence[float]) -> "SeasonalNaivePredictor":
        self._history = validate_history(history, minimum=self.period)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        last_season = self._history[-self.period :]
        repeats = int(np.ceil(horizon / self.period))
        return np.tile(last_season, repeats)[:horizon]


class SeasonalMeanPredictor(TemporalPredictor):
    """Average each time-of-day slot over all training days.

    More robust than seasonal-naive when individual days carry bursts: the
    per-slot mean smooths one-off spikes while preserving the diurnal shape.
    """

    def __init__(self, period: int = 96) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._history = None
        self._slot_means: np.ndarray = np.array([])

    def fit(self, history: Sequence[float]) -> "SeasonalMeanPredictor":
        arr = validate_history(history, minimum=self.period)
        self._history = arr
        # Phase-align slots to the *end* of the history so the next forecast
        # window continues the season correctly even for partial days.
        self._slot_means = phase_aligned_slot_means(arr, self.period)
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        slots = np.arange(horizon) % self.period
        return self._slot_means[slots]
