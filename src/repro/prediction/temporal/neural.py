"""NumPy multi-layer perceptron predictor (the ATM signature-series model).

The paper predicts signature series with neural networks [7] (PRACTISE).
This module implements that role from scratch: a small fully connected
network trained with Adam on features that are all available a full
prediction horizon ahead of time —

* seasonal lags: the value of the same time-of-day slot on the previous
  ``seasonal_depth`` days,
* the per-slot training mean (a learned prior of the diurnal shape),
* smooth time-of-day encodings (sin/cos).

Because no feature depends on the immediately preceding window, the model
forecasts the whole next day *directly* (no error-compounding iteration),
matching the paper's one-day resizing horizon.

The implementation is deliberately self-contained: forward pass, backprop,
Adam, early stopping — roughly two hundred lines, no frameworks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.prediction.base import TemporalPredictor, validate_history, validate_horizon
from repro.prediction.temporal.seasonal import (
    phase_aligned_slot_means,
    seasonal_feature_matrix,
)

__all__ = ["MlpConfig", "NeuralNetPredictor"]


@dataclass(frozen=True)
class MlpConfig:
    """Hyper-parameters of the MLP signature predictor."""

    hidden_layers: Tuple[int, ...] = (32, 16)
    seasonal_depth: int = 3
    period: int = 96
    learning_rate: float = 1e-2
    batch_size: int = 64
    max_epochs: int = 150
    patience: int = 12
    validation_fraction: float = 0.15
    l2: float = 1e-4
    seed: int = 7

    def __post_init__(self) -> None:
        if any(h < 1 for h in self.hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if self.seasonal_depth < 1:
            raise ValueError("seasonal_depth must be >= 1")
        if self.period < 2:
            raise ValueError("period must be >= 2")
        if not 0.0 < self.validation_fraction < 0.5:
            raise ValueError("validation_fraction must be in (0, 0.5)")


class _Mlp:
    """Bare-bones fully connected regressor with Adam and MSE loss."""

    def __init__(self, sizes: Sequence[int], rng: np.random.Generator) -> None:
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam_m = [np.zeros_like(w) for w in self.weights] + [
            np.zeros_like(b) for b in self.biases
        ]
        self._adam_v = [np.zeros_like(w) for w in self.weights] + [
            np.zeros_like(b) for b in self.biases
        ]
        self._adam_t = 0

    @classmethod
    def from_params(
        cls, weights: Sequence[np.ndarray], biases: Sequence[np.ndarray]
    ) -> "_Mlp":
        """Assemble a network from trained parameters (fresh Adam state)."""
        net = cls.__new__(cls)
        net.weights = [np.asarray(w, dtype=float).copy() for w in weights]
        net.biases = [np.asarray(b, dtype=float).copy() for b in biases]
        net._adam_m = [np.zeros_like(w) for w in net.weights] + [
            np.zeros_like(b) for b in net.biases
        ]
        net._adam_v = [np.zeros_like(w) for w in net.weights] + [
            np.zeros_like(b) for b in net.biases
        ]
        net._adam_t = 0
        return net

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [x]
        out = x
        last = len(self.weights) - 1
        for idx, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if idx != last:
                out = np.maximum(out, 0.0)  # ReLU
            activations.append(out)
        return out, activations

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[0]

    def train_batch(self, x: np.ndarray, y: np.ndarray, lr: float, l2: float) -> float:
        out, acts = self.forward(x)
        n = x.shape[0]
        delta = 2.0 * (out - y) / n  # dMSE/dout
        grads_w: List[np.ndarray] = [np.empty(0)] * len(self.weights)
        grads_b: List[np.ndarray] = [np.empty(0)] * len(self.biases)
        for idx in range(len(self.weights) - 1, -1, -1):
            grads_w[idx] = acts[idx].T @ delta + l2 * self.weights[idx]
            grads_b[idx] = delta.sum(axis=0)
            if idx > 0:
                delta = delta @ self.weights[idx].T
                delta *= acts[idx] > 0  # ReLU gradient
        self._adam_step(grads_w + grads_b, lr)
        return float(((out - y) ** 2).mean())

    def _adam_step(self, grads: List[np.ndarray], lr: float) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_t += 1
        params = self.weights + self.biases
        for k, (param, grad) in enumerate(zip(params, grads)):
            self._adam_m[k] = beta1 * self._adam_m[k] + (1 - beta1) * grad
            self._adam_v[k] = beta2 * self._adam_v[k] + (1 - beta2) * grad * grad
            m_hat = self._adam_m[k] / (1 - beta1**self._adam_t)
            v_hat = self._adam_v[k] / (1 - beta2**self._adam_t)
            param -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def snapshot(self) -> List[np.ndarray]:
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def restore(self, state: List[np.ndarray]) -> None:
        n = len(self.weights)
        for k in range(n):
            self.weights[k] = state[k].copy()
            self.biases[k] = state[n + k].copy()


class NeuralNetPredictor(TemporalPredictor):
    """MLP forecaster over seasonal-lag and time-of-day features."""

    def __init__(self, config: Optional[MlpConfig] = None) -> None:
        self.config = config or MlpConfig()
        self._history = None
        self._net: Optional[_Mlp] = None

    # ------------------------------------------------------------------ features
    def _slot_means(self, arr: np.ndarray) -> np.ndarray:
        return phase_aligned_slot_means(arr, self.config.period)

    def _feature_rows(self, arr: np.ndarray, t_indices: np.ndarray) -> np.ndarray:
        """Feature matrix for (virtual) window indices ``t_indices``.

        Indices may point past the end of the array (forecast windows); only
        lags at ``t - k*period`` for ``k >= 1`` are read, which stay inside
        the history for a one-period horizon.
        """
        return seasonal_feature_matrix(
            arr, t_indices, self._depth, self.config.period, self._slot_mean_vec
        )

    # ------------------------------------------------------------------ training
    def fit(self, history: Sequence[float]) -> "NeuralNetPredictor":
        cfg = self.config
        arr = validate_history(history, minimum=cfg.period + 2)
        depth = min(cfg.seasonal_depth, max(1, arr.size // cfg.period - 1))
        self._depth = depth
        self._slot_mean_vec = self._slot_means(arr)

        start = depth * cfg.period
        if start >= arr.size:
            start = cfg.period
        t_indices = np.arange(start, arr.size)
        features = self._feature_rows(arr, t_indices)
        targets = arr[t_indices][:, None]

        self._x_mean = features.mean(axis=0)
        self._x_std = features.std(axis=0)
        self._x_std[self._x_std < 1e-9] = 1.0
        self._y_mean = float(targets.mean())
        self._y_std = float(targets.std()) or 1.0
        x = (features - self._x_mean) / self._x_std
        y = (targets - self._y_mean) / self._y_std

        rng = np.random.default_rng(cfg.seed)
        order = rng.permutation(x.shape[0])
        n_val = max(1, int(cfg.validation_fraction * x.shape[0]))
        val_idx, train_idx = order[:n_val], order[n_val:]
        if train_idx.size == 0:
            train_idx = val_idx
        x_train, y_train = x[train_idx], y[train_idx]
        x_val, y_val = x[val_idx], y[val_idx]

        sizes = [x.shape[1], *cfg.hidden_layers, 1]
        net = _Mlp(sizes, rng)
        best_val = np.inf
        best_state = net.snapshot()
        stale = 0
        epochs_run = 0
        for _ in range(cfg.max_epochs):
            perm = rng.permutation(x_train.shape[0])
            for lo in range(0, perm.size, cfg.batch_size):
                batch = perm[lo : lo + cfg.batch_size]
                net.train_batch(x_train[batch], y_train[batch], cfg.learning_rate, cfg.l2)
            val_loss = float(((net.predict(x_val) - y_val) ** 2).mean())
            epochs_run += 1
            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_state = net.snapshot()
                stale = 0
            else:
                stale += 1
                if stale >= cfg.patience:
                    break
        net.restore(best_state)
        self._net = net
        self._history = arr
        self._fit_epochs = epochs_run
        return self

    @classmethod
    def _from_batch_state(
        cls,
        config: MlpConfig,
        history: np.ndarray,
        net: _Mlp,
        depth: int,
        slot_mean_vec: np.ndarray,
        x_mean: np.ndarray,
        x_std: np.ndarray,
        y_mean: float,
        y_std: float,
        fit_epochs: int,
    ) -> "NeuralNetPredictor":
        """Assemble a fitted predictor from the batched trainer's state.

        Used by :mod:`repro.prediction.temporal.batched`; the resulting
        object is indistinguishable from one produced by :meth:`fit` (same
        attributes, same vectorized :meth:`predict` path).
        """
        model = cls(config)
        model._net = net
        model._history = history
        model._depth = depth
        model._slot_mean_vec = slot_mean_vec
        model._x_mean = x_mean
        model._x_std = x_std
        model._y_mean = y_mean
        model._y_std = y_std
        model._fit_epochs = fit_epochs
        return model

    # ------------------------------------------------------------------ forecast
    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        assert self._net is not None
        horizon = validate_horizon(horizon)
        arr = self._history
        rows = self._feature_rows(arr, arr.size + np.arange(horizon))
        x = (rows - self._x_mean) / self._x_std
        y = self._net.predict(x)[:, 0]
        return y * self._y_std + self._y_mean
