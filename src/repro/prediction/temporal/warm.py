"""Warm-started temporal refits: resume each online step from the last.

An online controller step advances the training window by one day and
refits every signature MLP.  The previous step's weights are a
near-optimal initializer for the advanced window (arXiv 2007.08092 makes
the same observation for cluster-CPU forecasters), so instead of
cold-training from the He init, :func:`fit_neural_batch_warm` seeds the
batched kernel (:mod:`repro.prediction.temporal.batched`) with the prior
step's flat ``(K, P)`` buffer.  The warm parameters' own validation loss
becomes the early-stopping baseline, so an already-converged batch stops
after ``patience`` epochs instead of re-running the full schedule.

Three safety properties:

* **Validation-loss guard** — warm starts can trap a model in a stale
  optimum after a regime change.  Any model whose new best validation
  loss exceeds ``guard_ratio`` × its previous best is cold-refit (as a
  compacted sub-batch) and spliced back in, so warm-starting never ships
  a model materially worse than the cold path's.
* **Persistence** — every fit's outcome is persisted to the artifact
  store's disk tier (stage ``"warm_params"``), content-addressed by the
  training matrix, the config *and the initializer that produced it*.  A
  restarted run replays the same deterministic chain, hits the same keys,
  and serves each already-computed refit with zero training — interrupted
  online runs warm-resume bit-identically.
* **Gate** — ``REPRO_WARM_REFIT=0`` keeps callers on the cold
  :func:`~repro.prediction.temporal.batched.fit_neural_batch` path, which
  is bit-identical to the serial per-series fits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.prediction.base import validate_history
from repro.prediction.temporal.batched import (
    BatchFitState,
    fit_equal_length_state,
    fit_neural_batch,
    models_from_params,
)
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor
from repro.store import (
    ArtifactKey,
    config_fingerprint,
    data_fingerprint,
    default_store,
    register_codec,
)

__all__ = [
    "GUARD_RATIO",
    "WARM_PATIENCE",
    "WARM_REFIT_ENV_VAR",
    "WARM_STAGE",
    "fit_neural_batch_warm",
    "warm_refit_enabled",
    "warm_state_key",
]

#: Environment variable gating warm-started refits (default: enabled;
#: parsed by :mod:`repro.core.runtime`).
WARM_REFIT_ENV_VAR = "REPRO_WARM_REFIT"

#: Artifact-store stage name of persisted warm-start states.
WARM_STAGE = "warm_params"

#: A warm refit whose best validation loss exceeds ``GUARD_RATIO`` times
#: the previous step's is considered trapped and is cold-refit.  Adjacent
#: online windows overlap by all but one day, yet their validation splits
#: differ, and on stable synthetic workloads that alone produces ratios
#: up to ~16 — so the band leaves 2x headroom over the measured healthy
#: variance.  A model genuinely trapped after a regime change starts (and
#: stays, at fine-tune patience) orders of magnitude above its old best,
#: far past any such band.
GUARD_RATIO = 32.0

#: Early-stopping patience of warm-started fits (fine-tuning, not
#: training): the initializer already sits near the advanced window's
#: optimum, so the cold schedule's patience mostly chases sub-1e-6
#: validation wiggles for tens of epochs.  Guard-triggered cold refits
#: always use the config's full patience.
WARM_PATIENCE = 3


def warm_refit_enabled() -> bool:
    """Whether warm-started refits are enabled (``REPRO_WARM_REFIT``)."""
    # Lazy import: prediction must stay importable without repro.core.
    from repro.core.runtime import warm_refit_enabled as _enabled

    return _enabled()


def warm_state_key(
    stack: np.ndarray,
    cfg: MlpConfig,
    init: Optional[BatchFitState],
    guard_ratio: float,
) -> ArtifactKey:
    """Content address of one (possibly warm-started) batched fit.

    The initializer is part of the address: a refit's outcome depends on
    the weights it resumed from, so two runs with different refit chains
    (different cadence or drift thresholds) never serve each other's
    states, while a deterministic replay of the *same* chain hits every
    key exactly.
    """
    if init is None:
        init_desc: object = "cold"
    else:
        init_desc = {"params": init.params, "best_val": init.best_val}
    config_fp = config_fingerprint(
        {
            "config": cfg,
            "guard_ratio": guard_ratio,
            "init": init_desc,
            # The effective fine-tune patience shapes the outcome, so a
            # future change must miss (and recompute) old artifacts.
            "patience": cfg.patience if init is None else WARM_PATIENCE,
        }
    )
    return ArtifactKey(WARM_STAGE, data_fingerprint(stack), config_fp)


def fit_neural_batch_warm(
    histories: Sequence[Sequence[float]],
    config: Optional[MlpConfig] = None,
    warm: Optional[BatchFitState] = None,
    guard_ratio: float = GUARD_RATIO,
) -> Tuple[List[NeuralNetPredictor], Optional[BatchFitState]]:
    """Fit one predictor per history, warm-started from a prior state.

    Returns ``(models, state)``; feed ``state`` back as ``warm`` on the
    next refit to chain.  ``warm`` is ignored (cold fit, fresh state) when
    its shape no longer matches — e.g. after a signature re-search changed
    K.  Histories of mixed lengths have no single ``(K, P)`` buffer; those
    fall back to :func:`fit_neural_batch` and carry no state.
    """
    cfg = config or MlpConfig()
    arrs = [validate_history(h, minimum=cfg.period + 2) for h in histories]
    if not arrs or len({arr.size for arr in arrs}) != 1:
        return list(fit_neural_batch(arrs, cfg)), None
    stack = np.stack(arrs)

    init = warm
    if init is not None and (
        init.params.ndim != 2 or init.params.shape[0] != stack.shape[0]
    ):
        init = None
    if init is not None:
        fitted = _fit_with_init(stack, cfg, init, guard_ratio)
        if fitted is not None:
            return fitted
        init = None  # parameter-count mismatch: topology changed, go cold
    return _fit_cold(stack, cfg, guard_ratio)


def _serve_cached(
    stack: np.ndarray, cfg: MlpConfig, key: ArtifactKey
) -> Optional[Tuple[List[NeuralNetPredictor], BatchFitState]]:
    """Serve a persisted refit with zero training, if the store has it."""
    cached = default_store().get(key, memory=False)
    if not isinstance(cached, BatchFitState):
        return None
    if cached.params.ndim != 2 or cached.params.shape[0] != stack.shape[0]:
        return None
    try:
        models = models_from_params(stack, cfg, cached)
    except (ValueError, IndexError):  # stale topology on disk
        return None
    obs.inc("warm.resume_hits")
    return models, cached


def _fit_with_init(
    stack: np.ndarray, cfg: MlpConfig, init: BatchFitState, guard_ratio: float
) -> Optional[Tuple[List[NeuralNetPredictor], BatchFitState]]:
    key = warm_state_key(stack, cfg, init, guard_ratio)
    served = _serve_cached(stack, cfg, key)
    if served is not None:
        return served
    with obs.span("warm.fit"):
        try:
            models, state = fit_equal_length_state(
                stack, cfg, init_params=init.params, patience=WARM_PATIENCE
            )
        except ValueError:
            return None
        guard = state.best_val > guard_ratio * init.best_val
        if guard.any():
            # Trapped models get the full cold treatment as a sub-batch;
            # a cold batch of any width is bit-identical per series, so
            # the spliced rows equal what an all-cold fit would produce.
            obs.inc("warm.guard_cold_refits", float(guard.sum()))
            cold_models, cold_state = fit_equal_length_state(stack[guard], cfg)
            for row, model in zip(np.flatnonzero(guard), cold_models):
                models[row] = model
            state.params[guard] = cold_state.params
            state.best_val[guard] = cold_state.best_val
            state.epochs[guard] += cold_state.epochs
        obs.inc("warm.models_warm", float(np.count_nonzero(~guard)))
    default_store().put(key, state, memory=False)
    return models, state


def _fit_cold(
    stack: np.ndarray, cfg: MlpConfig, guard_ratio: float
) -> Tuple[List[NeuralNetPredictor], BatchFitState]:
    key = warm_state_key(stack, cfg, None, guard_ratio)
    served = _serve_cached(stack, cfg, key)
    if served is not None:
        return served
    with obs.span("warm.fit"):
        obs.inc("warm.cold_batches")
        models, state = fit_equal_length_state(stack, cfg)
    default_store().put(key, state, memory=False)
    return models, state


# ----------------------------------------------------------------- codec
def _encode_warm_state(state: BatchFitState):
    arrays = {
        "params": np.asarray(state.params, dtype=float),
        "best_val": np.asarray(state.best_val, dtype=float),
        "epochs": np.asarray(state.epochs, dtype=np.int64),
    }
    return arrays, {}


def _decode_warm_state(arrays, meta) -> BatchFitState:
    return BatchFitState(
        params=np.array(arrays["params"], dtype=float),
        best_val=np.array(arrays["best_val"], dtype=float),
        epochs=np.array(arrays["epochs"], dtype=np.int64),
    )


register_codec(WARM_STAGE, _encode_warm_state, _decode_warm_state)
