"""Additive Holt-Winters (triple exponential smoothing) predictor.

A classical seasonal model: level, trend and a seasonal index per
time-of-day slot, each updated exponentially.  Smoothing parameters can be
fixed or grid-searched on a held-out tail of the training history.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.prediction.base import TemporalPredictor, validate_history, validate_horizon

__all__ = ["HoltWintersPredictor"]


def _smooth(
    series: np.ndarray, period: int, alpha: float, beta: float, gamma: float
) -> Tuple[float, float, np.ndarray, np.ndarray]:
    """Run the additive Holt-Winters recursion.

    Returns the final level, trend, seasonal indices (aligned so index
    ``t % period`` applies to window ``t``), and the one-step in-sample
    fitted values.
    """
    n = series.size
    seasons = n // period
    # Initialization: first-season means.
    level = float(series[:period].mean())
    if seasons >= 2:
        trend = float((series[period : 2 * period].mean() - series[:period].mean()) / period)
    else:
        trend = 0.0
    seasonal = series[:period] - level
    seasonal = seasonal.copy()
    fitted = np.empty(n)
    for t in range(n):
        s_idx = t % period
        fitted[t] = level + trend + seasonal[s_idx]
        prev_level = level
        level = alpha * (series[t] - seasonal[s_idx]) + (1 - alpha) * (level + trend)
        trend = beta * (level - prev_level) + (1 - beta) * trend
        seasonal[s_idx] = gamma * (series[t] - level) + (1 - gamma) * seasonal[s_idx]
    return level, trend, seasonal, fitted


class HoltWintersPredictor(TemporalPredictor):
    """Additive Holt-Winters with optional smoothing-parameter search.

    Parameters
    ----------
    period:
        Seasonal period in windows (96 for daily seasonality at 15 minutes).
    alpha, beta, gamma:
        Fixed smoothing parameters.  Any of them set to ``None`` triggers a
        small grid search minimizing one-step in-sample squared error.
    damp_trend:
        Multiplier applied to the trend per forecast step; values below 1
        keep long-horizon forecasts from running away (data-center usage
        has no sustained linear trends).
    """

    def __init__(
        self,
        period: int = 96,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        gamma: Optional[float] = None,
        damp_trend: float = 0.9,
    ) -> None:
        if period < 2:
            raise ValueError("period must be >= 2")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= damp_trend <= 1.0:
            raise ValueError("damp_trend must be in [0, 1]")
        self.period = period
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.damp_trend = damp_trend
        self._history = None

    def _grid(self, fixed: Optional[float]) -> Sequence[float]:
        return (fixed,) if fixed is not None else (0.05, 0.2, 0.5, 0.8)

    def fit(self, history: Sequence[float]) -> "HoltWintersPredictor":
        arr = validate_history(history, minimum=self.period + 1)
        best = None
        for a, b, g in itertools.product(
            self._grid(self.alpha), self._grid(self.beta), self._grid(self.gamma)
        ):
            level, trend, seasonal, fitted = _smooth(arr, self.period, a, b, g)
            sse = float(((arr - fitted) ** 2).sum())
            if best is None or sse < best[0]:
                best = (sse, a, b, g, level, trend, seasonal)
        assert best is not None
        _, self._alpha_, self._beta_, self._gamma_, level, trend, seasonal = best
        self._level = level
        self._trend = trend
        self._seasonal = seasonal
        self._phase = arr.size % self.period
        self._history = arr
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        out = np.empty(horizon)
        trend = self._trend
        cumulative_trend = 0.0
        for h in range(horizon):
            cumulative_trend += trend
            trend *= self.damp_trend
            s_idx = (self._phase + h) % self.period
            out[h] = self._level + cumulative_trend + self._seasonal[s_idx]
        return out
