"""Temporal prediction models.

The paper plugs neural networks [7] into ATM for the signature series and
cites ARIMA-style models as the classical alternative.  This package
implements that spectrum from scratch:

* :mod:`repro.prediction.temporal.naive` — last-value, moving-average,
  seasonal-naive and seasonal-mean baselines.
* :mod:`repro.prediction.temporal.ar` — autoregressive least-squares models
  with optional seasonal lags.
* :mod:`repro.prediction.temporal.arima` — ARIMA(p, d, q) via the
  Hannan-Rissanen two-stage regression.
* :mod:`repro.prediction.temporal.holtwinters` — additive Holt-Winters
  triple exponential smoothing.
* :mod:`repro.prediction.temporal.neural` — a NumPy multi-layer perceptron
  over seasonal-lag and time-of-day features (the ATM default).
* :mod:`repro.prediction.temporal.batched` — the batched training kernel
  that fits all of a box's signature MLPs in one vectorized pass
  (``REPRO_BATCHED_TEMPORAL=0`` falls back to per-series fits).
* :mod:`repro.prediction.temporal.seasonal` — the shared vectorized
  slot-mean / seasonal-lag feature pipeline.
* :mod:`repro.prediction.temporal.warm` — warm-started refits chaining
  batched fits through persisted ``(K, P)`` parameter states
  (``REPRO_WARM_REFIT=0`` keeps refits cold).
"""

from repro.prediction.temporal.ar import AutoRegressivePredictor
from repro.prediction.temporal.batched import (
    BATCHED_ENV_VAR,
    BatchFitState,
    batched_temporal_enabled,
    fit_neural_batch,
    fit_neural_fused,
)
from repro.prediction.temporal.arima import ArimaPredictor
from repro.prediction.temporal.holtwinters import HoltWintersPredictor
from repro.prediction.temporal.naive import (
    LastValuePredictor,
    MovingAveragePredictor,
    SeasonalMeanPredictor,
    SeasonalNaivePredictor,
)
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor
from repro.prediction.temporal.warm import (
    WARM_REFIT_ENV_VAR,
    fit_neural_batch_warm,
    warm_refit_enabled,
)

__all__ = [
    "BATCHED_ENV_VAR",
    "WARM_REFIT_ENV_VAR",
    "ArimaPredictor",
    "BatchFitState",
    "AutoRegressivePredictor",
    "HoltWintersPredictor",
    "LastValuePredictor",
    "MlpConfig",
    "MovingAveragePredictor",
    "NeuralNetPredictor",
    "SeasonalMeanPredictor",
    "SeasonalNaivePredictor",
    "batched_temporal_enabled",
    "fit_neural_batch",
    "fit_neural_batch_warm",
    "fit_neural_fused",
    "warm_refit_enabled",
]
