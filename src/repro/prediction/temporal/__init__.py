"""Temporal prediction models.

The paper plugs neural networks [7] into ATM for the signature series and
cites ARIMA-style models as the classical alternative.  This package
implements that spectrum from scratch:

* :mod:`repro.prediction.temporal.naive` — last-value, moving-average,
  seasonal-naive and seasonal-mean baselines.
* :mod:`repro.prediction.temporal.ar` — autoregressive least-squares models
  with optional seasonal lags.
* :mod:`repro.prediction.temporal.arima` — ARIMA(p, d, q) via the
  Hannan-Rissanen two-stage regression.
* :mod:`repro.prediction.temporal.holtwinters` — additive Holt-Winters
  triple exponential smoothing.
* :mod:`repro.prediction.temporal.neural` — a NumPy multi-layer perceptron
  over seasonal-lag and time-of-day features (the ATM default).
"""

from repro.prediction.temporal.ar import AutoRegressivePredictor
from repro.prediction.temporal.arima import ArimaPredictor
from repro.prediction.temporal.holtwinters import HoltWintersPredictor
from repro.prediction.temporal.naive import (
    LastValuePredictor,
    MovingAveragePredictor,
    SeasonalMeanPredictor,
    SeasonalNaivePredictor,
)
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor

__all__ = [
    "ArimaPredictor",
    "AutoRegressivePredictor",
    "HoltWintersPredictor",
    "LastValuePredictor",
    "MlpConfig",
    "MovingAveragePredictor",
    "NeuralNetPredictor",
    "SeasonalMeanPredictor",
    "SeasonalNaivePredictor",
]
