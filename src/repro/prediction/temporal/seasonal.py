"""Vectorized seasonal feature pipeline shared by the temporal models.

The MLP signature predictor and the seasonal-mean baseline both need the
same two primitives:

* **phase-aligned slot means** — the mean of each time-of-day slot, with
  slots aligned to the *end* of the history so the first forecast window
  continues the season correctly even when the history length is not a
  multiple of the period;
* **seasonal-lag feature matrices** — for each (virtual) window index, the
  values of the same slot on the previous ``depth`` days, falling back to
  the slot mean when a lag would reach before the start of the history.

Both used to be per-timestep / per-row Python loops; here they are single
``np.bincount`` / fancy-indexing passes.  ``np.bincount`` accumulates in
input order, i.e. in the exact same IEEE-754 addition order as the old
``for t in range(...)`` loop, so the vectorized results are bit-identical
to the originals — the regression tests pin this.

The ``*_batch`` variants operate on a ``(n_series, T)`` matrix of
equal-length histories at once; per-row results are bit-identical to the
single-series functions, which is what lets the batched MLP trainer
(:mod:`repro.prediction.temporal.batched`) reproduce the serial path
exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "phase_aligned_slot_means",
    "phase_aligned_slot_means_batch",
    "seasonal_feature_matrix",
    "seasonal_feature_matrix_batch",
]


def _slot_indices(size: int, period: int) -> np.ndarray:
    """Slot of each timestep, phase-aligned to the end of the history."""
    offset = size % period
    return (np.arange(size) - offset) % period


def _slot_counts(size: int, period: int) -> np.ndarray:
    """Occurrences of each slot (empty slots mapped to 1 for safe division)."""
    counts = np.bincount(_slot_indices(size, period), minlength=period).astype(float)
    counts[counts == 0] = 1.0
    return counts


def phase_aligned_slot_means(arr: np.ndarray, period: int) -> np.ndarray:
    """Per-slot mean of a 1-D history, slots aligned to the history's end."""
    slots = _slot_indices(arr.size, period)
    sums = np.bincount(slots, weights=arr, minlength=period)
    return sums / _slot_counts(arr.size, period)


def phase_aligned_slot_means_batch(matrix: np.ndarray, period: int) -> np.ndarray:
    """Per-slot means of a ``(n_series, T)`` matrix — one bincount pass.

    Each series is offset into its own ``period``-sized bin range; the flat
    row-major traversal keeps every series' accumulation order identical to
    :func:`phase_aligned_slot_means` on that row.
    """
    n_series, size = matrix.shape
    slots = _slot_indices(size, period)
    flat = (np.arange(n_series)[:, None] * period + slots[None, :]).ravel()
    sums = np.bincount(flat, weights=matrix.ravel(), minlength=n_series * period)
    return sums.reshape(n_series, period) / _slot_counts(size, period)


def seasonal_feature_matrix(
    arr: np.ndarray,
    t_indices: np.ndarray,
    depth: int,
    period: int,
    slot_means: np.ndarray,
) -> np.ndarray:
    """Feature rows for window indices ``t_indices`` of a 1-D history.

    Columns: ``depth`` seasonal lags (slot-mean fallback when the lag
    precedes the history), the slot mean, and sin/cos time-of-day
    encodings.  ``t_indices`` may point past the end of the array
    (forecast windows); only lags at ``t - k*period`` for ``k >= 1`` are
    read, which stay inside the history for a one-period horizon.
    """
    return seasonal_feature_matrix_batch(
        arr[None, :], t_indices, depth, period, slot_means[None, :]
    )[0]


def seasonal_feature_matrix_batch(
    matrix: np.ndarray,
    t_indices: np.ndarray,
    depth: int,
    period: int,
    slot_means: np.ndarray,
) -> np.ndarray:
    """Feature tensor ``(n_series, len(t_indices), depth + 3)`` for a batch.

    ``matrix`` is ``(n_series, T)`` and ``slot_means`` ``(n_series,
    period)``; all series share the window indices, so the lag index
    arithmetic is computed once and fancy-indexed across the batch.
    """
    size = matrix.shape[1]
    t_indices = np.asarray(t_indices)
    offset = size % period
    slots = (t_indices - offset) % period  # (n,)
    lag_idx = t_indices[:, None] - period * np.arange(1, depth + 1)[None, :]  # (n, depth)
    valid = (lag_idx >= 0) & (lag_idx < size)
    lag_vals = matrix[:, np.clip(lag_idx, 0, size - 1)]  # (n_series, n, depth)
    fallback = slot_means[:, slots]  # (n_series, n)
    angle = 2.0 * np.pi * slots / period

    features = np.empty((matrix.shape[0], t_indices.size, depth + 3))
    features[:, :, :depth] = np.where(valid[None, :, :], lag_vals, fallback[:, :, None])
    features[:, :, depth] = fallback
    features[:, :, depth + 1] = np.sin(angle)
    features[:, :, depth + 2] = np.cos(angle)
    return features
