"""Batched MLP training kernel: all signature models of a box in one pass.

A box's ATM fit trains one small MLP per signature series — many identical
tiny models over equally shaped data.  Fitting them one by one spends most
of the wall-clock in Python dispatch (hundreds of numpy calls per model per
epoch on 64×9 matrices).  This module stacks the K models along a leading
axis and runs forward, backprop and Adam as 3-D ``np.matmul`` tensor ops:
one Python-level training loop for the whole batch instead of K.

Equivalence to the serial path is exact, not approximate:

* Every series uses the same ``MlpConfig.seed``, so the K serial RNG
  streams are identical; drawing the validation split, weight init and
  per-epoch shuffles once from a single generator reproduces each stream.
* Batched ``np.matmul``/reductions apply the same BLAS/pairwise kernels
  per stacked slice as the 2-D serial ops, so every float op sees the same
  operands in the same order (pinned by
  ``tests/prediction/test_batched_temporal.py``, which asserts
  bit-identical forecasts).
* Early stopping is per-model via a convergence mask: a model whose
  validation loss stalls for ``patience`` epochs leaves the stack exactly
  when its serial twin would break out of the loop, and the batch compacts
  to the survivors — total training work equals the serial path's, with
  the Python dispatch overhead divided by the stack width.  Each model's
  result is its best-validation snapshot, matching
  ``net.restore(best_state)`` serially.
* A shared Adam step counter is valid because a *live* model's step count
  always equals the global one; converged models take no further steps.

Histories of different lengths are grouped and each equal-length group is
batched (within a box all signature series share the training window, so
this is one group in practice).

Set ``REPRO_BATCHED_TEMPORAL=0`` to fall back to per-series serial fits
everywhere the kernel is threaded (``SpatialTemporalPredictor`` → the whole
fig09/fig10 pipeline).  The kernel composes with the process-level
``FleetExecutor`` (PR 1) multiplicatively: processes fan out over boxes,
the batch axis vectorizes within a box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.prediction.base import validate_history
from repro.prediction.temporal.neural import MlpConfig, NeuralNetPredictor, _Mlp
from repro.prediction.temporal.seasonal import (
    phase_aligned_slot_means_batch,
    seasonal_feature_matrix_batch,
)

__all__ = [
    "BATCHED_ENV_VAR",
    "FUSED_SLAB_MODELS",
    "BatchFitState",
    "batched_temporal_enabled",
    "fit_equal_length_state",
    "fit_neural_batch",
    "fit_neural_fused",
    "models_from_params",
]

#: Environment variable gating the batched kernel (default: enabled;
#: parsed by :mod:`repro.core.runtime`).
BATCHED_ENV_VAR = "REPRO_BATCHED_TEMPORAL"

#: Default slab width of the fleet-fused kernel: how many models train in
#: one ``(K, P)`` tensor pass.  Wider slabs amortize more Python dispatch
#: but push the per-epoch working set out of cache; on paper-shaped
#: signature histories (~480 training windows) 64 models is the measured
#: sweet spot — ~1.45× over per-box batches on one core, while 128+
#: regresses — and slabs are bit-identical to any other split because
#: every model's RNG stream and row-local math are independent of its
#: slab neighbours.
FUSED_SLAB_MODELS = 64

_ADAM_BETA1, _ADAM_BETA2, _ADAM_EPS = 0.9, 0.999, 1e-8


def batched_temporal_enabled() -> bool:
    """Whether the batched kernel is enabled (``REPRO_BATCHED_TEMPORAL``)."""
    # Lazy import: prediction must stay importable without repro.core.
    from repro.core.runtime import batched_temporal_enabled as _enabled

    return _enabled()


def fit_neural_batch(
    histories: Sequence[Sequence[float]], config: Optional[MlpConfig] = None
) -> List[NeuralNetPredictor]:
    """Fit one :class:`NeuralNetPredictor` per history in a vectorized pass.

    Returns fitted predictors in input order, each bit-identical to
    ``NeuralNetPredictor(config).fit(history)``.  Histories of equal length
    are trained together; distinct lengths form separate batches.
    """
    cfg = config or MlpConfig()
    arrs = [validate_history(h, minimum=cfg.period + 2) for h in histories]
    fitted: List[Optional[NeuralNetPredictor]] = [None] * len(arrs)
    groups: dict = {}
    for pos, arr in enumerate(arrs):
        groups.setdefault(arr.size, []).append(pos)
    for positions in groups.values():
        if len(positions) == 1:
            # Degenerate one-model batch: the serial fit is the same math
            # with less per-op overhead (the 3-D kernel only pays off at
            # stack width >= 2).
            pos = positions[0]
            fitted[pos] = NeuralNetPredictor(cfg).fit(arrs[pos])
            continue
        stack = np.stack([arrs[pos] for pos in positions])
        for pos, model in zip(positions, _fit_equal_length(stack, cfg)):
            fitted[pos] = model
    return fitted  # type: ignore[return-value]


def fit_neural_fused(
    history_groups: Sequence[Sequence[Sequence[float]]],
    config: Optional[MlpConfig] = None,
    max_models: int = FUSED_SLAB_MODELS,
) -> List[Optional[List[NeuralNetPredictor]]]:
    """Fit many groups' (boxes') signature models in cross-group mega-batches.

    The fleet-fused twin of calling :func:`fit_neural_batch` once per
    group: all series of all groups that share a history length join one
    ragged mega-batch, trained as ``(K, P)`` slabs of at most
    ``max_models`` models, and the fitted predictors are scattered back
    into per-group lists in input order.  Every model is bit-identical to
    its per-group — and therefore per-series serial — fit, because all
    series share ``config.seed`` (identical RNG streams) and every tensor
    op in the kernel is row-local with per-row flat reductions (see the
    y_mean note in :func:`_prepare_batch`); which batch a model happens
    to ride in cannot change its floats.

    Failure isolation mirrors the per-box degradation ladder: a group
    whose histories fail validation (too short, non-finite samples) gets
    ``None`` in the returned list instead of poisoning the shared batch —
    the caller re-runs exactly those groups down its per-box path, where
    the same error re-raises and climbs the ladder as it always did.
    """
    from repro import obs

    cfg = config or MlpConfig()
    validated: List[Optional[List[np.ndarray]]] = []
    for group in history_groups:
        try:
            validated.append(
                [validate_history(h, minimum=cfg.period + 2) for h in group]
            )
        except Exception:
            validated.append(None)
    out: List[Optional[List[NeuralNetPredictor]]] = [
        None if group is None else [None] * len(group) for group in validated
    ]
    flat: List[Tuple[int, int, np.ndarray]] = [
        (gi, si, arr)
        for gi, group in enumerate(validated)
        if group is not None
        for si, arr in enumerate(group)
    ]
    by_length: dict = {}
    for pos, (_, _, arr) in enumerate(flat):
        by_length.setdefault(arr.size, []).append(pos)
    for positions in by_length.values():
        obs.inc("fused.groups")
        obs.gauge_max("fused.models_per_pass", float(min(len(positions), max_models)))
        if len(positions) == 1:
            # Width-1 stacks take the serial fit, like fit_neural_batch's
            # degenerate path (bit-identical, less per-op overhead).
            gi, si, arr = flat[positions[0]]
            out[gi][si] = NeuralNetPredictor(cfg).fit(arr)  # type: ignore[index]
            continue
        stack = np.stack([flat[pos][2] for pos in positions])
        models, _ = fit_equal_length_state(stack, cfg, max_models=max_models)
        for pos, model in zip(positions, models):
            gi, si, _ = flat[pos]
            out[gi][si] = model  # type: ignore[index]
    return out


class _BatchedMlp:
    """K stacked MLPs trained in lock-step with 3-D tensor ops.

    All parameters of one model live in a single contiguous row of a
    ``(K, P)`` buffer; per-layer weight/bias tensors are strided *views*
    into it.  The layout makes the Adam update a handful of whole-buffer
    elementwise ops instead of one op set per layer — elementwise math is
    layout-independent, so every parameter still sees the exact serial
    float sequence.
    """

    def __init__(self, n_models: int, sizes: Sequence[int], rng: np.random.Generator):
        self.n_models = n_models
        # Weights of all layers first, biases after: the L2 gradient term
        # touches exactly params[:, :w_total] as one contiguous slice.
        self._layers: List[Tuple[int, int, int, int]] = []  # (w_off, b_off, in, out)
        w_offset = sum(i * o for i, o in zip(sizes[:-1], sizes[1:]))
        self._w_total = w_offset
        b_offset = w_offset
        w_offset = 0
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            self._layers.append((w_offset, b_offset, fan_in, fan_out))
            w_offset += fan_in * fan_out
            b_offset += fan_out
        self._n_params = b_offset

        self.params = np.empty((n_models, self._n_params))
        self.grads = np.empty((n_models, self._n_params))
        self._build_views()

        for w, b in zip(self.weights, self.biases):
            fan_in = w.shape[1]
            scale = np.sqrt(2.0 / fan_in)  # He init, drawn once: seeds are shared
            w[:] = rng.normal(0.0, scale, size=w.shape[1:])[None]
            b[:] = 0.0
        self._adam_m = np.zeros((n_models, self._n_params))
        self._adam_v = np.zeros((n_models, self._n_params))
        self._adam_t = 0

    def _build_views(self) -> None:
        """Per-layer weight/bias tensors as strided views into the buffers."""
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        self._grads_w: List[np.ndarray] = []
        self._grads_b: List[np.ndarray] = []
        for w_off, b_off, fan_in, fan_out in self._layers:
            w_end, b_end = w_off + fan_in * fan_out, b_off + fan_out
            self.weights.append(self.params[:, w_off:w_end].reshape(-1, fan_in, fan_out))
            self.biases.append(self.params[:, b_off:b_end].reshape(-1, 1, fan_out))
            self._grads_w.append(self.grads[:, w_off:w_end].reshape(-1, fan_in, fan_out))
            self._grads_b.append(self.grads[:, b_off:b_end].reshape(-1, 1, fan_out))

    def forward(self, x: np.ndarray, with_masks: bool = True):
        """Forward pass over ``x`` of shape (K, n, d).

        Returns output, per-layer activations and the ReLU masks (reused by
        backprop instead of re-deriving ``acts > 0``; post-ReLU positivity
        equals pre-ReLU positivity, so the bits match the serial path).
        All elementwise steps run in place on the matmul result — fewer
        temporaries, identical float-op order.
        """
        activations = [x]
        masks = []
        out = x
        last = len(self.weights) - 1
        for idx, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = np.matmul(out, w)
            out += b
            if idx != last:
                np.maximum(out, 0.0, out=out)  # ReLU
                if with_masks:
                    masks.append(out > 0)
            activations.append(out)
        return out, activations, masks

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, with_masks=False)[0]

    def train_batch(self, x: np.ndarray, y: np.ndarray, lr: float, l2: float) -> None:
        """One minibatch step for all K models (same rows for each model)."""
        out, acts, masks = self.forward(x)
        delta = out - y  # dMSE/dout, per model: 2 * (out - y) / n
        delta *= 2.0
        delta /= x.shape[1]
        for idx in range(len(self.weights) - 1, -1, -1):
            np.matmul(acts[idx].transpose(0, 2, 1), delta, out=self._grads_w[idx])
            # np.add.reduce == ndarray.sum minus the Python method wrapper.
            np.add.reduce(delta, axis=1, keepdims=True, out=self._grads_b[idx])
            if idx > 0:
                delta = np.matmul(delta, self.weights[idx].transpose(0, 2, 1))
                delta *= masks[idx - 1]  # ReLU gradient
        # L2 term for every weight (not bias) in one slice op; elementwise,
        # so the per-parameter float sequence matches the serial
        # ``acts.T @ delta + l2 * w``.
        self.grads[:, : self._w_total] += l2 * self.params[:, : self._w_total]
        self._adam_step(lr)

    def _adam_step(self, lr: float) -> None:
        """Adam over the whole flat parameter buffer in one op sequence.

        Mirrors the serial per-parameter update exactly (same expressions,
        in-place where the op order is unchanged); operating on the
        concatenated buffer only changes how the elementwise work is
        chunked, not any individual float op.
        """
        self._adam_t += 1
        c1 = 1 - _ADAM_BETA1**self._adam_t
        c2 = 1 - _ADAM_BETA2**self._adam_t
        grad, m, v = self.grads, self._adam_m, self._adam_v
        m *= _ADAM_BETA1  # m = beta1 * m + (1 - beta1) * grad
        grad_m = grad * (1 - _ADAM_BETA1)
        m += grad_m
        v *= _ADAM_BETA2  # v = beta2 * v + ((1 - beta2) * grad) * grad
        grad_v = grad * (1 - _ADAM_BETA2)
        grad_v *= grad
        v += grad_v
        step = m / c1  # lr * m_hat / (sqrt(v_hat) + eps)
        step *= lr
        denom = v / c2
        np.sqrt(denom, out=denom)
        denom += _ADAM_EPS
        step /= denom
        self.params -= step

    def snapshot(self) -> np.ndarray:
        return self.params.copy()

    def copy_models_into(
        self, dest: np.ndarray, dest_rows: np.ndarray, stack_rows: np.ndarray
    ) -> None:
        """Copy current params of stack rows into ``dest`` at ``dest_rows``."""
        dest[dest_rows] = self.params[stack_rows]

    def compact(self, keep: np.ndarray) -> None:
        """Drop converged models from the stack (boolean ``keep`` mask).

        Per-slice tensor ops are independent, so shrinking the leading axis
        leaves the surviving models' float streams untouched; the dropped
        models' best snapshots were taken before they froze.
        """
        self.n_models = int(keep.sum())
        self.params = self.params[keep]
        self.grads = np.empty_like(self.params)
        self._adam_m = self._adam_m[keep]
        self._adam_v = self._adam_v[keep]
        self._build_views()

    def extract_model(self, snapshot: np.ndarray, index: int) -> _Mlp:
        """Serial :class:`_Mlp` for model ``index`` from a params snapshot."""
        row = snapshot[index]
        weights, biases = [], []
        for w_off, b_off, fan_in, fan_out in self._layers:
            weights.append(row[w_off : w_off + fan_in * fan_out].reshape(fan_in, fan_out))
            biases.append(row[b_off : b_off + fan_out])
        return _Mlp.from_params(weights, biases)


@dataclass
class BatchFitState:
    """Best-validation outcome of one equal-length batched fit.

    ``params`` is the flat ``(K, P)`` best-snapshot buffer in history input
    order, ``best_val`` the per-model best validation loss reached and
    ``epochs`` the per-model epoch count of that fit.  The buffer is a valid
    warm initializer for a refit of the same K-model topology (see
    :mod:`repro.prediction.temporal.warm`), and together with the training
    matrix it fully determines the fitted predictors — serving it back
    through :func:`models_from_params` reproduces them without training.
    """

    params: np.ndarray
    best_val: np.ndarray
    epochs: np.ndarray


class _Prepared(NamedTuple):
    """Deterministic pre-training state shared by fit and resume paths."""

    depth: int
    slot_means: np.ndarray
    x_mean: np.ndarray
    x_std: np.ndarray
    y_mean: np.ndarray
    y_std: np.ndarray
    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    sizes: List[int]
    rng: np.random.Generator


def _prepare_batch(matrix: np.ndarray, cfg: MlpConfig) -> _Prepared:
    """Features, normalization stats and the split — everything before SGD.

    Pure function of ``(matrix, cfg)``: the rng is seeded from the config
    and has consumed exactly one permutation draw (the validation split) on
    return, so continuing fits and store-served resumes agree bit for bit.
    """
    _, size = matrix.shape
    period = cfg.period
    depth = min(cfg.seasonal_depth, max(1, size // period - 1))
    slot_means = phase_aligned_slot_means_batch(matrix, period)

    start = depth * period
    if start >= size:
        start = period
    t_indices = np.arange(start, size)
    features = seasonal_feature_matrix_batch(matrix, t_indices, depth, period, slot_means)
    target_rows = matrix[:, t_indices]  # (K, n)
    targets = target_rows[:, :, None]

    x_mean = features.mean(axis=1)  # (K, d)
    x_std = features.std(axis=1)
    x_std[x_std < 1e-9] = 1.0
    # Scalar y stats per model as flat 1-D reductions: numpy's inner-axis
    # 2-D reduction sums in a different order than the serial path's flat
    # ``targets.mean()``, so a vectorized mean here would drift in the last
    # ulp.  K scalar reductions per fit are free.
    y_mean = np.array([float(row.mean()) for row in target_rows])
    y_std = np.array([float(row.std()) or 1.0 for row in target_rows])
    x = (features - x_mean[:, None, :]) / x_std[:, None, :]
    y = (targets - y_mean[:, None, None]) / y_std[:, None, None]

    # One generator stands in for all K per-series generators: every serial
    # fit seeds identically, so the streams coincide draw for draw.
    rng = np.random.default_rng(cfg.seed)
    n_rows = x.shape[1]
    order = rng.permutation(n_rows)
    n_val = max(1, int(cfg.validation_fraction * n_rows))
    val_idx, train_idx = order[:n_val], order[n_val:]
    if train_idx.size == 0:
        train_idx = val_idx
    sizes = [x.shape[2], *cfg.hidden_layers, 1]
    return _Prepared(
        depth=depth,
        slot_means=slot_means,
        x_mean=x_mean,
        x_std=x_std,
        y_mean=y_mean,
        y_std=y_std,
        x_train=x[:, train_idx],
        y_train=y[:, train_idx],
        x_val=x[:, val_idx],
        y_val=y[:, val_idx],
        sizes=sizes,
        rng=rng,
    )


def _flat_val_losses(net: _BatchedMlp, x_val: np.ndarray, y_val: np.ndarray) -> np.ndarray:
    """Per-model validation MSE as flat 1-D reductions (see y_mean note)."""
    squared = (net.predict(x_val) - y_val) ** 2
    return np.array([float(row.mean()) for row in squared.reshape(net.n_models, -1)])


def _models_from_batch(
    matrix: np.ndarray,
    cfg: MlpConfig,
    prepared: _Prepared,
    net: _BatchedMlp,
    best_state: np.ndarray,
    epochs_run: np.ndarray,
) -> List[NeuralNetPredictor]:
    return [
        NeuralNetPredictor._from_batch_state(
            config=cfg,
            history=matrix[index].copy(),
            net=net.extract_model(best_state, index),
            depth=prepared.depth,
            slot_mean_vec=prepared.slot_means[index].copy(),
            x_mean=prepared.x_mean[index].copy(),
            x_std=prepared.x_std[index].copy(),
            y_mean=float(prepared.y_mean[index]),
            y_std=float(prepared.y_std[index]),
            fit_epochs=int(epochs_run[index]),
        )
        for index in range(matrix.shape[0])
    ]


def models_from_params(
    matrix: np.ndarray, cfg: MlpConfig, state: BatchFitState
) -> List[NeuralNetPredictor]:
    """Reconstruct the fitted predictors of a batch from its saved state.

    Zero training: the normalization stats are recomputed (they are a pure
    function of the data) and the saved ``(K, P)`` buffer is decoded into
    per-model networks.  Used by the warm-resume path to serve a
    store-persisted refit without replaying it.
    """
    prepared = _prepare_batch(matrix, cfg)
    net = _BatchedMlp(matrix.shape[0], prepared.sizes, prepared.rng)
    return _models_from_batch(matrix, cfg, prepared, net, state.params, state.epochs)


def _fit_equal_length(matrix: np.ndarray, cfg: MlpConfig) -> List[NeuralNetPredictor]:
    """Train the K models of one equal-length batch; mirrors serial ``fit``."""
    return fit_equal_length_state(matrix, cfg)[0]


def fit_equal_length_state(
    matrix: np.ndarray,
    cfg: MlpConfig,
    init_params: Optional[np.ndarray] = None,
    patience: Optional[int] = None,
    max_models: Optional[int] = None,
) -> Tuple[List[NeuralNetPredictor], BatchFitState]:
    """Train one equal-length batch, optionally warm-started.

    Without ``init_params`` this is exactly the cold kernel (serial-fit
    bit-identity preserved).  With a ``(K, P)`` buffer, training resumes
    from those weights: the buffer overwrites the He init *after* the init
    draw (keeping the rng stream aligned with a cold fit), and the warm
    parameters' own validation loss seeds the early-stopping baseline, so
    the fit can never return weights worse on validation than its starting
    point.  ``patience`` overrides ``cfg.patience`` — warm refits pass a
    short fine-tune patience, since the initializer is already near the
    advanced window's optimum and a full cold-schedule patience mostly
    chases sub-1e-6 validation wiggles.

    ``max_models`` bounds the tensor-stack width: a wider batch is trained
    as consecutive slabs of at most that many models, each an independent
    full fit.  Splitting is bit-identical to an unbounded stack — every
    model draws from its own copy of the shared-seed RNG stream and all
    tensor math is row-local — so the bound is purely a working-set knob
    for the fleet-fused path (see :data:`FUSED_SLAB_MODELS`).  The claim
    leans on every reduction in the kernel being per-row flat (see the
    y_mean note in :func:`_prepare_batch`): a vectorized inner-axis mean
    would put a ``(1, n)`` remainder slab in a different float family
    than a wide stack, and the slab-straddling equivalence tests would
    catch it.
    """
    n_models = matrix.shape[0]
    if max_models is not None:
        if max_models < 1:
            raise ValueError(f"max_models must be >= 1, got {max_models}")
        if n_models > max_models:
            models: List[NeuralNetPredictor] = []
            parts: List[BatchFitState] = []
            for lo in range(0, n_models, max_models):
                hi = lo + max_models
                sub_init = None if init_params is None else init_params[lo:hi]
                sub_models, sub_state = fit_equal_length_state(
                    matrix[lo:hi], cfg, sub_init, patience
                )
                models.extend(sub_models)
                parts.append(sub_state)
            state = BatchFitState(
                params=np.vstack([part.params for part in parts]),
                best_val=np.concatenate([part.best_val for part in parts]),
                epochs=np.concatenate([part.epochs for part in parts]),
            )
            return models, state
    prepared = _prepare_batch(matrix, cfg)
    x_train, y_train = prepared.x_train, prepared.y_train
    x_val, y_val = prepared.x_val, prepared.y_val
    rng = prepared.rng

    net = _BatchedMlp(n_models, prepared.sizes, rng)
    if init_params is not None:
        if init_params.shape != net.params.shape:
            raise ValueError(
                f"warm-start buffer shape {init_params.shape} does not match "
                f"batch parameter shape {net.params.shape}"
            )
        net.params[:] = init_params
    best_state = net.snapshot()  # indexed by original model position
    if init_params is not None:
        best_val = _flat_val_losses(net, x_val, y_val)
    else:
        best_val = np.full(n_models, np.inf)
    effective_patience = cfg.patience if patience is None else patience
    stale = np.zeros(n_models, dtype=int)
    epochs_run = np.zeros(n_models, dtype=int)
    # Models still training, as original positions into the (shrinking) stack.
    live = np.arange(n_models)
    for _ in range(cfg.max_epochs):
        if live.size == 0:
            break
        perm = rng.permutation(x_train.shape[1])
        x_epoch, y_epoch = x_train[:, perm], y_train[:, perm]  # one gather per epoch
        for lo in range(0, perm.size, cfg.batch_size):
            hi = lo + cfg.batch_size
            net.train_batch(
                x_epoch[:, lo:hi], y_epoch[:, lo:hi], cfg.learning_rate, cfg.l2
            )
        val_loss = _flat_val_losses(net, x_val, y_val)
        epochs_run[live] += 1
        improved = val_loss < best_val[live] - 1e-6
        if improved.any():
            net.copy_models_into(best_state, live[improved], np.flatnonzero(improved))
            best_val[live[improved]] = val_loss[improved]
            stale[live[improved]] = 0
        stale[live[~improved]] += 1
        frozen = stale[live] >= effective_patience
        if frozen.any():
            # Converged models leave the tensor stack — the batch narrows to
            # exactly the work the serial path would still be doing.
            keep = ~frozen
            live = live[keep]
            net.compact(keep)
            x_train, y_train = x_train[keep], y_train[keep]
            x_val, y_val = x_val[keep], y_val[keep]

    models = _models_from_batch(matrix, cfg, prepared, net, best_state, epochs_run)
    state = BatchFitState(params=best_state, best_val=best_val, epochs=epochs_run)
    return models, state
