"""ARIMA(p, d, q) forecasting via the Hannan-Rissanen procedure.

The paper cites ARIMA [10] as the classical temporal model that "is not able
to capture well bursty behaviors" — we implement it both as a baseline and
as a pluggable signature-series model.  Estimation is the two-stage
Hannan-Rissanen regression, which needs nothing beyond least squares:

1. Fit a long autoregression to the (differenced) series and extract its
   residuals as innovation estimates.
2. Regress the series on ``p`` of its own lags and ``q`` lagged residuals.

Forecasting iterates the ARMA recursion with future innovations set to zero
and then integrates the differencing back.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.prediction.base import TemporalPredictor, validate_history, validate_horizon
from repro.timeseries.smoothing import difference

__all__ = ["ArimaPredictor"]


class ArimaPredictor(TemporalPredictor):
    """ARIMA(p, d, q) with Hannan-Rissanen estimation.

    Parameters
    ----------
    p, d, q:
        Autoregressive order, differencing order, moving-average order.
    long_ar_order:
        Order of the stage-1 long autoregression (defaults to a heuristic
        based on ``p + q``).
    """

    def __init__(self, p: int = 2, d: int = 1, q: int = 1, long_ar_order: int = 0) -> None:
        if p < 0 or d < 0 or q < 0:
            raise ValueError("p, d and q must be non-negative")
        if p == 0 and q == 0:
            raise ValueError("need p > 0 or q > 0")
        self.p = p
        self.d = d
        self.q = q
        self.long_ar_order = long_ar_order or max(8, 2 * (p + q))
        self._history = None

    def fit(self, history: Sequence[float]) -> "ArimaPredictor":
        arr = validate_history(history, minimum=self.d + self.p + self.q + 4)
        work = arr.copy()
        for _ in range(self.d):
            work = difference(work, 1)

        # Stage 1: long AR for innovation estimates.
        k = min(self.long_ar_order, max(1, work.size // 3))
        resid = np.zeros_like(work)
        if work.size > k + 1:
            design = np.column_stack(
                [np.ones(work.size - k)]
                + [work[k - lag : work.size - lag] for lag in range(1, k + 1)]
            )
            target = work[k:]
            sol, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
            resid[k:] = target - design @ sol

        # Stage 2: regress on p AR lags and q MA (residual) lags.
        start = max(self.p, self.q, k)
        n_rows = work.size - start
        if n_rows < self.p + self.q + 2:
            # Degenerate short history: fall back to a drift-free mean model.
            self._mean_only = True
            self._level = float(work.mean())
            self._work = work
            self._resid = resid
            self._history = arr
            return self
        cols = [np.ones(n_rows)]
        cols += [work[start - lag : work.size - lag] for lag in range(1, self.p + 1)]
        cols += [resid[start - lag : work.size - lag] for lag in range(1, self.q + 1)]
        design = np.column_stack(cols)
        target = work[start:]
        sol, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        self._mean_only = False
        self._intercept = float(sol[0])
        self._phi = sol[1 : 1 + self.p]
        self._theta = sol[1 + self.p :]
        self._work = work
        self._resid = resid
        self._history = arr
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        if self._mean_only:
            diffed_forecast = np.full(horizon, self._level)
        else:
            pad = max(self.p, self.q)
            values = np.concatenate([self._work[-pad:], np.empty(horizon)])
            resid = np.concatenate([self._resid[-pad:], np.zeros(horizon)])
            for step in range(horizon):
                t = pad + step
                ar_part = sum(
                    self._phi[lag - 1] * values[t - lag] for lag in range(1, self.p + 1)
                )
                ma_part = sum(
                    self._theta[lag - 1] * resid[t - lag] for lag in range(1, self.q + 1)
                )
                values[t] = self._intercept + ar_part + ma_part
            diffed_forecast = values[pad:]

        # Integrate differencing back, d times.
        forecast = diffed_forecast
        for level in range(self.d, 0, -1):
            # The last value of the (level-1)-times differenced history.
            base = self._history.copy()
            for _ in range(level - 1):
                base = difference(base, 1)
            forecast = base[-1] + np.cumsum(forecast)
        return forecast
