"""Autoregressive least-squares predictors.

``AutoRegressivePredictor`` fits

    y_t = c + sum_k phi_k y_{t-k} + sum_j psi_j y_{t - j*period}

by ordinary least squares over the training history and forecasts
iteratively.  Seasonal lags (multiples of the daily period) give the model a
handle on diurnal structure that plain short lags miss over a one-day
horizon.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.prediction.base import TemporalPredictor, validate_history, validate_horizon

__all__ = ["AutoRegressivePredictor"]


class AutoRegressivePredictor(TemporalPredictor):
    """AR model with optional seasonal lags, fitted by least squares.

    Parameters
    ----------
    order:
        Number of consecutive short lags ``y_{t-1} .. y_{t-order}``.
    seasonal_lags:
        Which multiples of ``period`` to include as additional lags (e.g.
        ``(1, 2)`` adds ``y_{t-96}`` and ``y_{t-192}`` for 15-min data).
    period:
        The seasonal period in windows; ignored when ``seasonal_lags`` is
        empty.
    """

    def __init__(
        self,
        order: int = 4,
        seasonal_lags: Tuple[int, ...] = (1,),
        period: int = 96,
    ) -> None:
        if order < 0:
            raise ValueError("order must be >= 0")
        if period < 1:
            raise ValueError("period must be >= 1")
        if any(s < 1 for s in seasonal_lags):
            raise ValueError("seasonal lags must be positive")
        if order == 0 and not seasonal_lags:
            raise ValueError("model needs at least one lag")
        self.order = order
        self.seasonal_lags = tuple(seasonal_lags)
        self.period = period
        self._history = None
        self._coef: np.ndarray = np.array([])
        self._intercept: float = 0.0

    @property
    def _lags(self) -> Tuple[int, ...]:
        lags = list(range(1, self.order + 1))
        lags += [s * self.period for s in self.seasonal_lags]
        return tuple(sorted(set(lags)))

    def fit(self, history: Sequence[float]) -> "AutoRegressivePredictor":
        arr = validate_history(history, minimum=2)
        lags = [lag for lag in self._lags if lag < arr.size]
        if not lags:
            # History shorter than every lag: degrade to a mean model.
            self._history = arr
            self._coef = np.array([])
            self._fit_lags: Tuple[int, ...] = ()
            self._intercept = float(arr.mean())
            return self
        max_lag = max(lags)
        n_rows = arr.size - max_lag
        design = np.column_stack(
            [np.ones(n_rows)] + [arr[max_lag - lag : arr.size - lag] for lag in lags]
        )
        target = arr[max_lag:]
        solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        self._history = arr
        self._fit_lags = tuple(lags)
        self._intercept = float(solution[0])
        self._coef = solution[1:]
        return self

    def predict(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = validate_horizon(horizon)
        if not self._fit_lags:
            return np.full(horizon, self._intercept)
        max_lag = max(self._fit_lags)
        buffer = np.concatenate([self._history[-max_lag:], np.empty(horizon)])
        for step in range(horizon):
            t = max_lag + step
            lag_values = np.array([buffer[t - lag] for lag in self._fit_lags])
            buffer[t] = self._intercept + float(self._coef @ lag_values)
        return buffer[max_lag:]
