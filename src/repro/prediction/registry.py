"""Factory for temporal models by name.

The paper stresses that "any temporal prediction model can be directly
plugged into the ATM framework"; this registry is that plug point.  Core
configs reference temporal models by name so experiments can swap the
signature predictor without code changes.

Models that ship a batched multi-series training kernel also register a
*batch fitter* here; :func:`fit_temporal_batch` is how the combined
predictor hands all signature series of a box to one vectorized fit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.prediction.base import TemporalPredictor
from repro.prediction.temporal import (
    ArimaPredictor,
    AutoRegressivePredictor,
    HoltWintersPredictor,
    LastValuePredictor,
    MlpConfig,
    MovingAveragePredictor,
    NeuralNetPredictor,
    SeasonalMeanPredictor,
    SeasonalNaivePredictor,
    fit_neural_batch,
    fit_neural_batch_warm,
    fit_neural_fused,
)

__all__ = [
    "available_temporal_models",
    "fit_temporal_batch",
    "fit_temporal_batch_warm",
    "fit_temporal_fleet_batch",
    "has_batch_fitter",
    "has_fleet_fitter",
    "has_warm_fitter",
    "make_temporal_model",
    "temporal_model_version",
]

_FACTORIES: Dict[str, Callable[[int], TemporalPredictor]] = {
    "last_value": lambda period: LastValuePredictor(),
    "moving_average": lambda period: MovingAveragePredictor(window=max(2, period // 12)),
    "seasonal_naive": lambda period: SeasonalNaivePredictor(period=period),
    "seasonal_mean": lambda period: SeasonalMeanPredictor(period=period),
    "ar": lambda period: AutoRegressivePredictor(order=4, seasonal_lags=(1,), period=period),
    "arima": lambda period: ArimaPredictor(p=2, d=1, q=1),
    "holt_winters": lambda period: HoltWintersPredictor(period=period),
    "neural": lambda period: NeuralNetPredictor(MlpConfig(period=period)),
}


def available_temporal_models() -> Tuple[str, ...]:
    """Names accepted by :func:`make_temporal_model`."""
    return tuple(sorted(_FACTORIES))


def make_temporal_model(name: str, period: int = 96) -> TemporalPredictor:
    """Instantiate a fresh temporal model by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_temporal_models`.
    period:
        Seasonal period in windows, forwarded to seasonal models.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown temporal model {name!r}; available: {available_temporal_models()}"
        ) from None
    return factory(period)


# Implementation version per temporal model, folded into forecast artifact
# keys by the staged pipeline (repro.core.stages).  Bump a model's entry
# whenever its numerics change: stored forecasts computed with the old
# implementation then stop matching and are recomputed instead of served.
_VERSIONS: Dict[str, int] = {}


def temporal_model_version(name: str) -> int:
    """Artifact-key version of a temporal model's implementation (default 1)."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown temporal model {name!r}; available: {available_temporal_models()}"
        )
    return _VERSIONS.get(name, 1)


_BATCH_FITTERS: Dict[
    str, Callable[[Sequence[np.ndarray], int], List[TemporalPredictor]]
] = {
    "neural": lambda histories, period: list(
        fit_neural_batch(histories, MlpConfig(period=period))
    ),
}


def has_batch_fitter(name: str) -> bool:
    """Whether :func:`fit_temporal_batch` supports this model name."""
    return name in _BATCH_FITTERS


def fit_temporal_batch(
    name: str, histories: Sequence[np.ndarray], period: int = 96
) -> Optional[List[TemporalPredictor]]:
    """Fit every history with ``name``'s batched kernel, in input order.

    Returns ``None`` when the model has no batched fitter — callers fall
    back to per-series :func:`make_temporal_model` + ``fit`` loops.  Fitted
    models are equivalent to the per-series path (bit-identical for
    "neural"; pinned by the batched equivalence test suite).
    """
    fitter = _BATCH_FITTERS.get(name)
    if fitter is None:
        return None
    return fitter(list(histories), period)


# Warm-capable batch fitters: like _BATCH_FITTERS but chaining a
# fit-to-fit state (see repro.prediction.temporal.warm).  The state type
# is fitter-specific and opaque to callers: hold it, pass it back.
_WARM_FITTERS: Dict[str, Callable[..., Tuple[List[TemporalPredictor], object]]] = {
    "neural": lambda histories, period, warm: fit_neural_batch_warm(
        histories, MlpConfig(period=period), warm=warm
    ),
}


def has_warm_fitter(name: str) -> bool:
    """Whether :func:`fit_temporal_batch_warm` supports this model name."""
    return name in _WARM_FITTERS


def fit_temporal_batch_warm(
    name: str,
    histories: Sequence[np.ndarray],
    period: int = 96,
    warm: Optional[object] = None,
) -> Optional[Tuple[List[TemporalPredictor], Optional[object]]]:
    """Warm-started batched fit: resume from ``warm``, return the new state.

    Returns ``None`` when the model has no warm-capable fitter — callers
    fall back to :func:`fit_temporal_batch` or per-series loops.  An
    incompatible ``warm`` (changed signature count, different model) is
    ignored by the fitter, which then fits cold and returns a fresh state.
    """
    fitter = _WARM_FITTERS.get(name)
    if fitter is None:
        return None
    return fitter(list(histories), period, warm)


# Fleet fitters: like _BATCH_FITTERS but over *groups* of histories (one
# group per box), fusing every group's series into cross-box mega-batches.
# A fleet fitter returns one fitted-model list per group, with None for a
# group whose histories fail its validation — the caller re-runs exactly
# those groups down the per-box path, preserving per-box failure isolation.
_FLEET_FITTERS: Dict[
    str,
    Callable[
        [Sequence[Sequence[np.ndarray]], int],
        List[Optional[List[TemporalPredictor]]],
    ],
] = {
    "neural": lambda groups, period: list(
        fit_neural_fused(groups, MlpConfig(period=period))
    ),
}


def has_fleet_fitter(name: str) -> bool:
    """Whether :func:`fit_temporal_fleet_batch` supports this model name."""
    return name in _FLEET_FITTERS


def fit_temporal_fleet_batch(
    name: str,
    history_groups: Sequence[Sequence[np.ndarray]],
    period: int = 96,
) -> Optional[List[Optional[List[TemporalPredictor]]]]:
    """Fit many boxes' signature histories in one fused cross-box pass.

    ``history_groups`` holds one sequence of signature series per box;
    the result keeps that grouping, each entry fitted in input order and
    bit-identical to handing the same group to :func:`fit_temporal_batch`
    on its own (pinned by the fused equivalence test suite).  Returns
    ``None`` when the model has no fleet fitter — callers fall back to
    per-box fits; a ``None`` *entry* marks one group that failed
    validation and must take the per-box path (and its degradation
    ladder) instead.
    """
    fitter = _FLEET_FITTERS.get(name)
    if fitter is None:
        return None
    return fitter([list(group) for group in history_groups], period)
