"""Factory for temporal models by name.

The paper stresses that "any temporal prediction model can be directly
plugged into the ATM framework"; this registry is that plug point.  Core
configs reference temporal models by name so experiments can swap the
signature predictor without code changes.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.prediction.base import TemporalPredictor
from repro.prediction.temporal import (
    ArimaPredictor,
    AutoRegressivePredictor,
    HoltWintersPredictor,
    LastValuePredictor,
    MlpConfig,
    MovingAveragePredictor,
    NeuralNetPredictor,
    SeasonalMeanPredictor,
    SeasonalNaivePredictor,
)

__all__ = ["available_temporal_models", "make_temporal_model"]

_FACTORIES: Dict[str, Callable[[int], TemporalPredictor]] = {
    "last_value": lambda period: LastValuePredictor(),
    "moving_average": lambda period: MovingAveragePredictor(window=max(2, period // 12)),
    "seasonal_naive": lambda period: SeasonalNaivePredictor(period=period),
    "seasonal_mean": lambda period: SeasonalMeanPredictor(period=period),
    "ar": lambda period: AutoRegressivePredictor(order=4, seasonal_lags=(1,), period=period),
    "arima": lambda period: ArimaPredictor(p=2, d=1, q=1),
    "holt_winters": lambda period: HoltWintersPredictor(period=period),
    "neural": lambda period: NeuralNetPredictor(MlpConfig(period=period)),
}


def available_temporal_models() -> Tuple[str, ...]:
    """Names accepted by :func:`make_temporal_model`."""
    return tuple(sorted(_FACTORIES))


def make_temporal_model(name: str, period: int = 96) -> TemporalPredictor:
    """Instantiate a fresh temporal model by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_temporal_models`.
    period:
        Seasonal period in windows, forwarded to seasonal models.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown temporal model {name!r}; available: {available_temporal_models()}"
        ) from None
    return factory(period)
