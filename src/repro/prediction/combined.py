"""The full ATM spatial-temporal predictor for one box.

Fitting: run the signature search on the training matrix, then fit one
temporal model per signature series — handed to the model's batched
multi-series kernel in one call when it has one (the neural default does;
``REPRO_BATCHED_TEMPORAL=0`` forces the per-series loop).  Predicting:
forecast the signatures temporally, then reconstruct every dependent series
through its spatial (linear) model — the expensive temporal machinery runs
only on the reduced signature set, which is the paper's entire scalability
argument.

The spatial half of the pipeline (signature search and reconstruction) runs
on the vectorized linear-algebra engine by default: Gram-based VIF stepwise
elimination sharing CBC's correlation matrix, one multi-RHS ``lstsq`` for
all dependent models, and a single-matmul reconstruction.
``REPRO_VECTOR_SPATIAL=0`` restores the per-column reference paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.prediction.base import TemporalPredictor
from repro.prediction.registry import (
    fit_temporal_batch,
    fit_temporal_batch_warm,
    has_warm_fitter,
    make_temporal_model,
)
from repro.prediction.temporal.batched import batched_temporal_enabled
from repro.prediction.temporal.warm import warm_refit_enabled
from repro.prediction.spatial.signatures import (
    SignatureSearchConfig,
    SpatialModel,
    search_signature_set,
)

__all__ = ["SpatialTemporalConfig", "BoxPrediction", "SpatialTemporalPredictor"]


@dataclass(frozen=True)
class SpatialTemporalConfig:
    """Configuration of the combined predictor.

    Attributes
    ----------
    search:
        Signature-search settings (clustering method, VIF threshold, ...).
    temporal_model:
        Registry name of the signature-series model ("neural" reproduces
        the paper; cheaper baselines are available for ablations).
    period:
        Seasonal period in windows (96 = daily at 15 minutes).
    clip_min / clip_max:
        Forecast clipping bounds; demand series are non-negative, so the
        default floor is 0.  ``clip_max`` may be ``None`` (no ceiling) or a
        per-series array (e.g. allocated capacities).
    """

    search: SignatureSearchConfig = field(default_factory=SignatureSearchConfig)
    temporal_model: str = "neural"
    period: int = 96
    clip_min: float = 0.0
    clip_max: Optional[float] = None


@dataclass
class BoxPrediction:
    """Forecast of a whole box: the matrix plus provenance for analysis."""

    predictions: np.ndarray  # (n_series, horizon)
    spatial: SpatialModel
    temporal_model: str

    @property
    def n_series(self) -> int:
        return self.predictions.shape[0]

    @property
    def horizon(self) -> int:
        return self.predictions.shape[1]

    @property
    def signature_ratio(self) -> float:
        return self.spatial.signature_ratio


class SpatialTemporalPredictor:
    """ATM prediction for one box's ``(n_series, T)`` demand matrix."""

    def __init__(
        self,
        config: Optional[SpatialTemporalConfig] = None,
        warm_refits: bool = False,
    ) -> None:
        """``warm_refits=True`` opts refits into the warm-started chain.

        Off by default so one-shot (offline) fits stay byte-identical to
        the historical path; the online controller opts in, and
        ``REPRO_WARM_REFIT=0`` overrides the opt-in globally.
        """
        self.config = config or SpatialTemporalConfig()
        self.warm_refits = bool(warm_refits)
        self._spatial: Optional[SpatialModel] = None
        self._temporal: Dict[int, TemporalPredictor] = {}
        self._train: Optional[np.ndarray] = None
        self._warm_state: Optional[object] = None
        self._baseline_recon_error: Optional[float] = None
        self._pending_train: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._spatial is not None

    @property
    def spatial_model(self) -> SpatialModel:
        if self._spatial is None:
            raise RuntimeError("predictor has not been fitted")
        return self._spatial

    def fit(self, train_matrix: Sequence[Sequence[float]]) -> "SpatialTemporalPredictor":
        """Fit signature search, spatial models and per-signature temporal models."""
        arr = self._validate_train(train_matrix)
        obs.inc("predict.fits")
        with obs.span("predict.signature_search"):
            spatial = search_signature_set(arr, self.config.search)
        return self._adopt(spatial, arr)

    def fit_from_spatial(
        self, spatial: SpatialModel, train_matrix: Sequence[Sequence[float]]
    ) -> "SpatialTemporalPredictor":
        """Fit around an existing spatial model (warm start).

        Skips the signature search entirely: ``spatial`` is typically a
        stored artifact of the exact same training matrix (see
        :mod:`repro.store`), in which case the fitted predictor is
        bit-identical to a full :meth:`fit`.
        """
        arr = self._validate_train(train_matrix)
        if spatial.n_series != arr.shape[0]:
            raise ValueError(
                f"spatial model covers {spatial.n_series} series; "
                f"train matrix has {arr.shape[0]}"
            )
        obs.inc("predict.fits")
        return self._adopt(spatial, arr)

    def begin_fit(self, train_matrix: Sequence[Sequence[float]]) -> "list[np.ndarray]":
        """First half of :meth:`fit`: signature search, temporal fits deferred.

        Runs the spatial stage exactly as :meth:`fit` would and returns
        the signature histories (rows of the training matrix, in
        signature-index order) instead of fitting them.  The caller hands
        those histories to an external fitter — the fleet-fused plane
        batches all boxes of a chunk into one pass — and completes the
        predictor with :meth:`finish_fit`.  A ``begin_fit`` must be paired
        with a ``finish_fit`` before :meth:`predict` is usable.
        """
        arr = self._validate_train(train_matrix)
        obs.inc("predict.fits")
        with obs.span("predict.signature_search"):
            spatial = search_signature_set(arr, self.config.search)
        self._spatial = spatial
        self._warm_state = None  # a new spatial model resets the refit chain
        self._temporal = {}
        self._pending_train = arr
        return [arr[idx] for idx in spatial.signature_indices]

    def finish_fit(
        self, fitted: Sequence[TemporalPredictor]
    ) -> "SpatialTemporalPredictor":
        """Second half of :meth:`fit`: adopt externally fitted temporal models.

        ``fitted`` must hold one model per signature history returned by
        :meth:`begin_fit`, in the same order.  The resulting predictor
        state is exactly what :meth:`fit` would have produced had it
        fitted the same models inline (the fused kernel guarantees the
        models themselves are bit-identical, so the whole predictor is).
        """
        if self._spatial is None or self._pending_train is None:
            raise RuntimeError("finish_fit requires a preceding begin_fit")
        arr = self._pending_train
        self._pending_train = None
        indices = list(self._spatial.signature_indices)
        if len(fitted) != len(indices):
            raise ValueError(
                f"got {len(fitted)} fitted temporal models for "
                f"{len(indices)} signature series"
            )
        self._temporal = dict(zip(indices, fitted))
        self._train = arr
        self._baseline_recon_error = self.reconstruction_error(arr)
        return self

    @staticmethod
    def _validate_train(train_matrix: Sequence[Sequence[float]]) -> np.ndarray:
        arr = np.asarray(train_matrix, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"train matrix must be 2-D (n_series, T), got {arr.shape}")
        return arr

    def _adopt(
        self, spatial: SpatialModel, arr: np.ndarray
    ) -> "SpatialTemporalPredictor":
        self._spatial = spatial
        self._warm_state = None  # a new spatial model resets the refit chain
        self._temporal = self._fit_temporal(arr)
        self._train = arr
        self._baseline_recon_error = self.reconstruction_error(arr)
        return self

    def reconstruction_error(self, matrix: Sequence[Sequence[float]]) -> float:
        """Relative Frobenius error of the spatial in-sample reconstruction.

        ``||M - fitted(M)||_F / ||M||_F`` for a ``(n_series, T)`` matrix —
        how well the *current* signature set still explains ``matrix``.
        The value at fit time is kept as ``baseline_reconstruction_error``;
        the drift-gated online controller re-searches when the error on an
        advanced window rises materially above that baseline.
        """
        if self._spatial is None:
            raise RuntimeError("predictor has not been fitted")
        arr = np.asarray(matrix, dtype=float)
        denom = float(np.linalg.norm(arr))
        if denom <= 0.0:
            return 0.0
        return float(np.linalg.norm(arr - self._spatial.fitted(arr)) / denom)

    @property
    def baseline_reconstruction_error(self) -> float:
        """Reconstruction error of the training window the spatial model was fit on."""
        if self._baseline_recon_error is None:
            raise RuntimeError("predictor has not been fitted")
        return self._baseline_recon_error

    def _fit_temporal(self, arr: np.ndarray) -> Dict[int, TemporalPredictor]:
        """Fit one temporal model per signature series of ``arr``."""
        assert self._spatial is not None
        indices = list(self._spatial.signature_indices)
        with obs.span("predict.temporal_fit"):
            fitted = None
            if (
                indices
                and batched_temporal_enabled()
                and self.warm_refits
                and warm_refit_enabled()
                and has_warm_fitter(self.config.temporal_model)
            ):
                # Warm-started chain: resume from the previous refit's
                # parameter state and keep the new one for the next.
                warm_result = fit_temporal_batch_warm(
                    self.config.temporal_model,
                    [arr[idx] for idx in indices],
                    period=self.config.period,
                    warm=self._warm_state,
                )
                if warm_result is not None:
                    fitted, self._warm_state = warm_result
            if fitted is None and indices and batched_temporal_enabled():
                # One vectorized pass over all signature series of the box
                # (REPRO_BATCHED_TEMPORAL=0 forces the per-series loop below).
                fitted = fit_temporal_batch(
                    self.config.temporal_model,
                    [arr[idx] for idx in indices],
                    period=self.config.period,
                )
            if fitted is None:
                fitted = [
                    make_temporal_model(
                        self.config.temporal_model, period=self.config.period
                    ).fit(arr[idx])
                    for idx in indices
                ]
        return dict(zip(indices, fitted))

    def refit_temporal(
        self, train_matrix: Sequence[Sequence[float]]
    ) -> "SpatialTemporalPredictor":
        """Re-anchor the temporal models on a new training window.

        Keeps the fitted spatial model (signature set and reconstruction
        weights — the expensive search) but refits the per-signature
        temporal models on ``train_matrix``, so forecasts continue from
        the advanced window.  This is the online controller's non-refit
        step: cheap relative to a full :meth:`fit`, yet anchored to the
        data the step actually follows.
        """
        if self._spatial is None:
            raise RuntimeError("predictor has not been fitted")
        arr = np.asarray(train_matrix, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"train matrix must be 2-D (n_series, T), got {arr.shape}")
        if self._train is not None and arr.shape[0] != self._train.shape[0]:
            raise ValueError(
                f"train matrix has {arr.shape[0]} series; the fitted spatial "
                f"model expects {self._train.shape[0]}"
            )
        obs.inc("predict.temporal_refits")
        self._temporal = self._fit_temporal(arr)
        self._train = arr
        return self

    def predict(self, horizon: int) -> BoxPrediction:
        """Forecast every series of the box for the next ``horizon`` windows."""
        if self._spatial is None:
            raise RuntimeError("predictor has not been fitted")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        signature_forecasts = np.vstack(
            [self._temporal[idx].predict(horizon) for idx in self._spatial.signature_indices]
        )
        with obs.span("predict.reconstruct"):
            full = self._spatial.reconstruct(signature_forecasts)
        full = np.clip(full, self.config.clip_min, np.inf)
        if self.config.clip_max is not None:
            full = np.minimum(full, self.config.clip_max)
        return BoxPrediction(
            predictions=full,
            spatial=self._spatial,
            temporal_model=self.config.temporal_model,
        )

    def fit_predict(
        self, train_matrix: Sequence[Sequence[float]], horizon: int
    ) -> BoxPrediction:
        """Fit and forecast in one call."""
        return self.fit(train_matrix).predict(horizon)
