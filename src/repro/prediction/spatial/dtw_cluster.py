"""DTW-based clustering of demand series (Section III-A, step 1, option A).

Pipeline exactly as the paper describes:

1. Pairwise DTW dissimilarity matrix over the ``M x N`` series.
2. Agglomerative hierarchical clustering on that matrix.
3. Sweep the number of clusters from 2 to ``(M*N)/2`` and keep the cut with
   the maximal mean silhouette value.
4. Within each cluster, the series with the lowest average dissimilarity to
   its cluster mates becomes the signature series.

Series are z-scored before DTW by default so clustering keys on *shape*, not
on absolute demand magnitude (co-located VMs have heterogeneous capacities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.clustering import HierarchicalClustering, Linkage, clusters_as_lists
from repro.timeseries.dtw import dtw_distance_matrix
from repro.timeseries.silhouette import best_silhouette_cut

__all__ = ["DtwClusterResult", "dtw_clusters"]


@dataclass(frozen=True)
class DtwClusterResult:
    """Outcome of silhouette-tuned DTW clustering."""

    labels: Tuple[int, ...]
    signatures: Tuple[int, ...]
    n_clusters: int
    silhouette: float


def _signature_of_cluster(distances: np.ndarray, members: List[int]) -> int:
    """The member with the lowest mean dissimilarity to the other members."""
    if len(members) == 1:
        return members[0]
    sub = distances[np.ix_(members, members)]
    mean_dist = sub.sum(axis=1) / (len(members) - 1)
    return members[int(np.argmin(mean_dist))]


def dtw_clusters(
    series: Sequence[Sequence[float]],
    window: Optional[int] = None,
    zscore: bool = True,
    max_clusters: Optional[int] = None,
    linkage: Linkage = Linkage.AVERAGE,
) -> DtwClusterResult:
    """Cluster series with DTW + hierarchical clustering + silhouette search.

    Parameters
    ----------
    series:
        ``(n_series, n_samples)`` data.
    window:
        Optional Sakoe-Chiba half-width for the DTW computation (a tight
        window is a large speedup on long traces with negligible quality
        loss for 15-minute usage data).
    zscore:
        Standardize series before DTW (default, see module docstring).
    max_clusters:
        Upper end of the silhouette sweep; defaults to ``n_series // 2``
        per the paper ("we aim to reduce the original set to at least its
        half").
    """
    data = np.asarray(series, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"series must be 2-D (n_series, n_samples), got {data.shape}")
    n = data.shape[0]
    if n == 0:
        raise ValueError("need at least one series")
    if n == 1:
        return DtwClusterResult(labels=(0,), signatures=(0,), n_clusters=1, silhouette=0.0)

    distances = dtw_distance_matrix(data, window=window, zscore=zscore)
    clustering = HierarchicalClustering(distances, linkage=linkage)

    upper = max_clusters if max_clusters is not None else n // 2
    upper = int(np.clip(upper, 2, n))
    # One incremental replay of the merge sequence yields every candidate
    # cut; re-cutting from scratch per k made the sweep quadratic.  All
    # cuts are then scored against the shared distance matrix in one
    # vectorized silhouette sweep (ties prefer fewer clusters).
    sweep = clustering.cuts(range(2, upper + 1))
    score, k, labels = best_silhouette_cut(distances, sweep)

    groups = clusters_as_lists(labels)
    signatures = tuple(_signature_of_cluster(distances, members) for members in groups)
    return DtwClusterResult(
        labels=tuple(labels),
        signatures=signatures,
        n_clusters=k,
        silhouette=score,
    )
