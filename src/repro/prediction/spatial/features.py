"""Feature-based clustering — the paper's cited alternative (step 1, option C).

The related-work section points at feature-extraction approaches
(Fulcher & Jones [11]) as the other standard way to cluster large series
collections cheaply.  This module implements that third option for the ATM
framework: each series is embedded by
:func:`repro.timeseries.acf.feature_vector`, features are standardized, and
hierarchical clustering with the silhouette sweep picks the cut — the exact
machinery of the DTW path, with Euclidean feature distance replacing the
O(n^2) DTW dynamic program.  Cost per box drops from O(S^2 * T^2) to
O(S * T + S^2), which is the practical argument for features at very large
fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.acf import feature_vector
from repro.timeseries.clustering import HierarchicalClustering, Linkage, clusters_as_lists
from repro.timeseries.silhouette import best_silhouette_cut

__all__ = ["FeatureClusterResult", "feature_clusters"]


@dataclass(frozen=True)
class FeatureClusterResult:
    """Outcome of silhouette-tuned feature-space clustering."""

    labels: Tuple[int, ...]
    signatures: Tuple[int, ...]
    n_clusters: int
    silhouette: float
    features: np.ndarray  # (n_series, n_features), standardized


def _standardize_columns(matrix: np.ndarray) -> np.ndarray:
    std = matrix.std(axis=0)
    std[std < 1e-12] = 1.0
    return (matrix - matrix.mean(axis=0)) / std


def feature_clusters(
    series: Sequence[Sequence[float]],
    period: int = 96,
    max_clusters: Optional[int] = None,
    linkage: Linkage = Linkage.AVERAGE,
) -> FeatureClusterResult:
    """Cluster series by their feature embeddings.

    Parameters mirror :func:`repro.prediction.spatial.dtw_cluster.dtw_clusters`;
    the signature of each cluster is the member closest to the cluster's
    feature centroid.
    """
    data = np.asarray(series, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"series must be 2-D (n_series, n_samples), got {data.shape}")
    n = data.shape[0]
    if n == 0:
        raise ValueError("need at least one series")
    raw = np.vstack([feature_vector(row, period=period) for row in data])
    features = _standardize_columns(raw)
    if n == 1:
        return FeatureClusterResult(
            labels=(0,), signatures=(0,), n_clusters=1, silhouette=0.0, features=features
        )

    diff = features[:, None, :] - features[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    clustering = HierarchicalClustering(distances, linkage=linkage)

    upper = max_clusters if max_clusters is not None else n // 2
    upper = int(np.clip(upper, 2, n))
    # Same machinery as the DTW path: one incremental replay for all cuts,
    # one vectorized silhouette sweep over the shared distance matrix.
    sweep = clustering.cuts(range(2, upper + 1))
    score, k, labels = best_silhouette_cut(distances, sweep)

    signatures = []
    for members in clusters_as_lists(labels):
        centroid = features[members].mean(axis=0)
        offsets = ((features[members] - centroid) ** 2).sum(axis=1)
        signatures.append(members[int(np.argmin(offsets))])
    return FeatureClusterResult(
        labels=tuple(labels),
        signatures=tuple(signatures),
        n_clusters=k,
        silhouette=score,
        features=features,
    )
