"""Spatial models: signature-set search and dependent-series regression.

* :mod:`repro.prediction.spatial.cbc` — the paper's correlation-based
  clustering (CBC).
* :mod:`repro.prediction.spatial.dtw_cluster` — DTW + hierarchical
  clustering with silhouette-optimal cluster counts.
* :mod:`repro.prediction.spatial.signatures` — the two-step signature
  search (clustering, then VIF + stepwise regression) and the fitted
  :class:`~repro.prediction.spatial.signatures.SpatialModel`.
"""

from repro.prediction.spatial.cache import SIGNATURE_CACHE, SignatureSearchCache
from repro.prediction.spatial.cbc import CbcResult, correlation_based_clusters
from repro.prediction.spatial.dtw_cluster import DtwClusterResult, dtw_clusters
from repro.prediction.spatial.features import FeatureClusterResult, feature_clusters
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    SpatialModel,
    search_signature_set,
)

__all__ = [
    "CbcResult",
    "ClusteringMethod",
    "SIGNATURE_CACHE",
    "SignatureSearchCache",
    "DtwClusterResult",
    "FeatureClusterResult",
    "feature_clusters",
    "SignatureSearchConfig",
    "SpatialModel",
    "correlation_based_clusters",
    "dtw_clusters",
    "search_signature_set",
]
