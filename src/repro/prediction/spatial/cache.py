"""Memoization of per-box signature-search results.

The signature search is the expensive half of fitting a box: the DTW
distance matrix, the silhouette sweep over dendrogram cuts, and the
stepwise VIF elimination.  Its outcome depends only on the training
matrix and the (frozen, hashable) :class:`SignatureSearchConfig` — the
ablation benches that re-run the same fleet under varying ε, horizon or
temporal models therefore recompute identical clusterings over and over.

This module caches :class:`SpatialModel` results in a bounded LRU keyed
on ``(content fingerprint of the training matrix, config)``.  A content
fingerprint subsumes the obvious ``(fleet seed, box id)`` key: it is
stable across fleets reloaded from CSV, and it can never alias two boxes
whose data actually differ.

Cached models are shared between callers and must be treated as
read-only (every caller in this codebase already does).

Set ``REPRO_SIGNATURE_CACHE=0`` to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

import numpy as np

__all__ = [
    "CACHE_ENV_VAR",
    "SIGNATURE_CACHE",
    "SignatureSearchCache",
    "cache_enabled",
    "data_fingerprint",
]

#: Set to ``0``/``false``/``off`` to bypass the cache.
CACHE_ENV_VAR = "REPRO_SIGNATURE_CACHE"

#: Default number of cached per-box models.  A model stores only OLS
#: coefficients and index tuples (a few KB per box), so this comfortably
#: covers a large fleet sweep.
DEFAULT_MAXSIZE = 512


def cache_enabled() -> bool:
    """Whether the process-wide signature cache is active."""
    return os.environ.get(CACHE_ENV_VAR, "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def data_fingerprint(data: np.ndarray) -> str:
    """Content hash of a training matrix (shape + raw float bytes)."""
    arr = np.ascontiguousarray(np.asarray(data, dtype=float))
    digest = hashlib.sha1()
    digest.update(repr(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, readable by benches and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SignatureSearchCache:
    """Thread-safe bounded LRU mapping search keys to fitted models."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset counters (used between timed runs)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Process-wide cache consulted by ``search_signature_set``.  Forked pool
#: workers inherit a snapshot; entries they add stay worker-local, so the
#: cache never needs cross-process synchronization.
SIGNATURE_CACHE = SignatureSearchCache()
