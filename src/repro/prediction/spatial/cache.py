"""Memoization of per-box signature-search results.

The signature search is the expensive half of fitting a box: the DTW
distance matrix, the silhouette sweep over dendrogram cuts, and the
stepwise VIF elimination.  Its outcome depends only on the training
matrix and the (frozen, hashable) :class:`SignatureSearchConfig` — the
ablation benches that re-run the same fleet under varying ε, horizon or
temporal models therefore recompute identical clusterings over and over.

Since the artifact store landed this module is a thin façade: the cache
*is* the store's ``"spatial"`` stage memory tier (tier 1 of
:mod:`repro.store`), shared with every :class:`~repro.store.ArtifactStore`
in the process.  ``search_signature_set`` keys it on ``(content
fingerprint of the training matrix, config fingerprint)``; a content
fingerprint subsumes the obvious ``(fleet seed, box id)`` key — it is
stable across fleets reloaded from CSV and can never alias two boxes
whose data actually differ.

Entries added by forked pool workers used to be worker-local and were
discarded with the pool; with ``REPRO_STORE`` set, workers now persist
their search results through the store's disk tier, where sibling
workers and later runs hit them.

Cached models are shared between callers and must be treated as
read-only (every caller in this codebase already does).

Set ``REPRO_SIGNATURE_CACHE=0`` to disable the memory tier entirely.
"""

from __future__ import annotations

from repro.store import (
    DEFAULT_MAXSIZE,
    CacheStats,
    LruCache,
    data_fingerprint,
    memory_tier,
)

__all__ = [
    "CACHE_ENV_VAR",
    "DEFAULT_MAXSIZE",
    "CacheStats",
    "SIGNATURE_CACHE",
    "SignatureSearchCache",
    "cache_enabled",
    "data_fingerprint",
]

#: Set to ``0``/``false``/``off``/``no`` to bypass the memory tier
#: (parsed by :mod:`repro.core.runtime`).
CACHE_ENV_VAR = "REPRO_SIGNATURE_CACHE"

#: The LRU class, kept under its historical name.
SignatureSearchCache = LruCache


def cache_enabled() -> bool:
    """Whether the process-wide signature memory tier is active."""
    # Lazy import: prediction must stay importable without repro.core.
    from repro.core.runtime import signature_cache_enabled as _enabled

    return _enabled()


#: Process-wide cache consulted by ``search_signature_set`` — the store's
#: shared memory tier for the ``"spatial"`` stage.
SIGNATURE_CACHE: LruCache = memory_tier("spatial", maxsize=DEFAULT_MAXSIZE)
