"""The two-step signature-set search and the fitted spatial model.

Step 1 proposes an initial signature set by time-series clustering (DTW or
CBC — see the sibling modules).  Step 2 checks the initial set for
multicollinearity with variance inflation factors and demotes signatures
with ``VIF > 4`` by stepwise regression: a cluster that looks distinct may
still be a linear combination of other clusters' signatures (the paper's
pitfall example), in which case its signature can be predicted instead of
temporally modelled.

The resulting :class:`SpatialModel` stores, for each *dependent* series, an
OLS model over the *signature* series (paper Eq. 1), and can reconstruct
the whole ``M x N`` series matrix from signature values — actual values for
in-sample fitting accuracy (Fig. 6b), or temporal-model predictions for the
full ATM pipeline (Fig. 9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.prediction.spatial.cache import cache_enabled, data_fingerprint
from repro.prediction.spatial.cbc import DEFAULT_RHO_THRESHOLD, correlation_based_clusters
from repro.prediction.spatial.dtw_cluster import dtw_clusters
from repro.store import (
    ArtifactKey,
    config_fingerprint,
    default_store,
    register_codec,
)
from repro.timeseries.correlation import pairwise_correlation_matrix
from repro.timeseries.regression import OlsFit, fit_dependent_models, stepwise_eliminate
from repro.timeseries.vector import vector_spatial_enabled

__all__ = [
    "SPATIAL_STAGE",
    "ClusteringMethod",
    "SignatureSearchConfig",
    "SpatialModel",
    "search_signature_set",
]

#: Artifact-store stage name of signature-search results.
SPATIAL_STAGE = "spatial"


class ClusteringMethod(enum.Enum):
    """Step-1 clustering flavor.

    DTW and CBC are the paper's two options; FEATURE is the cited
    feature-extraction alternative ([11]) implemented in
    :mod:`repro.prediction.spatial.features`.
    """

    DTW = "dtw"
    CBC = "cbc"
    FEATURE = "feature"


@dataclass(frozen=True)
class SignatureSearchConfig:
    """Configuration of the signature search.

    Attributes
    ----------
    method:
        DTW or CBC clustering for step 1.
    rho_threshold:
        CBC strong-correlation threshold (paper: 0.7).
    vif_threshold:
        Step-2 multicollinearity threshold (paper: 4).
    apply_stepwise:
        Disable to evaluate step 1 alone (the "Clustering" bars of Fig. 6).
    dtw_window:
        Sakoe-Chiba half-width for DTW (None = unconstrained).
    dtw_zscore:
        Standardize series before DTW.
    max_clusters:
        Upper bound of the DTW/feature silhouette sweep (None = n_series // 2).
    period:
        Seasonal period for feature extraction (FEATURE method only).
    """

    method: ClusteringMethod = ClusteringMethod.CBC
    rho_threshold: float = DEFAULT_RHO_THRESHOLD
    vif_threshold: float = 4.0
    apply_stepwise: bool = True
    dtw_window: Optional[int] = 12
    dtw_zscore: bool = True
    max_clusters: Optional[int] = None
    period: int = 96


@dataclass
class SpatialModel:
    """A fitted spatial model for one box's series matrix.

    ``signature_indices`` and ``dependent_indices`` partition
    ``range(n_series)``; ``models[k]`` regresses dependent series ``k`` on
    the signature series (in ``signature_indices`` order).
    """

    n_series: int
    signature_indices: Tuple[int, ...]
    dependent_indices: Tuple[int, ...]
    models: Dict[int, OlsFit] = field(repr=False)
    initial_signature_indices: Tuple[int, ...] = ()
    cluster_labels: Tuple[int, ...] = ()

    @property
    def signature_ratio(self) -> float:
        """Fraction of the original series kept as signatures (Fig. 6a metric)."""
        return len(self.signature_indices) / self.n_series

    def reconstruct(self, signature_values: np.ndarray) -> np.ndarray:
        """Build the full series matrix from signature series values.

        Parameters
        ----------
        signature_values:
            ``(n_signatures, T)`` matrix whose rows align with
            ``signature_indices`` — actual history for in-sample evaluation
            or temporal-model forecasts for prediction.

        Returns
        -------
        numpy.ndarray
            ``(n_series, T)``: signature rows pass through verbatim,
            dependent rows come from their OLS models.
        """
        sig = np.asarray(signature_values, dtype=float)
        if sig.ndim != 2 or sig.shape[0] != len(self.signature_indices):
            raise ValueError(
                f"expected ({len(self.signature_indices)}, T) signature values, "
                f"got {sig.shape}"
            )
        t = sig.shape[1]
        out = np.zeros((self.n_series, t))
        out[list(self.signature_indices)] = sig
        if not self.dependent_indices:
            return out
        if vector_spatial_enabled():
            # All dependent rows in one (T, S) @ (S, D) matmul + intercepts.
            coef = np.column_stack(
                [self.models[idx].coefficients for idx in self.dependent_indices]
            )
            intercepts = np.array(
                [self.models[idx].intercept for idx in self.dependent_indices]
            )
            out[list(self.dependent_indices)] = (sig.T @ coef + intercepts).T
            return out
        regressors = sig.T  # (T, n_signatures)
        for idx in self.dependent_indices:
            out[idx] = self.models[idx].predict(regressors)
        return out

    def fitted(self, data: np.ndarray) -> np.ndarray:
        """In-sample reconstruction: feed the actual signature rows back."""
        arr = np.asarray(data, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self.n_series:
            raise ValueError(f"expected ({self.n_series}, T) data, got {arr.shape}")
        return self.reconstruct(arr[list(self.signature_indices)])


def _initial_signatures(
    data: np.ndarray, config: SignatureSearchConfig
) -> Tuple[List[int], Tuple[int, ...], Optional[np.ndarray]]:
    """Run step-1 clustering; also return the correlation matrix if one was built.

    CBC already computes the full pairwise Pearson matrix; handing it back lets
    step 2 derive its Gram-based VIFs from the same matrix instead of
    recomputing the correlations.
    """
    if config.method is ClusteringMethod.DTW:
        result = dtw_clusters(
            data,
            window=config.dtw_window,
            zscore=config.dtw_zscore,
            max_clusters=config.max_clusters,
        )
        return list(result.signatures), result.labels, None
    if config.method is ClusteringMethod.FEATURE:
        from repro.prediction.spatial.features import feature_clusters

        result = feature_clusters(
            data, period=config.period, max_clusters=config.max_clusters
        )
        return list(result.signatures), result.labels, None
    corr = pairwise_correlation_matrix(data)
    result = correlation_based_clusters(
        data, rho_threshold=config.rho_threshold, corr=corr
    )
    return list(result.signatures), result.labels, corr


def search_signature_set(
    data: Sequence[Sequence[float]],
    config: Optional[SignatureSearchConfig] = None,
) -> SpatialModel:
    """Run the full two-step signature search and fit the spatial model.

    Parameters
    ----------
    data:
        ``(n_series, T)`` training matrix — all demand series of one box
        (CPU and RAM stacked for the inter-resource model, or one resource
        only for the intra variants of Fig. 7).
    config:
        Search configuration; defaults to CBC + stepwise.
    """
    cfg = config or SignatureSearchConfig()
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"data must be 2-D (n_series, T), got {arr.shape}")
    n_series = arr.shape[0]
    if n_series == 0:
        raise ValueError("need at least one series")

    # The search depends only on (training matrix, config); re-runs of the
    # same box under varying ε/horizon reuse the memoized model, and with
    # a persistent store (REPRO_STORE) so do sibling pool workers and
    # later runs.  Cached models are shared — treat them as read-only.
    use_memory = cache_enabled()
    store = default_store()
    cache_key = None
    if use_memory or store.persistent:
        cache_key = ArtifactKey(
            stage=SPATIAL_STAGE,
            data_fp=data_fingerprint(arr),
            config_fp=config_fingerprint(cfg),
        )
        cached = store.get(cache_key, memory=use_memory)
        if cached is not None:
            return cached

    initial, labels, corr = _initial_signatures(arr, cfg)
    initial_sorted = sorted(initial)

    final = list(initial_sorted)
    if cfg.apply_stepwise and len(final) > 1:
        matrix = arr[final].T  # (T, n_initial_signatures)
        sub_corr = corr[np.ix_(final, final)] if corr is not None else None
        kept_cols, _removed = stepwise_eliminate(
            matrix, vif_threshold=cfg.vif_threshold, min_keep=1, corr=sub_corr
        )
        final = sorted(final[col] for col in kept_cols)

    dependents = tuple(i for i in range(n_series) if i not in set(final))
    regressors = arr[final].T  # (T, n_signatures)
    fits = fit_dependent_models(regressors, arr[list(dependents)].T)
    models = dict(zip(dependents, fits))
    model = SpatialModel(
        n_series=n_series,
        signature_indices=tuple(final),
        dependent_indices=dependents,
        models=models,
        initial_signature_indices=tuple(initial_sorted),
        cluster_labels=tuple(labels),
    )
    obs.inc("spatial.search.computed")
    if cache_key is not None:
        store.put(cache_key, model, memory=use_memory)
    return model


# ------------------------------------------------------------ store codec
def _encode_spatial(model: SpatialModel):
    """Serialize a :class:`SpatialModel` as index/coefficient arrays."""
    dep = list(model.dependent_indices)
    n_sig = len(model.signature_indices)
    arrays = {
        "signature_indices": np.asarray(model.signature_indices, dtype=np.int64),
        "dependent_indices": np.asarray(dep, dtype=np.int64),
        "initial_signature_indices": np.asarray(
            model.initial_signature_indices, dtype=np.int64
        ),
        "cluster_labels": np.asarray(model.cluster_labels, dtype=np.int64),
        "coefficients": (
            np.stack([model.models[idx].coefficients for idx in dep])
            if dep
            else np.zeros((0, n_sig))
        ),
        "intercepts": np.asarray([model.models[idx].intercept for idx in dep]),
        "r2": np.asarray([model.models[idx].r2 for idx in dep]),
        "residual_std": np.asarray(
            [model.models[idx].residual_std for idx in dep]
        ),
    }
    return arrays, {"n_series": model.n_series}


def _decode_spatial(arrays, meta) -> SpatialModel:
    dep = [int(i) for i in arrays["dependent_indices"]]
    models = {
        idx: OlsFit(
            intercept=float(arrays["intercepts"][row]),
            coefficients=np.array(arrays["coefficients"][row], dtype=float),
            r2=float(arrays["r2"][row]),
            residual_std=float(arrays["residual_std"][row]),
        )
        for row, idx in enumerate(dep)
    }
    return SpatialModel(
        n_series=int(meta["n_series"]),
        signature_indices=tuple(int(i) for i in arrays["signature_indices"]),
        dependent_indices=tuple(dep),
        models=models,
        initial_signature_indices=tuple(
            int(i) for i in arrays["initial_signature_indices"]
        ),
        cluster_labels=tuple(int(i) for i in arrays["cluster_labels"]),
    )


register_codec(SPATIAL_STAGE, _encode_spatial, _decode_spatial)
