"""The two-step signature-set search and the fitted spatial model.

Step 1 proposes an initial signature set by time-series clustering (DTW or
CBC — see the sibling modules).  Step 2 checks the initial set for
multicollinearity with variance inflation factors and demotes signatures
with ``VIF > 4`` by stepwise regression: a cluster that looks distinct may
still be a linear combination of other clusters' signatures (the paper's
pitfall example), in which case its signature can be predicted instead of
temporally modelled.

The resulting :class:`SpatialModel` stores, for each *dependent* series, an
OLS model over the *signature* series (paper Eq. 1), and can reconstruct
the whole ``M x N`` series matrix from signature values — actual values for
in-sample fitting accuracy (Fig. 6b), or temporal-model predictions for the
full ATM pipeline (Fig. 9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.prediction.spatial.cache import (
    SIGNATURE_CACHE,
    cache_enabled,
    data_fingerprint,
)
from repro.prediction.spatial.cbc import DEFAULT_RHO_THRESHOLD, correlation_based_clusters
from repro.prediction.spatial.dtw_cluster import dtw_clusters
from repro.timeseries.regression import OlsFit, fit_ols, stepwise_eliminate

__all__ = [
    "ClusteringMethod",
    "SignatureSearchConfig",
    "SpatialModel",
    "search_signature_set",
]


class ClusteringMethod(enum.Enum):
    """Step-1 clustering flavor.

    DTW and CBC are the paper's two options; FEATURE is the cited
    feature-extraction alternative ([11]) implemented in
    :mod:`repro.prediction.spatial.features`.
    """

    DTW = "dtw"
    CBC = "cbc"
    FEATURE = "feature"


@dataclass(frozen=True)
class SignatureSearchConfig:
    """Configuration of the signature search.

    Attributes
    ----------
    method:
        DTW or CBC clustering for step 1.
    rho_threshold:
        CBC strong-correlation threshold (paper: 0.7).
    vif_threshold:
        Step-2 multicollinearity threshold (paper: 4).
    apply_stepwise:
        Disable to evaluate step 1 alone (the "Clustering" bars of Fig. 6).
    dtw_window:
        Sakoe-Chiba half-width for DTW (None = unconstrained).
    dtw_zscore:
        Standardize series before DTW.
    max_clusters:
        Upper bound of the DTW/feature silhouette sweep (None = n_series // 2).
    period:
        Seasonal period for feature extraction (FEATURE method only).
    """

    method: ClusteringMethod = ClusteringMethod.CBC
    rho_threshold: float = DEFAULT_RHO_THRESHOLD
    vif_threshold: float = 4.0
    apply_stepwise: bool = True
    dtw_window: Optional[int] = 12
    dtw_zscore: bool = True
    max_clusters: Optional[int] = None
    period: int = 96


@dataclass
class SpatialModel:
    """A fitted spatial model for one box's series matrix.

    ``signature_indices`` and ``dependent_indices`` partition
    ``range(n_series)``; ``models[k]`` regresses dependent series ``k`` on
    the signature series (in ``signature_indices`` order).
    """

    n_series: int
    signature_indices: Tuple[int, ...]
    dependent_indices: Tuple[int, ...]
    models: Dict[int, OlsFit] = field(repr=False)
    initial_signature_indices: Tuple[int, ...] = ()
    cluster_labels: Tuple[int, ...] = ()

    @property
    def signature_ratio(self) -> float:
        """Fraction of the original series kept as signatures (Fig. 6a metric)."""
        return len(self.signature_indices) / self.n_series

    def reconstruct(self, signature_values: np.ndarray) -> np.ndarray:
        """Build the full series matrix from signature series values.

        Parameters
        ----------
        signature_values:
            ``(n_signatures, T)`` matrix whose rows align with
            ``signature_indices`` — actual history for in-sample evaluation
            or temporal-model forecasts for prediction.

        Returns
        -------
        numpy.ndarray
            ``(n_series, T)``: signature rows pass through verbatim,
            dependent rows come from their OLS models.
        """
        sig = np.asarray(signature_values, dtype=float)
        if sig.ndim != 2 or sig.shape[0] != len(self.signature_indices):
            raise ValueError(
                f"expected ({len(self.signature_indices)}, T) signature values, "
                f"got {sig.shape}"
            )
        t = sig.shape[1]
        out = np.zeros((self.n_series, t))
        for row, idx in enumerate(self.signature_indices):
            out[idx] = sig[row]
        regressors = sig.T  # (T, n_signatures)
        for idx in self.dependent_indices:
            out[idx] = self.models[idx].predict(regressors)
        return out

    def fitted(self, data: np.ndarray) -> np.ndarray:
        """In-sample reconstruction: feed the actual signature rows back."""
        arr = np.asarray(data, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != self.n_series:
            raise ValueError(f"expected ({self.n_series}, T) data, got {arr.shape}")
        return self.reconstruct(arr[list(self.signature_indices)])


def _initial_signatures(
    data: np.ndarray, config: SignatureSearchConfig
) -> Tuple[List[int], Tuple[int, ...]]:
    if config.method is ClusteringMethod.DTW:
        result = dtw_clusters(
            data,
            window=config.dtw_window,
            zscore=config.dtw_zscore,
            max_clusters=config.max_clusters,
        )
        return list(result.signatures), result.labels
    if config.method is ClusteringMethod.FEATURE:
        from repro.prediction.spatial.features import feature_clusters

        result = feature_clusters(
            data, period=config.period, max_clusters=config.max_clusters
        )
        return list(result.signatures), result.labels
    result = correlation_based_clusters(data, rho_threshold=config.rho_threshold)
    return list(result.signatures), result.labels


def search_signature_set(
    data: Sequence[Sequence[float]],
    config: Optional[SignatureSearchConfig] = None,
) -> SpatialModel:
    """Run the full two-step signature search and fit the spatial model.

    Parameters
    ----------
    data:
        ``(n_series, T)`` training matrix — all demand series of one box
        (CPU and RAM stacked for the inter-resource model, or one resource
        only for the intra variants of Fig. 7).
    config:
        Search configuration; defaults to CBC + stepwise.
    """
    cfg = config or SignatureSearchConfig()
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"data must be 2-D (n_series, T), got {arr.shape}")
    n_series = arr.shape[0]
    if n_series == 0:
        raise ValueError("need at least one series")

    # The search depends only on (training matrix, config); re-runs of the
    # same box under varying ε/horizon reuse the memoized model.  Cached
    # models are shared — treat them as read-only.
    use_cache = cache_enabled()
    cache_key = None
    if use_cache:
        cache_key = (data_fingerprint(arr), cfg)
        cached = SIGNATURE_CACHE.get(cache_key)
        if cached is not None:
            return cached

    initial, labels = _initial_signatures(arr, cfg)
    initial_sorted = sorted(initial)

    final = list(initial_sorted)
    if cfg.apply_stepwise and len(final) > 1:
        matrix = arr[final].T  # (T, n_initial_signatures)
        kept_cols, _removed = stepwise_eliminate(
            matrix, vif_threshold=cfg.vif_threshold, min_keep=1
        )
        final = sorted(final[col] for col in kept_cols)

    dependents = tuple(i for i in range(n_series) if i not in set(final))
    regressors = arr[final].T  # (T, n_signatures)
    models = {idx: fit_ols(arr[idx], regressors) for idx in dependents}
    model = SpatialModel(
        n_series=n_series,
        signature_indices=tuple(final),
        dependent_indices=dependents,
        models=models,
        initial_signature_indices=tuple(initial_sorted),
        cluster_labels=tuple(labels),
    )
    if use_cache and cache_key is not None:
        SIGNATURE_CACHE.put(cache_key, model)
    return model
