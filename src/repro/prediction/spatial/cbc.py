"""Correlation-based clustering (CBC) — the paper's own clustering step.

CBC groups series that are *highly correlated* even when they are far apart
in amplitude, which DTW's distance criterion misses (the paper's Fig. 1/4
motivation).  The procedure (Section III-A):

1. Compute all pairwise Pearson coefficients of the ``M x N`` series.
2. Rank every series first by the number of partners with ``rho >= rho_th``
   and second by the mean of those strong coefficients.
3. Pop the top-ranked series: it becomes the *signature* of a new cluster
   containing every still-unassigned series correlated with it above the
   threshold.  Repeat until the ranked list is empty.

Series with no strong partner end up as singleton clusters (their own
signature), which is why CBC is "less aggressive" than DTW in reducing the
signature set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.timeseries.correlation import count_strong_partners, pairwise_correlation_matrix

__all__ = ["CbcResult", "correlation_based_clusters"]

#: The paper's default: rho >= 0.7 marks a strong, linearly fittable link.
DEFAULT_RHO_THRESHOLD = 0.7


@dataclass(frozen=True)
class CbcResult:
    """Outcome of correlation-based clustering.

    Attributes
    ----------
    labels:
        Cluster label per input series (``0 .. n_clusters-1`` in creation
        order).
    signatures:
        Index of the signature series of each cluster, aligned with cluster
        labels (``signatures[k]`` leads cluster ``k``).
    """

    labels: Tuple[int, ...]
    signatures: Tuple[int, ...]

    @property
    def n_clusters(self) -> int:
        return len(self.signatures)


def correlation_based_clusters(
    series: Sequence[Sequence[float]],
    rho_threshold: float = DEFAULT_RHO_THRESHOLD,
    corr: Optional[np.ndarray] = None,
) -> CbcResult:
    """Run CBC over a set of series.

    Parameters
    ----------
    series:
        ``(n_series, n_samples)``-shaped data (rows are series).
    rho_threshold:
        Correlation threshold for a "strong" link (paper: 0.7).
    corr:
        Optional precomputed ``(n_series, n_series)`` Pearson correlation
        matrix of the rows.  The signature search passes it so the matrix
        CBC clusters on is shared with the step-2 VIF elimination instead
        of being computed twice.
    """
    data = np.asarray(series, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"series must be 2-D (n_series, n_samples), got {data.shape}")
    n = data.shape[0]
    if n == 0:
        raise ValueError("need at least one series")
    if not 0.0 < rho_threshold <= 1.0:
        raise ValueError(f"rho_threshold must be in (0, 1], got {rho_threshold}")

    if corr is None:
        corr = pairwise_correlation_matrix(data)
    else:
        corr = np.asarray(corr, dtype=float)
        if corr.shape != (n, n):
            raise ValueError(f"corr must be ({n}, {n}), got {corr.shape}")
    remaining = list(range(n))
    labels = [-1] * n
    signatures: List[int] = []

    while remaining:
        sub = corr[np.ix_(remaining, remaining)]
        counts, means = count_strong_partners(sub, rho_threshold)
        # Rank: most strong partners, then highest mean strong rho; ties go to
        # the lowest series index for determinism.
        order = sorted(
            range(len(remaining)),
            key=lambda k: (-counts[k], -means[k], remaining[k]),
        )
        top_local = order[0]
        top = remaining[top_local]
        cluster = len(signatures)
        signatures.append(top)
        labels[top] = cluster
        members = [
            remaining[k]
            for k in range(len(remaining))
            if k != top_local and sub[top_local, k] >= rho_threshold
        ]
        for member in members:
            labels[member] = cluster
        taken = {top, *members}
        remaining = [idx for idx in remaining if idx not in taken]

    return CbcResult(labels=tuple(labels), signatures=tuple(signatures))
