"""Spatial-temporal prediction models (paper Section III).

The ATM prediction methodology splits a box's ``M x N`` demand series into a
small *signature set* — predicted with a (relatively expensive) temporal
model — and a *dependent set* predicted as linear combinations of the
signatures:

* :mod:`repro.prediction.temporal` — temporal models: seasonal naive,
  moving average, autoregressive, ARIMA-style, Holt-Winters, and the
  NumPy MLP neural network used for the paper's signature series.
* :mod:`repro.prediction.spatial` — signature-set search (DTW clustering /
  correlation-based clustering + VIF / stepwise regression) and the linear
  dependent-series models.
* :mod:`repro.prediction.combined` — the full ATM spatial-temporal
  predictor for a box.
"""

from repro.prediction.base import TemporalPredictor, fit_predict
from repro.prediction.combined import (
    BoxPrediction,
    SpatialTemporalConfig,
    SpatialTemporalPredictor,
)
from repro.prediction.registry import available_temporal_models, make_temporal_model
from repro.prediction.spatial.signatures import (
    ClusteringMethod,
    SignatureSearchConfig,
    SpatialModel,
    search_signature_set,
)

__all__ = [
    "BoxPrediction",
    "ClusteringMethod",
    "SignatureSearchConfig",
    "SpatialModel",
    "SpatialTemporalConfig",
    "SpatialTemporalPredictor",
    "TemporalPredictor",
    "available_temporal_models",
    "fit_predict",
    "make_temporal_model",
    "search_signature_set",
]
