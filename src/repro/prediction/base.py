"""Common interfaces for temporal predictors.

Every temporal model in :mod:`repro.prediction.temporal` follows the same
two-phase protocol: :meth:`fit` on a training history, then
:meth:`predict` for a horizon of future windows.  The paper's setting is a
5-day training history and a 1-day (96-window) horizon.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = ["TemporalPredictor", "fit_predict", "validate_history", "validate_horizon"]


def validate_history(history: Sequence[float], minimum: int = 2) -> np.ndarray:
    """Coerce and validate a training history series."""
    arr = np.asarray(history, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"history must be 1-D, got shape {arr.shape}")
    if arr.size < minimum:
        raise ValueError(f"history needs at least {minimum} samples, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("history contains non-finite samples")
    return arr


def validate_horizon(horizon: int) -> int:
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    return int(horizon)


class TemporalPredictor(abc.ABC):
    """Base class for single-series forecasting models.

    Subclasses must implement :meth:`fit` (storing whatever state they need)
    and :meth:`predict`.  ``fit`` returns ``self`` so calls chain.
    """

    #: Set by fit(); subclasses may rely on it in predict().
    _history: np.ndarray

    @abc.abstractmethod
    def fit(self, history: Sequence[float]) -> "TemporalPredictor":
        """Train the model on a history series (oldest sample first)."""

    @abc.abstractmethod
    def predict(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` windows after the fitted history."""

    @property
    def is_fitted(self) -> bool:
        return getattr(self, "_history", None) is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(f"{type(self).__name__} has not been fitted")


def fit_predict(
    model: TemporalPredictor, history: Sequence[float], horizon: int
) -> np.ndarray:
    """Convenience: fit a fresh model and forecast in one call."""
    return model.fit(history).predict(horizon)
