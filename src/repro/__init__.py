"""repro — reproduction of "Managing Data Center Tickets: Prediction and
Active Sizing" (Xue, Birke, Chen, Smirni; DSN 2016).

The package implements the paper's ATM (Active Ticket Managing) system and
every substrate its evaluation depends on:

* :mod:`repro.trace` — trace data model and a calibrated synthetic fleet
  generator standing in for the proprietary IBM production trace.
* :mod:`repro.tickets` — ticketing policies, monitoring, and the Section II
  characterization analyses.
* :mod:`repro.timeseries` — DTW, correlation, clustering, silhouette,
  regression/VIF/stepwise, metrics — all from scratch on NumPy.
* :mod:`repro.prediction` — temporal models (incl. a NumPy MLP) and the
  spatial signature-set methodology (Section III).
* :mod:`repro.resizing` — the ticket-minimization problem, its MCKP
  transform, greedy/exact solvers and baseline allocators (Section IV).
* :mod:`repro.core` — the ATM controller and fleet pipeline (Section V-A).
* :mod:`repro.testbed` — the simulated MediaWiki cluster (Section V-B).

Quickstart::

    from repro.trace import FleetConfig, generate_fleet
    from repro.core import AtmConfig, run_fleet_atm

    fleet = generate_fleet(FleetConfig(n_boxes=10, days=6, seed=7))
    result = run_fleet_atm(fleet, AtmConfig())
    print(result.mean_ape(), result.mean_signature_ratio())
"""

from repro.core import AtmConfig, AtmController, FleetAtmResult, run_fleet_atm
from repro.tickets import TicketPolicy
from repro.trace import FleetConfig, FleetTrace, Resource, generate_fleet

__version__ = "1.0.0"

__all__ = [
    "AtmConfig",
    "AtmController",
    "FleetAtmResult",
    "FleetConfig",
    "FleetTrace",
    "Resource",
    "TicketPolicy",
    "__version__",
    "generate_fleet",
    "run_fleet_atm",
]
