"""Calibrated synthetic fleet generator.

The paper's trace is proprietary; this generator is the documented
substitution (see DESIGN.md).  It produces per-box co-located VM CPU/RAM
usage series from an explicit factor model whose loadings are chosen so the
fleet reproduces the paper's published aggregates:

* **Ticket statistics (Fig. 2).**  A tunable share of boxes hosts one or two
  heavily loaded "culprit" VMs; the culprit mean-usage distribution is wide
  so ticket counts decay slowly as the threshold rises from 60% to 80%
  (the paper's 39/33/29 CPU tickets per box).  RAM is over-provisioned:
  fewer boxes with RAM tickets, and RAM hot spots rarely clear 80%.
* **Spatial correlation (Fig. 3).**  Each VM's standardized CPU signal is
  ``a*S + b*G + c*U`` (box factor, group factor, idiosyncratic factor) and
  its RAM signal is ``d*S + f*U + h*V``.  Sharing ``U`` between a VM's CPU
  and RAM yields the strong inter-pair correlation (paper mean 0.62), while
  ``a, d`` control the weaker intra-CPU/intra-RAM/inter-all couplings
  (paper means 0.26 / 0.24 / 0.30).
* **Consolidation level**: on average 10 VMs per box, heterogeneous VM and
  box capacities, boxes lowly utilized (capacity headroom), all as reported
  in Section II.

Every draw flows through one ``numpy.random.Generator`` — a fleet is fully
reproducible from ``FleetConfig.seed``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.trace.model import FORBID_GENERATION_ENV_VAR, BoxTrace, FleetTrace, VMTrace
from repro.trace.workloads import ar1_noise, bursts, diurnal

__all__ = [
    "FleetConfig",
    "FORBID_GENERATION_ENV_VAR",
    "check_generation_allowed",
    "generate_fleet",
    "generate_box",
]

# FORBID_GENERATION_ENV_VAR (canonically defined in repro.trace.model, which
# also enforces the materialization half of the guard): when set to anything
# but ""/"0", :func:`generate_fleet` raises.  The parallel execution engine
# ships shard descriptors or pickled ``BoxTrace`` objects to its pool
# workers; a worker that falls back to regenerating a fleet would silently
# multiply the dominant data-synthesis cost by the worker count.  Tests set
# this variable around parallel runs to prove workers never do.


def check_generation_allowed() -> None:
    """Raise when the worker guard forbids fleet-scale data synthesis."""
    if os.environ.get(FORBID_GENERATION_ENV_VAR, "").strip() not in ("", "0"):
        raise RuntimeError(
            f"fleet generation is forbidden ({FORBID_GENERATION_ENV_VAR} is set): "
            "pool workers must operate on shard descriptors or pickled BoxTrace "
            "objects shipped from the parent process, never regenerate fleets"
        )


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the synthetic fleet.  Defaults reproduce the paper's aggregates.

    Attributes
    ----------
    n_boxes:
        Number of physical boxes.
    mean_vms_per_box / min_vms_per_box / max_vms_per_box:
        Consolidation level (paper: ~10 VMs per box on average).
    days / windows_per_day:
        Trace length; the paper uses 7 days of 15-minute windows (96/day).
    seed:
        Root seed for the fleet's random generator.
    cpu_hot_box_fraction / ram_hot_box_fraction:
        Probability that a box hosts CPU (RAM) culprit VMs at all.
    cpu_hot_mu_range / ram_hot_mu_range:
        Mean-usage range of culprit VMs (wide, so ticket counts decay slowly
        with the threshold as in Fig. 2b).
    loading_* :
        Centers of the factor-model loadings; see the module docstring.
    headroom_range:
        Box capacity = sum of VM capacities x U(headroom) — data centers are
        lowly utilized, which is what makes resizing so effective (Fig. 8).
    """

    n_boxes: int = 100
    mean_vms_per_box: float = 10.0
    min_vms_per_box: int = 3
    max_vms_per_box: int = 20
    days: int = 7
    windows_per_day: int = 96
    interval_minutes: int = 15
    seed: int = 20160628

    cpu_hot_box_fraction: float = 0.45
    cpu_second_hot_probability: float = 0.35
    cpu_pinned_fraction: float = 0.45
    #: Pinned culprits run past their entitlement (uncapped LPAR semantics):
    #: wide distributions with means near or above 100% keep ticket counts
    #: high across all three thresholds (flat Fig. 2b decay), give
    #: peak-sized allocations real ticket relief (stingy's Fig. 8 gains),
    #: and make their zero-ticket capacity targets large enough to exhaust
    #: the box budget (max-min fairness's Fig. 8/10 shortfall).
    cpu_pinned_mu_range: Tuple[float, float] = (85.0, 120.0)
    cpu_pinned_sigma_range: Tuple[float, float] = (22.0, 40.0)
    cpu_hot_mu_range: Tuple[float, float] = (48.0, 90.0)
    cpu_hot_sigma_range: Tuple[float, float] = (10.0, 20.0)
    #: Cool VMs are log-normal-shaped: a low typical level with a heavy
    #: right tail (peak-to-median of ~3-9x), which is how production VMs
    #: actually look and what keeps peak-sized allocations nearly ticket-free.
    cpu_cool_mu_range: Tuple[float, float] = (2.0, 10.0)
    cpu_cool_lognorm_sigma_range: Tuple[float, float] = (0.5, 0.8)
    #: Scheduled-job spikes on cool VMs (cron/backup plateaus).  They set the
    #: cool VMs' daily peaks well above typical usage while (mostly) staying
    #: under the ticket threshold, so peak-sized allocations stay nearly
    #: ticket-free.  Spike *times* are box-shared backup windows — VMs of a
    #: box spike together, which both matches operational reality and
    #: contributes to the intra-box spatial correlation of Fig. 3.
    cpu_spikes_per_day: int = 2
    cpu_spike_height_range: Tuple[float, float] = (14.0, 38.0)
    spike_participation: float = 0.8
    #: Probability that a VM's CPU spike is accompanied by a RAM spike (the
    #: job consumes both), driving the same-VM inter-pair correlation.
    spike_pair_probability: float = 0.7

    ram_hot_box_fraction: float = 0.36
    ram_second_hot_probability: float = 0.15
    ram_pinned_fraction: float = 0.30
    ram_pinned_mu_range: Tuple[float, float] = (75.0, 110.0)
    ram_pinned_sigma_range: Tuple[float, float] = (15.0, 25.0)
    ram_hot_mu_range: Tuple[float, float] = (52.0, 70.0)
    ram_hot_sigma_range: Tuple[float, float] = (4.0, 8.0)
    ram_cool_mu_range: Tuple[float, float] = (4.0, 12.0)
    ram_cool_lognorm_sigma_range: Tuple[float, float] = (0.35, 0.55)
    ram_spike_height_fraction: Tuple[float, float] = (0.3, 0.7)

    loading_shared_cpu: float = 0.46
    loading_group_cpu: float = 0.35
    loading_shared_ram: float = 0.52
    loading_pair: float = 0.48
    loading_jitter: float = 0.10
    #: Some VMs' RAM tracks their CPU almost one-to-one (request-driven
    #: memory).  These strong inter-pair links (rho >= 0.7) are what lets
    #: CBC absorb RAM series behind their own VM's CPU signature — the
    #: paper's Fig. 5 observation that CBC signatures are mostly CPU.
    strong_pair_fraction: float = 0.35
    strong_pair_loading_range: Tuple[float, float] = (0.74, 0.90)
    #: Load-balanced replica sets: a box may host 2-3 near-identical VMs
    #: behind a balancer, giving a heavy tail of very strong intra-CPU
    #: correlations (rho ~ 0.85) on top of the modest typical levels.
    replica_probability: float = 0.55
    replica_loading: float = 0.90

    burst_rate: float = 0.004
    burst_amplitude: float = 15.0
    #: Box capacity relative to the sum of VM capacities.  Values below 1
    #: model overcommitted boxes ("aggressively multiplexed"): the virtual
    #: budget C the resizing problem may distribute is scarcer than the sum
    #: of configured sizes, which is what makes max-min fairness punish
    #: large VMs on a subset of boxes (Figs. 8 and 10).
    headroom_range: Tuple[float, float] = (1.00, 1.30)

    #: Usage clipping ceilings (percent of allocated capacity).  CPU usage on
    #: uncapped/overcommitted VMs can run well past the entitlement; RAM less
    #: so (ballooning/swap accounting).  See trace.model.MAX_USAGE_PCT.
    cpu_usage_cap: float = 300.0
    ram_usage_cap: float = 150.0

    def __post_init__(self) -> None:
        if self.n_boxes < 1:
            raise ValueError("n_boxes must be >= 1")
        if not self.min_vms_per_box >= 1:
            raise ValueError("min_vms_per_box must be >= 1")
        if self.min_vms_per_box > self.max_vms_per_box:
            raise ValueError("min_vms_per_box must not exceed max_vms_per_box")
        if self.days < 1 or self.windows_per_day < 2:
            raise ValueError("trace must span at least one day of >= 2 windows")
        for name in ("cpu_hot_box_fraction", "ram_hot_box_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def n_windows(self) -> int:
        return self.days * self.windows_per_day


# Discrete menus of realistic virtual capacities.
_VCPU_MENU = np.array([1, 2, 2, 4, 4, 8, 16])  # virtual cores
_GHZ_PER_CORE = (2.2, 3.6)
_RAM_MENU = np.array([2.0, 4.0, 4.0, 8.0, 8.0, 16.0, 32.0, 64.0])  # GB


def _unit_variance(signal: np.ndarray) -> np.ndarray:
    std = signal.std()
    if std <= 1e-12:
        return np.zeros_like(signal)
    return (signal - signal.mean()) / std


def _box_factor(rng: np.random.Generator, cfg: FleetConfig) -> np.ndarray:
    """A unit-variance box-level activity factor: diurnal + AR(1).

    The diurnal share dominates: production usage repeats day over day,
    which is what makes one-day-ahead prediction tractable at all (the
    paper trains for 5 days and predicts the 6th).
    """
    shape = diurnal(
        cfg.n_windows,
        cfg.windows_per_day,
        amplitude=1.0,
        phase=rng.uniform(0.0, 1.0),
        sharpness=rng.uniform(1.0, 2.0),
    )
    noise = ar1_noise(rng, cfg.n_windows, phi=rng.uniform(0.75, 0.92), sigma=1.0)
    mix = rng.uniform(0.6, 0.9)
    return _unit_variance(mix * _unit_variance(shape) + (1 - mix) * _unit_variance(noise))


def _idio_factor(rng: np.random.Generator, cfg: FleetConfig, slow: bool) -> np.ndarray:
    """Per-VM factor: its own repeatable daily pattern plus AR(1) wander."""
    if slow:
        # RAM-like: an almost-static level (memory is sticky day over day)
        # plus a mild repeatable daily pattern — tomorrow looks like today,
        # which is why the paper's RAM predictions (and hence RAM resizing)
        # work so well.
        phi = rng.uniform(0.985, 0.998)
        periodic_weight = rng.uniform(0.35, 0.65)
    else:
        phi = rng.uniform(0.6, 0.9)
        periodic_weight = rng.uniform(0.55, 0.85)
    shape = diurnal(
        cfg.n_windows,
        cfg.windows_per_day,
        amplitude=1.0,
        phase=rng.uniform(0.0, 1.0),
        sharpness=rng.uniform(1.0, 2.5),
    )
    noise = ar1_noise(rng, cfg.n_windows, phi=phi, sigma=1.0)
    return _unit_variance(
        periodic_weight * _unit_variance(shape)
        + (1 - periodic_weight) * _unit_variance(noise)
    )


def _jitter(rng: np.random.Generator, center: float, cfg: FleetConfig) -> float:
    return float(
        np.clip(center + rng.uniform(-cfg.loading_jitter, cfg.loading_jitter), 0.05, 0.95)
    )


def generate_box(
    box_index: int,
    cfg: FleetConfig,
    rng: Optional[np.random.Generator] = None,
) -> BoxTrace:
    """Generate one box trace.

    ``rng`` defaults to a generator derived from ``cfg.seed`` and
    ``box_index``, so individual boxes can be regenerated independently of
    the rest of the fleet.
    """
    if rng is None:
        rng = np.random.default_rng(np.random.SeedSequence((cfg.seed, box_index)))

    m = int(
        np.clip(
            rng.poisson(cfg.mean_vms_per_box),
            cfg.min_vms_per_box,
            cfg.max_vms_per_box,
        )
    )
    n_windows = cfg.n_windows

    shared = _box_factor(rng, cfg)
    n_groups = max(1, min(m // 3, 3))
    group_factors = [_box_factor(rng, cfg) for _ in range(n_groups)]
    group_of = rng.integers(0, n_groups, size=m)

    # Capacities first: culprit selection is size-weighted below.
    vcpus = rng.choice(_VCPU_MENU, size=m)
    ghz = rng.uniform(*_GHZ_PER_CORE, size=m)
    cpu_capacities = vcpus * ghz
    ram_capacities = rng.choice(_RAM_MENU, size=m)

    cpu_hot_box = rng.random() < cfg.cpu_hot_box_fraction
    ram_hot_box = rng.random() < cfg.ram_hot_box_fraction
    n_cpu_hot = (
        1 + int(rng.random() < cfg.cpu_second_hot_probability) if cpu_hot_box else 0
    )
    n_ram_hot = (
        1 + int(rng.random() < cfg.ram_second_hot_probability) if ram_hot_box else 0
    )
    # Culprits tend to be the *large* VMs (busy databases and app servers):
    # selection probability grows with the square of the capacity.  This is
    # what makes max-min fairness — which fills small VMs first — leave the
    # heavy hitters under-provisioned on capacity-bound boxes (Fig. 8/10).
    cpu_weights = cpu_capacities**2 / (cpu_capacities**2).sum()
    ram_weights = ram_capacities**2 / (ram_capacities**2).sum()
    cpu_hot_vms = set(
        rng.choice(m, size=min(n_cpu_hot, m), replace=False, p=cpu_weights).tolist()
    )
    ram_hot_vms = set(
        rng.choice(m, size=min(n_ram_hot, m), replace=False, p=ram_weights).tolist()
    )

    # Load-balanced replica set: 2-3 cool VMs sharing one workload factor.
    replica_set: set = set()
    cool_vm_ids = [i for i in range(m) if i not in cpu_hot_vms]
    if len(cool_vm_ids) >= 3 and rng.random() < cfg.replica_probability:
        size = int(rng.integers(2, 4))
        replica_set = set(
            rng.choice(cool_vm_ids, size=min(size, len(cool_vm_ids)), replace=False).tolist()
        )
    replica_factor = _box_factor(rng, cfg)
    replica_mu = rng.uniform(*cfg.cpu_cool_mu_range)

    # Box-level backup/batch windows: the times of day at which co-located
    # VMs spike together (heights and participation vary per VM).
    spike_anchors = rng.integers(0, cfg.windows_per_day, size=cfg.cpu_spikes_per_day)
    n_days = int(np.ceil(n_windows / cfg.windows_per_day))

    def _vm_spike_trains() -> Tuple[np.ndarray, np.ndarray]:
        cpu_spikes = np.zeros(n_windows)
        ram_spikes = np.zeros(n_windows)
        for anchor in spike_anchors:
            if rng.random() >= cfg.spike_participation:
                continue
            height = rng.uniform(*cfg.cpu_spike_height_range)
            paired = rng.random() < cfg.spike_pair_probability
            ram_frac = rng.uniform(*cfg.ram_spike_height_fraction)
            # Scheduled jobs are regular: same start slot and duration every
            # day, only the height varies.  (Random day-to-day time jitter
            # would make spikes look unpredictable to any one-day-ahead
            # model, which real cron jobs are not.)
            duration = int(rng.integers(1, 3))
            for day in range(n_days):
                start = day * cfg.windows_per_day + int(anchor)
                if not 0 <= start < n_windows:
                    continue
                stop = min(start + duration, n_windows)
                day_height = height * rng.uniform(0.85, 1.15)
                cpu_spikes[start:stop] = np.maximum(cpu_spikes[start:stop], day_height)
                if paired:
                    ram_spikes[start:stop] = np.maximum(
                        ram_spikes[start:stop], day_height * ram_frac
                    )
        return cpu_spikes, ram_spikes

    vms: List[VMTrace] = []
    for i in range(m):
        # --- factor loadings -------------------------------------------------
        is_replica = i in replica_set
        if is_replica:
            # Replicas ride the shared replica workload almost entirely.
            a = _jitter(rng, 0.20, cfg)
            b = float(
                np.clip(cfg.replica_loading + rng.uniform(-0.04, 0.04), 0.5, 0.95)
            )
            c = float(np.sqrt(max(0.02, 1.0 - a * a - b * b)))
            group_signal = replica_factor
        else:
            a = _jitter(rng, cfg.loading_shared_cpu, cfg)  # CPU on shared
            b = _jitter(rng, cfg.loading_group_cpu, cfg)  # CPU on group
            c = float(np.sqrt(max(0.05, 1.0 - a * a - b * b)))  # CPU idio
            group_signal = group_factors[group_of[i]]

        u = _idio_factor(rng, cfg, slow=False)  # CPU idiosyncratic
        v = _idio_factor(rng, cfg, slow=True)  # RAM idiosyncratic
        cpu_z = a * shared + b * group_signal + c * u

        if rng.random() < cfg.strong_pair_fraction:
            # Request-driven memory: RAM tracks this VM's CPU directly.
            g = rng.uniform(*cfg.strong_pair_loading_range)
            ram_z = g * cpu_z + float(np.sqrt(max(0.02, 1.0 - g * g))) * v
        else:
            d = _jitter(rng, cfg.loading_shared_ram, cfg)  # RAM on shared
            f = _jitter(rng, cfg.loading_pair, cfg)  # RAM on CPU-idio
            h = float(np.sqrt(max(0.05, 1.0 - d * d - f * f)))  # RAM idio
            ram_z = d * shared + f * u + h * v

        # --- levels -----------------------------------------------------------
        if i in cpu_hot_vms:
            # Culprit VMs split into "pinned" (persistently at or beyond
            # their entitlement, carrying tickets even at the 80% threshold)
            # and diurnal hot spots — this mix keeps Fig. 2b's decay flat.
            if rng.random() < cfg.cpu_pinned_fraction:
                cpu_mu = rng.uniform(*cfg.cpu_pinned_mu_range)
                cpu_sigma = rng.uniform(*cfg.cpu_pinned_sigma_range)
            else:
                cpu_mu = rng.uniform(*cfg.cpu_hot_mu_range)
                cpu_sigma = rng.uniform(*cfg.cpu_hot_sigma_range)
            cpu_usage = cpu_mu + cpu_sigma * cpu_z
        else:
            # Cool VMs: log-normal shape (low typical level) topped by
            # box-shared scheduled spikes that define the daily peak.  The
            # tail parameter is capped so the continuous part essentially
            # never crosses the lowest ticket threshold on its own.
            if is_replica:
                cpu_mu = replica_mu * rng.uniform(0.85, 1.15)
            else:
                cpu_mu = rng.uniform(*cfg.cpu_cool_mu_range)
            s = rng.uniform(*cfg.cpu_cool_lognorm_sigma_range)
            s = min(s, float(np.log(55.0 / cpu_mu)) / 3.2)
            cpu_usage = cpu_mu * np.exp(s * cpu_z)
        cpu_usage = cpu_usage + bursts(
            rng,
            n_windows,
            rate_per_window=cfg.burst_rate,
            amplitude=cfg.burst_amplitude,
        )
        if i in ram_hot_vms:
            if rng.random() < cfg.ram_pinned_fraction:
                ram_mu = rng.uniform(*cfg.ram_pinned_mu_range)
                ram_sigma = rng.uniform(*cfg.ram_pinned_sigma_range)
            else:
                ram_mu = rng.uniform(*cfg.ram_hot_mu_range)
                ram_sigma = rng.uniform(*cfg.ram_hot_sigma_range)
            ram_usage = ram_mu + ram_sigma * ram_z
        else:
            ram_mu = rng.uniform(*cfg.ram_cool_mu_range)
            s = rng.uniform(*cfg.ram_cool_lognorm_sigma_range)
            s = min(s, float(np.log(55.0 / ram_mu)) / 3.2)
            ram_usage = ram_mu * np.exp(s * ram_z)
        if i not in cpu_hot_vms or i not in ram_hot_vms:
            cpu_spikes, ram_spikes = _vm_spike_trains()
            if i not in cpu_hot_vms:
                cpu_usage = cpu_usage + cpu_spikes
            if i not in ram_hot_vms:
                ram_usage = ram_usage + ram_spikes

        vms.append(
            VMTrace(
                vm_id=f"box{box_index:05d}-vm{i:03d}",
                cpu_capacity=float(cpu_capacities[i]),
                ram_capacity=float(ram_capacities[i]),
                cpu_usage=np.clip(cpu_usage, 0.0, cfg.cpu_usage_cap),
                ram_usage=np.clip(ram_usage, 0.0, cfg.ram_usage_cap),
            )
        )

    headroom_cpu = rng.uniform(*cfg.headroom_range)
    headroom_ram = rng.uniform(*cfg.headroom_range)
    box = BoxTrace(
        box_id=f"box{box_index:05d}",
        cpu_capacity=sum(vm.cpu_capacity for vm in vms) * headroom_cpu,
        ram_capacity=sum(vm.ram_capacity for vm in vms) * headroom_ram,
        vms=vms,
        interval_minutes=cfg.interval_minutes,
    )
    return box


def generate_fleet(
    cfg: Optional[FleetConfig] = None,
    name: str = "synthetic",
    scenario=None,
) -> FleetTrace:
    """Generate a full fleet trace from a :class:`FleetConfig`.

    ``scenario`` (a :class:`repro.trace.scenario.ScenarioSpec`) renders
    the fleet through the scenario engine; ``None`` — or the identity
    ``paper-fig2`` spec — takes the legacy calibrated path below, bit for
    bit.
    """
    check_generation_allowed()
    cfg = cfg or FleetConfig()
    if scenario is not None and not scenario.is_identity:
        from repro.trace.scenario import render_fleet

        return render_fleet(
            scenario, cfg, name=scenario.name if name == "synthetic" else name
        )
    boxes = [generate_box(b, cfg) for b in range(cfg.n_boxes)]
    return FleetTrace(boxes=boxes, name=name)
