"""Trace data model: VMs, boxes, fleets, and their usage/demand series.

Conventions (matching the paper's monitoring data):

* Usage series are percentages of the VM's *allocated* virtual capacity,
  sampled once per ticketing window (15 minutes in the paper).  Usage may
  exceed 100%: the paper's trace is dominated by AIX/HP-UX and VMware
  systems where uncapped/overcommitted VMs can consume beyond their
  entitlement.  (This is also the only reading under which the paper's
  "stingy" peak-demand allocator can reduce tickets at all — see
  DESIGN.md.)  Validation caps usage at :data:`MAX_USAGE_PCT`.
* Demand series are usage multiplied by allocated capacity — absolute GHz
  for CPU, GB for RAM (paper Section III, footnote 2).  Demand is what the
  prediction models forecast and what the resizing algorithm consumes.
* A *box* hosts ``M`` co-located VMs and owns ``M x N`` series, where ``N``
  is the number of resources (CPU and RAM here).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "FORBID_GENERATION_ENV_VAR",
    "MAX_USAGE_PCT",
    "Resource",
    "SeriesKey",
    "VMTrace",
    "BoxTrace",
    "FleetTrace",
    "mark_shard_tier_active",
    "shard_tier_active",
]

#: When set (to anything but ``""``/``0``) this guard forbids work that
#: multiplies fleet-scale memory or compute inside pool workers: fleet
#: *generation* (enforced by :func:`repro.trace.generator.generate_fleet`,
#: which re-exports this name) and — once the memory-mapped shard tier is
#: active in a process — full-fleet *materialization* (constructing a
#: :class:`FleetTrace`, enforced below).  Workers on the shard path build
#: per-box views over mapped arrays; holding the whole fleet would defeat
#: the bounded-memory contract the tests pin down.
FORBID_GENERATION_ENV_VAR = "REPRO_FORBID_FLEET_GENERATION"

# Process-local marker: flipped by repro.store.shards the first time a
# shard-backed box view is opened in this process (workers inherit a set
# flag across fork).  Only meaningful combined with the guard variable.
_SHARD_TIER_ACTIVE = False


def mark_shard_tier_active() -> None:
    """Record that this process has opened memory-mapped trace shards."""
    global _SHARD_TIER_ACTIVE
    _SHARD_TIER_ACTIVE = True


def shard_tier_active() -> bool:
    """Whether any shard-backed box view was opened in this process."""
    return _SHARD_TIER_ACTIVE


def _materialization_forbidden() -> bool:
    if not _SHARD_TIER_ACTIVE:
        return False
    return os.environ.get(FORBID_GENERATION_ENV_VAR, "").strip() not in ("", "0")

#: Upper validation bound for usage percentages.  Values above 100 model
#: uncapped VMs consuming past their entitlement (common on AIX shared
#: LPARs and overcommitted hypervisors, which dominate the paper's trace).
MAX_USAGE_PCT = 400.0


class Resource(enum.Enum):
    """A monitored virtual resource."""

    CPU = "cpu"
    RAM = "ram"

    @property
    def unit(self) -> str:
        return "GHz" if self is Resource.CPU else "GB"


@dataclass(frozen=True, order=True)
class SeriesKey:
    """Identifies one usage/demand series on a box: (VM index, resource)."""

    vm_index: int
    resource: Resource = field(compare=True)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"vm{self.vm_index}:{self.resource.value}"


def _validate_usage(usage: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(usage, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite samples")
    if arr.min() < -1e-9 or arr.max() > MAX_USAGE_PCT + 1e-9:
        raise ValueError(
            f"{name} must be a percentage series in [0, {MAX_USAGE_PCT:.0f}], "
            f"got range [{arr.min():.3f}, {arr.max():.3f}]"
        )
    return np.clip(arr, 0.0, MAX_USAGE_PCT)


@dataclass
class VMTrace:
    """One virtual machine: allocated capacities and usage series.

    Parameters
    ----------
    vm_id:
        Stable identifier (unique within the fleet).
    cpu_capacity:
        Allocated virtual CPU capacity in GHz.
    ram_capacity:
        Allocated virtual RAM capacity in GB.
    cpu_usage, ram_usage:
        Percent-of-allocation series, one sample per ticketing window.
    """

    vm_id: str
    cpu_capacity: float
    ram_capacity: float
    cpu_usage: np.ndarray
    ram_usage: np.ndarray

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0 or self.ram_capacity <= 0:
            raise ValueError(
                f"VM {self.vm_id}: capacities must be positive, got "
                f"cpu={self.cpu_capacity}, ram={self.ram_capacity}"
            )
        self.cpu_usage = _validate_usage(self.cpu_usage, f"VM {self.vm_id} cpu_usage")
        self.ram_usage = _validate_usage(self.ram_usage, f"VM {self.vm_id} ram_usage")
        if self.cpu_usage.size != self.ram_usage.size:
            raise ValueError(
                f"VM {self.vm_id}: cpu and ram series lengths differ "
                f"({self.cpu_usage.size} vs {self.ram_usage.size})"
            )

    @property
    def n_windows(self) -> int:
        return self.cpu_usage.size

    def capacity(self, resource: Resource) -> float:
        return self.cpu_capacity if resource is Resource.CPU else self.ram_capacity

    def usage(self, resource: Resource) -> np.ndarray:
        return self.cpu_usage if resource is Resource.CPU else self.ram_usage

    def demand(self, resource: Resource) -> np.ndarray:
        """Return the absolute demand series (usage x allocated capacity)."""
        return self.usage(resource) / 100.0 * self.capacity(resource)


@dataclass
class BoxTrace:
    """One physical box hosting co-located VMs.

    ``cpu_capacity``/``ram_capacity`` are the total virtual capacities
    available for allocation on the box (the knapsack budget ``C`` of the
    resizing problem).
    """

    box_id: str
    cpu_capacity: float
    ram_capacity: float
    vms: List[VMTrace]
    interval_minutes: int = 15
    #: Fingerprint of the :class:`repro.trace.scenario.ScenarioSpec` that
    #: rendered this box (``None`` for the calibrated legacy profile and
    #: for traces predating the scenario engine).  Folded into
    #: :func:`repro.core.stages.box_fingerprint` so two scenarios sharing
    #: a fleet seed never share store artifacts.
    scenario_fp: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.vms:
            raise ValueError(f"box {self.box_id} hosts no VMs")
        if self.cpu_capacity <= 0 or self.ram_capacity <= 0:
            raise ValueError(f"box {self.box_id}: capacities must be positive")
        lengths = {vm.n_windows for vm in self.vms}
        if len(lengths) != 1:
            raise ValueError(
                f"box {self.box_id}: VMs have inconsistent series lengths {sorted(lengths)}"
            )
        if self.interval_minutes <= 0:
            raise ValueError("interval_minutes must be positive")

    @property
    def n_vms(self) -> int:
        return len(self.vms)

    @property
    def n_windows(self) -> int:
        return self.vms[0].n_windows

    @property
    def windows_per_day(self) -> int:
        return (24 * 60) // self.interval_minutes

    def capacity(self, resource: Resource) -> float:
        return self.cpu_capacity if resource is Resource.CPU else self.ram_capacity

    def series_keys(self) -> List[SeriesKey]:
        """All ``M x N`` series keys, CPU first then RAM, by VM index."""
        keys = [SeriesKey(i, Resource.CPU) for i in range(self.n_vms)]
        keys += [SeriesKey(i, Resource.RAM) for i in range(self.n_vms)]
        return keys

    def usage_matrix(self, resource: Optional[Resource] = None) -> np.ndarray:
        """Return usage series stacked as rows.

        With ``resource`` given: an ``(M, T)`` matrix for that resource.
        Without: the full ``(M*N, T)`` matrix in :meth:`series_keys` order.
        """
        if resource is not None:
            return np.vstack([vm.usage(resource) for vm in self.vms])
        return np.vstack(
            [vm.cpu_usage for vm in self.vms] + [vm.ram_usage for vm in self.vms]
        )

    def demand_matrix(self, resource: Optional[Resource] = None) -> np.ndarray:
        """Like :meth:`usage_matrix` but in absolute demand units."""
        if resource is not None:
            return np.vstack([vm.demand(resource) for vm in self.vms])
        return np.vstack(
            [vm.demand(Resource.CPU) for vm in self.vms]
            + [vm.demand(Resource.RAM) for vm in self.vms]
        )

    def series(self, key: SeriesKey, demand: bool = False) -> np.ndarray:
        """Return a single usage (or demand) series by key."""
        vm = self.vms[key.vm_index]
        return vm.demand(key.resource) if demand else vm.usage(key.resource)

    def allocations(self, resource: Resource) -> np.ndarray:
        """Return the current per-VM allocated capacities for a resource."""
        return np.array([vm.capacity(resource) for vm in self.vms])

    def split_windows(self, train_windows: int) -> Tuple["BoxTrace", "BoxTrace"]:
        """Split the box trace into (training, evaluation) window ranges."""
        if not 0 < train_windows < self.n_windows:
            raise ValueError(
                f"train_windows must be in (0, {self.n_windows}), got {train_windows}"
            )

        def slice_vm(vm: VMTrace, lo: int, hi: int) -> VMTrace:
            return VMTrace(
                vm_id=vm.vm_id,
                cpu_capacity=vm.cpu_capacity,
                ram_capacity=vm.ram_capacity,
                cpu_usage=vm.cpu_usage[lo:hi].copy(),
                ram_usage=vm.ram_usage[lo:hi].copy(),
            )

        head = BoxTrace(
            box_id=self.box_id,
            cpu_capacity=self.cpu_capacity,
            ram_capacity=self.ram_capacity,
            vms=[slice_vm(vm, 0, train_windows) for vm in self.vms],
            interval_minutes=self.interval_minutes,
            scenario_fp=self.scenario_fp,
        )
        tail = BoxTrace(
            box_id=self.box_id,
            cpu_capacity=self.cpu_capacity,
            ram_capacity=self.ram_capacity,
            vms=[slice_vm(vm, train_windows, self.n_windows) for vm in self.vms],
            interval_minutes=self.interval_minutes,
            scenario_fp=self.scenario_fp,
        )
        return head, tail


@dataclass
class FleetTrace:
    """A collection of box traces — the unit the fleet pipeline operates on."""

    boxes: List[BoxTrace]
    name: str = "fleet"
    #: Scenario fingerprint shared by every box (``None`` = legacy profile).
    scenario_fp: Optional[str] = None

    def __post_init__(self) -> None:
        if _materialization_forbidden():
            raise RuntimeError(
                f"full-fleet materialization is forbidden "
                f"({FORBID_GENERATION_ENV_VAR} is set and the shard tier is "
                f"active): processes on the shard path operate on per-box "
                f"memory-mapped views, never a whole in-RAM FleetTrace"
            )
        if not self.boxes:
            raise ValueError("fleet contains no boxes")
        ids = [box.box_id for box in self.boxes]
        if len(set(ids)) != len(ids):
            raise ValueError("box ids must be unique within a fleet")

    @property
    def n_boxes(self) -> int:
        return len(self.boxes)

    @property
    def n_vms(self) -> int:
        return sum(box.n_vms for box in self.boxes)

    @property
    def n_series(self) -> int:
        return 2 * self.n_vms

    def __iter__(self) -> Iterator[BoxTrace]:
        return iter(self.boxes)

    def box_by_id(self, box_id: str) -> BoxTrace:
        for box in self.boxes:
            if box.box_id == box_id:
                return box
        raise KeyError(f"no box {box_id!r} in fleet {self.name!r}")

    def summary(self) -> Dict[str, float]:
        """Return headline fleet statistics (sizes, consolidation level)."""
        vms_per_box = [box.n_vms for box in self.boxes]
        return {
            "boxes": float(self.n_boxes),
            "vms": float(self.n_vms),
            "series": float(self.n_series),
            "mean_vms_per_box": float(np.mean(vms_per_box)),
            "max_vms_per_box": float(np.max(vms_per_box)),
            "windows": float(self.boxes[0].n_windows),
        }
