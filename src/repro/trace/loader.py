"""CSV persistence for fleet traces.

The on-disk layout mirrors what a monitoring exporter would produce — one
long-format CSV with a row per (box, vm, resource, window) observation plus
capacity columns — so real monitoring dumps in the same shape can be loaded
and pushed through the identical analysis pipeline.

Format (header included):

    box_id,box_cpu_capacity,box_ram_capacity,vm_id,vm_cpu_capacity,
    vm_ram_capacity,window,cpu_used_pct,ram_used_pct
"""

from __future__ import annotations

import csv
from collections import OrderedDict
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.trace.model import BoxTrace, FleetTrace, VMTrace

__all__ = ["save_fleet_csv", "load_fleet_csv"]

_HEADER = [
    "box_id",
    "box_cpu_capacity",
    "box_ram_capacity",
    "vm_id",
    "vm_cpu_capacity",
    "vm_ram_capacity",
    "window",
    "cpu_used_pct",
    "ram_used_pct",
]


def save_fleet_csv(fleet: FleetTrace, path: Union[str, Path]) -> None:
    """Write a fleet trace to ``path`` in the long CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for box in fleet:
            for vm in box.vms:
                for t in range(vm.n_windows):
                    writer.writerow(
                        [
                            box.box_id,
                            f"{box.cpu_capacity:.6f}",
                            f"{box.ram_capacity:.6f}",
                            vm.vm_id,
                            f"{vm.cpu_capacity:.6f}",
                            f"{vm.ram_capacity:.6f}",
                            t,
                            f"{vm.cpu_usage[t]:.4f}",
                            f"{vm.ram_usage[t]:.4f}",
                        ]
                    )


def load_fleet_csv(
    path: Union[str, Path],
    interval_minutes: int = 15,
    name: str = "loaded",
) -> FleetTrace:
    """Load a fleet trace previously written by :func:`save_fleet_csv`.

    Rows may appear in any order; windows are sorted per VM.  Raises
    ``ValueError`` on a malformed header or on VMs with missing windows
    (the paper likewise restricts its ATM evaluation to gap-free boxes).
    """
    path = Path(path)
    boxes: "OrderedDict[str, dict]" = OrderedDict()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}; expected {_HEADER!r}"
            )
        for row in reader:
            if len(row) != len(_HEADER):
                raise ValueError(f"malformed row in {path}: {row!r}")
            (
                box_id,
                box_cpu,
                box_ram,
                vm_id,
                vm_cpu,
                vm_ram,
                window,
                cpu_pct,
                ram_pct,
            ) = row
            box = boxes.setdefault(
                box_id,
                {
                    "cpu_capacity": float(box_cpu),
                    "ram_capacity": float(box_ram),
                    "vms": OrderedDict(),
                },
            )
            vm = box["vms"].setdefault(
                vm_id,
                {
                    "cpu_capacity": float(vm_cpu),
                    "ram_capacity": float(vm_ram),
                    "samples": [],
                },
            )
            vm["samples"].append((int(window), float(cpu_pct), float(ram_pct)))

    built: List[BoxTrace] = []
    for box_id, box in boxes.items():
        vms: List[VMTrace] = []
        for vm_id, vm in box["vms"].items():
            samples = sorted(vm["samples"])
            windows = [w for w, _, _ in samples]
            if windows != list(range(len(windows))):
                raise ValueError(
                    f"VM {vm_id} in {path} has gaps or duplicate windows"
                )
            vms.append(
                VMTrace(
                    vm_id=vm_id,
                    cpu_capacity=vm["cpu_capacity"],
                    ram_capacity=vm["ram_capacity"],
                    cpu_usage=np.array([c for _, c, _ in samples]),
                    ram_usage=np.array([r for _, _, r in samples]),
                )
            )
        built.append(
            BoxTrace(
                box_id=box_id,
                cpu_capacity=box["cpu_capacity"],
                ram_capacity=box["ram_capacity"],
                vms=vms,
                interval_minutes=interval_minutes,
            )
        )
    return FleetTrace(boxes=built, name=name)
