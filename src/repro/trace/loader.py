"""Fleet-trace persistence: long-format CSV and memory-mapped shard stores.

The CSV layout mirrors what a monitoring exporter would produce — one
long-format CSV with a row per (box, vm, resource, window) observation plus
capacity columns — so real monitoring dumps in the same shape can be loaded
and pushed through the identical analysis pipeline.

Format (header included):

    box_id,box_cpu_capacity,box_ram_capacity,vm_id,vm_cpu_capacity,
    vm_ram_capacity,window,cpu_used_pct,ram_used_pct

For fleets too large to hold in RAM, the *shard store*
(:mod:`repro.store.shards`) is the paper-scale format: one content-addressed
``.npy`` usage matrix per box plus a JSON manifest, opened as ``np.memmap``
views.  :func:`save_fleet_shards` / :func:`load_fleet_shards` are re-exported
here so trace persistence has one front door; :func:`shard_fleet_csv`
converts a monitoring CSV into a shard store box by box.
"""

from __future__ import annotations

import csv
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.trace.model import BoxTrace, FleetTrace, VMTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.shards import ShardedFleet, ShardManifest

__all__ = [
    "external_fingerprint",
    "load_cluster_csv",
    "load_fleet_csv",
    "load_fleet_shards",
    "save_fleet_csv",
    "save_fleet_shards",
    "shard_cluster_csv",
    "shard_fleet_csv",
]

_HEADER = [
    "box_id",
    "box_cpu_capacity",
    "box_ram_capacity",
    "vm_id",
    "vm_cpu_capacity",
    "vm_ram_capacity",
    "window",
    "cpu_used_pct",
    "ram_used_pct",
]


def save_fleet_csv(fleet: FleetTrace, path: Union[str, Path]) -> None:
    """Write a fleet trace to ``path`` in the long CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for box in fleet:
            for vm in box.vms:
                for t in range(vm.n_windows):
                    writer.writerow(
                        [
                            box.box_id,
                            f"{box.cpu_capacity:.6f}",
                            f"{box.ram_capacity:.6f}",
                            vm.vm_id,
                            f"{vm.cpu_capacity:.6f}",
                            f"{vm.ram_capacity:.6f}",
                            t,
                            f"{vm.cpu_usage[t]:.4f}",
                            f"{vm.ram_usage[t]:.4f}",
                        ]
                    )


def load_fleet_csv(
    path: Union[str, Path],
    interval_minutes: int = 15,
    name: str = "loaded",
) -> FleetTrace:
    """Load a fleet trace previously written by :func:`save_fleet_csv`.

    Rows may appear in any order; windows are sorted per VM.  Raises
    ``ValueError`` on a malformed header or on VMs with missing windows
    (the paper likewise restricts its ATM evaluation to gap-free boxes).
    """
    path = Path(path)
    boxes: "OrderedDict[str, dict]" = OrderedDict()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}; expected {_HEADER!r}"
            )
        for row in reader:
            if len(row) != len(_HEADER):
                raise ValueError(f"malformed row in {path}: {row!r}")
            (
                box_id,
                box_cpu,
                box_ram,
                vm_id,
                vm_cpu,
                vm_ram,
                window,
                cpu_pct,
                ram_pct,
            ) = row
            box = boxes.setdefault(
                box_id,
                {
                    "cpu_capacity": float(box_cpu),
                    "ram_capacity": float(box_ram),
                    "vms": OrderedDict(),
                },
            )
            vm = box["vms"].setdefault(
                vm_id,
                {
                    "cpu_capacity": float(vm_cpu),
                    "ram_capacity": float(vm_ram),
                    "samples": [],
                },
            )
            vm["samples"].append((int(window), float(cpu_pct), float(ram_pct)))

    built: List[BoxTrace] = []
    for box_id, box in boxes.items():
        vms: List[VMTrace] = []
        for vm_id, vm in box["vms"].items():
            samples = sorted(vm["samples"])
            windows = [w for w, _, _ in samples]
            if windows != list(range(len(windows))):
                raise ValueError(
                    f"VM {vm_id} in {path} has gaps or duplicate windows"
                )
            vms.append(
                VMTrace(
                    vm_id=vm_id,
                    cpu_capacity=vm["cpu_capacity"],
                    ram_capacity=vm["ram_capacity"],
                    cpu_usage=np.array([c for _, c, _ in samples]),
                    ram_usage=np.array([r for _, _, r in samples]),
                )
            )
        built.append(
            BoxTrace(
                box_id=box_id,
                cpu_capacity=box["cpu_capacity"],
                ram_capacity=box["ram_capacity"],
                vms=vms,
                interval_minutes=interval_minutes,
            )
        )
    return FleetTrace(boxes=built, name=name)


# ------------------------------------------------- public cluster traces
# Azure/Google-style cluster dumps are *long* CSVs keyed by machine and
# timestamp rather than by pre-assigned window index.  The adapter below
# maps them onto the BoxTrace API: machines become boxes, per-machine
# sorted unique timestamps become window indices, and capacities (absent
# from public utilization dumps) fall back to configurable defaults so
# percent-of-allocation semantics are preserved.
_CLUSTER_HEADER = [
    "machine_id",
    "vm_id",
    "timestamp",
    "cpu_util_pct",
    "ram_util_pct",
]
_CLUSTER_CAPACITY_COLUMNS = ["vm_cpu_capacity", "vm_ram_capacity"]


def external_fingerprint(path: Union[str, Path]) -> str:
    """Content hash of an external trace file — the spec-free scenario key.

    Real traces have no :class:`~repro.trace.scenario.ScenarioSpec`; the
    file's BLAKE2b digest plays the same role, keying store artifacts so
    two different dumps (or an edited one) never share them.
    """
    import hashlib

    digest = hashlib.blake2b(digest_size=20)
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def load_cluster_csv(
    path: Union[str, Path],
    interval_minutes: int = 5,
    name: str = "external",
    default_vm_cpu_capacity: float = 1.0,
    default_vm_ram_capacity: float = 1.0,
    headroom: float = 1.2,
) -> FleetTrace:
    """Load an Azure/Google-style long cluster CSV as a :class:`FleetTrace`.

    Expected header: ``machine_id,vm_id,timestamp,cpu_util_pct,ram_util_pct``
    with optional trailing ``vm_cpu_capacity,vm_ram_capacity`` columns.
    Timestamps may be arbitrary monotone sample times (epoch seconds in the
    public dumps); each machine's sorted unique timestamps become its
    window indices, and every VM on a machine must cover all of them (the
    paper likewise restricts its evaluation to gap-free boxes).  Machine
    capacity is the sum of VM capacities times ``headroom``.  The fleet and
    every box carry :func:`external_fingerprint` as their ``scenario_fp``.
    """
    path = Path(path)
    if headroom <= 0:
        raise ValueError("headroom must be positive")
    machines: "OrderedDict[str, OrderedDict[str, dict]]" = OrderedDict()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        with_caps = header == _CLUSTER_HEADER + _CLUSTER_CAPACITY_COLUMNS
        if header != _CLUSTER_HEADER and not with_caps:
            raise ValueError(
                f"unexpected cluster CSV header in {path}: {header!r}; "
                f"expected {_CLUSTER_HEADER!r} (optionally followed by "
                f"{_CLUSTER_CAPACITY_COLUMNS!r})"
            )
        for row in reader:
            if len(row) != len(header):
                raise ValueError(f"malformed row in {path}: {row!r}")
            machine_id, vm_id, timestamp = row[0], row[1], float(row[2])
            cpu_pct, ram_pct = float(row[3]), float(row[4])
            vms = machines.setdefault(machine_id, OrderedDict())
            vm = vms.setdefault(
                vm_id,
                {
                    "cpu_capacity": (
                        float(row[5]) if with_caps else default_vm_cpu_capacity
                    ),
                    "ram_capacity": (
                        float(row[6]) if with_caps else default_vm_ram_capacity
                    ),
                    "samples": {},
                },
            )
            if timestamp in vm["samples"]:
                raise ValueError(
                    f"VM {vm_id} in {path} has duplicate samples at "
                    f"timestamp {timestamp}"
                )
            vm["samples"][timestamp] = (cpu_pct, ram_pct)

    fingerprint = external_fingerprint(path)
    built: List[BoxTrace] = []
    for machine_id, vms in machines.items():
        timestamps = sorted({t for vm in vms.values() for t in vm["samples"]})
        traces: List[VMTrace] = []
        for vm_id, vm in vms.items():
            missing = [t for t in timestamps if t not in vm["samples"]]
            if missing:
                raise ValueError(
                    f"VM {vm_id} in {path} is missing {len(missing)} of "
                    f"machine {machine_id}'s {len(timestamps)} sample times "
                    f"(gap-free VMs required)"
                )
            traces.append(
                VMTrace(
                    vm_id=vm_id,
                    cpu_capacity=vm["cpu_capacity"],
                    ram_capacity=vm["ram_capacity"],
                    cpu_usage=np.array([vm["samples"][t][0] for t in timestamps]),
                    ram_usage=np.array([vm["samples"][t][1] for t in timestamps]),
                )
            )
        built.append(
            BoxTrace(
                box_id=machine_id,
                cpu_capacity=sum(vm.cpu_capacity for vm in traces) * headroom,
                ram_capacity=sum(vm.ram_capacity for vm in traces) * headroom,
                vms=traces,
                interval_minutes=interval_minutes,
                scenario_fp=fingerprint,
            )
        )
    fleet = FleetTrace(boxes=built, name=name, scenario_fp=fingerprint)
    return fleet


def shard_cluster_csv(
    csv_path: Union[str, Path],
    root: Union[str, Path],
    interval_minutes: int = 5,
    name: str = "external",
    default_vm_cpu_capacity: float = 1.0,
    default_vm_ram_capacity: float = 1.0,
    headroom: float = 1.2,
) -> "ShardedFleet":
    """Convert a public cluster CSV straight into a shard store.

    The manifest records the external fingerprint in its ``scenario``
    entry (name ``"external"``), so shard-backed runs on real traces key
    their artifacts exactly like scenario-rendered fleets do.
    """
    from repro.store.shards import ShardedFleet, write_fleet_shards

    fleet = load_cluster_csv(
        csv_path,
        interval_minutes=interval_minutes,
        name=name,
        default_vm_cpu_capacity=default_vm_cpu_capacity,
        default_vm_ram_capacity=default_vm_ram_capacity,
        headroom=headroom,
    )
    manifest = write_fleet_shards(
        fleet,
        root,
        name=name,
        scenario={"name": "external", "fingerprint": fleet.scenario_fp},
    )
    return ShardedFleet(root, manifest=manifest)


# Shard-store persistence delegates to repro.store.shards; the imports are
# lazy because repro.store itself imports the trace model (the package
# re-exports would otherwise form an import cycle at startup).
def save_fleet_shards(
    fleet: FleetTrace, root: Union[str, Path], name: Optional[str] = None
) -> "ShardManifest":
    """Write a fleet as a memory-mapped shard store under ``root``."""
    from repro.store.shards import write_fleet_shards

    return write_fleet_shards(fleet, root, name=name)


def load_fleet_shards(root: Union[str, Path]) -> "ShardedFleet":
    """Open a shard store previously written by :func:`save_fleet_shards`."""
    from repro.store.shards import load_fleet_shards as _load

    return _load(root)


def shard_fleet_csv(
    csv_path: Union[str, Path],
    root: Union[str, Path],
    interval_minutes: int = 15,
    name: str = "loaded",
) -> "ShardedFleet":
    """Convert a monitoring CSV into a shard store and open it.

    The CSV parse itself builds the in-RAM fleet (the long format is not
    seekable per box), so this is the migration path for traces that *fit*
    once; afterwards every run maps slices instead of re-parsing CSV.
    """
    from repro.store.shards import ShardedFleet, write_fleet_shards

    fleet = load_fleet_csv(csv_path, interval_minutes=interval_minutes, name=name)
    manifest = write_fleet_shards(fleet, root, name=name)
    return ShardedFleet(root, manifest=manifest)
