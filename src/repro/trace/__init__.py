"""Data-center trace substrate.

The paper's evaluation runs on a proprietary IBM trace (6K physical boxes,
80K+ VMs, CPU/RAM capacity and utilization sampled every 15 minutes for 7
days).  This subpackage provides the stand-in: a trace *data model*
(:mod:`repro.trace.model`), a calibrated synthetic *generator*
(:mod:`repro.trace.generator`) whose targets are the paper's published
aggregate statistics, reusable workload *signal primitives*
(:mod:`repro.trace.workloads`), and CSV persistence
(:mod:`repro.trace.loader`) so externally collected traces in the same shape
can be analyzed with the identical pipeline.
"""

from repro.trace.generator import FleetConfig, generate_box, generate_fleet
from repro.trace.loader import (
    load_cluster_csv,
    load_fleet_csv,
    load_fleet_shards,
    save_fleet_csv,
    save_fleet_shards,
    shard_cluster_csv,
    shard_fleet_csv,
)
from repro.trace.model import (
    BoxTrace,
    FleetTrace,
    Resource,
    SeriesKey,
    VMTrace,
)
from repro.trace.scenario import (
    ARCHETYPES,
    NAMED_SCENARIOS,
    CohortSpec,
    RegimeShift,
    RenderSpec,
    ScenarioSpec,
    render_box,
    render_fleet,
    resolve_scenario,
)

__all__ = [
    "ARCHETYPES",
    "BoxTrace",
    "CohortSpec",
    "FleetConfig",
    "FleetTrace",
    "NAMED_SCENARIOS",
    "RegimeShift",
    "RenderSpec",
    "Resource",
    "ScenarioSpec",
    "SeriesKey",
    "VMTrace",
    "generate_box",
    "generate_fleet",
    "load_cluster_csv",
    "load_fleet_csv",
    "load_fleet_shards",
    "render_box",
    "render_fleet",
    "resolve_scenario",
    "save_fleet_csv",
    "save_fleet_shards",
    "shard_cluster_csv",
    "shard_fleet_csv",
]
