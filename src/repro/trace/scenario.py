"""Scenario diversity engine: the truth/render split of the trace layer.

The calibrated generator (:mod:`repro.trace.generator`) answers one
question — "does ATM work on the fleet it was tuned for?" — because every
knob is hard-wired to the paper's Fig. 2/3 profile.  This module separates
what a workload *is* (truth) from how it is *statistically expressed*
(render), so the same pipeline can be stressed off the calibrated happy
path:

* **Truth** — a tuple of :class:`CohortSpec` entries assigning each box
  cohort a workload *archetype* (``web-diurnal``, ``batch``, ``spiky``,
  ``ramp``, ``weekend-heavy``, or the calibrated ``paper-fig2`` profile),
  optionally with a mid-trace :class:`RegimeShift` where the cohort
  switches archetype at a seeded window — the stress case for the online
  controller's drift gate.
* **Render** — a :class:`RenderSpec` scaling the statistical knobs the
  generator hard-wires: noise level, factor couplings, capacity
  heterogeneity, and the culprit-VM share.

A :class:`ScenarioSpec` is declarative (plain frozen dataclasses, JSON
round-trippable), seeded (every draw still flows through the fleet seed),
and fingerprinted (:meth:`ScenarioSpec.fingerprint`, the same BLAKE2b
canonical hash the artifact store uses) — the fingerprint rides on every
rendered box/fleet as ``scenario_fp`` and is folded into
:func:`repro.core.stages.box_fingerprint`, so two scenarios sharing a
fleet seed can never share store artifacts, shard manifests, or
``--resume`` state.

Rendering is *compositional*, not a fork of the generator: an archetype is
a set of value-knob overrides on :class:`FleetConfig` plus a multiplicative
per-VM usage envelope composed from :mod:`repro.trace.workloads`
primitives.  Overrides are restricted to knobs that do not perturb the
generator's RNG stream before capacity assignment (enforced by
:func:`_check_overrides`), which is what makes regime shifts splice
cleanly: the pre- and post-shift archetypes produce the *same* VMs with
the same capacities and culprit identities, and only the usage statistics
change at the switch window.

The default ``paper-fig2`` scenario is the identity: it renders through
the exact legacy ``generate_box`` path, bit for bit (pinned by
``tests/trace/test_scenario.py``), with ``scenario_fp`` left ``None`` so
pre-scenario artifact keys keep resolving.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.store.fingerprint import config_fingerprint
from repro.trace.generator import FleetConfig, check_generation_allowed, generate_box
from repro.trace.model import BoxTrace, FleetTrace
from repro.trace.workloads import bursts, daily_spikes, diurnal, linear_ramp, weekly

__all__ = [
    "ARCHETYPES",
    "NAMED_SCENARIOS",
    "PAPER_ARCHETYPE",
    "SCENARIO_ENV_VAR",
    "CohortSpec",
    "RegimeShift",
    "RenderSpec",
    "ScenarioSpec",
    "render_box",
    "render_fleet",
    "resolve_scenario",
]

#: The calibrated legacy profile — the identity archetype.
PAPER_ARCHETYPE = "paper-fig2"

#: Default scenario name when neither ``--scenario`` nor the spec argument
#: is given (see :func:`repro.core.runtime.scenario_name`).
SCENARIO_ENV_VAR = "REPRO_SCENARIO"

# Seed-sequence salts: envelopes and switch windows draw from their own
# streams so the core generator's draws stay byte-identical under a spec.
_ENVELOPE_SALT = 0x5CE9A210
_SHIFT_SALT = 0x5CE9A211

#: FleetConfig fields an archetype override must never touch: they change
#: either the fleet geometry or the number/order of RNG draws *before*
#: capacity assignment, which would break the regime-shift splice (the
#: pre- and post-shift configs must produce identical VM identities).
_PROTECTED_FIELDS = frozenset(
    {
        "n_boxes",
        "mean_vms_per_box",
        "min_vms_per_box",
        "max_vms_per_box",
        "days",
        "windows_per_day",
        "interval_minutes",
        "seed",
        "cpu_hot_box_fraction",
        "ram_hot_box_fraction",
        "cpu_second_hot_probability",
        "ram_second_hot_probability",
        "replica_probability",
    }
)


# ------------------------------------------------------------------ render
@dataclass(frozen=True)
class RenderSpec:
    """How a scenario's truth is statistically expressed.

    Each knob is a multiplicative scale on the corresponding hard-wired
    :class:`FleetConfig` group; ``1.0`` everywhere is the identity render
    (the calibrated profile's statistics).
    """

    #: Scales the idiosyncratic noise (cool-VM log-normal tails, loading
    #: jitter): < 1 = cleaner series, > 1 = noisier.
    noise_scale: float = 1.0
    #: Scales the factor-model loadings (shared/group/pair couplings):
    #: < 1 decorrelates the fleet, > 1 tightens it.
    coupling_scale: float = 1.0
    #: Scales the spread of the box headroom range around its midpoint:
    #: 0 = homogeneous capacity, > 1 = more heterogeneous.
    capacity_spread: float = 1.0
    #: Scales the fraction of boxes hosting culprit VMs.
    culprit_share_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "noise_scale",
            "coupling_scale",
            "capacity_spread",
            "culprit_share_scale",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 10.0:
                raise ValueError(f"{name} must be in [0, 10], got {value}")

    @property
    def is_identity(self) -> bool:
        return (
            self.noise_scale == 1.0
            and self.coupling_scale == 1.0
            and self.capacity_spread == 1.0
            and self.culprit_share_scale == 1.0
        )

    def to_dict(self) -> dict:
        return {
            "noise_scale": self.noise_scale,
            "coupling_scale": self.coupling_scale,
            "capacity_spread": self.capacity_spread,
            "culprit_share_scale": self.culprit_share_scale,
        }

    @staticmethod
    def from_dict(raw: dict) -> "RenderSpec":
        return RenderSpec(
            noise_scale=float(raw.get("noise_scale", 1.0)),
            coupling_scale=float(raw.get("coupling_scale", 1.0)),
            capacity_spread=float(raw.get("capacity_spread", 1.0)),
            culprit_share_scale=float(raw.get("culprit_share_scale", 1.0)),
        )


# -------------------------------------------------------------- archetypes
# An envelope builder returns an (n_vms, n_windows) multiplicative factor
# applied to CPU usage (attenuated on RAM), or None for the identity.
EnvelopeFn = Callable[[np.random.Generator, int, int, int], np.ndarray]


def _env_web_diurnal(
    rng: np.random.Generator, n: int, wpd: int, m: int
) -> np.ndarray:
    """Business-hours boost: a sharpened, per-VM-phased diurnal bump."""
    env = np.empty((m, n))
    box_phase = rng.uniform(0.0, 1.0)
    for i in range(m):
        amp = rng.uniform(0.45, 0.75)
        phase = box_phase + rng.uniform(-0.06, 0.06)
        shape = diurnal(
            n, wpd, amplitude=1.0, phase=phase, sharpness=rng.uniform(2.0, 3.0)
        )
        bump = np.clip(shape, 0.0, None)
        env[i] = 1.0 + amp * (bump - bump.mean())
    return np.clip(env, 0.05, None)


def _env_batch(rng: np.random.Generator, n: int, wpd: int, m: int) -> np.ndarray:
    """Nightly plateaus over a damped daytime base (cron/ETL fleets)."""
    env = np.empty((m, n))
    for i in range(m):
        base = rng.uniform(0.55, 0.8)
        plateau = daily_spikes(
            rng,
            n,
            wpd,
            spikes_per_day=1,
            height_range=(1.2, 2.4),
            max_duration=max(2, wpd // 12),
        )
        env[i] = base + plateau
    return env


def _env_spiky(rng: np.random.Generator, n: int, wpd: int, m: int) -> np.ndarray:
    """Independent per-VM burst trains dominating a damped base load."""
    env = np.empty((m, n))
    for i in range(m):
        base = rng.uniform(0.7, 0.9)
        train = bursts(
            rng, n, rate_per_window=0.02, mean_duration=2.0, amplitude=1.1
        )
        env[i] = base + train
    return env


def _env_ramp(rng: np.random.Generator, n: int, wpd: int, m: int) -> np.ndarray:
    """Slow organic growth: per-VM-jittered linear ramps."""
    env = np.empty((m, n))
    for i in range(m):
        start = rng.uniform(0.55, 0.75)
        stop = rng.uniform(1.35, 1.75)
        env[i] = linear_ramp(n, start=start, stop=stop)
    return env


def _env_weekend(rng: np.random.Generator, n: int, wpd: int, m: int) -> np.ndarray:
    """Weekend-heavy load: a weekly mask boosts Saturday/Sunday."""
    mask = weekly(n, wpd, weekend_days=(5, 6), start_day=0)
    env = np.empty((m, n))
    for i in range(m):
        boost = rng.uniform(0.5, 0.9)
        damp = rng.uniform(0.1, 0.2)
        env[i] = (1.0 - damp) + (boost + damp) * mask
    return env


@dataclass(frozen=True)
class _Archetype:
    """Internal: how one archetype renders — config overrides + envelope."""

    name: str
    overrides: Tuple[Tuple[str, object], ...] = ()
    envelope: Optional[EnvelopeFn] = None


#: The named workload archetypes a cohort can take.
ARCHETYPES: Dict[str, _Archetype] = {
    PAPER_ARCHETYPE: _Archetype(PAPER_ARCHETYPE),
    "web-diurnal": _Archetype(
        "web-diurnal",
        overrides=(("loading_shared_cpu", 0.56), ("cpu_spikes_per_day", 1)),
        envelope=_env_web_diurnal,
    ),
    "batch": _Archetype(
        "batch",
        overrides=(("cpu_spikes_per_day", 3), ("spike_participation", 0.9)),
        envelope=_env_batch,
    ),
    "spiky": _Archetype(
        "spiky",
        overrides=(("burst_rate", 0.02), ("burst_amplitude", 28.0)),
        envelope=_env_spiky,
    ),
    "ramp": _Archetype("ramp", envelope=_env_ramp),
    "weekend-heavy": _Archetype("weekend-heavy", envelope=_env_weekend),
}


def _check_overrides() -> None:
    valid = {f for f in FleetConfig.__dataclass_fields__}
    for arch in ARCHETYPES.values():
        for field_name, _ in arch.overrides:
            if field_name not in valid:
                raise AssertionError(
                    f"archetype {arch.name!r} overrides unknown FleetConfig "
                    f"field {field_name!r}"
                )
            if field_name in _PROTECTED_FIELDS:
                raise AssertionError(
                    f"archetype {arch.name!r} overrides protected field "
                    f"{field_name!r} (would perturb fleet geometry or the "
                    f"pre-capacity RNG stream)"
                )


_check_overrides()


# ------------------------------------------------------------------- truth
@dataclass(frozen=True)
class RegimeShift:
    """A mid-trace archetype switch for one cohort.

    ``at_fraction`` pins the switch window as a fraction of the trace;
    ``None`` draws it from a seeded stream in [0.35, 0.65] — different
    fleet seeds shift at different (but reproducible) windows.
    """

    archetype: str
    at_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown shift archetype {self.archetype!r}; "
                f"known: {sorted(ARCHETYPES)}"
            )
        if self.at_fraction is not None and not 0.0 < self.at_fraction < 1.0:
            raise ValueError(
                f"at_fraction must be in (0, 1), got {self.at_fraction}"
            )

    def to_dict(self) -> dict:
        return {"archetype": self.archetype, "at_fraction": self.at_fraction}

    @staticmethod
    def from_dict(raw: dict) -> "RegimeShift":
        at = raw.get("at_fraction")
        return RegimeShift(
            archetype=str(raw["archetype"]),
            at_fraction=None if at is None else float(at),
        )


@dataclass(frozen=True)
class CohortSpec:
    """One box cohort: an archetype, its share of the fleet, optional shift.

    Boxes are assigned to cohorts in contiguous index stripes proportional
    to ``weight`` — deterministic, independent of any RNG stream.
    """

    archetype: str
    weight: float = 1.0
    shift: Optional[RegimeShift] = None

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown archetype {self.archetype!r}; known: {sorted(ARCHETYPES)}"
            )
        if self.weight <= 0:
            raise ValueError(f"cohort weight must be positive, got {self.weight}")

    def to_dict(self) -> dict:
        return {
            "archetype": self.archetype,
            "weight": self.weight,
            "shift": None if self.shift is None else self.shift.to_dict(),
        }

    @staticmethod
    def from_dict(raw: dict) -> "CohortSpec":
        shift = raw.get("shift")
        return CohortSpec(
            archetype=str(raw["archetype"]),
            weight=float(raw.get("weight", 1.0)),
            shift=None if shift is None else RegimeShift.from_dict(shift),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, seeded, fingerprinted scenario: truth plus render."""

    name: str
    cohorts: Tuple[CohortSpec, ...] = (CohortSpec(PAPER_ARCHETYPE),)
    render: RenderSpec = RenderSpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.cohorts:
            raise ValueError("scenario must declare at least one cohort")

    @property
    def is_identity(self) -> bool:
        """Whether rendering this spec is exactly the legacy generator."""
        return self.render.is_identity and all(
            c.archetype == PAPER_ARCHETYPE and c.shift is None
            for c in self.cohorts
        )

    def fingerprint(self) -> str:
        """Canonical BLAKE2b content hash of the spec (store-key material)."""
        return config_fingerprint(self)

    # ------------------------------------------------------------- JSON io
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cohorts": [c.to_dict() for c in self.cohorts],
            "render": self.render.to_dict(),
        }

    def to_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @staticmethod
    def from_dict(raw: dict) -> "ScenarioSpec":
        cohorts = raw.get("cohorts")
        return ScenarioSpec(
            name=str(raw["name"]),
            cohorts=(
                (CohortSpec(PAPER_ARCHETYPE),)
                if not cohorts
                else tuple(CohortSpec.from_dict(c) for c in cohorts)
            ),
            render=RenderSpec.from_dict(raw.get("render", {})),
        )

    @staticmethod
    def from_json(path: Union[str, Path]) -> "ScenarioSpec":
        with Path(path).open(encoding="utf-8") as handle:
            return ScenarioSpec.from_dict(json.load(handle))


#: Named scenarios the CLI accepts by name; a JSON spec path covers the rest.
NAMED_SCENARIOS: Dict[str, ScenarioSpec] = {
    PAPER_ARCHETYPE: ScenarioSpec(PAPER_ARCHETYPE),
    "web-diurnal": ScenarioSpec("web-diurnal", (CohortSpec("web-diurnal"),)),
    "batch": ScenarioSpec("batch", (CohortSpec("batch"),)),
    "spiky": ScenarioSpec("spiky", (CohortSpec("spiky"),)),
    "ramp": ScenarioSpec("ramp", (CohortSpec("ramp"),)),
    "weekend-heavy": ScenarioSpec(
        "weekend-heavy", (CohortSpec("weekend-heavy"),)
    ),
    "mixed": ScenarioSpec(
        "mixed",
        (
            CohortSpec("web-diurnal", weight=2.0),
            CohortSpec("batch", weight=1.0),
            CohortSpec("spiky", weight=1.0),
        ),
    ),
    "regime-shift": ScenarioSpec(
        "regime-shift",
        (CohortSpec("web-diurnal", shift=RegimeShift("spiky")),),
    ),
}


def resolve_scenario(
    spec: Union[None, str, ScenarioSpec],
) -> ScenarioSpec:
    """Turn a CLI/env scenario argument into a :class:`ScenarioSpec`.

    ``None`` consults ``$REPRO_SCENARIO`` and falls back to the identity
    ``paper-fig2`` scenario; a string resolves as a named scenario first,
    then as a path to a JSON spec.
    """
    if spec is None:
        spec = os.environ.get(SCENARIO_ENV_VAR, "").strip() or PAPER_ARCHETYPE
    if isinstance(spec, ScenarioSpec):
        return spec
    if spec in NAMED_SCENARIOS:
        return NAMED_SCENARIOS[spec]
    path = Path(spec)
    if spec.endswith(".json") or path.exists():
        if not path.exists():
            raise ValueError(f"scenario spec file not found: {spec}")
        return ScenarioSpec.from_json(path)
    raise ValueError(
        f"unknown scenario {spec!r}: expected one of "
        f"{sorted(NAMED_SCENARIOS)} or a path to a JSON spec"
    )


# --------------------------------------------------------------- rendering
def _apply_render(cfg: FleetConfig, render: RenderSpec) -> FleetConfig:
    """Scale the generator's hard-wired statistical knobs by the render."""
    if render.is_identity:
        return cfg

    def _load(value: float) -> float:
        return float(np.clip(value * render.coupling_scale, 0.02, 0.95))

    def _sigmas(pair: Tuple[float, float]) -> Tuple[float, float]:
        return (
            float(min(pair[0] * render.noise_scale, 1.5)),
            float(min(pair[1] * render.noise_scale, 1.5)),
        )

    lo, hi = cfg.headroom_range
    mid = 0.5 * (lo + hi)
    half = 0.5 * (hi - lo) * render.capacity_spread
    return replace(
        cfg,
        loading_shared_cpu=_load(cfg.loading_shared_cpu),
        loading_group_cpu=_load(cfg.loading_group_cpu),
        loading_shared_ram=_load(cfg.loading_shared_ram),
        loading_pair=_load(cfg.loading_pair),
        loading_jitter=float(min(cfg.loading_jitter * render.noise_scale, 0.4)),
        cpu_cool_lognorm_sigma_range=_sigmas(cfg.cpu_cool_lognorm_sigma_range),
        ram_cool_lognorm_sigma_range=_sigmas(cfg.ram_cool_lognorm_sigma_range),
        cpu_hot_box_fraction=float(
            np.clip(cfg.cpu_hot_box_fraction * render.culprit_share_scale, 0.0, 1.0)
        ),
        ram_hot_box_fraction=float(
            np.clip(cfg.ram_hot_box_fraction * render.culprit_share_scale, 0.0, 1.0)
        ),
        headroom_range=(float(max(0.5, mid - half)), float(mid + half)),
    )


def _derive_config(
    base: FleetConfig, archetype: str, render: RenderSpec
) -> FleetConfig:
    """The FleetConfig one archetype renders under (render first, then truth)."""
    cfg = _apply_render(base, render)
    overrides = dict(ARCHETYPES[archetype].overrides)
    return replace(cfg, **overrides) if overrides else cfg


def _cohort_boundaries(spec: ScenarioSpec, n_boxes: int) -> np.ndarray:
    weights = np.array([c.weight for c in spec.cohorts], dtype=float)
    edges = np.round(np.cumsum(weights) / weights.sum() * n_boxes).astype(int)
    edges[-1] = n_boxes
    return edges


def _cohort_of(spec: ScenarioSpec, box_index: int, n_boxes: int) -> Tuple[int, CohortSpec]:
    """Deterministic contiguous-stripe cohort assignment by box index."""
    if not 0 <= box_index < n_boxes:
        raise ValueError(f"box_index {box_index} out of range [0, {n_boxes})")
    edges = _cohort_boundaries(spec, n_boxes)
    idx = int(np.searchsorted(edges, box_index, side="right"))
    idx = min(idx, len(spec.cohorts) - 1)
    return idx, spec.cohorts[idx]


def _arch_salt(archetype: str) -> int:
    digest = hashlib.blake2b(archetype.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def _envelope(
    archetype: str, cfg: FleetConfig, box_index: int, phase: int, n_vms: int
) -> Optional[np.ndarray]:
    """The archetype's (n_vms, n_windows) usage envelope for one box.

    Drawn from a dedicated stream — seeded by the fleet seed, the box
    index, the archetype and the regime phase — so the core generator's
    draws are untouched and pre-/post-shift envelopes are independent.
    """
    builder = ARCHETYPES[archetype].envelope
    if builder is None:
        return None
    rng = np.random.default_rng(
        np.random.SeedSequence(
            (cfg.seed, box_index, _ENVELOPE_SALT, _arch_salt(archetype), phase)
        )
    )
    return builder(rng, cfg.n_windows, cfg.windows_per_day, n_vms)


#: How strongly the CPU envelope carries over to RAM (memory is stickier
#: than compute, so regime changes express mostly on CPU).
_RAM_ENVELOPE_WEIGHT = 0.35


def _apply_envelope(box: BoxTrace, env: np.ndarray, cfg: FleetConfig) -> None:
    """Multiply the envelope into a freshly generated box, in place."""
    for i, vm in enumerate(box.vms):
        factor = env[i]
        vm.cpu_usage = np.clip(vm.cpu_usage * factor, 0.0, cfg.cpu_usage_cap)
        ram_factor = 1.0 + _RAM_ENVELOPE_WEIGHT * (factor - 1.0)
        vm.ram_usage = np.clip(vm.ram_usage * ram_factor, 0.0, cfg.ram_usage_cap)


def _switch_window(cfg: FleetConfig, shift: RegimeShift, cohort_index: int) -> int:
    if shift.at_fraction is not None:
        fraction = shift.at_fraction
    else:
        rng = np.random.default_rng(
            np.random.SeedSequence((cfg.seed, _SHIFT_SALT, cohort_index))
        )
        fraction = float(rng.uniform(0.35, 0.65))
    return int(np.clip(round(fraction * cfg.n_windows), 1, cfg.n_windows - 1))


def render_box(
    box_index: int, spec: ScenarioSpec, cfg: Optional[FleetConfig] = None
) -> BoxTrace:
    """Render one box of a scenario.

    The identity scenario takes the exact legacy :func:`generate_box`
    path.  Otherwise the cohort's archetype renders the box (config
    overrides + usage envelope), and a cohort with a :class:`RegimeShift`
    renders *both* archetypes from the same seed and splices them at the
    seeded switch window — the override restrictions guarantee the two
    renders agree on VM identities and capacities, so only the workload
    statistics change mid-trace.
    """
    cfg = cfg or FleetConfig()
    if spec.is_identity:
        return generate_box(box_index, cfg)

    cohort_index, cohort = _cohort_of(spec, box_index, cfg.n_boxes)
    pre_cfg = _derive_config(cfg, cohort.archetype, spec.render)
    box = generate_box(box_index, pre_cfg)
    env = _envelope(cohort.archetype, cfg, box_index, 0, box.n_vms)
    if env is not None:
        _apply_envelope(box, env, pre_cfg)

    if cohort.shift is not None:
        post_cfg = _derive_config(cfg, cohort.shift.archetype, spec.render)
        post = generate_box(box_index, post_cfg)
        if post.n_vms != box.n_vms:  # pragma: no cover - guarded by overrides
            raise RuntimeError(
                f"regime shift on box {box_index} changed the VM count "
                f"({box.n_vms} -> {post.n_vms}); archetype overrides must "
                f"not perturb the pre-capacity RNG stream"
            )
        post_env = _envelope(
            cohort.shift.archetype, cfg, box_index, 1, post.n_vms
        )
        if post_env is not None:
            _apply_envelope(post, post_env, post_cfg)
        switch = _switch_window(cfg, cohort.shift, cohort_index)
        for vm, post_vm in zip(box.vms, post.vms):
            vm.cpu_usage = np.concatenate(
                [vm.cpu_usage[:switch], post_vm.cpu_usage[switch:]]
            )
            vm.ram_usage = np.concatenate(
                [vm.ram_usage[:switch], post_vm.ram_usage[switch:]]
            )

    box.scenario_fp = spec.fingerprint()
    return box


def render_fleet(
    spec: ScenarioSpec,
    cfg: Optional[FleetConfig] = None,
    name: Optional[str] = None,
) -> FleetTrace:
    """Render a full fleet from a scenario spec.

    Honours the ``REPRO_FORBID_FLEET_GENERATION`` worker guard exactly
    like :func:`repro.trace.generator.generate_fleet`: scenario rendering
    is fleet-scale data synthesis and must happen in the parent, never in
    a pool worker resolving shard refs.
    """
    check_generation_allowed()
    cfg = cfg or FleetConfig()
    boxes = [render_box(b, spec, cfg) for b in range(cfg.n_boxes)]
    fleet = FleetTrace(boxes=boxes, name=name or spec.name)
    if not spec.is_identity:
        fleet.scenario_fp = spec.fingerprint()
    return fleet
