"""Workload signal primitives used by the synthetic trace generator.

Production usage series mix a handful of recognizable components: diurnal
cycles, slowly wandering baselines, short bursts, and measurement noise
(see the paper's Fig. 1 and its references [5], [6]).  Each primitive here
produces a zero-centered or non-negative component; the generator composes
them per VM with box-level shared factors to induce the spatial correlation
structure of Section II-B.

All primitives are deterministic functions of the supplied
``numpy.random.Generator`` so fleet generation is reproducible from a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # scipy is optional: the pure-numpy loop below is the reference path.
    from scipy.signal import lfilter as _lfilter
except Exception:  # pragma: no cover - exercised only without scipy
    _lfilter = None

__all__ = [
    "diurnal",
    "ar1_noise",
    "bursts",
    "daily_spikes",
    "random_walk",
    "level_shifts",
    "alternating_load",
    "linear_ramp",
    "weekly",
]


def diurnal(
    n_windows: int,
    windows_per_day: int,
    amplitude: float = 1.0,
    phase: float = 0.0,
    sharpness: float = 1.0,
) -> np.ndarray:
    """Return a daily periodic signal in ``[-amplitude, amplitude]``.

    ``sharpness > 1`` squeezes the peak (business-hour spikes); ``phase`` is
    in fractions of a day.
    """
    if n_windows <= 0 or windows_per_day <= 0:
        raise ValueError("n_windows and windows_per_day must be positive")
    t = np.arange(n_windows) / windows_per_day
    base = np.sin(2.0 * np.pi * (t - phase))
    if sharpness != 1.0:
        base = np.sign(base) * np.abs(base) ** sharpness
    return amplitude * base


def ar1_noise(
    rng: np.random.Generator,
    n_windows: int,
    phi: float = 0.8,
    sigma: float = 1.0,
) -> np.ndarray:
    """Return a stationary AR(1) series ``x_t = phi x_{t-1} + eps_t``.

    The series is started from its stationary distribution so there is no
    warm-up transient.
    """
    if not -1.0 < phi < 1.0:
        raise ValueError(f"phi must be in (-1, 1) for stationarity, got {phi}")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    eps = rng.normal(0.0, sigma, size=n_windows)
    x0 = rng.normal(0.0, sigma / np.sqrt(max(1e-12, 1.0 - phi * phi)))
    if _lfilter is not None:
        # lfilter's direct-form recurrence computes y[t] = eps[t] + phi*y[t-1]
        # — the same multiply-then-add per step as the loop below, so the
        # output is bit-identical (pinned by tests/trace/test_workloads.py)
        # while the per-window Python iteration cost disappears.  eps[0] is
        # never consumed by the recurrence, so it can carry the start value.
        eps[0] = x0
        return _lfilter([1.0], [1.0, -phi], eps)
    out = np.empty(n_windows)
    out[0] = x0
    for t in range(1, n_windows):
        out[t] = phi * out[t - 1] + eps[t]
    return out


def bursts(
    rng: np.random.Generator,
    n_windows: int,
    rate_per_window: float = 0.01,
    mean_duration: float = 3.0,
    amplitude: float = 30.0,
) -> np.ndarray:
    """Return a non-negative burst train (transient load spikes).

    Burst starts arrive as a Bernoulli process; each burst holds an
    exponential-tailed amplitude for a geometric number of windows.
    """
    if rate_per_window < 0:
        raise ValueError("rate_per_window must be non-negative")
    out = np.zeros(n_windows)
    starts = np.flatnonzero(rng.random(n_windows) < rate_per_window)
    for start in starts:
        duration = 1 + int(rng.geometric(1.0 / max(1.0, mean_duration)) - 1)
        height = rng.exponential(amplitude)
        out[start : start + duration] = np.maximum(
            out[start : start + duration], height
        )
    return out


def daily_spikes(
    rng: np.random.Generator,
    n_windows: int,
    windows_per_day: int,
    spikes_per_day: int = 2,
    height_range: "tuple[float, float]" = (18.0, 48.0),
    max_duration: int = 2,
) -> np.ndarray:
    """Return a non-negative train of short scheduled spikes.

    Models cron jobs, backups and batch windows: each day gets
    ``spikes_per_day`` short plateaus at jittered times of day.  These
    spikes are what give lightly loaded production VMs their large
    peak-to-typical usage ratios.
    """
    if spikes_per_day < 0:
        raise ValueError("spikes_per_day must be non-negative")
    if max_duration < 1:
        raise ValueError("max_duration must be >= 1")
    out = np.zeros(n_windows)
    if spikes_per_day == 0:
        return out
    n_days = int(np.ceil(n_windows / windows_per_day))
    # A stable time-of-day anchor per spike slot, jittered day to day —
    # scheduled jobs run at roughly the same hour every day.
    anchors = rng.integers(0, windows_per_day, size=spikes_per_day)
    for day in range(n_days):
        for anchor in anchors:
            jitter = int(rng.integers(-2, 3))
            start = day * windows_per_day + int(anchor) + jitter
            if not 0 <= start < n_windows:
                continue
            duration = int(rng.integers(1, max_duration + 1))
            height = rng.uniform(*height_range)
            out[start : start + duration] = np.maximum(
                out[start : start + duration], height
            )
    return out


def random_walk(
    rng: np.random.Generator,
    n_windows: int,
    sigma: float = 0.5,
    reflect_at: Optional[float] = None,
) -> np.ndarray:
    """Return a Gaussian random walk, optionally reflected into ``[-r, r]``."""
    steps = rng.normal(0.0, sigma, size=n_windows)
    walk = np.cumsum(steps)
    if reflect_at is not None:
        if reflect_at <= 0:
            raise ValueError("reflect_at must be positive")
        period = 4.0 * reflect_at
        walk = np.mod(walk + reflect_at, period)
        walk = np.where(walk > 2.0 * reflect_at, period - walk, walk) - reflect_at
    return walk


def level_shifts(
    rng: np.random.Generator,
    n_windows: int,
    shift_probability: float = 0.002,
    magnitude: float = 10.0,
) -> np.ndarray:
    """Return a piecewise-constant series of occasional persistent level shifts."""
    shifts = np.zeros(n_windows)
    points = np.flatnonzero(rng.random(n_windows) < shift_probability)
    for point in points:
        shifts[point:] += rng.normal(0.0, magnitude)
    return shifts


def linear_ramp(
    n_windows: int,
    start: float = 1.0,
    stop: float = 1.0,
) -> np.ndarray:
    """Return a deterministic linear ramp from ``start`` to ``stop``.

    Models slow organic growth (or decay) of a service's load over the
    trace — the "slow ramp" workload archetype.  With one window the ramp
    degenerates to ``start``.
    """
    if n_windows <= 0:
        raise ValueError("n_windows must be positive")
    if n_windows == 1:
        return np.array([float(start)])
    return np.linspace(float(start), float(stop), n_windows)


def weekly(
    n_windows: int,
    windows_per_day: int,
    weekend_days: "tuple[int, ...]" = (5, 6),
    start_day: int = 0,
) -> np.ndarray:
    """Return a 0/1 mask that is 1 on weekend days and 0 on weekdays.

    ``start_day`` is the day-of-week index (0 = Monday) of the trace's
    first day; days in ``weekend_days`` (default Saturday/Sunday) are
    flagged.  The mask is what lets a weekend-heavy archetype modulate
    its load on a weekly period the purely daily primitives cannot express.
    """
    if n_windows <= 0 or windows_per_day <= 0:
        raise ValueError("n_windows and windows_per_day must be positive")
    if not all(0 <= d < 7 for d in weekend_days):
        raise ValueError(f"weekend_days must be in [0, 7), got {weekend_days!r}")
    day_of_week = (np.arange(n_windows) // windows_per_day + start_day) % 7
    return np.isin(day_of_week, np.asarray(weekend_days)).astype(float)


def alternating_load(
    n_windows: int,
    windows_per_phase: int,
    low: float,
    high: float,
    start_low: bool = True,
) -> np.ndarray:
    """Return a square-wave load series alternating between two intensities.

    This reproduces the MediaWiki testbed's generator: "requests alternating
    between low and high intensity periods, each lasting one hour".
    """
    if windows_per_phase <= 0:
        raise ValueError("windows_per_phase must be positive")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    phase_index = (np.arange(n_windows) // windows_per_phase) % 2
    first, second = (low, high) if start_low else (high, low)
    return np.where(phase_index == 0, first, second).astype(float)
