"""Memory-mapped per-box trace shards: the fleet-scale on-disk trace tier.

The paper's evaluation runs on 6,000 boxes / 80,000 VMs.  Holding that
fleet as in-RAM ``BoxTrace`` objects — and round-tripping every box
through pickle to pool workers — is what capped the benchmarks at a few
dozen boxes.  This module extends the store's npz codec idea down to the
trace tier:

* **One shard per box.**  A box's full usage matrix (``(2M, T)`` float64,
  CPU rows then RAM rows, exactly :meth:`BoxTrace.usage_matrix` order) is
  written as a plain ``.npy`` file, content-addressed by the same BLAKE2b
  ``data_fingerprint`` the artifact store uses::

      <root>/shards/<fp[:2]>/<fp>.npy

  Writes are atomic (temp file + ``os.replace``) and idempotent — a shard
  that already exists under its fingerprint is never rewritten.

* **A JSON manifest** (``<root>/manifest.json``) holding everything else
  a box needs — ids, capacities, interval — so eligibility checks, fleet
  summaries, and work scheduling never touch the mapped data at all.

* **Zero-copy box views.**  :func:`open_box` maps a shard with
  ``np.load(..., mmap_mode="r")`` and rebuilds a :class:`BoxTrace` whose
  VM series are *slices of the mapping*: no usage sample is copied or
  validated again (shards are written from already-validated traces), no
  page is resident until touched, and dropping the view unmaps it.  A
  worker processing one box therefore holds one box's pages, not the
  fleet's.

* **Descriptor dispatch.**  :class:`BoxShardRef` is the tiny picklable
  handle the executor ships to workers instead of trace data; the worker
  resolves it via :func:`resolve_box`.

Opening a shard marks the *shard tier active* for the process (see
:func:`repro.trace.model.mark_shard_tier_active`): with
``REPRO_FORBID_FLEET_GENERATION`` set, constructing a full in-RAM
``FleetTrace`` then raises — the guard that historically proved workers
never regenerate fleets now also proves they never materialize one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.store.fingerprint import data_fingerprint
from repro.trace.model import (
    BoxTrace,
    FleetTrace,
    VMTrace,
    mark_shard_tier_active,
)

__all__ = [
    "MANIFEST_NAME",
    "SHARDS_SCHEMA",
    "BoxShardMeta",
    "BoxShardRef",
    "ShardManifest",
    "ShardedFleet",
    "generate_fleet_shards",
    "load_fleet_shards",
    "open_box",
    "resolve_box",
    "write_box_shard",
    "write_fleet_shards",
]

#: Schema tag stamped into every manifest; bump on layout changes so stale
#: shard stores are rejected loudly instead of misread.
SHARDS_SCHEMA = "repro.shards/v1"

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class BoxShardMeta:
    """Everything about one box *except* its usage samples.

    Lives in the manifest (and travels inside :class:`BoxShardRef`), so
    schedulers and eligibility filters never open the mapped data.
    """

    box_id: str
    fingerprint: str
    path: str  # shard file, relative to the store root
    cpu_capacity: float
    ram_capacity: float
    vm_ids: Tuple[str, ...]
    vm_cpu_capacities: Tuple[float, ...]
    vm_ram_capacities: Tuple[float, ...]
    n_windows: int
    interval_minutes: int
    #: Scenario fingerprint of the rendering spec (or external-trace hash);
    #: ``None`` for legacy stores and the identity ``paper-fig2`` profile.
    scenario_fp: Optional[str] = None

    @property
    def n_vms(self) -> int:
        return len(self.vm_ids)

    @property
    def nbytes(self) -> int:
        """Size of the shard's usage matrix in bytes (float64)."""
        return 2 * self.n_vms * self.n_windows * 8

    @staticmethod
    def from_dict(raw: dict) -> "BoxShardMeta":
        scenario_fp = raw.get("scenario_fp")
        return BoxShardMeta(
            box_id=str(raw["box_id"]),
            fingerprint=str(raw["fingerprint"]),
            path=str(raw["path"]),
            cpu_capacity=float(raw["cpu_capacity"]),
            ram_capacity=float(raw["ram_capacity"]),
            vm_ids=tuple(str(v) for v in raw["vm_ids"]),
            vm_cpu_capacities=tuple(float(v) for v in raw["vm_cpu_capacities"]),
            vm_ram_capacities=tuple(float(v) for v in raw["vm_ram_capacities"]),
            n_windows=int(raw["n_windows"]),
            interval_minutes=int(raw["interval_minutes"]),
            scenario_fp=None if scenario_fp is None else str(scenario_fp),
        )


@dataclass(frozen=True)
class BoxShardRef:
    """Picklable descriptor of one sharded box: what workers receive.

    A ref is a few hundred bytes no matter how long the trace is — the
    executor ships refs, the worker maps the shard locally.
    """

    root: str
    meta: BoxShardMeta

    @property
    def box_id(self) -> str:
        return self.meta.box_id

    @property
    def n_windows(self) -> int:
        return self.meta.n_windows

    @property
    def n_vms(self) -> int:
        return self.meta.n_vms

    def resolve(self) -> BoxTrace:
        """Open the shard and return the memory-mapped :class:`BoxTrace` view."""
        return open_box(self.root, self.meta)


@dataclass
class ShardManifest:
    """The shard store's index: fleet identity plus per-box metadata."""

    name: str
    boxes: List[BoxShardMeta]
    schema: str = SHARDS_SCHEMA
    #: Scenario provenance (``{"name": ..., "fingerprint": ...}``) when the
    #: store was rendered from a non-identity :class:`ScenarioSpec` or an
    #: external cluster trace; absent from legacy / paper-fig2 manifests so
    #: their bytes are unchanged.
    scenario: Optional[dict] = None

    @property
    def n_boxes(self) -> int:
        return len(self.boxes)

    @property
    def n_vms(self) -> int:
        return sum(meta.n_vms for meta in self.boxes)

    @property
    def total_bytes(self) -> int:
        return sum(meta.nbytes for meta in self.boxes)

    def save(self, root: Union[str, Path]) -> Path:
        """Atomically write the manifest under ``root``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        boxes = []
        for meta in self.boxes:
            raw = asdict(meta)
            # Legacy manifests predate scenario_fp; dropping the None key
            # keeps pre-scenario stores byte-identical on rewrite.
            if raw.get("scenario_fp") is None:
                raw.pop("scenario_fp", None)
            boxes.append(raw)
        payload = {
            "schema": self.schema,
            "name": self.name,
            "boxes": boxes,
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        target = root / MANIFEST_NAME
        fd, tmp_name = tempfile.mkstemp(dir=root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target

    @staticmethod
    def load(root: Union[str, Path]) -> "ShardManifest":
        """Read and validate the manifest under ``root``."""
        path = Path(root) / MANIFEST_NAME
        with path.open(encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema")
        if schema != SHARDS_SCHEMA:
            raise ValueError(
                f"shard manifest {path} has schema {schema!r}; "
                f"expected {SHARDS_SCHEMA!r}"
            )
        return ShardManifest(
            name=str(payload.get("name", "sharded")),
            boxes=[BoxShardMeta.from_dict(raw) for raw in payload["boxes"]],
            scenario=payload.get("scenario"),
        )


# ------------------------------------------------------------------ writing
def _shard_relpath(fingerprint: str) -> str:
    return f"shards/{fingerprint[:2]}/{fingerprint}.npy"


def write_box_shard(box: BoxTrace, root: Union[str, Path]) -> BoxShardMeta:
    """Write one box's usage matrix as a content-addressed ``.npy`` shard.

    Idempotent: a shard already present under its fingerprint is left
    untouched (content addressing makes the bytes identical by
    construction).  Returns the manifest entry describing the box.
    """
    root = Path(root)
    matrix = np.ascontiguousarray(box.usage_matrix(), dtype=np.float64)
    fingerprint = data_fingerprint(matrix)
    rel = _shard_relpath(fingerprint)
    target = root / rel
    if not target.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".npy"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, matrix)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        obs.inc("shards.writes")
        obs.inc("shards.bytes_written", float(matrix.nbytes))
    return BoxShardMeta(
        box_id=box.box_id,
        fingerprint=fingerprint,
        path=rel,
        cpu_capacity=float(box.cpu_capacity),
        ram_capacity=float(box.ram_capacity),
        vm_ids=tuple(vm.vm_id for vm in box.vms),
        vm_cpu_capacities=tuple(float(vm.cpu_capacity) for vm in box.vms),
        vm_ram_capacities=tuple(float(vm.ram_capacity) for vm in box.vms),
        n_windows=box.n_windows,
        interval_minutes=box.interval_minutes,
        scenario_fp=getattr(box, "scenario_fp", None),
    )


def write_fleet_shards(
    boxes: Union[FleetTrace, Iterable[BoxTrace]],
    root: Union[str, Path],
    name: Optional[str] = None,
    scenario: Optional[dict] = None,
) -> ShardManifest:
    """Shard a fleet (or any box iterable) under ``root`` and write the manifest.

    Accepts a *generator* of boxes, which is the fleet-scale entry point:
    each box is written and dropped before the next is produced, so a
    6,000-box store is built with one box of peak memory.  ``scenario``
    records rendering provenance in the manifest (omitted for legacy /
    identity stores so their bytes do not change).
    """
    if name is None:
        name = boxes.name if isinstance(boxes, FleetTrace) else "sharded"
    metas = [write_box_shard(box, root) for box in boxes]
    manifest = ShardManifest(name=name, boxes=metas, scenario=scenario)
    manifest.save(root)
    return manifest


def _generate_box_shard(index: int, cfg, root: str) -> BoxShardMeta:
    """Pool-worker unit of parallel generation: one box, generated and sharded.

    Module-level so the executor can pickle it.  Each box's RNG derives
    from ``(cfg.seed, index)`` alone, so workers produce the exact bytes
    the serial stream would — content addressing then makes the parallel
    and serial stores literally the same files.
    """
    from repro.trace.generator import generate_box

    return write_box_shard(generate_box(index, cfg), root)


def _render_box_shard(index: int, cfg, spec, root: str) -> BoxShardMeta:
    """Pool-worker unit of parallel *scenario* generation.

    Same contract as :func:`_generate_box_shard`, but the box is rendered
    through a :class:`ScenarioSpec` — cohort envelopes and regime shifts
    derive from ``(cfg.seed, index)`` and the spec alone, so parallel and
    serial scenario stores are byte-identical too.
    """
    from repro.trace.scenario import render_box

    return write_box_shard(render_box(index, spec, cfg), root)


def generate_fleet_shards(
    cfg,
    root: Union[str, Path],
    name: str = "synthetic",
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    scenario=None,
) -> ShardManifest:
    """Generate a synthetic fleet straight into a shard store.

    Streams ``generate_box`` output box by box — the full fleet is never
    resident.  Honours the ``REPRO_FORBID_FLEET_GENERATION`` guard like
    ``generate_fleet`` itself: the guard is checked *here*, before any
    worker is spawned, because this entry point is precisely the
    parent-side synthesis step the guard exists to localize — its own
    pool workers generate boxes by design, dispatched on box indices (a
    few bytes each) rather than trace data.

    ``jobs`` fans generation across processes through
    :class:`repro.core.executor.FleetExecutor` (``None`` reads
    ``REPRO_JOBS``; default serial).  Results are collected in box-index
    order and every shard is content-addressed, so the manifest — and
    every byte of the store — is identical at any worker count.

    ``scenario`` (a :class:`repro.trace.scenario.ScenarioSpec`) renders
    boxes through the scenario engine instead of the raw generator; the
    identity ``paper-fig2`` spec takes the exact legacy path, so its
    store stays bit-identical to a pre-scenario one.
    """
    from repro.core.executor import FleetExecutor, resolve_jobs
    from repro.trace.generator import check_generation_allowed, generate_box

    check_generation_allowed()
    identity = scenario is None or scenario.is_identity
    if identity:
        manifest_scenario = None
    else:
        manifest_scenario = {
            "name": scenario.name,
            "fingerprint": scenario.fingerprint(),
        }
    if resolve_jobs(jobs) <= 1:
        if identity:
            boxes = (generate_box(index, cfg) for index in range(cfg.n_boxes))
        else:
            from repro.trace.scenario import render_box

            boxes = (
                render_box(index, scenario, cfg) for index in range(cfg.n_boxes)
            )
        return write_fleet_shards(boxes, root, name=name, scenario=manifest_scenario)
    executor = FleetExecutor(jobs=jobs, chunksize=chunksize)
    with obs.span("shards.generate"):
        if identity:
            metas = executor.map(
                _generate_box_shard, range(cfg.n_boxes), cfg, str(root)
            )
        else:
            metas = executor.map(
                _render_box_shard, range(cfg.n_boxes), cfg, scenario, str(root)
            )
    manifest = ShardManifest(name=name, boxes=metas, scenario=manifest_scenario)
    manifest.save(root)
    return manifest


# ------------------------------------------------------------------ reading
def _view_vm(
    vm_id: str,
    cpu_capacity: float,
    ram_capacity: float,
    cpu_usage: np.ndarray,
    ram_usage: np.ndarray,
) -> VMTrace:
    """Build a VMTrace over mapped slices without copying or revalidating.

    ``__post_init__`` validation clips into fresh arrays; shard contents
    were validated when the source trace was built, so the view keeps the
    mapped (read-only) slices as-is.
    """
    vm = object.__new__(VMTrace)
    vm.vm_id = vm_id
    vm.cpu_capacity = cpu_capacity
    vm.ram_capacity = ram_capacity
    vm.cpu_usage = cpu_usage
    vm.ram_usage = ram_usage
    return vm


def _view_box(meta: BoxShardMeta, matrix: np.ndarray) -> BoxTrace:
    m = meta.n_vms
    vms = [
        _view_vm(
            meta.vm_ids[i],
            meta.vm_cpu_capacities[i],
            meta.vm_ram_capacities[i],
            matrix[i],
            matrix[m + i],
        )
        for i in range(m)
    ]
    box = object.__new__(BoxTrace)
    box.box_id = meta.box_id
    box.cpu_capacity = meta.cpu_capacity
    box.ram_capacity = meta.ram_capacity
    box.vms = vms
    box.interval_minutes = meta.interval_minutes
    # object.__new__ bypasses dataclass defaults, so the scenario key must
    # be set explicitly or views of scenario stores would alias identity
    # artifacts in the store.
    box.scenario_fp = meta.scenario_fp
    return box


def open_box(
    root: Union[str, Path], meta: BoxShardMeta, verify: bool = False
) -> BoxTrace:
    """Map one shard and return the :class:`BoxTrace` view over it.

    ``verify=True`` re-hashes the mapped matrix against the manifest
    fingerprint (reads every page once — a paranoia mode for foreign
    stores, off on the hot path).  Shape or fingerprint mismatches raise
    ``ValueError``: a shard store is authored by this module, so damage
    is a real error, not a cache miss.
    """
    path = Path(root) / meta.path
    matrix = np.load(path, mmap_mode="r", allow_pickle=False)
    expected = (2 * meta.n_vms, meta.n_windows)
    if matrix.ndim != 2 or matrix.shape != expected or matrix.dtype != np.float64:
        raise ValueError(
            f"shard {path} does not match its manifest entry for box "
            f"{meta.box_id!r}: shape {matrix.shape}/{matrix.dtype}, "
            f"expected {expected}/float64"
        )
    if verify and data_fingerprint(np.asarray(matrix)) != meta.fingerprint:
        raise ValueError(
            f"shard {path} content does not match manifest fingerprint "
            f"{meta.fingerprint} for box {meta.box_id!r}"
        )
    mark_shard_tier_active()
    obs.inc("shards.boxes_opened")
    obs.inc("shards.bytes_mapped", float(matrix.nbytes))
    obs.gauge_max("shards.max_box_bytes", float(matrix.nbytes))
    return _view_box(meta, matrix)


def resolve_box(item: Union[BoxTrace, BoxShardRef]) -> BoxTrace:
    """Turn a work item into a BoxTrace: refs are mapped, boxes pass through.

    The one function per-box workers call first, so every fleet entry
    point accepts in-RAM fleets and shard stores interchangeably.
    """
    if isinstance(item, BoxShardRef):
        return item.resolve()
    return item


class ShardedFleet:
    """A fleet backed by a shard store: iterable like ``FleetTrace``,
    resident like a manifest.

    Boxes are opened lazily, one memory-mapped view per ``__iter__`` step
    or :meth:`box_by_id` call; nothing about the construction touches the
    shard data.  :meth:`box_refs` yields the descriptors the executor
    ships to workers.
    """

    def __init__(
        self, root: Union[str, Path], manifest: Optional[ShardManifest] = None
    ) -> None:
        self.root = Path(root)
        self.manifest = manifest if manifest is not None else ShardManifest.load(root)

    # ------------------------------------------------------- fleet-like API
    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def n_boxes(self) -> int:
        return self.manifest.n_boxes

    @property
    def n_vms(self) -> int:
        return self.manifest.n_vms

    @property
    def n_series(self) -> int:
        return 2 * self.n_vms

    def __len__(self) -> int:
        return self.n_boxes

    def __iter__(self) -> Iterator[BoxTrace]:
        for meta in self.manifest.boxes:
            yield open_box(self.root, meta)

    def box_by_id(self, box_id: str) -> BoxTrace:
        for meta in self.manifest.boxes:
            if meta.box_id == box_id:
                return open_box(self.root, meta)
        raise KeyError(f"no box {box_id!r} in sharded fleet {self.name!r}")

    def summary(self) -> dict:
        """Headline statistics from the manifest alone (no data touched)."""
        vms_per_box = [meta.n_vms for meta in self.manifest.boxes]
        return {
            "boxes": float(self.n_boxes),
            "vms": float(self.n_vms),
            "series": float(self.n_series),
            "mean_vms_per_box": float(np.mean(vms_per_box)),
            "max_vms_per_box": float(np.max(vms_per_box)),
            "windows": float(self.manifest.boxes[0].n_windows),
            "mapped_bytes": float(self.manifest.total_bytes),
        }

    # ----------------------------------------------------------- dispatch
    @property
    def scenario(self) -> Optional[dict]:
        """Scenario provenance recorded at write time (None for legacy stores)."""
        return self.manifest.scenario

    def box_refs(self) -> List[BoxShardRef]:
        """Per-box descriptors for zero-pickle worker dispatch."""
        root = str(self.root)
        return [BoxShardRef(root=root, meta=meta) for meta in self.manifest.boxes]

    def materialize(self) -> FleetTrace:
        """Load every box into RAM as a plain :class:`FleetTrace`.

        Guarded: with ``REPRO_FORBID_FLEET_GENERATION`` set this raises —
        a process on the shard path (the flag any ``open_box`` sets) must
        never hold the whole fleet.  Intended for small fleets in tests
        and for verification against the in-RAM reference path.
        """
        mark_shard_tier_active()
        boxes = []
        for meta in self.manifest.boxes:
            view = open_box(self.root, meta)
            # Deep-copy out of the mapping: a materialized fleet must not
            # keep file handles alive behind the caller's back.
            boxes.append(
                BoxTrace(
                    box_id=view.box_id,
                    cpu_capacity=view.cpu_capacity,
                    ram_capacity=view.ram_capacity,
                    vms=[
                        VMTrace(
                            vm_id=vm.vm_id,
                            cpu_capacity=vm.cpu_capacity,
                            ram_capacity=vm.ram_capacity,
                            cpu_usage=np.array(vm.cpu_usage, dtype=float),
                            ram_usage=np.array(vm.ram_usage, dtype=float),
                        )
                        for vm in view.vms
                    ],
                    interval_minutes=view.interval_minutes,
                    scenario_fp=view.scenario_fp,
                )
            )
        fleet_fp = None
        if self.manifest.scenario is not None:
            fleet_fp = self.manifest.scenario.get("fingerprint")
        return FleetTrace(boxes=boxes, name=self.name, scenario_fp=fleet_fp)


def load_fleet_shards(root: Union[str, Path]) -> ShardedFleet:
    """Open a shard store written by :func:`write_fleet_shards`."""
    return ShardedFleet(root)
