"""Stage codecs: how each artifact kind serializes to arrays + JSON meta.

The disk tier stores one ``.npz`` file per artifact: named float/int
arrays plus a ``__meta__`` byte array holding a JSON header.  A *codec*
maps a stage's in-memory value to that representation and back:

* ``encode(value) -> (arrays, meta)`` — ``arrays`` is a dict of
  :class:`numpy.ndarray` payloads, ``meta`` any JSON-able object.
* ``decode(arrays, meta) -> value`` — the inverse; must reconstruct a
  value bit-identical to the encoded one (float64 arrays round-trip
  exactly through npz, floats exactly through JSON's repr-based dumping).

Codecs are registered by the module that owns the stage's value type
(e.g. the spatial codec lives next to :class:`SpatialModel`), which keeps
the store free of upward imports.  A stage without a codec is memory-only:
the disk tier silently skips it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["Codec", "get_codec", "register_codec", "registered_stages"]

EncodeFn = Callable[[Any], Tuple[Dict[str, np.ndarray], Any]]
DecodeFn = Callable[[Dict[str, np.ndarray], Any], Any]


@dataclass(frozen=True)
class Codec:
    """Serializer pair for one artifact stage."""

    stage: str
    encode: EncodeFn
    decode: DecodeFn


_CODECS: Dict[str, Codec] = {}


def register_codec(stage: str, encode: EncodeFn, decode: DecodeFn) -> Codec:
    """Register (or replace — module reloads happen in tests) a stage codec."""
    codec = Codec(stage=stage, encode=encode, decode=decode)
    _CODECS[stage] = codec
    return codec


def get_codec(stage: str) -> Optional[Codec]:
    """The codec for ``stage``, or ``None`` when the stage is memory-only."""
    return _CODECS.get(stage)


def registered_stages() -> Tuple[str, ...]:
    """Stages with a disk representation, sorted."""
    return tuple(sorted(_CODECS))
