"""repro.store — a two-tier content-addressed artifact store.

The staged ATM pipeline (see :mod:`repro.core.stages`) materializes each
stage's output as an *artifact* addressed by ``(stage, data fingerprint,
config fingerprint, schema version)``.  This package provides:

* :mod:`repro.store.fingerprint` — BLAKE2b content/config fingerprints and
  the ``repro.store/v1`` schema tag.
* :mod:`repro.store.lru` — the in-process memory tier (tier 1), the
  thread-safe bounded LRU the signature cache has always used.
* :mod:`repro.store.codecs` — per-stage ``npz + JSON`` serializers.
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`, the two-tier
  get/put with an optional persistent disk tier (``REPRO_STORE`` /
  ``--store``), atomic writes, and stale/corrupt rejection.
* :mod:`repro.store.shards` — memory-mapped per-box trace shards with a
  JSON manifest: the fleet-scale trace tier pool workers open
  ``np.memmap`` slices of instead of receiving pickled traces.

The disk tier is what survives process boundaries: pool workers write
artifacts their siblings and *later runs* can hit (fixing the historical
worker-local cache-entry loss), interrupted fleet runs resume from the
boxes already materialized, and ablation sweeps re-fit nothing spatial.
"""

from repro.store.artifacts import (
    STORE_ENV_VAR,
    ArtifactKey,
    ArtifactStore,
    clear_memory_tiers,
    default_store,
    memory_tier,
)
from repro.store.codecs import Codec, get_codec, register_codec, registered_stages
from repro.store.fingerprint import STORE_SCHEMA, config_fingerprint, data_fingerprint
from repro.store.lru import DEFAULT_MAXSIZE, CacheStats, LruCache
from repro.store.shards import (
    SHARDS_SCHEMA,
    BoxShardMeta,
    BoxShardRef,
    ShardedFleet,
    ShardManifest,
    generate_fleet_shards,
    load_fleet_shards,
    resolve_box,
    write_fleet_shards,
)

__all__ = [
    "DEFAULT_MAXSIZE",
    "SHARDS_SCHEMA",
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "ArtifactKey",
    "ArtifactStore",
    "BoxShardMeta",
    "BoxShardRef",
    "CacheStats",
    "Codec",
    "LruCache",
    "ShardManifest",
    "ShardedFleet",
    "clear_memory_tiers",
    "config_fingerprint",
    "data_fingerprint",
    "default_store",
    "generate_fleet_shards",
    "get_codec",
    "load_fleet_shards",
    "memory_tier",
    "register_codec",
    "registered_stages",
    "resolve_box",
    "write_fleet_shards",
]
